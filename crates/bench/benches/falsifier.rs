//! Criterion benches for the Theorem 2 falsifier (EXP-T2 timing companion):
//! how long the full proof chain takes against refutable and surviving
//! protocols.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ba_core::lowerbound::{falsify, probe_weak_consensus, FalsifierConfig};
use ba_crypto::Keybook;
use ba_protocols::broken::{LeaderEcho, OwnProposal, ParanoidEcho};
use ba_protocols::DolevStrong;
use ba_sim::{Bit, ExecutorConfig, ProcessId};

fn bench_falsify_refutable(c: &mut Criterion) {
    let mut group = c.benchmark_group("falsify_refutable");
    for (n, t) in [(8usize, 2usize), (12, 4), (16, 8), (24, 8)] {
        group.bench_with_input(
            BenchmarkId::new("leader_echo", format!("n{n}_t{t}")),
            &(n, t),
            |b, &(n, t)| {
                let cfg = FalsifierConfig::new(n, t);
                b.iter(|| falsify(&cfg, |_| LeaderEcho::new(ProcessId(0))).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("own_proposal", format!("n{n}_t{t}")),
            &(n, t),
            |b, &(n, t)| {
                let cfg = FalsifierConfig::new(n, t);
                b.iter(|| falsify(&cfg, |_| OwnProposal::new()).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_falsify_survivors(c: &mut Criterion) {
    let mut group = c.benchmark_group("falsify_survivors");
    for (n, t) in [(8usize, 2usize), (12, 4)] {
        group.bench_with_input(
            BenchmarkId::new("dolev_strong", format!("n{n}_t{t}")),
            &(n, t),
            |b, &(n, t)| {
                let cfg = FalsifierConfig::new(n, t);
                let book = Keybook::new(n);
                b.iter(|| {
                    falsify(&cfg, DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero))
                        .unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("paranoid_echo", format!("n{n}_t{t}")),
            &(n, t),
            |b, &(n, t)| {
                let cfg = FalsifierConfig::new(n, t);
                b.iter(|| falsify(&cfg, |_| ParanoidEcho::new()).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_prober(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_prober");
    group.bench_function("dolev_strong_n6_t2_50trials", |b| {
        let cfg = ExecutorConfig::new(6, 2);
        let book = Keybook::new(6);
        b.iter(|| {
            probe_weak_consensus(
                &cfg,
                DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
                50,
                9,
            )
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_falsify_refutable, bench_falsify_survivors, bench_prober);
criterion_main!(benches);
