//! Benches for the Theorem 2 falsifier (EXP-T2 timing companion):
//! how long the full proof chain takes against refutable and surviving
//! protocols, plus a Campaign-parallel grid sweep. Uses
//! `ba_bench::harness` (no criterion; the workspace builds offline).

use ba_bench::falsifier_sweep;
use ba_bench::harness::BenchGroup;
use ba_core::lowerbound::{falsify, probe_weak_consensus, FalsifierConfig};
use ba_crypto::Keybook;
use ba_protocols::broken::{LeaderEcho, OwnProposal, ParanoidEcho};
use ba_protocols::DolevStrong;
use ba_sim::{Bit, ExecutorConfig, ProcessId};

fn bench_falsify_refutable() {
    let group = BenchGroup::new("falsify_refutable");
    for (n, t) in [(8usize, 2usize), (12, 4), (16, 8), (24, 8)] {
        let cfg = FalsifierConfig::new(n, t);
        group.bench(&format!("leader_echo/n{n}_t{t}"), || {
            falsify(&cfg, |_| LeaderEcho::new(ProcessId(0))).unwrap()
        });
        group.bench(&format!("own_proposal/n{n}_t{t}"), || {
            falsify(&cfg, |_| OwnProposal::new()).unwrap()
        });
    }
}

fn bench_falsify_survivors() {
    let group = BenchGroup::new("falsify_survivors");
    for (n, t) in [(8usize, 2usize), (12, 4)] {
        let cfg = FalsifierConfig::new(n, t);
        let book = Keybook::new(n);
        group.bench(&format!("dolev_strong/n{n}_t{t}"), || {
            falsify(
                &cfg,
                DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
            )
            .unwrap()
        });
        group.bench(&format!("paranoid_echo/n{n}_t{t}"), || {
            falsify(&cfg, |_| ParanoidEcho::new()).unwrap()
        });
    }
}

fn bench_campaign_sweep() {
    // The Campaign-parallel grid sweep vs. the same grid serially: the
    // interesting number is the wall-clock ratio on multi-core machines.
    let group = BenchGroup::new("falsifier_grid_sweep");
    let grid = [(8usize, 2usize), (10, 2), (12, 4), (16, 8)];
    group.bench("campaign_parallel_4pts", || {
        falsifier_sweep(&grid, |_| |_: ProcessId| LeaderEcho::new(ProcessId(0)))
    });
    group.bench("serial_4pts", || {
        for &(n, t) in &grid {
            falsify(&FalsifierConfig::new(n, t), |_| {
                LeaderEcho::new(ProcessId(0))
            })
            .unwrap();
        }
    });
}

fn bench_prober() {
    let group = BenchGroup::new("random_prober");
    let cfg = ExecutorConfig::new(6, 2);
    let book = Keybook::new(6);
    group.bench("dolev_strong_n6_t2_50trials", || {
        probe_weak_consensus(
            &cfg,
            DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
            50,
            9,
        )
        .unwrap()
    });
}

fn main() {
    bench_falsify_refutable();
    bench_falsify_survivors();
    bench_campaign_sweep();
    bench_prober();
}
