//! Benches for the proof machinery (EXP-F1/F2/TAB1 timing companion):
//! execution-family construction, merge, swap, validation, and
//! indistinguishability checking. Uses `ba_bench::harness` (no criterion;
//! the workspace builds offline).

use ba_bench::harness::{BenchConfig, BenchGroup, PerfLog};
use ba_core::lowerbound::{
    exhaustive_omission_check, merge, swap_omission, ExhaustiveConfig, FamilyRunner, Partition,
};
use ba_crypto::Keybook;
use ba_protocols::DolevStrong;
use ba_sim::{Bit, Campaign, ExecutorConfig, ProcessId, Round};

fn setup(
    n: usize,
    t: usize,
) -> (
    ExecutorConfig,
    impl Fn(ProcessId) -> DolevStrong<Bit> + Clone,
    Partition,
) {
    let cfg = ExecutorConfig::new(n, t)
        .with_stop_when_quiescent(false)
        .with_max_rounds(16);
    let factory = DolevStrong::factory(Keybook::new(n), ProcessId(0), Bit::Zero);
    (cfg, factory, Partition::paper_default(n, t))
}

fn bench_family() {
    let group = BenchGroup::new("family_construction");
    for (n, t) in [(8usize, 2usize), (16, 4), (24, 8)] {
        let (cfg, factory, partition) = setup(n, t);
        let runner = FamilyRunner::new(cfg, &factory, partition);
        group.bench(&format!("n{n}_t{t}"), || {
            runner
                .isolated_b::<DolevStrong<Bit>>(Round(2), Bit::Zero)
                .unwrap()
        });
    }
}

fn bench_merge() {
    let group = BenchGroup::new("merge");
    for (n, t) in [(8usize, 2usize), (16, 4), (24, 8)] {
        let (cfg, factory, partition) = setup(n, t);
        let runner = FamilyRunner::new(cfg, &factory, partition.clone());
        let eb = runner
            .isolated_b::<DolevStrong<Bit>>(Round(2), Bit::Zero)
            .unwrap();
        let ec = runner
            .isolated_c::<DolevStrong<Bit>>(Round(2), Bit::Zero)
            .unwrap();
        group.bench(&format!("n{n}_t{t}"), || {
            merge(
                &cfg,
                &factory,
                &partition,
                &eb,
                Round(2),
                &ec,
                Round(2),
                Bit::Zero,
            )
            .unwrap()
        });
    }
}

fn bench_swap_and_checks() {
    let group = BenchGroup::new("swap_and_validation");
    let (n, t) = (16, 8);
    let (cfg, factory, partition) = setup(n, t);
    let runner = FamilyRunner::new(cfg, &factory, partition.clone());
    let eb = runner
        .isolated_b::<DolevStrong<Bit>>(Round(1), Bit::Zero)
        .unwrap();
    let pivot = *partition.b().iter().next().unwrap();

    group.bench("swap_omission_n16_t8", || swap_omission(&eb, pivot));
    group.bench("validate_n16_t8", || eb.validate().unwrap());
    let e2 = eb.clone();
    group.bench("indistinguishability_n16_t8", || {
        ProcessId::all(n)
            .filter(|p| eb.indistinguishable_to(&e2, *p))
            .count()
    });
}

fn bench_exhaustive() {
    // 2^(2·3·r) adversaries at n = 4: r = 1 → 64, r = 2 → 4096.
    let group = BenchGroup::with_config(
        "exhaustive_model_check",
        BenchConfig {
            warmup_iters: 1,
            iters: 5,
        },
    );
    for rounds in [1u64, 2] {
        let cfg = ExecutorConfig::new(4, 1);
        let book = Keybook::new(4);
        let bounds = ExhaustiveConfig::new(rounds);
        group.bench(&format!("ds_n4_t1_r{rounds}"), || {
            exhaustive_omission_check(
                &cfg,
                DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
                &[Bit::One; 4],
                ProcessId(3),
                &bounds,
            )
            .unwrap()
        });
    }
}

/// Times full campaign sweeps (scenario grids, stats-only and full-trace,
/// plus the falsifier grid) and writes the machine-readable
/// `BENCH_campaign.json` throughput log CI tracks (gated by `perf_gate`
/// against the committed `BENCH_baseline.json`).
fn bench_campaign_throughput() {
    println!("\n== campaign_throughput ==");
    let mut log = PerfLog::new();

    let nts: Vec<(usize, usize)> = (6..18).map(|n| (n, 2)).collect();
    let points = Campaign::grid(
        nts.iter().copied(),
        &["none", "isolation", "crash", "random-omission"],
        &["ones", "random"],
    )
    .points()
    .to_vec();
    // The headline line: the default (stats-mode) sweep — same label as the
    // pre-TraceMode engine so throughput is comparable across commits.
    let report = log.time_best("scenario-sweep/dolev-strong", 41, || {
        let report = ba_bench::dist::scenario_campaign_report(&points, "dolev-strong", 7, 0)
            .expect("registry sweep");
        let total: u64 = report.stats().map(|(_, s)| s.total_messages).sum();
        (points.len(), total, report)
    });
    assert_eq!(report.outcomes.len(), points.len());
    // The same grid with full traces materialized, validated, and reduced to
    // stats — what every sweep paid before TraceMode. Kept as a line so the
    // stats-engine speedup is measured in-repo, hardware-independently.
    let full = log.time_best("scenario-sweep-fulltrace/dolev-strong", 11, || {
        let full = ba_bench::dist::scenario_campaign_report_mode(
            &points,
            "dolev-strong",
            7,
            0,
            ba_sim::TraceMode::Full,
        )
        .expect("registry sweep");
        let total: u64 = full.stats().map(|(_, s)| s.total_messages).sum();
        (points.len(), total, full)
    });
    assert_eq!(full, report, "sink equivalence must hold on the bench grid");

    // The adaptive fault-model family (execution-observing adversaries:
    // adaptive corruption, mobile corruption, seeded delivery scheduling)
    // on the same (n, t) grid — tracked so the trait-dispatched fault layer
    // stays honest about its hot-path cost.
    let adaptive_points = Campaign::grid(
        nts.iter().copied(),
        &["adaptive-worst-case", "mobile", "scheduler"],
        &["ones", "random"],
    )
    .points()
    .to_vec();
    log.time_best("scenario-sweep-adaptive/dolev-strong", 21, || {
        let report =
            ba_bench::dist::scenario_campaign_report(&adaptive_points, "dolev-strong", 7, 0)
                .expect("registry sweep");
        assert_eq!(report.errors().count(), 0, "{}", report.summary());
        let total: u64 = report.stats().map(|(_, s)| s.total_messages).sum();
        (adaptive_points.len(), total, ())
    });

    // Large-n stats-only sweeps: the regime the dense buffers + StatsSink
    // exist for. Full traces at n = 64 would clone every signature chain
    // two extra times and keep O(n²·rounds) fragment maps resident.
    let large_nts = [(16usize, 2usize), (32, 2), (48, 2), (64, 2)];
    let large_points = Campaign::grid(large_nts, &["none", "isolation"], &["ones"])
        .points()
        .to_vec();
    log.time_best("stats-sweep-large-n/dolev-strong", 5, || {
        let report = ba_bench::dist::scenario_campaign_report(&large_points, "dolev-strong", 11, 0)
            .expect("registry sweep");
        let total: u64 = report.stats().map(|(_, s)| s.total_messages).sum();
        (large_points.len(), total, ())
    });

    // Telemetry-overhead pair: the same deep dolev-strong grid (large t →
    // many rounds, long signature chains) run bare and with a live
    // Aggregator recorder attached — the Campaign's per-point metrics plus
    // the engine's RecordingSink round stream. perf_gate's overhead gate
    // holds the instrumented line within a few percent of the bare one,
    // and telemetry must stay observation-only — the reports are asserted
    // bit-identical.
    let deep_nts = [(16usize, 4usize), (32, 8), (48, 12), (64, 16)];
    let deep_points = Campaign::grid(deep_nts, &["none", "isolation"], &["ones"])
        .points()
        .to_vec();
    let deep_report = log.time_best("stats-sweep-deep/dolev-strong", 5, || {
        let report = ba_bench::dist::scenario_campaign_report(&deep_points, "dolev-strong", 11, 0)
            .expect("registry sweep");
        let total: u64 = report.stats().map(|(_, s)| s.total_messages).sum();
        (deep_points.len(), total, report)
    });
    let recorded_report = log.time_best("telemetry-overhead/dolev-strong", 5, || {
        let agg: std::sync::Arc<dyn ba_obs::Recorder> =
            std::sync::Arc::new(ba_obs::Aggregator::new());
        let report = ba_bench::dist::scenario_campaign_report_recorded(
            &deep_points,
            "dolev-strong",
            11,
            0,
            agg,
        )
        .expect("registry sweep");
        let total: u64 = report.stats().map(|(_, s)| s.total_messages).sum();
        (deep_points.len(), total, report)
    });
    assert_eq!(
        recorded_report, deep_report,
        "telemetry must be observation-only on the bench grid"
    );
    let pk_nts = [(16usize, 4usize), (32, 8), (48, 12), (64, 16)];
    let pk_points = Campaign::grid(pk_nts, &["none", "isolation"], &["ones"])
        .points()
        .to_vec();
    log.time_best("stats-sweep-large-n/phase-king", 5, || {
        let report = ba_bench::dist::scenario_campaign_report(&pk_points, "phase-king", 11, 0)
            .expect("registry sweep");
        let total: u64 = report.stats().map(|(_, s)| s.total_messages).sum();
        (pk_points.len(), total, ())
    });

    // Broadcast-routing stress: phase-king up to n = 256 (t+1 phases of
    // all-to-all rounds → tens of millions of messages across the grid).
    // Only viable at interactive bench timescales because a broadcast
    // outbox carries one payload + a receiver mask and the stats engine
    // counts deliveries without cloning; the peak-RSS column keeps the
    // no-resident-copies claim honest.
    let huge_nts = [(96usize, 24usize), (128, 32), (192, 48), (256, 64)];
    let huge_points = Campaign::grid(huge_nts, &["none", "isolation"], &["ones"])
        .points()
        .to_vec();
    log.time_best("stats-sweep-huge-n/phase-king", 3, || {
        let report = ba_bench::dist::scenario_campaign_report(&huge_points, "phase-king", 11, 0)
            .expect("registry sweep");
        let total: u64 = report.stats().map(|(_, s)| s.total_messages).sum();
        (huge_points.len(), total, ())
    });

    // Adversary-search machinery: evaluate a fixed genome population
    // against the planted one-round-all-to-all bug — the per-candidate
    // cost every batch of the search drivers pays, through the same
    // search-mode path distributed workers run.
    let mut rng = ba_sim::SimRng::seed_from_u64(0x5EA7);
    let space = ba_search::GenomeSpace::new(5, 1, 6);
    let search_points: Vec<ba_sim::CampaignPoint> = (0..32)
        .map(|_| {
            ba_sim::CampaignPoint::new(5, 1)
                .with_adversary(ba_search::genome_label(&space.random_genome(&mut rng)))
        })
        .collect();
    log.time_best("search-population/one-round-all-to-all", 21, || {
        let report =
            ba_bench::dist::search_campaign_report(&search_points, "one-round-all-to-all", 7, 0)
                .expect("search-mode sweep");
        assert_eq!(report.errors().count(), 0, "{}", report.summary());
        let total: u64 = report.stats().map(|(_, s)| s.total_messages).sum();
        (search_points.len(), total, ())
    });

    // Exhaustive model-check throughput: the branching explorer over the
    // planted one-round bug's full ≤1-corruption send+receive omission
    // space at n = 5 (1281 executions) — the per-state cost every ba-check
    // sweep pays, end to end through the registry runner including shrink
    // and replay revalidation. `points` counts distinct canonical states,
    // so the tracked rate is states/sec.
    let check_point = ba_sim::CampaignPoint::new(5, 1)
        .with_adversary(ba_bench::check::CheckLabel::new(1).render())
        .with_inputs("zeros");
    log.time_best("check-states/one-round-all-to-all", 5, || {
        let sweep =
            ba_bench::dist::registry_check(&check_point, "one-round-all-to-all", 0, 0, None)
                .expect("model check");
        assert!(sweep.refuted, "{}", sweep.verdict);
        (sweep.states() as usize, sweep.executions, ())
    });

    let falsifier_grid = [(8usize, 2usize), (10, 2), (12, 4), (16, 8)];
    log.time_best("falsifier-sweep/leader-echo", 5, || {
        let sweep = ba_bench::falsifier_sweep(&falsifier_grid, |_point| {
            |_: ProcessId| ba_protocols::broken::LeaderEcho::new(ProcessId(0))
        });
        let total: u64 = sweep.iter().map(|p| p.max_message_complexity).sum();
        (falsifier_grid.len(), total, ())
    });

    for sweep in log.sweeps() {
        println!(
            "{:<44} {:>8} points {:>12.1} points/sec {:>8.1} MiB peak",
            sweep.label,
            sweep.points,
            sweep.points_per_sec(),
            sweep.peak_rss_bytes as f64 / (1024.0 * 1024.0)
        );
    }
    // Anchor at the workspace root: cargo runs benches with the *crate*
    // directory as CWD, but CI (and humans) look for the log at the root.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(PerfLog::FILENAME);
    log.write(out).expect("write BENCH_campaign.json");
}

fn main() {
    bench_family();
    bench_merge();
    bench_swap_and_checks();
    bench_exhaustive();
    bench_campaign_throughput();
}
