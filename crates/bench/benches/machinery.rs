//! Benches for the proof machinery (EXP-F1/F2/TAB1 timing companion):
//! execution-family construction, merge, swap, validation, and
//! indistinguishability checking. Uses `ba_bench::harness` (no criterion;
//! the workspace builds offline).

use ba_bench::harness::{BenchConfig, BenchGroup};
use ba_core::lowerbound::{
    exhaustive_omission_check, merge, swap_omission, ExhaustiveConfig, FamilyRunner, Partition,
};
use ba_crypto::Keybook;
use ba_protocols::DolevStrong;
use ba_sim::{Bit, ExecutorConfig, ProcessId, Round};

fn setup(
    n: usize,
    t: usize,
) -> (
    ExecutorConfig,
    impl Fn(ProcessId) -> DolevStrong<Bit> + Clone,
    Partition,
) {
    let cfg = ExecutorConfig::new(n, t)
        .with_stop_when_quiescent(false)
        .with_max_rounds(16);
    let factory = DolevStrong::factory(Keybook::new(n), ProcessId(0), Bit::Zero);
    (cfg, factory, Partition::paper_default(n, t))
}

fn bench_family() {
    let group = BenchGroup::new("family_construction");
    for (n, t) in [(8usize, 2usize), (16, 4), (24, 8)] {
        let (cfg, factory, partition) = setup(n, t);
        let runner = FamilyRunner::new(cfg, &factory, partition);
        group.bench(&format!("n{n}_t{t}"), || {
            runner
                .isolated_b::<DolevStrong<Bit>>(Round(2), Bit::Zero)
                .unwrap()
        });
    }
}

fn bench_merge() {
    let group = BenchGroup::new("merge");
    for (n, t) in [(8usize, 2usize), (16, 4), (24, 8)] {
        let (cfg, factory, partition) = setup(n, t);
        let runner = FamilyRunner::new(cfg, &factory, partition.clone());
        let eb = runner
            .isolated_b::<DolevStrong<Bit>>(Round(2), Bit::Zero)
            .unwrap();
        let ec = runner
            .isolated_c::<DolevStrong<Bit>>(Round(2), Bit::Zero)
            .unwrap();
        group.bench(&format!("n{n}_t{t}"), || {
            merge(
                &cfg,
                &factory,
                &partition,
                &eb,
                Round(2),
                &ec,
                Round(2),
                Bit::Zero,
            )
            .unwrap()
        });
    }
}

fn bench_swap_and_checks() {
    let group = BenchGroup::new("swap_and_validation");
    let (n, t) = (16, 8);
    let (cfg, factory, partition) = setup(n, t);
    let runner = FamilyRunner::new(cfg, &factory, partition.clone());
    let eb = runner
        .isolated_b::<DolevStrong<Bit>>(Round(1), Bit::Zero)
        .unwrap();
    let pivot = *partition.b().iter().next().unwrap();

    group.bench("swap_omission_n16_t8", || swap_omission(&eb, pivot));
    group.bench("validate_n16_t8", || eb.validate().unwrap());
    let e2 = eb.clone();
    group.bench("indistinguishability_n16_t8", || {
        ProcessId::all(n)
            .filter(|p| eb.indistinguishable_to(&e2, *p))
            .count()
    });
}

fn bench_exhaustive() {
    // 2^(2·3·r) adversaries at n = 4: r = 1 → 64, r = 2 → 4096.
    let group = BenchGroup::with_config(
        "exhaustive_model_check",
        BenchConfig {
            warmup_iters: 1,
            iters: 5,
        },
    );
    for rounds in [1u64, 2] {
        let cfg = ExecutorConfig::new(4, 1);
        let book = Keybook::new(4);
        let bounds = ExhaustiveConfig::new(rounds);
        group.bench(&format!("ds_n4_t1_r{rounds}"), || {
            exhaustive_omission_check(
                &cfg,
                DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
                &[Bit::One; 4],
                ProcessId(3),
                &bounds,
            )
            .unwrap()
        });
    }
}

fn main() {
    bench_family();
    bench_merge();
    bench_swap_and_checks();
    bench_exhaustive();
}
