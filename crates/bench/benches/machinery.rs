//! Criterion benches for the proof machinery (EXP-F1/F2/TAB1 timing
//! companion): execution-family construction, merge, swap, validation, and
//! indistinguishability checking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ba_core::lowerbound::{
    exhaustive_omission_check, merge, swap_omission, ExhaustiveConfig, FamilyRunner, Partition,
};
use ba_crypto::Keybook;
use ba_protocols::DolevStrong;
use ba_sim::{Bit, ExecutorConfig, ProcessId, Round};

fn setup(
    n: usize,
    t: usize,
) -> (ExecutorConfig, impl Fn(ProcessId) -> DolevStrong<Bit> + Clone, Partition) {
    let cfg = ExecutorConfig::new(n, t).with_stop_when_quiescent(false).with_max_rounds(16);
    let factory = DolevStrong::factory(Keybook::new(n), ProcessId(0), Bit::Zero);
    (cfg, factory, Partition::paper_default(n, t))
}

fn bench_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("family_construction");
    for (n, t) in [(8usize, 2usize), (16, 4), (24, 8)] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_t{t}")), &(n, t), |b, &(n, t)| {
            let (cfg, factory, partition) = setup(n, t);
            let runner = FamilyRunner::new(cfg, &factory, partition);
            b.iter(|| runner.isolated_b::<DolevStrong<Bit>>(Round(2), Bit::Zero).unwrap());
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    for (n, t) in [(8usize, 2usize), (16, 4), (24, 8)] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_t{t}")), &(n, t), |b, &(n, t)| {
            let (cfg, factory, partition) = setup(n, t);
            let runner = FamilyRunner::new(cfg, &factory, partition.clone());
            let eb = runner.isolated_b::<DolevStrong<Bit>>(Round(2), Bit::Zero).unwrap();
            let ec = runner.isolated_c::<DolevStrong<Bit>>(Round(2), Bit::Zero).unwrap();
            b.iter(|| {
                merge(&cfg, &factory, &partition, &eb, Round(2), &ec, Round(2), Bit::Zero)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_swap_and_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("swap_and_validation");
    let (n, t) = (16, 8);
    let (cfg, factory, partition) = setup(n, t);
    let runner = FamilyRunner::new(cfg, &factory, partition.clone());
    let eb = runner.isolated_b::<DolevStrong<Bit>>(Round(1), Bit::Zero).unwrap();
    let pivot = *partition.b().iter().next().unwrap();

    group.bench_function("swap_omission_n16_t8", |b| {
        b.iter(|| swap_omission(&eb, pivot));
    });
    group.bench_function("validate_n16_t8", |b| {
        b.iter(|| eb.validate().unwrap());
    });
    group.bench_function("indistinguishability_n16_t8", |b| {
        let e2 = eb.clone();
        b.iter(|| {
            ProcessId::all(n).filter(|p| eb.indistinguishable_to(&e2, *p)).count()
        });
    });
    group.finish();
}

fn bench_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_model_check");
    group.sample_size(10);
    // 2^(2·3·r) adversaries at n = 4: r = 1 → 64, r = 2 → 4096.
    for rounds in [1u64, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("ds_n4_t1_r{rounds}")),
            &rounds,
            |b, &rounds| {
                let cfg = ExecutorConfig::new(4, 1);
                let book = Keybook::new(4);
                let bounds = ExhaustiveConfig::new(rounds);
                b.iter(|| {
                    exhaustive_omission_check(
                        &cfg,
                        DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
                        &[Bit::One; 4],
                        ProcessId(3),
                        &bounds,
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_family, bench_merge, bench_swap_and_checks, bench_exhaustive);
criterion_main!(benches);
