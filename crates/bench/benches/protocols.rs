//! Criterion benches for the protocol landscape (EXP-UB timing companion):
//! wall-clock cost of simulating one fault-free execution of each protocol
//! across system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ba_bench::run_fault_free;
use ba_crypto::Keybook;
use ba_protocols::interactive_consistency::authenticated_ic_factory;
use ba_protocols::{DolevStrong, EigConsensus, PhaseKing};
use ba_sim::{Bit, ProcessId};

fn bench_dolev_strong(c: &mut Criterion) {
    let mut group = c.benchmark_group("dolev_strong");
    for (n, t) in [(8usize, 2usize), (16, 5), (32, 10), (48, 15)] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_t{t}")), &(n, t), |b, &(n, t)| {
            let book = Keybook::new(n);
            b.iter(|| {
                run_fault_free(
                    n,
                    t,
                    DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
                    Bit::One,
                )
            });
        });
    }
    group.finish();
}

fn bench_eig(c: &mut Criterion) {
    let mut group = c.benchmark_group("eig_consensus");
    // EIG payloads grow exponentially with t: keep t small, sweep n.
    for (n, t) in [(4usize, 1usize), (7, 2), (10, 2), (10, 3)] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_t{t}")), &(n, t), |b, &(n, t)| {
            b.iter(|| run_fault_free(n, t, |_| EigConsensus::new(n, t, Bit::Zero), Bit::One));
        });
    }
    group.finish();
}

fn bench_phase_king(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_king");
    for (n, t) in [(4usize, 1usize), (10, 3), (16, 5), (32, 10)] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_t{t}")), &(n, t), |b, &(n, t)| {
            b.iter(|| run_fault_free(n, t, |_| PhaseKing::new(n, t), Bit::One));
        });
    }
    group.finish();
}

fn bench_interactive_consistency(c: &mut Criterion) {
    let mut group = c.benchmark_group("authenticated_ic");
    for (n, t) in [(4usize, 1usize), (8, 2), (12, 4), (16, 5)] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_t{t}")), &(n, t), |b, &(n, t)| {
            let book = Keybook::new(n);
            b.iter(|| {
                run_fault_free(n, t, authenticated_ic_factory(book.clone(), Bit::Zero), Bit::One)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dolev_strong,
    bench_eig,
    bench_phase_king,
    bench_interactive_consistency
);
criterion_main!(benches);
