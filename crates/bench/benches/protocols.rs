//! Benches for the protocol landscape (EXP-UB timing companion):
//! wall-clock cost of simulating one fault-free execution of each protocol
//! across system sizes. Uses `ba_bench::harness` (no criterion; the
//! workspace builds offline).

use ba_bench::harness::BenchGroup;
use ba_bench::run_fault_free;
use ba_crypto::Keybook;
use ba_protocols::interactive_consistency::authenticated_ic_factory;
use ba_protocols::{DolevStrong, EigConsensus, PhaseKing};
use ba_sim::{Bit, ProcessId};

fn bench_dolev_strong() {
    let group = BenchGroup::new("dolev_strong");
    for (n, t) in [(8usize, 2usize), (16, 5), (32, 10), (48, 15)] {
        let book = Keybook::new(n);
        group.bench(&format!("n{n}_t{t}"), || {
            run_fault_free(
                n,
                t,
                DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
                Bit::One,
            )
        });
    }
}

fn bench_eig() {
    let group = BenchGroup::new("eig_consensus");
    // EIG payloads grow exponentially with t: keep t small, sweep n.
    for (n, t) in [(4usize, 1usize), (7, 2), (10, 2), (10, 3)] {
        group.bench(&format!("n{n}_t{t}"), || {
            run_fault_free(n, t, |_| EigConsensus::new(n, t, Bit::Zero), Bit::One)
        });
    }
}

fn bench_phase_king() {
    let group = BenchGroup::new("phase_king");
    for (n, t) in [(4usize, 1usize), (10, 3), (16, 5), (32, 10)] {
        group.bench(&format!("n{n}_t{t}"), || {
            run_fault_free(n, t, |_| PhaseKing::new(n, t), Bit::One)
        });
    }
}

fn bench_interactive_consistency() {
    let group = BenchGroup::new("authenticated_ic");
    for (n, t) in [(4usize, 1usize), (8, 2), (12, 4), (16, 5)] {
        let book = Keybook::new(n);
        group.bench(&format!("n{n}_t{t}"), || {
            run_fault_free(
                n,
                t,
                authenticated_ic_factory(book.clone(), Bit::Zero),
                Bit::One,
            )
        });
    }
}

fn main() {
    bench_dolev_strong();
    bench_eig();
    bench_phase_king();
    bench_interactive_consistency();
}
