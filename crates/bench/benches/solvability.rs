//! Benches for the solvability machinery (EXP-T4/T5 timing companion):
//! exhaustive containment-condition checking cost as the configuration
//! space `I` grows. Uses `ba_bench::harness` (no criterion; the workspace
//! builds offline).

use ba_bench::harness::BenchGroup;
use ba_core::solvability::{check_containment_condition, solvability, trivial_value};
use ba_core::validity::{
    enumerate_configs, IcValidity, StrongValidity, SystemParams, WeakValidity,
};
use ba_sim::Bit;

fn bench_cc_checker() {
    let group = BenchGroup::new("cc_checker");
    for (n, t) in [(3usize, 1usize), (4, 1), (5, 1), (5, 2), (6, 2)] {
        let params = SystemParams::new(n, t);
        let weak = WeakValidity::binary();
        group.bench(&format!("weak_validity/n{n}_t{t}"), || {
            check_containment_condition(&weak, &params)
        });
        let strong = StrongValidity::binary();
        group.bench(&format!("strong_validity/n{n}_t{t}"), || {
            check_containment_condition(&strong, &params)
        });
    }
    // IC-validity has an exponential output domain: bench the small cases.
    for (n, t) in [(3usize, 1usize), (4, 1)] {
        let params = SystemParams::new(n, t);
        let vp = IcValidity::new(vec![Bit::Zero, Bit::One]);
        group.bench(&format!("ic_validity/n{n}_t{t}"), || {
            check_containment_condition(&vp, &params)
        });
    }
}

fn bench_enumeration() {
    let group = BenchGroup::new("config_enumeration");
    for (n, t) in [(4usize, 2usize), (6, 2), (6, 3), (8, 2)] {
        let params = SystemParams::new(n, t);
        group.bench(&format!("n{n}_t{t}"), || {
            enumerate_configs(&params, &[Bit::Zero, Bit::One])
        });
    }
}

fn bench_full_solvability() {
    let group = BenchGroup::new("solvability_report");
    let params = SystemParams::new(5, 2);
    let strong = StrongValidity::binary();
    group.bench("strong_validity_n5_t2", || solvability(&strong, &params));
    let params = SystemParams::new(6, 2);
    let weak = WeakValidity::binary();
    group.bench("triviality_weak_n6_t2", || trivial_value(&weak, &params));
}

fn main() {
    bench_cc_checker();
    bench_enumeration();
    bench_full_solvability();
}
