//! Criterion benches for the solvability machinery (EXP-T4/T5 timing
//! companion): exhaustive containment-condition checking cost as the
//! configuration space `I` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ba_core::solvability::{check_containment_condition, solvability, trivial_value};
use ba_core::validity::{
    enumerate_configs, IcValidity, StrongValidity, SystemParams, WeakValidity,
};
use ba_sim::Bit;

fn bench_cc_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("cc_checker");
    for (n, t) in [(3usize, 1usize), (4, 1), (5, 1), (5, 2), (6, 2)] {
        group.bench_with_input(
            BenchmarkId::new("weak_validity", format!("n{n}_t{t}")),
            &(n, t),
            |b, &(n, t)| {
                let params = SystemParams::new(n, t);
                let vp = WeakValidity::binary();
                b.iter(|| check_containment_condition(&vp, &params));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("strong_validity", format!("n{n}_t{t}")),
            &(n, t),
            |b, &(n, t)| {
                let params = SystemParams::new(n, t);
                let vp = StrongValidity::binary();
                b.iter(|| check_containment_condition(&vp, &params));
            },
        );
    }
    // IC-validity has an exponential output domain: bench the small cases.
    for (n, t) in [(3usize, 1usize), (4, 1)] {
        group.bench_with_input(
            BenchmarkId::new("ic_validity", format!("n{n}_t{t}")),
            &(n, t),
            |b, &(n, t)| {
                let params = SystemParams::new(n, t);
                let vp = IcValidity::new(vec![Bit::Zero, Bit::One]);
                b.iter(|| check_containment_condition(&vp, &params));
            },
        );
    }
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("config_enumeration");
    for (n, t) in [(4usize, 2usize), (6, 2), (6, 3), (8, 2)] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_t{t}")), &(n, t), |b, &(n, t)| {
            let params = SystemParams::new(n, t);
            b.iter(|| enumerate_configs(&params, &[Bit::Zero, Bit::One]));
        });
    }
    group.finish();
}

fn bench_full_solvability(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvability_report");
    group.bench_function("strong_validity_n5_t2", |b| {
        let params = SystemParams::new(5, 2);
        let vp = StrongValidity::binary();
        b.iter(|| solvability(&vp, &params));
    });
    group.bench_function("triviality_weak_n6_t2", |b| {
        let params = SystemParams::new(6, 2);
        let vp = WeakValidity::binary();
        b.iter(|| trivial_value(&vp, &params));
    });
    group.finish();
}

criterion_group!(benches, bench_cc_checker, bench_enumeration, bench_full_solvability);
criterion_main!(benches);
