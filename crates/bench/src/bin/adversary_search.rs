//! `adversary_search` — search the fault-model space for strategies that
//! break a registry protocol.
//!
//! Drives `ba_search` against any `ba_bench::dist` registry protocol: a
//! seeded (1+λ) hill-climber or simulated annealing proposes strategy
//! genomes, the simulator evaluates them (in parallel, stats-only), and a
//! violating winner is delta-debugged down to a minimal, replayable attack
//! report printed to stdout.
//!
//! Usage:
//!
//! ```text
//! adversary_search [--protocol LABEL] [--objective LABEL] [--n N] [--t T]
//!                  [--inputs LABEL] [--seed S] [--evals E] [--lambda L]
//!                  [--threads W] [--algo hill-climb|anneal] [--horizon R]
//!                  [--no-shrink] [--expect-violation]
//! ```
//!
//! Defaults hunt disagreement on the planted-bug `one-round-all-to-all`
//! protocol (n = 5, t = 1, all-zero inputs) and find it deterministically —
//! the CI smoke runs exactly that with `--expect-violation`, which exits
//! non-zero if no violation is found within the evaluation budget.

use std::process::ExitCode;

use ba_bench::dist::{INPUTS, REGISTRY};
use ba_bench::search::{run_adversary_search, SearchSpec, OBJECTIVES};
use ba_search::SearchAlgo;

fn parse<T: std::str::FromStr>(flag: &str, raw: String) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("bad {flag} value {raw:?}: {e}"))
}

fn run() -> Result<bool, String> {
    let mut spec = SearchSpec::new("one-round-all-to-all", 5, 1);
    let mut expect_violation = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--protocol" => spec.protocol = value("--protocol")?,
            "--objective" => spec.objective = value("--objective")?,
            "--inputs" => spec.inputs = value("--inputs")?,
            "--n" => spec.n = parse("--n", value("--n")?)?,
            "--t" => spec.t = parse("--t", value("--t")?)?,
            "--seed" => spec.config.seed = parse("--seed", value("--seed")?)?,
            "--evals" => spec.config.max_evals = parse("--evals", value("--evals")?)?,
            "--lambda" => spec.config.lambda = parse("--lambda", value("--lambda")?)?,
            "--threads" => spec.config.threads = parse("--threads", value("--threads")?)?,
            "--horizon" => spec.trigger_horizon = parse("--horizon", value("--horizon")?)?,
            "--algo" => {
                spec.config.algo = match value("--algo")?.as_str() {
                    "hill-climb" => SearchAlgo::HillClimb,
                    "anneal" => SearchAlgo::Anneal,
                    other => return Err(format!("unknown --algo {other:?}")),
                };
            }
            "--no-shrink" => spec.shrink = false,
            "--expect-violation" => expect_violation = true,
            "--help" | "-h" => {
                println!(
                    "usage: adversary_search [--protocol LABEL] [--objective LABEL] \
                     [--n N] [--t T] [--inputs LABEL] [--seed S] [--evals E] \
                     [--lambda L] [--threads W] [--algo hill-climb|anneal] \
                     [--horizon R] [--no-shrink] [--expect-violation]"
                );
                println!("protocols:  {REGISTRY:?}");
                println!("objectives: {OBJECTIVES:?}");
                println!("inputs:     {INPUTS:?}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }

    eprintln!(
        "adversary_search: {} objective on {} (n={}, t={}, inputs={}, seed={}, evals<={}, {})",
        spec.objective,
        spec.protocol,
        spec.n,
        spec.t,
        spec.inputs,
        spec.config.seed,
        spec.config.max_evals,
        spec.config.algo,
    );
    let run = run_adversary_search(&spec)?;
    eprintln!(
        "adversary_search: best score {} after {} evals ({} batches)",
        run.outcome.best_score,
        run.outcome.evals,
        run.outcome.trajectory.len(),
    );
    match &run.report {
        Some(report) => println!("{report}"),
        None => println!(
            "no violation of {} found on {} within {} evals (best score {})",
            spec.objective, spec.protocol, run.outcome.evals, run.outcome.best_score
        ),
    }
    if expect_violation && run.report.is_none() {
        return Err(format!(
            "--expect-violation: no violation found within {} evals",
            spec.config.max_evals
        ));
    }
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(_) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("adversary_search: {message}");
            ExitCode::FAILURE
        }
    }
}
