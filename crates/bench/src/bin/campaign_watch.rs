//! `campaign_watch` — a live terminal dashboard over a campaign progress
//! stream.
//!
//! Reads JSONL progress lines (`campaign_worker --progress`, or a
//! coordinator observer stream) from stdin or a file and maintains
//! `ba_dist::LiveAggregates`: per-shard points/sec, sweep ETA, error and
//! retry counts, and straggler flagging (any shard more than 2× slower
//! than the median rate). Non-JSON lines (the wire report sharing the
//! worker's stdout) pass through to `campaign_watch`'s own stdout
//! untouched, so it composes as a filter:
//!
//! ```text
//! campaign_worker --progress < manifest.wire | campaign_watch | ...
//! campaign_watch --once < progress.jsonl          # summarize a capture
//! campaign_watch --once --json < progress.jsonl   # machine-readable
//! ```
//!
//! Live mode repaints the dashboard to stderr as events arrive (throttled);
//! `--once` skips the repaints and prints only the end-of-stream summary.
//! `--json` emits the summary as one JSON object instead of the text table.
//! Everything shown derives from worker wall-clock timings — the
//! non-compared telemetry channel; deterministic results travel in the wire
//! report, untouched.
//!
//! The filter is byte-safe: a chaos-garbled stream can interleave non-UTF8
//! or truncated lines, and those pass through to stdout as opaque bytes
//! (never dropped, never a crash) while a `malformed_lines` gauge counts
//! them in the dashboard and summary.

use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use ba_dist::{CoordEvent, LiveAggregates};
use ba_obs::parse_json_line;

/// Minimum delay between live repaints.
const REPAINT_EVERY: Duration = Duration::from_millis(100);

fn run() -> Result<(), String> {
    let mut once = false;
    let mut json = false;
    let mut input_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--json" => json = true,
            "--input" => input_path = Some(args.next().ok_or("--input needs a file path")?),
            "--help" | "-h" => {
                println!("usage: campaign_watch [--once] [--json] [--input FILE]");
                println!("reads JSONL campaign progress from stdin (or FILE), renders a");
                println!("live per-shard dashboard to stderr, and prints an end-of-stream");
                println!("summary; non-JSON input lines pass through to stdout unchanged");
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }

    let mut live = LiveAggregates::new();
    let mut last_paint: Option<Instant> = None;
    let stdin = std::io::stdin();
    let reader: Box<dyn BufRead> = match &input_path {
        Some(path) => Box::new(BufReader::new(
            std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?,
        )),
        None => Box::new(stdin.lock()),
    };
    // Byte-oriented reading: chaos-garbled streams interleave non-UTF8
    // lines, and `lines()` would error out on the first one. Every
    // non-telemetry line — including garbled bytes — passes through to
    // stdout verbatim.
    let mut reader = reader;
    let mut raw = Vec::new();
    loop {
        raw.clear();
        let n = reader
            .read_until(b'\n', &mut raw)
            .map_err(|e| format!("reading input: {e}"))?;
        if n == 0 {
            break;
        }
        let trimmed: &[u8] = raw
            .strip_suffix(b"\n")
            .map(|r| r.strip_suffix(b"\r").unwrap_or(r))
            .unwrap_or(&raw);
        let event = match std::str::from_utf8(trimmed) {
            Ok(text) => match CoordEvent::parse(text) {
                Some(event) => Some(event),
                None => {
                    // JSON-shaped but unparseable → corruption; anything
                    // else (wire report lines, foreign-but-valid JSON) is
                    // simply not ours.
                    if text.starts_with('{') && parse_json_line(text).is_none() {
                        live.note_malformed();
                    }
                    None
                }
            },
            Err(_) => {
                live.note_malformed();
                None
            }
        };
        match event {
            Some(event) => {
                live.ingest_coord(&event);
                let due = last_paint.map_or(true, |at| at.elapsed() >= REPAINT_EVERY);
                if !once && due {
                    last_paint = Some(Instant::now());
                    eprint!("\x1b[2J\x1b[H{}", live.render());
                    for shard in live.stragglers() {
                        eprintln!("straggler: shard {shard} is >2x behind the median rate");
                    }
                }
            }
            None => {
                // Pass through as opaque bytes, newline included.
                let mut out = std::io::stdout().lock();
                out.write_all(&raw).map_err(|e| e.to_string())?;
                if !raw.ends_with(b"\n") {
                    out.write_all(b"\n").map_err(|e| e.to_string())?;
                }
            }
        }
    }

    let mut out = std::io::stdout().lock();
    if json {
        writeln!(out, "{}", live.summary_json()).map_err(|e| e.to_string())?;
    } else {
        write!(out, "{}", live.render()).map_err(|e| e.to_string())?;
        for shard in live.stragglers() {
            writeln!(
                out,
                "straggler: shard {shard} ran >2x slower than the median"
            )
            .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("campaign_watch: {message}");
            ExitCode::FAILURE
        }
    }
}
