//! `campaign_worker` — the per-shard worker process of distributed
//! campaign sweeps.
//!
//! Reads a `ba-dist` [`ShardManifest`] (wire format) from stdin or a file,
//! executes the shard on the local `ba_sim::Campaign` thread pool via the
//! `ba_bench::dist` protocol registry, and writes the encoded shard report
//! to stdout or a file. The merging coordinator (`ba_dist::Coordinator`)
//! spawns one of these per shard.
//!
//! Usage:
//!
//! ```text
//! campaign_worker [--manifest FILE] [--out FILE]
//! ```
//!
//! With no flags: manifest on stdin, report on stdout (the transport
//! `ba_dist::WorkerCommand` uses). Exits non-zero with a diagnostic on
//! stderr for undecodable manifests, unknown registry labels, or I/O
//! failures.

use std::io::Read;
use std::process::ExitCode;

use ba_bench::dist::run_manifest;
use ba_dist::{Decode, ShardManifest};

fn run() -> Result<(), String> {
    let mut manifest_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--manifest" => {
                manifest_path = Some(args.next().ok_or("--manifest needs a file path")?);
            }
            "--out" => out_path = Some(args.next().ok_or("--out needs a file path")?),
            "--help" | "-h" => {
                println!("usage: campaign_worker [--manifest FILE] [--out FILE]");
                println!("reads a shard manifest (stdin by default), runs it on the local");
                println!("Campaign pool, and emits the shard report (stdout by default)");
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }

    let input = match &manifest_path {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            buf
        }
    };
    let manifest = ShardManifest::from_wire(&input).map_err(|e| format!("bad manifest: {e}"))?;
    eprintln!(
        "campaign_worker: shard {}/{} ({} points, protocol {}, mode {})",
        manifest.shard,
        manifest.shards,
        manifest.entries.len(),
        manifest.protocol,
        manifest.mode,
    );
    let report = run_manifest(&manifest)?;
    match &out_path {
        Some(path) => std::fs::write(path, report).map_err(|e| format!("writing {path}: {e}"))?,
        None => print!("{report}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("campaign_worker: {message}");
            ExitCode::FAILURE
        }
    }
}
