//! `campaign_worker` — the per-shard worker process of distributed
//! campaign sweeps.
//!
//! Reads a `ba-dist` [`ShardManifest`] (wire format) from stdin or a file,
//! executes the shard on the local `ba_sim::Campaign` thread pool via the
//! `ba_bench::dist` protocol registry, and writes the encoded shard report
//! to stdout or a file. The merging coordinator (`ba_dist::Coordinator`)
//! spawns one of these per shard.
//!
//! Usage:
//!
//! ```text
//! campaign_worker [--manifest FILE] [--out FILE] [--progress] [--stream]
//! campaign_worker --serve ADDR [--conns N] [--progress]
//! ```
//!
//! With no flags: manifest on stdin, report on stdout (the transport
//! `ba_dist::WorkerCommand` uses). With `--progress`, the worker streams
//! one JSONL [`ProgressEvent`](ba_dist::ProgressEvent) line per completed
//! point to stdout as it finishes, interleaved before the wire report —
//! JSONL lines start with `{` and wire records never do, so downstream
//! consumers (the coordinator's streaming transport, `campaign_watch`)
//! split the stream line-by-line. Telemetry is observation-only: the
//! report is bit-identical with `--progress` on or off.
//!
//! With `--stream`, the worker additionally emits one checksummed
//! `outcome` wire line per point *as it completes* — the redundancy the
//! coordinator's point-level recovery banks, so a worker that crashes
//! after k points only forfeits the rest. The trailing report stays
//! bit-identical.
//!
//! With `--serve ADDR` the worker is a TCP shard server instead
//! (`ba_dist::TcpTransport` is the client side): it binds `ADDR`, prints
//! one `listening addr=IP:PORT` line to stdout (so callers can bind port
//! 0), and then serves one manifest per connection in streaming mode until
//! `--conns N` connections have been handled (forever without it).
//!
//! `$CAMPAIGN_WORKER_DELAY_MS`, if set, sleeps that many milliseconds after
//! each completed point — a throttle for demos and straggler-detection
//! tests (it slows the shard's wall-clock rate without touching any
//! deterministic output).
//!
//! Exits non-zero with a diagnostic on stderr for undecodable manifests,
//! unknown registry labels, or I/O failures.

use std::io::{Read, Write};
use std::process::ExitCode;

use ba_bench::dist::{run_manifest, run_manifest_streaming, run_manifest_with_progress};
use ba_dist::{serve_shards, Decode, ProgressEvent, ShardManifest};

/// Writes one progress line to stdout, flushing so consumers see it live.
fn emit_progress(event: &ProgressEvent, delay_ms: u64) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(out, "{}", event.to_json_line());
    let _ = out.flush();
    if delay_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(delay_ms));
    }
}

/// Writes one streaming chunk (complete lines) to stdout, flushing so the
/// coordinator sees outcomes live. The per-call lock keeps chunks from
/// concurrent worker threads line-atomic.
fn emit_chunk(chunk: &str, delay_ms: u64) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = out.write_all(chunk.as_bytes());
    let _ = out.flush();
    if delay_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(delay_ms));
    }
}

fn point_delay_ms() -> u64 {
    std::env::var("CAMPAIGN_WORKER_DELAY_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Runs the TCP shard-server mode: bind, announce, serve.
fn serve(addr: &str, conns: Option<usize>, progress: bool) -> Result<(), String> {
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    println!("listening addr={local}");
    let _ = std::io::stdout().flush();
    serve_shards(listener, conns, |manifest, emit| {
        eprintln!(
            "campaign_worker: serving shard {}/{} ({} points, protocol {}, mode {})",
            manifest.shard,
            manifest.shards,
            manifest.entries.len(),
            manifest.protocol,
            manifest.mode,
        );
        // Bridge the per-connection FnMut sink into the Sync emitter the
        // streaming worker threads share.
        let sink = std::sync::Mutex::new(emit);
        run_manifest_streaming(manifest, progress, &|chunk: &str| {
            (sink.lock().unwrap_or_else(|p| p.into_inner()))(chunk)
        })
    })
    .map_err(|e| format!("serving {local}: {e}"))
}

fn run() -> Result<(), String> {
    let mut manifest_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut progress = false;
    let mut stream = false;
    let mut serve_addr: Option<String> = None;
    let mut conns: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--manifest" => {
                manifest_path = Some(args.next().ok_or("--manifest needs a file path")?);
            }
            "--out" => out_path = Some(args.next().ok_or("--out needs a file path")?),
            "--progress" => progress = true,
            "--stream" => stream = true,
            "--serve" => serve_addr = Some(args.next().ok_or("--serve needs an address")?),
            "--conns" => {
                let n = args.next().ok_or("--conns needs a count")?;
                conns = Some(n.parse().map_err(|_| format!("bad --conns value {n:?}"))?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: campaign_worker [--manifest FILE] [--out FILE] [--progress] [--stream]"
                );
                println!("       campaign_worker --serve ADDR [--conns N] [--progress]");
                println!("reads a shard manifest (stdin by default), runs it on the local");
                println!("Campaign pool, and emits the shard report (stdout by default);");
                println!("--progress streams one JSONL line per completed point to stdout;");
                println!("--stream also emits one checksummed outcome wire line per point;");
                println!("--serve turns the worker into a TCP shard server (one manifest");
                println!("per connection, streaming mode)");
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }

    if let Some(addr) = &serve_addr {
        return serve(addr, conns, progress);
    }

    let input = match &manifest_path {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            buf
        }
    };
    let manifest = ShardManifest::from_wire(&input).map_err(|e| format!("bad manifest: {e}"))?;
    eprintln!(
        "campaign_worker: shard {}/{} ({} points, protocol {}, mode {})",
        manifest.shard,
        manifest.shards,
        manifest.entries.len(),
        manifest.protocol,
        manifest.mode,
    );
    if stream {
        // Streaming always goes to stdout: it exists for a live consumer.
        let delay_ms = point_delay_ms();
        return run_manifest_streaming(&manifest, progress, &|chunk: &str| {
            emit_chunk(chunk, delay_ms)
        });
    }
    let report = if progress {
        let delay_ms = point_delay_ms();
        run_manifest_with_progress(&manifest, move |event| emit_progress(&event, delay_ms))?
    } else {
        run_manifest(&manifest)?
    };
    match &out_path {
        Some(path) => std::fs::write(path, report).map_err(|e| format!("writing {path}: {e}"))?,
        None => print!("{report}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("campaign_worker: {message}");
            ExitCode::FAILURE
        }
    }
}
