//! `model_check` — exhaustively explore a registry protocol's adversary
//! space and report a shrunk, replay-verified violation or an
//! exhaustiveness certificate.
//!
//! Drives `ba_check` over any `ba_bench::dist` registry protocol: every
//! corruption choice and per-edge omission fate (optionally delivery
//! reorderings) within the configured horizon is enumerated
//! deterministically. A violation is delta-debug shrunk and re-validated
//! end to end — certificate re-verification plus direct fault-model
//! replay of the choice tape — before it is printed.
//!
//! Usage:
//!
//! ```text
//! model_check [--protocol LABEL] [--n N] [--t T] [--rounds R]
//!             [--inputs LABEL] [--dirs sr|s|r] [--corrupt upto:B|static:I.J]
//!             [--reorder] [--max E] [--threads W] [--seed S]
//!             [--expect-violation | --expect-exhausted]
//! ```
//!
//! `--expect-violation` defaults to the planted-bug `one-round-all-to-all`
//! (n = 4, t = 1, one send-omission round, all-zero inputs) and exits
//! non-zero unless a violation is found; `--expect-exhausted` defaults to
//! `dolev-strong` (n = 4, t = 1, two rounds) and exits non-zero unless the
//! space is fully enumerated with no violation. The CI smokes run exactly
//! those two.

use std::process::ExitCode;

use ba_bench::check::CheckLabel;
use ba_bench::dist::{registry_check, INPUTS, REGISTRY};
use ba_check::CorruptionSpace;
use ba_sim::{CampaignPoint, ProcessId};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Expect {
    Nothing,
    Violation,
    Exhausted,
}

fn parse<T: std::str::FromStr>(flag: &str, raw: String) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("bad {flag} value {raw:?}: {e}"))
}

#[allow(clippy::too_many_lines)]
fn run() -> Result<bool, String> {
    let mut protocol: Option<String> = None;
    let mut n = 4usize;
    let mut t = 1usize;
    let mut rounds: Option<u64> = None;
    let mut inputs = "zeros".to_string();
    let mut dirs: Option<String> = None;
    let mut corrupt: Option<String> = None;
    let mut reorder = false;
    let mut max: Option<u64> = None;
    let mut threads = 0usize;
    let mut seed = 0u64;
    let mut expect = Expect::Nothing;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--protocol" => protocol = Some(value("--protocol")?),
            "--n" => n = parse("--n", value("--n")?)?,
            "--t" => t = parse("--t", value("--t")?)?,
            "--rounds" => rounds = Some(parse("--rounds", value("--rounds")?)?),
            "--inputs" => inputs = value("--inputs")?,
            "--dirs" => dirs = Some(value("--dirs")?),
            "--corrupt" => corrupt = Some(value("--corrupt")?),
            "--reorder" => reorder = true,
            "--max" => max = Some(parse("--max", value("--max")?)?),
            "--threads" => threads = parse("--threads", value("--threads")?)?,
            "--seed" => seed = parse("--seed", value("--seed")?)?,
            "--expect-violation" => expect = Expect::Violation,
            "--expect-exhausted" => expect = Expect::Exhausted,
            "--help" | "-h" => {
                println!(
                    "usage: model_check [--protocol LABEL] [--n N] [--t T] [--rounds R] \
                     [--inputs LABEL] [--dirs sr|s|r] [--corrupt upto:B|static:I.J] \
                     [--reorder] [--max E] [--threads W] [--seed S] \
                     [--expect-violation | --expect-exhausted]"
                );
                println!("protocols: {REGISTRY:?}");
                println!("inputs:    {INPUTS:?}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }

    // Expectation-specific defaults: the planted one-round bug for
    // violations, the robust signed protocol for exhaustion proofs.
    let protocol = protocol.unwrap_or_else(|| {
        match expect {
            Expect::Exhausted => "dolev-strong",
            _ => "one-round-all-to-all",
        }
        .to_string()
    });
    let rounds = rounds.unwrap_or(match expect {
        Expect::Exhausted => 2,
        _ => 1,
    });

    let mut label = CheckLabel::new(rounds).reorder(reorder);
    match dirs.as_deref().unwrap_or("s") {
        "sr" => {}
        "s" => label = label.send_only(),
        "r" => {
            label.send_omissions = false;
            label.receive_omissions = true;
        }
        other => return Err(format!("bad --dirs {other:?} (sr|s|r)")),
    }
    if let Some(spec) = corrupt {
        label = label.corruption(if let Some(b) = spec.strip_prefix("upto:") {
            CorruptionSpace::UpTo(parse("--corrupt", b.to_string())?)
        } else if let Some(ids) = spec.strip_prefix("static:") {
            CorruptionSpace::Static(
                ids.split('.')
                    .filter(|s| !s.is_empty())
                    .map(|s| Ok(ProcessId(parse("--corrupt", s.to_string())?)))
                    .collect::<Result<_, String>>()?,
            )
        } else {
            return Err(format!("bad --corrupt {spec:?} (upto:B|static:I.J)"));
        });
    }
    if let Some(cap) = max {
        label = label.max_executions(cap);
    }

    let point = CampaignPoint::new(n, t)
        .with_adversary(label.render())
        .with_inputs(inputs);
    eprintln!(
        "model_check: {protocol} at n={n} t={t}, space {}",
        point.adversary
    );

    let sweep = registry_check(&point, &protocol, seed, threads, None)?;
    println!(
        "{}: {} ({} states / {} executions, frontier depth {}{})",
        protocol,
        sweep.verdict,
        sweep.states(),
        sweep.executions,
        sweep.max_depth,
        if sweep.complete { "" } else { ", capped" },
    );
    if sweep.refuted {
        println!(
            "  corrupted {:?}, shrunk choice tape {:?} ({} non-default choices), \
             replay-verified",
            sweep.corrupted,
            sweep.choices,
            sweep.key_digits.len(),
        );
    }

    match expect {
        Expect::Nothing => Ok(true),
        Expect::Violation if sweep.refuted => Ok(true),
        Expect::Violation => Err(format!(
            "--expect-violation: space {} held (no violation within {} executions)",
            point.adversary, sweep.executions
        )),
        Expect::Exhausted if !sweep.refuted && sweep.complete => Ok(true),
        Expect::Exhausted => Err(format!(
            "--expect-exhausted: verdict was {:?} (complete: {})",
            sweep.verdict, sweep.complete
        )),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(_) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("model_check: {message}");
            ExitCode::FAILURE
        }
    }
}
