//! Regenerates every figure- and table-shaped experiment of the paper
//! (see EXPERIMENTS.md for the index).
//!
//! Usage:
//!
//! ```text
//! paper-experiments [fig1|fig2|tab1|tab2|thm2|lemma4|thm3|cor1|thm4|thm5|upper|exhaustive|
//!                    adaptive|all]
//!                   [--shards N]
//! ```
//!
//! With no argument, runs `all`. With `--shards N` (N > 1), the Theorem 2
//! falsifier sweeps are distributed over N `campaign_worker` processes via
//! the `ba-dist` coordinator (build the worker first:
//! `cargo build --release -p ba-bench --bin campaign_worker`); results are
//! bit-identical to the in-process sweeps.

use std::collections::BTreeSet;

use ba_bench::{falsifier_sweep, measure_family_complexity};
use ba_core::lowerbound::{
    exhaustive_omission_check, falsify, find_critical_round, merge, ExhaustiveConfig,
    ExhaustiveOutcome, FalsifierConfig, FamilyRunner, Partition, Verdict,
};
use ba_core::reduction::{derive_reduction_inputs, ReductionInputs, WeakFromAgreement};
use ba_core::solvability::solvability;
use ba_core::validity::{
    AnythingGoes, ExternalValidity, IcValidity, IntervalValidity, MajorityValidity, SenderValidity,
    StrongValidity, SystemParams, UnanimityOrDefault, ValidityProperty, WeakValidity,
};
use ba_crypto::Keybook;
use ba_protocols::broken::{
    EchoChain, LeaderEcho, OneRoundAllToAll, OwnProposal, ParanoidEcho, SilentConstant,
};
use ba_protocols::interactive_consistency::authenticated_ic_factory;
use ba_protocols::{DolevStrong, EigConsensus, FloodSet, PhaseKing};
use ba_sim::{Bit, ExecutorConfig, Payload, ProcessId, Protocol, Round, Scenario};

fn header(id: &str, title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{id}  {title}");
    println!("{}", "=".repeat(78));
}

fn main() {
    let mut section: Option<String> = None;
    let mut shards = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--shards needs a number");
            }
            other => section = Some(other.to_string()),
        }
    }
    let arg = section.unwrap_or_else(|| "all".to_string());
    let run_all = arg == "all";
    if run_all || arg == "fig1" {
        fig1();
    }
    if run_all || arg == "fig2" {
        fig2();
    }
    if run_all || arg == "tab1" {
        tab1();
    }
    if run_all || arg == "tab2" {
        tab2();
    }
    if run_all || arg == "thm2" {
        thm2(shards);
    }
    if run_all || arg == "lemma4" {
        lemma4();
    }
    if run_all || arg == "thm3" {
        thm3();
    }
    if run_all || arg == "cor1" {
        cor1();
    }
    if run_all || arg == "thm4" {
        thm4();
    }
    if run_all || arg == "thm5" {
        thm5();
    }
    if run_all || arg == "upper" {
        upper();
    }
    if run_all || arg == "exhaustive" {
        exhaustive();
    }
    if run_all || arg == "adaptive" {
        adaptive();
    }
    println!();
}

/// EXP-ADV — the adaptive fault layer: execution-observing adversaries
/// (adaptive worst-case corruption, mobile corruption, seeded delivery
/// scheduling) swept against the correct protocols via the campaign
/// registry, compared with the fault-free and static-isolation baselines.
fn adaptive() {
    use ba_sim::{Campaign, CampaignPoint};
    header(
        "EXP-ADV",
        "Adaptive adversaries: corruption chosen from the observed execution",
    );
    println!(
        "\nEach row sweeps one protocol × adversary over n = 8..16 (t = 2):\n\
         message complexity is the count of messages sent by correct\n\
         processes — the adaptive worst case mutes the chattiest senders it\n\
         observed in round 1, the mobile adversary walks its corruption\n\
         through the last t processes, and the scheduler reorders delivery\n\
         against a capacity-limited victim. All sweeps run stats-only.\n"
    );
    let adversaries = [
        "none",
        "isolation",
        "adaptive-worst-case",
        "mobile",
        "scheduler",
    ];
    let nts: Vec<(usize, usize)> = (8..=16).step_by(2).map(|n| (n, 2)).collect();
    println!(
        "{:<14} {:<20} {:>10} {:>10} {:>10}",
        "protocol", "adversary", "msgs(max)", "rounds", "undecided"
    );
    for protocol in ["dolev-strong", "phase-king", "flood-set"] {
        for adversary in adversaries {
            let points: Vec<CampaignPoint> =
                Campaign::grid(nts.iter().copied(), &[adversary], &["alternating"])
                    .points()
                    .to_vec();
            let report = ba_bench::dist::scenario_campaign_report(&points, protocol, 11, 0)
                .expect("registry sweep");
            assert_eq!(report.errors().count(), 0, "{}", report.summary());
            let max_complexity = report.max_message_complexity();
            let max_rounds = report.stats().map(|(_, s)| s.rounds).max().unwrap_or(0);
            let undecided: usize = report
                .violations()
                .filter(|(_, v)| v.contains("termination"))
                .count();
            println!(
                "{protocol:<14} {adversary:<20} {max_complexity:>10} {max_rounds:>10} {undecided:>10}"
            );
        }
        println!();
    }
    println!(
        "(Correct protocols keep deciding under every adaptive flavor —\n\
         zero undecided processes — while their correct-sender complexity\n\
         drops: muted victims are charged to the fault set and stop\n\
         counting. Any termination or agreement breakage would surface in\n\
         the violations column via the campaign machinery.)"
    );
}

/// EXP-F1 — Figure 1: isolation anatomy.
fn fig1() {
    header(
        "EXP-F1",
        "Figure 1: behavior divergence under isolation (E_0 vs E_G(R))",
    );
    let (n, t) = (8, 2);
    let partition = Partition::paper_default(n, t);
    let cfg = ExecutorConfig::new(n, t)
        .with_stop_when_quiescent(false)
        .with_max_rounds(10);
    let factory = |_| ParanoidEcho::new();
    let runner = FamilyRunner::new(cfg, &factory, partition.clone());
    let e0 = runner.e0::<ParanoidEcho>(Bit::Zero).unwrap();
    println!("protocol: ParanoidEcho (2-stage echo, default 1); n = {n}, t = {t}");
    println!("R = isolation start round of group B; cells show each group's first");
    println!("round whose *sent* messages differ from E_0 (- = never):\n");
    println!(
        "{:>3} | {:>10} | {:>10} | {:>10}",
        "R", "group B", "group A", "group C"
    );
    println!("{}", "-".repeat(44));
    for r in 1..=3u64 {
        let eb = runner
            .isolated_b::<ParanoidEcho>(Round(r), Bit::Zero)
            .unwrap();
        let first_div = |group: &BTreeSet<ProcessId>| -> String {
            group
                .iter()
                .filter_map(|p| e0.first_send_divergence(&eb, *p))
                .min()
                .map_or("-".to_string(), |r| r.0.to_string())
        };
        println!(
            "{:>3} | {:>10} | {:>10} | {:>10}",
            r,
            first_div(partition.b()),
            first_div(partition.a()),
            first_div(partition.c()),
        );
    }
    println!("\nShape check (paper): B deviates no earlier than R+1, everyone else no");
    println!("earlier than R+2 — the green/red/blue bands of Figure 1.");
}

/// EXP-F2 — Figure 2: the merged execution rows and (for sub-quadratic
/// protocols) the completed contradiction.
fn fig2() {
    header(
        "EXP-F2",
        "Figure 2: merged execution E_B(R+1),C(R) and the Lemma 3/5 endgame",
    );
    let (n, t) = (8, 2);
    let partition = Partition::paper_default(n, t);
    let cfg = ExecutorConfig::new(n, t)
        .with_stop_when_quiescent(false)
        .with_max_rounds(12);

    // Quadratic default-1 protocol: the rows line up, no contradiction.
    println!("-- ParanoidEcho (quadratic): rows agree, no contradiction possible --");
    let factory = |_| ParanoidEcho::new();
    let runner = FamilyRunner::new(cfg, &factory, partition.clone());
    let r = Round(1); // critical round of ParanoidEcho
    let eb = runner
        .isolated_b::<ParanoidEcho>(r.next(), Bit::Zero)
        .unwrap();
    let ec = runner.isolated_c::<ParanoidEcho>(r, Bit::Zero).unwrap();
    let merged = merge(&cfg, factory, &partition, &eb, r.next(), &ec, r, Bit::Zero).unwrap();
    let show = |label: &str, exec: &ba_sim::Execution<Bit, Bit, _>| {
        println!(
            "  {label:<24} A → {:?}  B → {:?}  C → {:?}",
            exec.unanimous_decision(partition.a().iter())
                .map(|b| b.to_string()),
            exec.unanimous_decision(partition.b().iter())
                .map(|b| b.to_string()),
            exec.unanimous_decision(partition.c().iter())
                .map(|b| b.to_string()),
        );
    };
    show("row 1: E_B(R+1)_0", &eb);
    show("row 3: E* (merged)", &merged);
    show("row 5: E_C(R)_0", &ec);
    println!("  B decides in E* as in E_B(R+1)_0, C as in E_C(R)_0 (indistinguishability).");

    // Sub-quadratic protocol: the falsifier completes the contradiction.
    println!("\n-- OwnProposal (0 messages): the contradiction completes --");
    let fcfg = FalsifierConfig::new(n, t);
    match falsify(&fcfg, |_| OwnProposal::new()).unwrap() {
        Verdict::Violation(cert) => {
            println!("  violation: {}", cert.kind);
            for step in &cert.provenance {
                println!("    - {step}");
            }
            cert.verify().unwrap();
            println!("  certificate verified ✓");
        }
        Verdict::Survived(_) => println!("  unexpected survival"),
    }
}

/// EXP-TAB1 — Table 1: the execution families.
fn tab1() {
    header(
        "EXP-TAB1",
        "Table 1: execution families for Dolev-Strong weak consensus",
    );
    let (n, t) = (8, 2);
    let partition = Partition::paper_default(n, t);
    let cfg = ExecutorConfig::new(n, t)
        .with_stop_when_quiescent(false)
        .with_max_rounds(14);
    let factory = DolevStrong::factory(Keybook::new(n), ProcessId(0), Bit::Zero);
    let runner = FamilyRunner::new(cfg, &factory, partition.clone());

    println!(
        "n = {n}, t = {t}; A = {:?}-sized, |B| = |C| = {}\n",
        partition.a().len(),
        partition.b().len()
    );
    println!(
        "{:<14} {:>9} {:>8} {:>8} {:>8} {:>10} {:>7}",
        "execution", "proposals", "dec(A)", "dec(B)", "dec(C)", "messages", "valid"
    );
    println!("{}", "-".repeat(72));
    let show = |label: &str, exec: &ba_sim::Execution<Bit, Bit, _>, proposals: &str| {
        let d = |g: &BTreeSet<ProcessId>| {
            exec.unanimous_decision(g.iter())
                .map_or("mixed".to_string(), |b| b.to_string())
        };
        println!(
            "{:<14} {:>9} {:>8} {:>8} {:>8} {:>10} {:>7}",
            label,
            proposals,
            d(partition.a()),
            d(partition.b()),
            d(partition.c()),
            exec.message_complexity(),
            if exec.validate().is_ok() {
                "✓"
            } else {
                "✗"
            },
        );
    };
    show(
        "E_0",
        &runner.e0::<DolevStrong<Bit>>(Bit::Zero).unwrap(),
        "all 0",
    );
    for k in [1u64, 2, 3] {
        show(
            &format!("E_B({k})_0"),
            &runner
                .isolated_b::<DolevStrong<Bit>>(Round(k), Bit::Zero)
                .unwrap(),
            "all 0",
        );
        show(
            &format!("E_C({k})_0"),
            &runner
                .isolated_c::<DolevStrong<Bit>>(Round(k), Bit::Zero)
                .unwrap(),
            "all 0",
        );
    }
    show(
        "E_C(1)_1",
        &runner
            .isolated_c::<DolevStrong<Bit>>(Round(1), Bit::One)
            .unwrap(),
        "all 1",
    );
    println!("\nEvery family member is a valid omission execution (five guarantees ✓).");
}

/// EXP-TAB2 — Table 2: reduction inputs.
fn tab2() {
    header(
        "EXP-TAB2",
        "Table 2: Algorithm 1 inputs (c0, v'0, c*1, c1, v'1) per problem",
    );
    let (n, t) = (4, 1);
    let cfg = ExecutorConfig::new(n, t);

    fn show<P, F, VP>(cfg: &ExecutorConfig, name: &str, factory: F, vp: &VP)
    where
        P: Protocol,
        F: Fn(ProcessId) -> P,
        VP: ValidityProperty<Input = P::Input, Output = P::Output>,
        P::Input: std::fmt::Debug + std::fmt::Display,
        P::Output: std::fmt::Debug,
    {
        match derive_reduction_inputs(cfg, factory, vp) {
            Ok(inputs) => {
                println!("{name}:");
                println!("  c0 = {:?} → v'0 = {:?}", inputs.c0, inputs.v0);
                println!("  c*1 = {} (v'0 inadmissible)", inputs.c_star);
                println!(
                    "  c1 = {:?} → v'1 = {:?}  (v'1 ≠ v'0 — Lemma 17 ✓)",
                    inputs.c1, inputs.v1
                );
            }
            Err(e) => println!("{name}: {e}"),
        }
    }

    show(
        &cfg,
        "Phase King / strong validity",
        |_| PhaseKing::new(n, t),
        &StrongValidity::binary(),
    );
    show(
        &cfg,
        "EIG / strong validity",
        |_| EigConsensus::new(n, t, Bit::Zero),
        &StrongValidity::binary(),
    );
    let book = Keybook::new(n);
    show(
        &cfg,
        "Dolev-Strong / sender validity",
        DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
        &SenderValidity::new(ProcessId(0), vec![Bit::Zero, Bit::One]),
    );
    show(
        &cfg,
        "Authenticated IC / IC-validity",
        authenticated_ic_factory(book, Bit::Zero),
        &IcValidity::new(vec![Bit::Zero, Bit::One]),
    );
}

/// EXP-T2 — Theorem 2: the falsifier verdict table + the complexity
/// landscape. Each protocol is swept over the `(n, t)` grid **in parallel**
/// by a `ba_sim::Campaign` (see [`falsifier_sweep`]); with `--shards N`,
/// the sweep is distributed over N `campaign_worker` processes instead and
/// reproduces the in-process results exactly.
fn thm2(shards: usize) {
    header(
        "EXP-T2",
        "Theorem 2: falsifier verdicts and message-complexity landscape",
    );
    let worker = if shards > 1 {
        let located = ba_dist::WorkerCommand::locate_checked();
        match &located {
            Ok(w) => println!(
                "(sweeping via {} worker processes: {})\n",
                shards,
                w.program().display()
            ),
            Err(e) => println!("(--shards {shards} requested but {e}; sweeping in-process)\n"),
        }
        located.ok()
    } else {
        None
    };
    // The small grid plus one large-t instance where the paper's floor
    // itself condemns the sub-quadratic protocols: at (96, 88),
    // leader-echo's 2(n-1) = 190 messages sit BELOW t²/32 = 242, so
    // Lemma 1 directly forbids it.
    let grid = [(8usize, 2usize), (12, 4), (16, 8), (96, 88)];

    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>24}",
        "protocol", "(n,t)", "max msgs", "t²/32", "falsifier verdict"
    );
    println!("{}", "-".repeat(84));

    fn rows<P, F>(
        label: &str,
        registry_key: &str,
        sharding: Option<(usize, &ba_dist::WorkerCommand)>,
        grid: &[(usize, usize)],
        factory: F,
    ) where
        P: Protocol<Input = Bit, Output = Bit>,
        P::Msg: Payload,
        F: Fn(ProcessId) -> P + Clone + Sync,
    {
        // The falsifier runs at every grid point concurrently — across
        // worker processes when sharding is on, else on the in-process
        // Campaign pool (identical results either way); the family
        // complexity measurement follows serially per point.
        let distributed = sharding.and_then(|(shards, worker)| {
            ba_bench::dist::distributed_falsifier_sweep(grid, registry_key, shards, worker.clone())
                .map_err(|e| eprintln!("distributed sweep failed ({e}); running in-process"))
                .ok()
        });
        let sweep = distributed.unwrap_or_else(|| {
            let factory = factory.clone();
            falsifier_sweep(grid, move |_point| factory.clone())
        });
        for r in sweep {
            let m = measure_family_complexity(label, r.point.n, r.point.t, factory.clone());
            println!(
                "{:<22} {:>8} {:>12} {:>12} {:>24}",
                label,
                format!("({},{})", r.point.n, r.point.t),
                m.observed_max,
                r.paper_bound,
                r.verdict
            );
        }
        println!();
    }

    let sharding = worker.as_ref().map(|w| (shards, w));
    rows(
        "silent-constant(1)",
        "silent-constant-1",
        sharding,
        &grid,
        |_| SilentConstant::new(Bit::One),
    );
    rows("own-proposal", "own-proposal", sharding, &grid, |_| {
        OwnProposal::new()
    });
    rows(
        "leader-echo",
        "leader-echo",
        sharding,
        &grid,
        |_: ProcessId| LeaderEcho::new(ProcessId(0)),
    );
    // The remaining protocols are too slow at (96, 88); sweep the small grid.
    let small = &grid[..3];
    rows(
        "one-round-all-to-all",
        "one-round-all-to-all",
        sharding,
        small,
        |_| OneRoundAllToAll::new(),
    );
    rows("paranoid-echo", "paranoid-echo", sharding, small, |_| {
        ParanoidEcho::new()
    });
    rows("flood-set (correct)", "flood-set", sharding, small, |_| {
        FloodSet::new()
    });
    for (n, t) in small.iter().copied() {
        let book = Keybook::new(n);
        rows(
            "dolev-strong (correct)",
            "dolev-strong",
            sharding,
            &[(n, t)],
            DolevStrong::factory(book, ProcessId(0), Bit::Zero),
        );
    }
    println!("Shape check (paper): every refuted protocol sits below the quadratic");
    println!("envelope; every survivor's observed complexity ≥ the t²/32 floor. In");
    println!("the (96,88) rows the floor t²/32 = 242 exceeds leader-echo's total");
    println!("message budget — the regime where Lemma 1 itself forces failure.");
}

/// EXP-L4 — Lemma 4: the critical round.
fn lemma4() {
    header(
        "EXP-L4",
        "Lemma 4: critical rounds R (decide 1 in E_B(R)_0, 0 in E_B(R+1)_0)",
    );
    let (n, t) = (8, 2);
    let fcfg = FalsifierConfig::new(n, t);
    println!(
        "{:<22} {:>10} {:>8} {:>8} {:>9}",
        "protocol", "default", "R_max", "R", "flipped"
    );
    println!("{}", "-".repeat(62));
    let show = |label: &str, report: Option<ba_core::lowerbound::CriticalRoundReport>| match report
    {
        Some(r) => println!(
            "{:<22} {:>10} {:>8} {:>8} {:>9}",
            label,
            r.default_bit_canonical.to_string(),
            r.r_max.0,
            r.critical_round.0,
            r.flipped
        ),
        None => println!(
            "{label:<22} {:>10} {:>8} {:>8} {:>9}",
            "-", "-", "none", "-"
        ),
    };
    for stages in 1..=6u64 {
        let report = find_critical_round(&fcfg, move |_| EchoChain::new(stages)).unwrap();
        show(&format!("echo-chain({stages})"), report);
    }
    show(
        "paranoid-echo",
        find_critical_round(&fcfg, |_| ParanoidEcho::new()).unwrap(),
    );
    let book = Keybook::new(n);
    show(
        "dolev-strong",
        find_critical_round(&fcfg, DolevStrong::factory(book, ProcessId(0), Bit::Zero)).unwrap(),
    );
    println!("\nShape check: echo-chain(s) has R = s − 1 (the alarm needs one round to");
    println!("reach group A); sender-driven protocols have no default-bit structure.");
}

/// EXP-T3 — Theorem 3: zero-cost generalization.
fn thm3() {
    header(
        "EXP-T3",
        "Theorem 3: Algorithm 1 adds zero messages (bound transfers)",
    );
    let (n, t) = (7, 2);
    let cfg = ExecutorConfig::new(n, t);
    let inputs =
        derive_reduction_inputs(&cfg, |_| PhaseKing::new(n, t), &StrongValidity::binary()).unwrap();
    println!("wrapping Phase King (strong consensus) into weak consensus; n = {n}, t = {t}\n");
    println!(
        "{:<22} {:>16} {:>16}",
        "execution", "wrapped msgs", "bare msgs"
    );
    println!("{}", "-".repeat(56));
    for bit in Bit::ALL {
        let wrapped = Scenario::config(&cfg)
            .protocol(|_| WeakFromAgreement::new(PhaseKing::new(n, t), inputs.clone()))
            .uniform_input(bit)
            .run()
            .unwrap();
        let bare_proposals = if bit == Bit::Zero {
            &inputs.c0
        } else {
            &inputs.c1
        };
        let bare = Scenario::config(&cfg)
            .protocol(|_| PhaseKing::new(n, t))
            .inputs(bare_proposals.iter().copied())
            .run()
            .unwrap();
        println!(
            "{:<22} {:>16} {:>16}",
            format!("all propose {bit}"),
            wrapped.message_complexity(),
            bare.message_complexity()
        );
        assert_eq!(wrapped.message_complexity(), bare.message_complexity());
    }
    println!("\nIdentical columns ⇒ a sub-quadratic solution to ANY non-trivial problem");
    println!("would give sub-quadratic weak consensus — contradicting Theorem 2.");
}

/// EXP-C1 — Corollary 1: External Validity.
fn cor1() {
    header(
        "EXP-C1",
        "Corollary 1: External-Validity agreement is also quadratic",
    );
    let (n, t) = (13, 4);
    let cfg = ExecutorConfig::new(n, t);
    // Phase King playing the external-validity algorithm: all its decisions
    // satisfy valid(·) (the predicate accepts both bits), and it has two
    // fully correct executions deciding differently.
    let run = |proposals: Vec<Bit>| {
        Scenario::config(&cfg)
            .protocol(|_| PhaseKing::new(n, t))
            .inputs(proposals)
            .run()
            .unwrap()
    };
    let e0 = run(vec![Bit::Zero; n]);
    let e1 = run(vec![Bit::One; n]);
    let ids: Vec<ProcessId> = ProcessId::all(n).collect();
    let v0 = e0.unanimous_decision(ids.iter()).unwrap();
    let v1 = e1.unanimous_decision(ids.iter()).unwrap();
    println!("two fully correct executions decide v'0 = {v0}, v'1 = {v1} (differ ✓)");
    let inputs = ReductionInputs {
        c0: vec![Bit::Zero; n],
        c1: vec![Bit::One; n],
        v0,
        v1,
        c_star: ba_core::validity::InputConfig::full(vec![Bit::One; n]),
    };
    let m = measure_family_complexity("pk-as-external-validity", n, t, move |_| {
        WeakFromAgreement::new(PhaseKing::new(n, t), inputs.clone())
    });
    println!(
        "wrapped into weak consensus: max observed complexity {} ≥ t²/32 = {} ✓",
        m.observed_max, m.paper_bound
    );
    println!("\n(the validity formalism classifies External Validity as trivial —");
    println!(" paper §4.3 — but the two-execution condition restores the bound)");
}

/// EXP-T4 — Theorem 4: the solvability landscape.
fn thm4() {
    header(
        "EXP-T4",
        "Theorem 4: solvability landscape (trivial / CC / auth / unauth)",
    );
    println!(
        "{:<26} {:>7} {:>10} {:>5} {:>6} {:>7}",
        "problem", "(n,t)", "trivial", "CC", "auth", "unauth"
    );
    println!("{}", "-".repeat(68));

    fn row<VP>(vp: &VP, n: usize, t: usize)
    where
        VP: ValidityProperty,
        VP::Output: std::fmt::Debug,
    {
        let report = solvability(vp, &SystemParams::new(n, t));
        println!(
            "{:<26} {:>7} {:>10} {:>5} {:>6} {:>7}",
            vp.name(),
            format!("({n},{t})"),
            if report.trivial_value.is_some() {
                "yes"
            } else {
                "no"
            },
            if report.cc.holds() { "✓" } else { "✗" },
            report.authenticated_solvable,
            report.unauthenticated_solvable,
        );
    }

    for (n, t) in [(4usize, 1usize), (5, 2), (4, 2), (6, 2), (7, 2)] {
        row(&WeakValidity::binary(), n, t);
        row(&StrongValidity::binary(), n, t);
        row(
            &SenderValidity::new(ProcessId(0), vec![Bit::Zero, Bit::One]),
            n,
            t,
        );
        row(&MajorityValidity::new(), n, t);
        row(&UnanimityOrDefault::new(Bit::Zero), n, t);
        row(&IntervalValidity::new(3), n, t);
        row(&ExternalValidity::new(vec![0u8, 1, 2, 3], [1u8, 3]), n, t);
        row(&AnythingGoes::new(), n, t);
        println!();
    }
    println!("Cross-validated in tests/solvability_landscape.rs: every 'auth=true' row");
    println!("is actually constructed (Algorithm 2 over Dolev-Strong IC) and verified");
    println!("under Byzantine faults; every 'CC ✗' row carries a genuine witness.");
}

/// EXP-T5 — Theorem 5: strong consensus boundary.
fn thm5() {
    header(
        "EXP-T5",
        "Theorem 5: strong consensus is authenticated-solvable iff n > 2t",
    );
    println!("CC verdict grid for binary strong consensus ('✓' = satisfiable):\n");
    print!("      ");
    for t in 1..=3usize {
        print!("  t={t}");
    }
    println!();
    for n in 3..=7usize {
        print!("n = {n} ");
        for t in 1..=3usize {
            if t >= n {
                print!("    -");
                continue;
            }
            let report = solvability(&StrongValidity::binary(), &SystemParams::new(n, t));
            let mark = if report.cc.holds() { "✓" } else { "✗" };
            let expected = n > 2 * t;
            assert_eq!(report.cc.holds(), expected, "mismatch at n={n}, t={t}");
            print!("    {mark}");
        }
        println!();
    }
    println!("\nEvery cell matches the n > 2t prediction; the ✗ cells carry the paper's");
    println!("witness (a balanced configuration containing two disjoint unanimous");
    println!("sub-configurations with disjoint admissible sets).");
}

/// EXP-UB — §6 context: the upper-bound protocols.
fn upper() {
    header(
        "EXP-UB",
        "Upper bounds: rounds and messages of the classic protocols",
    );
    println!(
        "{:<28} {:>7} {:>10} {:>12} {:>14}",
        "protocol", "(n,t)", "rounds", "messages", "formula"
    );
    println!("{}", "-".repeat(76));
    for (n, t) in [(5usize, 1usize), (7, 2), (9, 2), (10, 3)] {
        let book = Keybook::new(n);
        let ds = ba_bench::run_fault_free(
            n,
            t,
            DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
            Bit::One,
        );
        println!(
            "{:<28} {:>7} {:>10} {:>12} {:>14}",
            "dolev-strong broadcast",
            format!("({n},{t})"),
            format!("t+1 = {}", t + 1),
            ds.message_complexity(),
            "O(n²)"
        );
        if n > 3 * t {
            let eig =
                ba_bench::run_fault_free(n, t, |_| EigConsensus::new(n, t, Bit::Zero), Bit::One);
            println!(
                "{:<28} {:>7} {:>10} {:>12} {:>14}",
                "EIG strong consensus",
                format!("({n},{t})"),
                format!("t+1 = {}", t + 1),
                eig.message_complexity(),
                format!("(t+1)n(n-1)={}", (t + 1) * n * (n - 1))
            );
            let pk = ba_bench::run_fault_free(n, t, |_| PhaseKing::new(n, t), Bit::One);
            println!(
                "{:<28} {:>7} {:>10} {:>12} {:>14}",
                "phase-king strong consensus",
                format!("({n},{t})"),
                format!("3(t+1) = {}", 3 * (t + 1)),
                pk.message_complexity(),
                format!("(t+1)(2n+1)(n-1)={}", (t + 1) * (2 * n + 1) * (n - 1))
            );
        }
        let fs = ba_bench::run_fault_free(n, t, |_| FloodSet::new(), Bit::One);
        println!(
            "{:<28} {:>7} {:>10} {:>12} {:>14}",
            "flood-set (crash model)",
            format!("({n},{t})"),
            format!("t+1 = {}", t + 1),
            fs.message_complexity(),
            format!("(t+1)n(n-1)={}", (t + 1) * n * (n - 1))
        );
        let ic =
            ba_bench::run_fault_free(n, t, authenticated_ic_factory(book, Bit::Zero), Bit::One);
        println!(
            "{:<28} {:>7} {:>10} {:>12} {:>14}",
            "authenticated IC (n × DS)",
            format!("({n},{t})"),
            format!("t+1 = {}", t + 1),
            ic.message_complexity(),
            "bundled O(n²)"
        );
        println!();
    }
    println!("All protocols sit above the Ω(t²) floor — the gap the paper closes is");
    println!("between these upper bounds and the general lower bound, for EVERY");
    println!("non-trivial agreement problem.");
}

/// EXP-EX — exhaustive single-corruption model checking on tiny instances.
fn exhaustive() {
    header(
        "EXP-EX",
        "Exhaustive model check: every 1-process omission adversary (n = 4, t = 1)",
    );
    let cfg = ExecutorConfig::new(4, 1);
    println!(
        "{:<24} {:>12} {:>14} {:>22}",
        "protocol", "adversaries", "outcome", "minimal violation"
    );
    println!("{}", "-".repeat(76));

    fn row<P, F>(
        label: &str,
        cfg: &ExecutorConfig,
        bounds: &ExhaustiveConfig,
        corrupted: ProcessId,
        factory: F,
    ) where
        P: Protocol<Input = Bit, Output = Bit>,
        F: Fn(ProcessId) -> P,
    {
        let outcome =
            exhaustive_omission_check(cfg, factory, &[Bit::Zero; 4], corrupted, bounds).unwrap();
        match outcome {
            ExhaustiveOutcome::Violation(cert, report) => {
                cert.verify().unwrap();
                let omissions: usize = cert
                    .execution
                    .records
                    .iter()
                    .map(|r| r.all_send_omitted().count() + r.all_receive_omitted().count())
                    .sum();
                println!(
                    "{:<24} {:>12} {:>14} {:>22}",
                    label,
                    report.adversaries,
                    "VIOLATED",
                    format!("{omissions} omission(s)")
                );
            }
            ExhaustiveOutcome::Robust(report) => {
                println!(
                    "{:<24} {:>12} {:>14} {:>22}",
                    label, report.adversaries, "ROBUST", "-"
                );
            }
        }
    }

    let two_rounds = ExhaustiveConfig::new(2);
    row(
        "one-round-all-to-all",
        &cfg,
        &two_rounds,
        ProcessId(3),
        |_| OneRoundAllToAll::new(),
    );
    row("paranoid-echo", &cfg, &two_rounds, ProcessId(3), |_| {
        ParanoidEcho::new()
    });
    // Corrupting a follower cannot hurt the star topology…
    row(
        "leader-echo (follower)",
        &cfg,
        &two_rounds,
        ProcessId(3),
        |_: ProcessId| LeaderEcho::new(ProcessId(0)),
    );
    // …corrupting the leader splits it with one omission.
    row(
        "leader-echo (leader)",
        &cfg,
        &two_rounds,
        ProcessId(0),
        |_: ProcessId| LeaderEcho::new(ProcessId(0)),
    );
    let book = Keybook::new(4);
    row(
        "dolev-strong (correct)",
        &cfg,
        &two_rounds,
        ProcessId(3),
        DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
    );
    row(
        "dolev-strong (sender)",
        &cfg,
        &two_rounds,
        ProcessId(0),
        DolevStrong::factory(book, ProcessId(0), Bit::Zero),
    );

    println!();
    println!("ROBUST here is a proof by enumeration: across every one of the listed");
    println!("adversaries (all send/receive omission patterns of p3 over the first");
    println!("two rounds), no violation exists. VIOLATED rows report the smallest");
    println!("adversary found (masks enumerated in increasing omission count).");
}
