//! `perf_gate` — CI guard for campaign sweep throughput.
//!
//! Validates the schema of a freshly benched `BENCH_campaign.json`, prints
//! the per-sweep delta table (label, baseline pts/s, current pts/s, %Δ,
//! pass/fail), compares every baseline sweep's `points_per_sec` against the
//! committed `BENCH_baseline.json` (fail at >30% regression by default),
//! gates the peak-RSS column against the baseline (fail at >50% growth by
//! default; skipped for labels without a reading), and asserts two
//! hardware-independent ratios within the current log: the stats-mode
//! scenario sweep must stay at least `--min-speedup` (default 2x) faster
//! than the same grid with full traces materialized, and the
//! recorder-instrumented sweep must cost at most `--max-overhead` (default
//! 15%) over the identical bare sweep.
//!
//! Usage:
//!
//! ```text
//! perf_gate [--current FILE] [--baseline FILE] [--tolerance 0.30]
//!           [--min-speedup 2.0] [--max-overhead 0.15] [--max-rss-growth 0.50]
//! ```
//!
//! Exits non-zero with the failing comparisons on stderr. Refresh the
//! baseline by copying a trusted run's `BENCH_campaign.json` over
//! `BENCH_baseline.json` (e.g. after a hardware change).

use std::process::ExitCode;

use ba_bench::perf::{delta_table, gate, overhead_gate, rss_gate, speedup_gate, PerfReport};

const STATS_SWEEP: &str = "scenario-sweep/dolev-strong";
const FULLTRACE_SWEEP: &str = "scenario-sweep-fulltrace/dolev-strong";
const BARE_SWEEP: &str = "stats-sweep-deep/dolev-strong";
const TELEMETRY_SWEEP: &str = "telemetry-overhead/dolev-strong";

fn run() -> Result<Vec<String>, String> {
    let mut current_path = "BENCH_campaign.json".to_string();
    let mut baseline_path = "BENCH_baseline.json".to_string();
    let mut tolerance = 0.30f64;
    let mut min_speedup = 2.0f64;
    // The recorder's cost per round is fixed, so its *relative* overhead
    // grew when broadcast routing made the bare sweep ~40% faster; 15%
    // bounds the recalibrated ratio with room for 1-core CI noise.
    let mut max_overhead = 0.15f64;
    let mut max_rss_growth = 0.50f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--current" => current_path = value("--current")?,
            "--baseline" => baseline_path = value("--baseline")?,
            "--tolerance" => {
                tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
            }
            "--min-speedup" => {
                min_speedup = value("--min-speedup")?
                    .parse()
                    .map_err(|e| format!("bad --min-speedup: {e}"))?;
            }
            "--max-overhead" => {
                max_overhead = value("--max-overhead")?
                    .parse()
                    .map_err(|e| format!("bad --max-overhead: {e}"))?;
            }
            "--max-rss-growth" => {
                max_rss_growth = value("--max-rss-growth")?
                    .parse()
                    .map_err(|e| format!("bad --max-rss-growth: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: perf_gate [--current FILE] [--baseline FILE] \
                     [--tolerance 0.30] [--min-speedup 2.0] [--max-overhead 0.15] \
                     [--max-rss-growth 0.50]"
                );
                return Ok(Vec::new());
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("--tolerance must be in [0, 1), got {tolerance}"));
    }
    if max_overhead < 0.0 {
        return Err(format!("--max-overhead must be >= 0, got {max_overhead}"));
    }
    if max_rss_growth < 0.0 {
        return Err(format!(
            "--max-rss-growth must be >= 0, got {max_rss_growth}"
        ));
    }

    let read = |path: &str| -> Result<PerfReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        PerfReport::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let current = read(&current_path)?;
    let baseline = read(&baseline_path)?;

    print!("{}", delta_table(&current, &baseline, tolerance));
    let mut lines = gate(&current, &baseline, tolerance).map_err(|failures| failures.join("\n"))?;
    lines.extend(
        rss_gate(&current, &baseline, max_rss_growth).map_err(|failures| failures.join("\n"))?,
    );
    lines.push(speedup_gate(
        &current,
        STATS_SWEEP,
        FULLTRACE_SWEEP,
        min_speedup,
    )?);
    lines.push(overhead_gate(
        &current,
        BARE_SWEEP,
        TELEMETRY_SWEEP,
        max_overhead,
    )?);
    Ok(lines)
}

fn main() -> ExitCode {
    match run() {
        Ok(lines) => {
            for line in lines {
                println!("perf_gate: {line}");
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("perf_gate: {message}");
            ExitCode::FAILURE
        }
    }
}
