//! Distributed exhaustive model checking: the check-label codec, the
//! worker-side point runner, and the wire-level merge.
//!
//! A check sweep reuses the campaign-grid machinery by encoding the whole
//! [`CheckSpec`] (minus the instance size, which lives in the point's
//! `(n, t)`) into the point's **adversary label**:
//!
//! ```text
//! check:rounds=1;dirs=s;corrupt=upto:1;reorder=0;max=1048576;slice=0/3
//! ```
//!
//! Sharding a check means planning one grid point per slice — slice `i/k`
//! explores the frontier subtrees with global index ≡ `i` (mod `k`) — so
//! the existing shard planner, transports, retries, and work-stealing all
//! apply unchanged. [`merge_check_points`] recombines the slice outcomes
//! into exactly the unsharded run's [`CheckSweepPoint`], mirroring
//! [`ba_check::merge_outcomes`] at the wire level (the certificate is not
//! shipped: the shrunk choice tape replays to it deterministically via
//! [`ba_check::replay`]).
//!
//! Forged payloads are protocol-typed and therefore not expressible in a
//! label; distributed check sweeps cover the omission + reorder space.
//! In-process callers wanting Byzantine branching use `ba-check` directly.

use ba_check::{
    CheckOutcome, CheckProgress, CheckSpec, CorruptionSpace, ViolationKey, DEFAULT_MAX_EXECUTIONS,
};
use ba_dist::{Decode, Encode, WireError, WireReader};
use ba_sim::{Bit, CampaignPoint, ExecutorConfig, Payload, ProcessId, Protocol};

/// Prefix of a check adversary label.
pub const CHECK_LABEL_PREFIX: &str = "check:";

/// The label-expressible part of a [`CheckSpec`]: everything except the
/// instance size (taken from the grid point) and forged payloads (typed,
/// so in-process only).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckLabel {
    /// Fault horizon in rounds.
    pub rounds: u64,
    /// Branch over send-omissions.
    pub send_omissions: bool,
    /// Branch over receive-omissions.
    pub receive_omissions: bool,
    /// The corruption space: `upto:b` or an explicit `static:` id list.
    pub corruption: CorruptionSpace,
    /// Branch over delivery reorderings.
    pub reorder: bool,
    /// Execution budget cap.
    pub max_executions: u64,
    /// Shard assignment `(index, of)`.
    pub slice: (usize, usize),
}

impl CheckLabel {
    /// A whole-space (slice `0/1`) label with both omission directions
    /// over `rounds` rounds and corruption up to `t` (resolved per point).
    pub fn new(rounds: u64) -> Self {
        CheckLabel {
            rounds,
            send_omissions: true,
            receive_omissions: true,
            corruption: CorruptionSpace::UpTo(usize::MAX),
            reorder: false,
            max_executions: DEFAULT_MAX_EXECUTIONS,
            slice: (0, 1),
        }
    }

    /// Restricts omission branching to send-omissions.
    pub fn send_only(mut self) -> Self {
        self.receive_omissions = false;
        self
    }

    /// Sets the corruption space.
    pub fn corruption(mut self, space: CorruptionSpace) -> Self {
        self.corruption = space;
        self
    }

    /// Enables delivery-reorder branching.
    pub fn reorder(mut self, on: bool) -> Self {
        self.reorder = on;
        self
    }

    /// Sets the execution budget cap.
    pub fn max_executions(mut self, cap: u64) -> Self {
        self.max_executions = cap;
        self
    }

    /// Assigns shard `index` of `of`.
    ///
    /// # Panics
    ///
    /// Panics unless `index < of`.
    pub fn slice(mut self, index: usize, of: usize) -> Self {
        assert!(index < of, "slice index {index} out of {of}");
        self.slice = (index, of);
        self
    }

    /// Renders the label (`check:rounds=…;…`).
    pub fn render(&self) -> String {
        let dirs = match (self.send_omissions, self.receive_omissions) {
            (true, true) => "sr",
            (true, false) => "s",
            (false, true) => "r",
            (false, false) => "none",
        };
        let corrupt = match &self.corruption {
            CorruptionSpace::UpTo(b) if *b == usize::MAX => "upto:t".to_string(),
            CorruptionSpace::UpTo(b) => format!("upto:{b}"),
            CorruptionSpace::Static(set) => {
                let ids: Vec<String> = set.iter().map(|p| p.index().to_string()).collect();
                format!("static:{}", ids.join("."))
            }
        };
        format!(
            "{CHECK_LABEL_PREFIX}rounds={};dirs={dirs};corrupt={corrupt};reorder={};max={};slice={}/{}",
            self.rounds,
            u8::from(self.reorder),
            self.max_executions,
            self.slice.0,
            self.slice.1,
        )
    }

    /// Parses a `check:` label.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for non-`check:` labels and
    /// malformed fields.
    pub fn parse(label: &str) -> Result<Self, String> {
        let body = label
            .strip_prefix(CHECK_LABEL_PREFIX)
            .ok_or_else(|| format!("not a {CHECK_LABEL_PREFIX} label: {label:?}"))?;
        let mut parsed = CheckLabel::new(1);
        for field in body.split(';') {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("malformed check field {field:?}"))?;
            match key {
                "rounds" => {
                    parsed.rounds = value.parse().map_err(|_| format!("bad rounds {value:?}"))?;
                }
                "dirs" => {
                    let (send, recv) = match value {
                        "sr" => (true, true),
                        "s" => (true, false),
                        "r" => (false, true),
                        "none" => (false, false),
                        other => return Err(format!("bad dirs {other:?} (sr|s|r|none)")),
                    };
                    parsed.send_omissions = send;
                    parsed.receive_omissions = recv;
                }
                "corrupt" => {
                    parsed.corruption = if value == "upto:t" {
                        CorruptionSpace::UpTo(usize::MAX)
                    } else if let Some(b) = value.strip_prefix("upto:") {
                        CorruptionSpace::UpTo(
                            b.parse().map_err(|_| format!("bad corrupt bound {b:?}"))?,
                        )
                    } else if let Some(ids) = value.strip_prefix("static:") {
                        let set = ids
                            .split('.')
                            .filter(|s| !s.is_empty())
                            .map(|s| {
                                s.parse()
                                    .map(ProcessId)
                                    .map_err(|_| format!("bad process id {s:?}"))
                            })
                            .collect::<Result<_, String>>()?;
                        CorruptionSpace::Static(set)
                    } else {
                        return Err(format!("bad corrupt {value:?} (upto:B|static:I.J)"));
                    };
                }
                "reorder" => {
                    parsed.reorder = match value {
                        "0" => false,
                        "1" => true,
                        other => return Err(format!("bad reorder {other:?} (0|1)")),
                    };
                }
                "max" => {
                    parsed.max_executions =
                        value.parse().map_err(|_| format!("bad max {value:?}"))?;
                }
                "slice" => {
                    let (index, of) = value
                        .split_once('/')
                        .ok_or_else(|| format!("bad slice {value:?} (I/K)"))?;
                    let index = index.parse().map_err(|_| format!("bad slice {value:?}"))?;
                    let of: usize = of.parse().map_err(|_| format!("bad slice {value:?}"))?;
                    if of == 0 || index >= of {
                        return Err(format!("bad slice {value:?} (need index < of)"));
                    }
                    parsed.slice = (index, of);
                }
                other => return Err(format!("unknown check field {other:?}")),
            }
        }
        Ok(parsed)
    }

    /// Instantiates the [`CheckSpec`] this label denotes at a grid point's
    /// `(n, t)`.
    pub fn to_spec<M: Payload>(&self, n: usize, t: usize) -> CheckSpec<M> {
        let mut spec = CheckSpec::new(ExecutorConfig::new(n, t), self.rounds)
            .reorder(self.reorder)
            .max_executions(self.max_executions)
            .slice(self.slice.0, self.slice.1);
        spec.send_omissions = self.send_omissions;
        spec.receive_omissions = self.receive_omissions;
        spec.corruption = match &self.corruption {
            CorruptionSpace::UpTo(b) => CorruptionSpace::UpTo((*b).min(t)),
            fixed => fixed.clone(),
        };
        spec
    }

    /// The `k` slice labels of this label's space, for planning one grid
    /// point per shard.
    pub fn slices(&self, k: usize) -> Vec<CheckLabel> {
        (0..k.max(1))
            .map(|i| self.clone().slice(i, k.max(1)))
            .collect()
    }
}

/// One check outcome on the wire: everything [`merge_check_points`] needs
/// to reproduce the unsharded verdict, minus the certificate (which the
/// shrunk `choices` tape replays to deterministically).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckSweepPoint {
    /// The grid point (its adversary label is the check label).
    pub point: CampaignPoint,
    /// Whether a weak-consensus violation was found.
    pub refuted: bool,
    /// Human-readable verdict (violation kind, or exhaustiveness).
    pub verdict: String,
    /// Corruption set of the minimal violation (empty when not refuted).
    pub corrupted: Vec<usize>,
    /// Delta-debug shrunk choice tape of the minimal violation.
    pub choices: Vec<u32>,
    /// Discovery-key digits `(rank, choice)` the merge selects by.
    pub key_digits: Vec<(u64, u32)>,
    /// Executions explored by this slice.
    pub executions: u64,
    /// Canonical fingerprints of distinct states (sorted); slices union
    /// these on merge, so merged state counts are exact.
    pub fingerprints: Vec<u64>,
    /// Deepest explored decision tape.
    pub max_depth: u64,
    /// Violating executions encountered before minimization.
    pub violations: u64,
    /// Whether the slice's subspace was fully explored within budget.
    pub complete: bool,
}

impl CheckSweepPoint {
    /// Converts a local [`CheckOutcome`] into its wire point.
    pub fn from_outcome<M: Payload>(point: CampaignPoint, outcome: &CheckOutcome<M>) -> Self {
        let report = outcome.report();
        let (refuted, verdict, corrupted, choices, key_digits) = match outcome.violation() {
            Some(v) => (
                true,
                format!("REFUTED ({})", v.certificate.kind),
                v.corrupted.iter().map(|p| p.index()).collect(),
                v.choices.clone(),
                v.key.digits.clone(),
            ),
            None => (
                false,
                if report.complete {
                    "EXHAUSTED (proof by enumeration)".to_string()
                } else {
                    "NO VIOLATION FOUND (budget capped)".to_string()
                },
                Vec::new(),
                Vec::new(),
                Vec::new(),
            ),
        };
        CheckSweepPoint {
            point,
            refuted,
            verdict,
            corrupted,
            choices,
            key_digits,
            executions: report.executions,
            fingerprints: report.fingerprints.iter().copied().collect(),
            max_depth: report.max_depth as u64,
            violations: report.violations,
            complete: report.complete,
        }
    }

    /// Distinct states this point visited.
    pub fn states(&self) -> u64 {
        self.fingerprints.len() as u64
    }

    /// The merge-selection key of this point's violation, if refuted.
    pub fn key(&self) -> Option<ViolationKey> {
        if !self.refuted {
            return None;
        }
        Some(ViolationKey {
            weight: self.key_digits.len(),
            digits: self.key_digits.clone(),
        })
    }
}

/// Merges slice outcomes into the unsharded run's [`CheckSweepPoint`]:
/// counts add, fingerprints union, completeness ANDs, and the verdict is
/// the key-minimal violation across slices — the wire-level mirror of
/// [`ba_check::merge_outcomes`]. The merged point carries the slice-`0/1`
/// form of the first point's label.
///
/// # Errors
///
/// Returns a message when `points` is empty or a label does not parse.
pub fn merge_check_points(points: &[CheckSweepPoint]) -> Result<CheckSweepPoint, String> {
    let first = points.first().ok_or("nothing to merge")?;
    let label = CheckLabel::parse(&first.point.adversary)?.slice(0, 1);
    let mut merged = CheckSweepPoint {
        point: first.point.clone().with_adversary(label.render()),
        refuted: false,
        verdict: String::new(),
        corrupted: Vec::new(),
        choices: Vec::new(),
        key_digits: Vec::new(),
        executions: 0,
        fingerprints: Vec::new(),
        max_depth: 0,
        violations: 0,
        complete: true,
    };
    let mut states: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut best: Option<(ViolationKey, &CheckSweepPoint)> = None;
    for point in points {
        merged.executions += point.executions;
        merged.violations += point.violations;
        merged.max_depth = merged.max_depth.max(point.max_depth);
        merged.complete &= point.complete;
        states.extend(point.fingerprints.iter().copied());
        if let Some(key) = point.key() {
            let better = best.as_ref().map_or(true, |(k, _)| key < *k);
            if better {
                best = Some((key, point));
            }
        }
    }
    merged.fingerprints = states.into_iter().collect();
    match best {
        Some((key, winner)) => {
            merged.refuted = true;
            merged.verdict = winner.verdict.clone();
            merged.corrupted = winner.corrupted.clone();
            merged.choices = winner.choices.clone();
            merged.key_digits = key.digits;
        }
        None => {
            merged.verdict = if merged.complete {
                "EXHAUSTED (proof by enumeration)".to_string()
            } else {
                "NO VIOLATION FOUND (budget capped)".to_string()
            };
        }
    }
    Ok(merged)
}

/// Runs one check grid point: parses the point's check label, explores
/// the denoted space for the point's `(n, t)`, and summarizes the outcome.
/// The full [`CheckOutcome`] (with certificate) is returned alongside for
/// in-process callers; workers ship only the [`CheckSweepPoint`].
///
/// # Errors
///
/// Returns a message for malformed labels and refused (oversized) spaces;
/// simulator errors also surface as messages, since a check cannot
/// partially fail.
pub fn check_point<P, F>(
    point: &CampaignPoint,
    factory: F,
    proposals: &[Bit],
    threads: usize,
    hook: Option<&(dyn Fn(CheckProgress) + Sync)>,
) -> Result<(CheckSweepPoint, CheckOutcome<P::Msg>), String>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
{
    let label = CheckLabel::parse(&point.adversary)?;
    let spec: CheckSpec<P::Msg> = label.to_spec(point.n, point.t);
    let outcome = ba_check::check_with_progress(&spec, factory, proposals, threads, hook)
        .map_err(|e| format!("check at {point}: {e}"))?;
    Ok((
        CheckSweepPoint::from_outcome(point.clone(), &outcome),
        outcome,
    ))
}

fn join_u64s(values: impl Iterator<Item = u64>) -> String {
    let rendered: Vec<String> = values.map(|v| format!("{v:x}")).collect();
    if rendered.is_empty() {
        "-".to_string()
    } else {
        rendered.join(".")
    }
}

fn split_u64s(raw: &str) -> Result<Vec<u64>, String> {
    if raw == "-" {
        return Ok(Vec::new());
    }
    raw.split('.')
        .map(|v| u64::from_str_radix(v, 16).map_err(|_| format!("bad hex token {v:?}")))
        .collect()
}

impl Encode for CheckSweepPoint {
    fn encode(&self, out: &mut String) {
        out.push_str(&format!(
            "kpoint refuted={} verdict={} corrupted={} choices={} key={} executions={} \
             depth={} violations={} complete={} states={}\n",
            self.refuted,
            ba_dist::wire::escape(&self.verdict),
            join_u64s(self.corrupted.iter().map(|&c| c as u64)),
            join_u64s(self.choices.iter().map(|&c| u64::from(c))),
            if self.key_digits.is_empty() {
                "-".to_string()
            } else {
                self.key_digits
                    .iter()
                    .map(|(rank, choice)| format!("{rank:x}:{choice:x}"))
                    .collect::<Vec<_>>()
                    .join(".")
            },
            self.executions,
            self.max_depth,
            self.violations,
            self.complete,
            join_u64s(self.fingerprints.iter().copied()),
        ));
        self.point.encode(out);
    }
}

impl Decode for CheckSweepPoint {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rec = reader.record("kpoint")?;
        let refuted = rec.parse_field("refuted")?;
        let verdict = rec.text("verdict")?;
        let as_wire = |field: &'static str, err: String| WireError::Field {
            tag: "kpoint".to_string(),
            key: field.to_string(),
            detail: err,
        };
        let corrupted = split_u64s(rec.raw("corrupted")?)
            .map_err(|e| as_wire("corrupted", e))?
            .into_iter()
            .map(|v| v as usize)
            .collect();
        let choices = split_u64s(rec.raw("choices")?)
            .map_err(|e| as_wire("choices", e))?
            .into_iter()
            .map(|v| v as u32)
            .collect();
        let key_raw = rec.raw("key")?;
        let key_digits = if key_raw == "-" {
            Vec::new()
        } else {
            key_raw
                .split('.')
                .map(|pair| {
                    let (rank, choice) = pair
                        .split_once(':')
                        .ok_or_else(|| as_wire("key", format!("bad key digit {pair:?}")))?;
                    let rank = u64::from_str_radix(rank, 16)
                        .map_err(|_| as_wire("key", format!("bad key rank {rank:?}")))?;
                    let choice = u32::from_str_radix(choice, 16)
                        .map_err(|_| as_wire("key", format!("bad key choice {choice:?}")))?;
                    Ok((rank, choice))
                })
                .collect::<Result<_, WireError>>()?
        };
        let executions = rec.parse_field("executions")?;
        let max_depth = rec.parse_field("depth")?;
        let violations = rec.parse_field("violations")?;
        let complete = rec.parse_field("complete")?;
        let fingerprints = split_u64s(rec.raw("states")?).map_err(|e| as_wire("states", e))?;
        let point = CampaignPoint::decode(reader)?;
        Ok(CheckSweepPoint {
            point,
            refuted,
            verdict,
            corrupted,
            choices,
            key_digits,
            executions,
            fingerprints,
            max_depth,
            violations,
            complete,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_protocols::broken::OneRoundAllToAll;

    #[test]
    fn check_labels_round_trip() {
        let labels = [
            CheckLabel::new(1),
            CheckLabel::new(2).send_only().reorder(true),
            CheckLabel::new(3)
                .corruption(CorruptionSpace::UpTo(2))
                .max_executions(512)
                .slice(2, 5),
            CheckLabel::new(1).corruption(CorruptionSpace::Static(
                [ProcessId(0), ProcessId(3)].into_iter().collect(),
            )),
        ];
        for label in labels {
            let rendered = label.render();
            assert!(rendered.starts_with(CHECK_LABEL_PREFIX), "{rendered}");
            assert_eq!(CheckLabel::parse(&rendered), Ok(label), "{rendered}");
        }
    }

    #[test]
    fn malformed_labels_are_rejected_with_context() {
        for bad in [
            "isolation",
            "check:rounds=x",
            "check:dirs=q",
            "check:slice=3/3",
            "check:corrupt=sometimes",
            "check:frogs=2",
        ] {
            let err = CheckLabel::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad}");
        }
    }

    #[test]
    fn check_sweep_points_round_trip_on_the_wire() {
        let point = CampaignPoint::new(4, 1)
            .with_adversary(CheckLabel::new(1).send_only().render())
            .with_inputs("zeros");
        let (sweep, outcome) = check_point(
            &point,
            |_| OneRoundAllToAll::new(),
            &[Bit::Zero; 4],
            1,
            None,
        )
        .unwrap();
        assert!(sweep.refuted, "{}", sweep.verdict);
        assert_eq!(sweep.executions, outcome.report().executions);
        let decoded = CheckSweepPoint::from_wire(&sweep.to_wire()).unwrap();
        assert_eq!(decoded, sweep);

        let robust = CampaignPoint::new(4, 1)
            .with_adversary(CheckLabel::new(1).send_only().render())
            .with_inputs("ones");
        let (sweep, _) = check_point(
            &robust,
            |_| OneRoundAllToAll::new(),
            &[Bit::One; 4],
            1,
            None,
        )
        .unwrap();
        assert!(!sweep.refuted);
        assert!(sweep.complete);
        let decoded = CheckSweepPoint::from_wire(&sweep.to_wire()).unwrap();
        assert_eq!(decoded, sweep);
    }

    #[test]
    fn merged_slices_reproduce_the_unsharded_sweep_point() {
        let base = CheckLabel::new(1).send_only();
        for inputs in [Bit::Zero, Bit::One] {
            let proposals = [inputs; 4];
            let whole_point = CampaignPoint::new(4, 1)
                .with_adversary(base.render())
                .with_inputs("zeros");
            let (whole, _) = check_point(
                &whole_point,
                |_| OneRoundAllToAll::new(),
                &proposals,
                1,
                None,
            )
            .unwrap();
            let slices: Vec<CheckSweepPoint> = base
                .slices(3)
                .into_iter()
                .map(|label| {
                    let point = CampaignPoint::new(4, 1)
                        .with_adversary(label.render())
                        .with_inputs("zeros");
                    check_point(&point, |_| OneRoundAllToAll::new(), &proposals, 2, None)
                        .unwrap()
                        .0
                })
                .collect();
            assert_eq!(merge_check_points(&slices).unwrap(), whole);
        }
    }
}
