//! The worker side of distributed campaign sharding, plus the
//! coordinator-facing sweep entry points.
//!
//! `ba-dist` is deliberately protocol-agnostic: manifests name protocols by
//! **label**, and this module owns the registry that resolves labels into
//! concrete `ba-protocols` factories. Both halves of a distributed sweep run
//! through the *same* functions here — the worker executes
//! [`run_manifest`] on its shard, and the in-process reference paths
//! ([`scenario_campaign_report`], [`ba_bench::falsifier_sweep`](crate::falsifier_sweep))
//! execute the identical per-point computation — which is what makes
//! `coordinator(k shards) == run(1 process)` an equality of values, not an
//! approximation.
//!
//! ## Registry labels
//!
//! Scenario + falsifier protocols: `flood-set`, `dolev-strong`,
//! `leader-echo`, `own-proposal`, `one-round-all-to-all`, `paranoid-echo`,
//! `silent-constant-1`, `phase-king`, and `phase-king-weak` (Phase King cut
//! to `max(t, 1)` phases — deliberately unsafe prey for the adversary
//! search); the phase-king variants require `n > 3t` grids.
//!
//! Adversary labels (scenario mode): `none`, `isolation` (last process
//! isolated from round 2), `crash` (last process crash-stops at round 2),
//! `random-omission` (last process, seeded per-point drop coin-flips),
//! and the adaptive fault-model family — `adaptive-worst-case` (corrupts
//! and mutes the `t` chattiest processes after observing round 1),
//! `mobile` (corruption moves through the last `t` processes, two rounds
//! each), `scheduler` (seeded per-point delivery reordering against a
//! capacity-limited last process).
//! Input labels: `default`/`zeros`, `ones`, `alternating`, `one-hot`,
//! `majority-one` (all `1` except the last process), `random` (seeded
//! per-point).
//!
//! Search-mode manifests ([`ba_dist::ShardMode::Search`]) carry an encoded
//! `ba-search` strategy genome as each point's adversary label
//! (`genome:…`); the worker interprets it with
//! [`ba_search::GenomeModel`] and reports plain `ScenarioStats`, so a
//! coordinator can fan a search population out across shards.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ba_check::{CheckError, CheckProgress, CheckSpec};
use ba_crypto::Keybook;
use ba_dist::{
    CoordEvent, Coordinator, Decode, DistError, Encode, ProgressEvent, ShardManifest, ShardMode,
    ShardReport, SweepSpec, WireError, WireReader, WorkerCommand,
};
use ba_obs::{FieldValue, Recorder};
use ba_protocols::broken::{
    LeaderEcho, OneRoundAllToAll, OwnProposal, ParanoidEcho, SilentConstant,
};
use ba_protocols::{DolevStrong, FloodSet, PhaseKing};
use ba_search::{genome_from_label, GenomeModel};
use ba_sim::{
    Adversary, Bit, Campaign, CampaignPoint, CampaignReport, ProcessId, Protocol,
    RandomOmissionPlan, Round, Scenario, SimRng, TraceMode,
};

use crate::check::{check_point, CheckLabel, CheckSweepPoint};
use crate::{falsify_point_recorded, FalsifierSweepPoint};

/// Labels resolvable by [`run_manifest`] (scenario and falsifier modes
/// alike). `phase-king` additionally requires `n > 3t` at every grid point.
pub const REGISTRY: &[&str] = &[
    "flood-set",
    "dolev-strong",
    "leader-echo",
    "own-proposal",
    "one-round-all-to-all",
    "paranoid-echo",
    "silent-constant-1",
    "phase-king",
    "phase-king-weak",
];

/// Adversary labels interpreted by scenario-mode workers.
pub const ADVERSARIES: &[&str] = &[
    "none",
    "isolation",
    "crash",
    "random-omission",
    "adaptive-worst-case",
    "mobile",
    "scheduler",
];

/// Input-profile labels interpreted by scenario-mode workers.
pub const INPUTS: &[&str] = &[
    "default",
    "zeros",
    "ones",
    "alternating",
    "one-hot",
    "majority-one",
    "random",
];

/// Resolves an input label into the `n` proposals scenario-mode and
/// search-mode workers hand to the processes, using the point seed for the
/// `random` label. Unknown labels fall back to all-zeros, matching
/// [`run_manifest`]'s behavior after validation.
pub fn input_bits(label: &str, n: usize, seed: u64) -> Vec<Bit> {
    match label {
        "ones" => vec![Bit::One; n],
        "alternating" => (0..n).map(|i| Bit::from(i % 2 == 1)).collect(),
        "one-hot" => (0..n).map(|i| Bit::from(i == 0)).collect(),
        "majority-one" => (0..n).map(|i| Bit::from(i + 1 != n)).collect(),
        "random" => {
            let mut rng = SimRng::seed_from_u64(seed ^ 0x1);
            (0..n).map(|_| Bit::from(rng.gen_bool(0.5))).collect()
        }
        // "default" / "zeros".
        _ => vec![Bit::Zero; n],
    }
}

/// Executes one shard manifest and returns the encoded [`ShardReport`] —
/// the entire body of the `campaign_worker` binary.
///
/// # Errors
///
/// Returns a human-readable message for unknown protocol / adversary /
/// input labels (the worker prints it to stderr and exits non-zero).
pub fn run_manifest(manifest: &ShardManifest) -> Result<String, String> {
    run_manifest_recorded(manifest, None)
}

/// [`run_manifest`] streaming one [`ProgressEvent`] per completed point to
/// `on_point` (from the campaign worker threads, as points finish) — the
/// body of `campaign_worker --progress`. Telemetry is observation-only: the
/// returned report is bit-identical to [`run_manifest`]'s.
///
/// # Errors
///
/// As [`run_manifest`].
pub fn run_manifest_with_progress(
    manifest: &ShardManifest,
    on_point: impl Fn(ProgressEvent) + Send + Sync + 'static,
) -> Result<String, String> {
    let recorder = ProgressRecorder {
        shard: manifest.shard,
        shards: manifest.shards,
        total: manifest.entries.len(),
        indices: manifest.entries.iter().map(|e| e.index).collect(),
        done: AtomicUsize::new(0),
        started: Instant::now(),
        on_point,
    };
    run_manifest_recorded(manifest, Some(Arc::new(recorder)))
}

/// [`run_manifest`] with an arbitrary telemetry [`Recorder`] installed on
/// the shard's campaign (e.g. a [`ba_obs::Aggregator`] for end-of-shard
/// summaries, or a [`ba_obs::JsonlRecorder`] for full event streams).
///
/// # Errors
///
/// As [`run_manifest`].
pub fn run_manifest_recorded(
    manifest: &ShardManifest,
    recorder: Option<Arc<dyn Recorder>>,
) -> Result<String, String> {
    let points: Vec<CampaignPoint> = manifest.entries.iter().map(|e| e.point.clone()).collect();
    match manifest.mode {
        ShardMode::Scenarios => {
            let seeds: BTreeMap<CampaignPoint, u64> = manifest
                .entries
                .iter()
                .map(|e| (e.point.clone(), e.seed))
                .collect();
            let report = scenario_report_with(
                &points,
                |point| seeds[point],
                manifest.threads,
                &manifest.protocol,
                TraceMode::Stats,
                recorder,
            )?;
            let shard_report = ShardReport {
                shard: manifest.shard,
                outcomes: manifest
                    .entries
                    .iter()
                    .zip(report.outcomes)
                    .map(|(entry, outcome)| (entry.index, outcome.result))
                    .collect(),
            };
            Ok(shard_report.to_wire())
        }
        ShardMode::Falsifier => {
            let sweep =
                falsifier_report_with(&points, manifest.threads, &manifest.protocol, recorder)?;
            let shard_report = ShardReport {
                shard: manifest.shard,
                outcomes: manifest
                    .entries
                    .iter()
                    .zip(sweep)
                    .map(|(entry, fp)| (entry.index, Ok(fp)))
                    .collect(),
            };
            Ok(shard_report.to_wire())
        }
        ShardMode::Search => {
            let seeds: BTreeMap<CampaignPoint, u64> = manifest
                .entries
                .iter()
                .map(|e| (e.point.clone(), e.seed))
                .collect();
            let report = search_report_with(
                &points,
                |point| seeds[point],
                manifest.threads,
                &manifest.protocol,
                recorder,
            )?;
            let shard_report = ShardReport {
                shard: manifest.shard,
                outcomes: manifest
                    .entries
                    .iter()
                    .zip(report.outcomes)
                    .map(|(entry, outcome)| (entry.index, outcome.result))
                    .collect(),
            };
            Ok(shard_report.to_wire())
        }
        ShardMode::Check => {
            validate_check_labels(&points)?;
            with_registry_factory!(manifest.protocol.as_str(), factory => {
                ShardReport {
                    shard: manifest.shard,
                    outcomes: check_entries(manifest, factory, recorder, None, None)?,
                }
                .to_wire()
            })
        }
    }
}

/// Rejects malformed `check:` adversary labels and check spaces whose
/// corruption enumeration is refused as too large — *before* any work
/// runs, so a worker never half-explores a misconfigured sweep.
fn validate_check_labels(points: &[CampaignPoint]) -> Result<(), String> {
    for point in points {
        let label = CheckLabel::parse(&point.adversary)?;
        let spec: CheckSpec<Bit> = label.to_spec(point.n, point.t);
        spec.corruption_subsets()
            .map_err(|e| format!("check at {point}: {e}"))?;
    }
    Ok(())
}

type CheckOutcomes = Vec<(usize, Result<CheckSweepPoint, ba_sim::SimError>)>;

/// Runs a check-mode shard's entries **sequentially**: each entry is one
/// slice of an exhaustive model-check space (the slice assignment lives in
/// the point's `check:` label), and the explorer parallelizes internally
/// over the shard's thread budget — per-point parallelism on top would
/// oversubscribe without changing any outcome (the explorer is
/// thread-count invariant). Simulator failures surface as that point's
/// `Err` outcome; `on_progress` observes live exploration snapshots.
fn check_entries<P, F, G>(
    manifest: &ShardManifest,
    factory: G,
    recorder: Option<Arc<dyn Recorder>>,
    on_progress: Option<&(dyn Fn(usize, CheckProgress) + Sync)>,
    sink: Option<&StreamSink<'_>>,
) -> Result<CheckOutcomes, String>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
    G: Fn(&CampaignPoint) -> F + Sync,
{
    let mut outcomes = Vec::with_capacity(manifest.entries.len());
    for (local, entry) in manifest.entries.iter().enumerate() {
        let label = CheckLabel::parse(&entry.point.adversary)?;
        let spec: CheckSpec<P::Msg> = label.to_spec(entry.point.n, entry.point.t);
        let proposals = input_bits(&entry.point.inputs, entry.point.n, entry.seed);
        let hook = on_progress.map(|sink| move |p: CheckProgress| sink(local, p));
        let outcome = ba_check::check_with_progress(
            &spec,
            factory(&entry.point),
            &proposals,
            manifest.threads,
            hook.as_ref().map(|h| h as &(dyn Fn(CheckProgress) + Sync)),
        );
        let mut result = match outcome {
            Ok(outcome) => Ok(CheckSweepPoint::from_outcome(entry.point.clone(), &outcome)),
            Err(CheckError::Sim(e)) => Err(e),
            // Caught by eager validation; a late surprise is still fatal.
            Err(refused @ CheckError::SpaceTooLarge { .. }) => {
                return Err(format!("check at {}: {refused}", entry.point))
            }
        };
        let (messages, rounds, ok) = match &result {
            Ok(sweep) => (sweep.executions, sweep.max_depth, true),
            Err(_) => (0, 0, false),
        };
        if let Some(r) = recorder.as_ref() {
            r.event(
                "campaign.point.done",
                &[
                    ("index", FieldValue::U64(local as u64)),
                    ("messages", FieldValue::U64(messages)),
                    ("rounds", FieldValue::U64(rounds)),
                    ("ok", FieldValue::Bool(ok)),
                ],
            );
        }
        if let Some(s) = sink {
            result = s.point(entry.index, result, messages, rounds, ok);
        }
        outcomes.push((entry.index, result));
    }
    Ok(outcomes)
}

/// [`run_manifest`] in **streaming** mode — the body of `campaign_worker
/// --stream` and of the TCP shard server: one checksummed `outcome` wire
/// line per completed point is handed to `emit` *as the point finishes*
/// (from the worker threads), followed by the complete [`ShardReport`].
/// With `progress`, a JSONL [`ProgressEvent`] line follows each outcome.
///
/// The trailing report is bit-identical to [`run_manifest`]'s, and every
/// streamed outcome byte-matches the corresponding report item — streaming
/// is pure redundancy, which is exactly what point-level recovery needs: a
/// worker that dies after k points has already delivered those k outcomes,
/// and the coordinator's dedup-on-merge discards the duplication when the
/// report does arrive.
///
/// Every `emit` chunk is one or more complete `\n`-terminated lines;
/// callers only need to forward chunks verbatim (per-chunk locking makes
/// the interleaving from concurrent worker threads line-atomic).
///
/// # Errors
///
/// As [`run_manifest`]; label validation happens before anything is
/// emitted.
pub fn run_manifest_streaming(
    manifest: &ShardManifest,
    progress: bool,
    emit: &(dyn Fn(&str) + Sync),
) -> Result<(), String> {
    let points: Vec<CampaignPoint> = manifest.entries.iter().map(|e| e.point.clone()).collect();
    match manifest.mode {
        ShardMode::Scenarios => {
            validate_labels(&points)?;
            with_registry_factory!(manifest.protocol.as_str(), factory => {
                stream_scenario_entries(manifest, factory, false, progress, emit)
            })
        }
        ShardMode::Search => {
            validate_search_labels(&points)?;
            with_registry_factory!(manifest.protocol.as_str(), factory => {
                stream_scenario_entries(manifest, factory, true, progress, emit)
            })
        }
        ShardMode::Falsifier => {
            with_registry_factory!(manifest.protocol.as_str(), factory => {
                stream_falsifier_entries(manifest, factory, progress, emit)
            })
        }
        ShardMode::Check => {
            validate_check_labels(&points)?;
            with_registry_factory!(manifest.protocol.as_str(), factory => {
                stream_check_entries(manifest, factory, progress, emit)?
            })
        }
    }
}

/// Runs one in-process exhaustive check for a named [`REGISTRY`] protocol
/// — the `model_check` binary's engine. The point's `check:` adversary
/// label carries the space, its input label resolves through
/// [`input_bits`] (seeded by [`ba_dist::point_seed`] for `random`). A
/// violation is end-to-end validated before it is reported: its
/// certificate must re-verify, and its shrunk choice tape must replay —
/// by direct fault-model interpretation — to the same corruption set,
/// canonical tape, and violating execution.
///
/// # Errors
///
/// Returns a message for unknown protocol labels, malformed check labels,
/// refused spaces, simulator failures, and violations that fail
/// revalidation (an explorer bug).
pub fn registry_check(
    point: &CampaignPoint,
    protocol: &str,
    base_seed: u64,
    threads: usize,
    hook: Option<&(dyn Fn(CheckProgress) + Sync)>,
) -> Result<CheckSweepPoint, String> {
    let proposals = input_bits(
        &point.inputs,
        point.n,
        ba_dist::point_seed(base_seed, point),
    );
    with_registry_factory!(protocol, factory => {
        let (sweep, outcome) = check_point(point, factory(point), &proposals, threads, hook)?;
        if let Some(found) = outcome.violation() {
            found
                .certificate
                .verify()
                .map_err(|e| format!("violation certificate failed to re-verify: {e}"))?;
            let label = CheckLabel::parse(&point.adversary)?;
            let spec = label.to_spec(point.n, point.t);
            let replay = ba_check::replay(&spec, factory(point), &proposals, &found.choices)
                .map_err(|e| format!("violation tape failed to replay: {e}"))?;
            if replay.corrupted != found.corrupted
                || replay.choices != found.choices
                || replay.violation.is_none()
                || replay.execution != found.certificate.execution
            {
                return Err(format!(
                    "replayed tape diverges from the reported violation at {point}"
                ));
            }
        }
        sweep
    })
}

/// The check-mode streaming body: while a slice explores, live
/// [`CoordEvent::Check`] JSONL snapshots flow to `emit` (batched inside
/// the explorer, so the stream stays cheap), and each finished slice emits
/// the usual outcome + progress lines before the trailing report — the
/// states/s + frontier-depth feed `campaign_watch` renders live.
fn stream_check_entries<P, F, G>(
    manifest: &ShardManifest,
    factory: G,
    progress: bool,
    emit: &(dyn Fn(&str) + Sync),
) -> Result<(), String>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
    G: Fn(&CampaignPoint) -> F + Sync,
{
    let sink = StreamSink::new(manifest, progress, emit);
    let started = Instant::now();
    let snapshot = move |_local: usize, p: CheckProgress| {
        let event = CoordEvent::Check {
            shard: manifest.shard,
            shards: manifest.shards,
            states: p.states,
            executions: p.executions,
            depth: p.depth,
            elapsed_nanos: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        };
        emit(&format!("{}\n", event.to_json_line()));
    };
    let outcomes = check_entries(
        manifest,
        &factory,
        None,
        progress
            .then_some(&snapshot)
            .map(|s| s as &(dyn Fn(usize, CheckProgress) + Sync)),
        Some(&sink),
    )?;
    emit(
        &ShardReport {
            shard: manifest.shard,
            outcomes,
        }
        .to_wire(),
    );
    Ok(())
}

/// The shared per-point emission state behind [`run_manifest_streaming`]:
/// encodes one [`ba_dist::PointOutcome`] line (plus the optional progress
/// line) per finished point, counting completions monotonically.
struct StreamSink<'a> {
    emit: &'a (dyn Fn(&str) + Sync),
    shard: usize,
    shards: usize,
    total: usize,
    progress: bool,
    done: AtomicUsize,
    started: Instant,
}

impl<'a> StreamSink<'a> {
    fn new(manifest: &ShardManifest, progress: bool, emit: &'a (dyn Fn(&str) + Sync)) -> Self {
        StreamSink {
            emit,
            shard: manifest.shard,
            shards: manifest.shards,
            total: manifest.entries.len(),
            progress,
            done: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// Emits the point's outcome (and progress) lines and hands the result
    /// back for the trailing report.
    fn point<T: Encode>(
        &self,
        index: usize,
        result: Result<T, ba_sim::SimError>,
        messages: u64,
        rounds: u64,
        ok: bool,
    ) -> Result<T, ba_sim::SimError> {
        let outcome = ba_dist::PointOutcome { index, result };
        let mut chunk = String::new();
        outcome.encode(&mut chunk);
        if self.progress {
            let event = ProgressEvent {
                shard: self.shard,
                shards: self.shards,
                done: self.done.fetch_add(1, Ordering::SeqCst) + 1,
                total: self.total,
                index,
                messages,
                rounds,
                ok,
                elapsed_nanos: u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            };
            chunk.push_str(&event.to_json_line());
            chunk.push('\n');
        }
        (self.emit)(&chunk);
        outcome.result
    }
}

fn stream_scenario_entries<P, F, G>(
    manifest: &ShardManifest,
    factory: G,
    search: bool,
    progress: bool,
    emit: &(dyn Fn(&str) + Sync),
) where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
    G: Fn(&CampaignPoint) -> F + Sync,
{
    let sink = StreamSink::new(manifest, progress, emit);
    let outcomes = ba_sim::par_map(
        manifest.entries.clone(),
        manifest.threads,
        |_local, entry| {
            let scenario = if search {
                search_scenario_for(&entry.point, entry.seed, factory(&entry.point))
            } else {
                scenario_for(&entry.point, entry.seed, factory(&entry.point))
            };
            let result = scenario.trace_mode(TraceMode::Stats).run_report();
            let (messages, rounds, ok) = match &result {
                Ok(stats) => (stats.total_messages, stats.rounds, true),
                Err(_) => (0, 0, false),
            };
            (
                entry.index,
                sink.point(entry.index, result, messages, rounds, ok),
            )
        },
    );
    emit(
        &ShardReport {
            shard: manifest.shard,
            outcomes,
        }
        .to_wire(),
    );
}

fn stream_falsifier_entries<P, F, G>(
    manifest: &ShardManifest,
    factory: G,
    progress: bool,
    emit: &(dyn Fn(&str) + Sync),
) where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
    G: Fn(&CampaignPoint) -> F + Sync,
{
    let sink = StreamSink::new(manifest, progress, emit);
    let outcomes = ba_sim::par_map(
        manifest.entries.clone(),
        manifest.threads,
        |_local, entry| {
            let fp = falsify_point_recorded(&entry.point, factory(&entry.point), None);
            let messages = fp.max_message_complexity;
            (
                entry.index,
                sink.point(entry.index, Ok(fp), messages, 0, true),
            )
        },
    );
    emit(
        &ShardReport {
            shard: manifest.shard,
            outcomes,
        }
        .to_wire(),
    );
}

/// Translates `campaign.point.done` telemetry events (emitted by the
/// campaign runner as each grid point completes, carrying the point's
/// shard-local index) into wire-ready [`ProgressEvent`]s: local index →
/// global manifest index, monotone completion counting, and worker
/// wall-clock stamping. All other telemetry is ignored.
struct ProgressRecorder<F> {
    shard: usize,
    shards: usize,
    total: usize,
    indices: Vec<usize>,
    done: AtomicUsize,
    started: Instant,
    on_point: F,
}

impl<F: Fn(ProgressEvent) + Send + Sync> Recorder for ProgressRecorder<F> {
    fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        if name != "campaign.point.done" {
            return;
        }
        let u64_field = |key: &str| {
            fields.iter().find_map(|(k, v)| match v {
                FieldValue::U64(v) if *k == key => Some(*v),
                _ => None,
            })
        };
        let ok = fields
            .iter()
            .any(|(k, v)| *k == "ok" && matches!(v, FieldValue::Bool(true)));
        let local = u64_field("index").unwrap_or(0) as usize;
        (self.on_point)(ProgressEvent {
            shard: self.shard,
            shards: self.shards,
            done: self.done.fetch_add(1, Ordering::SeqCst) + 1,
            total: self.total,
            index: self.indices.get(local).copied().unwrap_or(local),
            messages: u64_field("messages").unwrap_or(0),
            rounds: u64_field("rounds").unwrap_or(0),
            ok,
            elapsed_nanos: u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        });
    }
}

/// The in-process reference for a scenario sweep: runs the exact per-point
/// computation distributed workers run, on one local `Campaign` pool —
/// stats-only ([`TraceMode::Stats`]), like the workers.
///
/// `coordinator.run_campaign(spec) == scenario_campaign_report(…)` for the
/// same grid, protocol, and base seed — the shard-invariance property.
///
/// # Errors
///
/// As [`run_manifest`], for unknown labels.
pub fn scenario_campaign_report(
    points: &[CampaignPoint],
    protocol: &str,
    base_seed: u64,
    threads: usize,
) -> Result<CampaignReport<Bit>, String> {
    scenario_campaign_report_mode(points, protocol, base_seed, threads, TraceMode::Stats)
}

/// [`scenario_campaign_report`] with a telemetry recorder attached: the
/// Campaign records per-point metrics and threads the recorder into every
/// scenario, whose [`RecordingSink`](ba_sim::RecordingSink) mirrors the
/// engine's routing stream. Observation-only — the returned report is
/// bit-identical to the recorder-less sweep (the
/// `telemetry-overhead/dolev-strong` bench line asserts this at bench
/// scale, and gates the wall-clock cost).
///
/// # Errors
///
/// As [`run_manifest`], for unknown labels.
pub fn scenario_campaign_report_recorded(
    points: &[CampaignPoint],
    protocol: &str,
    base_seed: u64,
    threads: usize,
    recorder: Arc<dyn Recorder>,
) -> Result<CampaignReport<Bit>, String> {
    scenario_report_with(
        points,
        |point| ba_dist::point_seed(base_seed, point),
        threads,
        protocol,
        TraceMode::Stats,
        Some(recorder),
    )
}

/// [`scenario_campaign_report`] with an explicit [`TraceMode`].
///
/// [`TraceMode::Full`] materializes (and validates) every execution before
/// deriving its stats; the sink-equivalence guarantee makes the report
/// value-identical to the stats-only sweep, which the cross-mode tests
/// assert end to end.
///
/// # Errors
///
/// As [`run_manifest`], for unknown labels.
pub fn scenario_campaign_report_mode(
    points: &[CampaignPoint],
    protocol: &str,
    base_seed: u64,
    threads: usize,
    mode: TraceMode,
) -> Result<CampaignReport<Bit>, String> {
    scenario_report_with(
        points,
        |point| ba_dist::point_seed(base_seed, point),
        threads,
        protocol,
        mode,
        None,
    )
}

/// The single label → factory table behind [`REGISTRY`]: binds `$factory`
/// to the label's per-point protocol factory and evaluates `$body` with it
/// (once, in the matching arm — each arm monomorphizes `$body` for its
/// protocol type). Adding a protocol means one new arm here plus its label
/// in [`REGISTRY`]; scenario and falsifier modes pick it up together.
macro_rules! with_registry_factory {
    ($label:expr, $factory:ident => $body:expr) => {
        match $label {
            "flood-set" => {
                let $factory = |_: &CampaignPoint| |_: ProcessId| FloodSet::new();
                Ok($body)
            }
            "dolev-strong" => {
                let $factory = |point: &CampaignPoint| {
                    DolevStrong::factory(Keybook::new(point.n), ProcessId(0), Bit::Zero)
                };
                Ok($body)
            }
            "leader-echo" => {
                let $factory = |_: &CampaignPoint| |_: ProcessId| LeaderEcho::new(ProcessId(0));
                Ok($body)
            }
            "own-proposal" => {
                let $factory = |_: &CampaignPoint| |_: ProcessId| OwnProposal::new();
                Ok($body)
            }
            "one-round-all-to-all" => {
                let $factory = |_: &CampaignPoint| |_: ProcessId| OneRoundAllToAll::new();
                Ok($body)
            }
            "paranoid-echo" => {
                let $factory = |_: &CampaignPoint| |_: ProcessId| ParanoidEcho::new();
                Ok($body)
            }
            "silent-constant-1" => {
                let $factory = |_: &CampaignPoint| |_: ProcessId| SilentConstant::new(Bit::One);
                Ok($body)
            }
            "phase-king" => {
                let $factory = |point: &CampaignPoint| {
                    let (n, t) = (point.n, point.t);
                    move |_: ProcessId| PhaseKing::new(n, t)
                };
                Ok($body)
            }
            "phase-king-weak" => {
                let $factory = |point: &CampaignPoint| {
                    let (n, t) = (point.n, point.t);
                    move |_: ProcessId| PhaseKing::with_phases(n, t, (t as u64).max(1))
                };
                Ok($body)
            }
            other => Err(format!(
                "unknown protocol label {other:?} (known: {REGISTRY:?})"
            )),
        }
    };
}
pub(crate) use with_registry_factory;

fn scenario_report_with<S>(
    points: &[CampaignPoint],
    seed_of: S,
    threads: usize,
    protocol: &str,
    mode: TraceMode,
    recorder: Option<Arc<dyn Recorder>>,
) -> Result<CampaignReport<Bit>, String>
where
    S: Fn(&CampaignPoint) -> u64 + Sync,
{
    validate_labels(points)?;
    with_registry_factory!(protocol, factory => run_points(points, &seed_of, threads, factory, mode, recorder))
}

fn falsifier_report_with(
    points: &[CampaignPoint],
    threads: usize,
    protocol: &str,
    recorder: Option<Arc<dyn Recorder>>,
) -> Result<Vec<FalsifierSweepPoint>, String> {
    with_registry_factory!(protocol, factory => falsify_points(points, threads, factory, recorder))
}

/// The in-process reference for a search-mode population evaluation: each
/// point's adversary label must be an encoded genome ([`genome_label`]),
/// interpreted by [`GenomeModel`] against the registry protocol.
///
/// `coordinator(k shards) == search_campaign_report(…)` for the same grid,
/// protocol, and base seed, exactly as in scenario mode.
///
/// # Errors
///
/// As [`run_manifest`]: unknown protocol / input labels, or a point whose
/// adversary label is not a decodable `genome:` token.
pub fn search_campaign_report(
    points: &[CampaignPoint],
    protocol: &str,
    base_seed: u64,
    threads: usize,
) -> Result<CampaignReport<Bit>, String> {
    search_report_with(
        points,
        |point| ba_dist::point_seed(base_seed, point),
        threads,
        protocol,
        None,
    )
}

fn search_report_with<S>(
    points: &[CampaignPoint],
    seed_of: S,
    threads: usize,
    protocol: &str,
    recorder: Option<Arc<dyn Recorder>>,
) -> Result<CampaignReport<Bit>, String>
where
    S: Fn(&CampaignPoint) -> u64 + Sync,
{
    validate_search_labels(points)?;
    with_registry_factory!(protocol, factory => run_search_points(points, &seed_of, threads, factory, recorder))
}

fn run_search_points<P, F, G, S>(
    points: &[CampaignPoint],
    seed_of: S,
    threads: usize,
    factory: G,
    recorder: Option<Arc<dyn Recorder>>,
) -> CampaignReport<Bit>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
    G: Fn(&CampaignPoint) -> F + Sync,
    S: Fn(&CampaignPoint) -> u64 + Sync,
{
    let mut campaign = Campaign::over(points.to_vec()).trace_mode(TraceMode::Stats);
    if threads > 0 {
        campaign = campaign.threads(threads);
    }
    if let Some(r) = recorder {
        campaign = campaign.recorder(r);
    }
    campaign.run_scenarios(|point| search_scenario_for(point, seed_of(point), factory(point)))
}

/// [`scenario_for`]'s search-mode twin: the adversary label is an encoded
/// genome, interpreted by [`GenomeModel`]. Labels must be validated first.
fn search_scenario_for<P, F>(
    point: &CampaignPoint,
    seed: u64,
    protocol: F,
) -> ba_sim::ProtocolScenario<'static, P, F>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let genome = genome_from_label(&point.adversary)
        .expect("labels validated up front")
        .expect("labels validated up front");
    Scenario::new(point.n, point.t)
        .protocol(protocol)
        .inputs(input_bits(&point.inputs, point.n, seed))
        .adversary(Adversary::model(GenomeModel::new(genome)))
}

fn validate_search_labels(points: &[CampaignPoint]) -> Result<(), String> {
    for point in points {
        match genome_from_label(&point.adversary) {
            Ok(Some(_)) => {}
            Ok(None) => {
                return Err(format!(
                    "search-mode point {point} needs a {:?}-prefixed adversary label",
                    ba_search::GENOME_LABEL_PREFIX
                ))
            }
            Err(err) => {
                return Err(format!("undecodable genome label at {point}: {err}"));
            }
        }
        if !INPUTS.contains(&point.inputs.as_str()) {
            return Err(format!(
                "unknown input label {:?} at {point} (known: {INPUTS:?})",
                point.inputs
            ));
        }
    }
    Ok(())
}

fn validate_labels(points: &[CampaignPoint]) -> Result<(), String> {
    for point in points {
        if !ADVERSARIES.contains(&point.adversary.as_str()) {
            return Err(format!(
                "unknown adversary label {:?} at {point} (known: {ADVERSARIES:?})",
                point.adversary
            ));
        }
        if !INPUTS.contains(&point.inputs.as_str()) {
            return Err(format!(
                "unknown input label {:?} at {point} (known: {INPUTS:?})",
                point.inputs
            ));
        }
    }
    Ok(())
}

fn run_points<P, F, G, S>(
    points: &[CampaignPoint],
    seed_of: S,
    threads: usize,
    factory: G,
    mode: TraceMode,
    recorder: Option<Arc<dyn Recorder>>,
) -> CampaignReport<Bit>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
    G: Fn(&CampaignPoint) -> F + Sync,
    S: Fn(&CampaignPoint) -> u64 + Sync,
{
    let mut campaign = Campaign::over(points.to_vec()).trace_mode(mode);
    if threads > 0 {
        campaign = campaign.threads(threads);
    }
    if let Some(r) = recorder {
        campaign = campaign.recorder(r);
    }
    campaign.run_scenarios(|point| scenario_for(point, seed_of(point), factory(point)))
}

/// Builds the exact scenario a grid point denotes: protocol instance,
/// resolved inputs, and the adversary its label names. Both execution paths
/// — the `Campaign` pool ([`run_points`]) and the streaming per-point path
/// ([`run_manifest_streaming`]) — build through here, which is what keeps
/// streamed outcomes bit-identical to pooled ones.
fn scenario_for<P, F>(
    point: &CampaignPoint,
    seed: u64,
    protocol: F,
) -> ba_sim::ProtocolScenario<'static, P, F>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let n = point.n;
    let t = point.t;
    let last = ProcessId(n.saturating_sub(1));
    let scenario =
        Scenario::new(n, t)
            .protocol(protocol)
            .inputs(input_bits(&point.inputs, n, seed));
    match point.adversary.as_str() {
        "isolation" => scenario.adversary(Adversary::isolation([last], Round(2))),
        "crash" => scenario.adversary(Adversary::crash([(last, Round(2))])),
        "random-omission" => scenario.adversary(Adversary::omission(
            [last],
            RandomOmissionPlan::new([last], 0.25, 0.25, seed ^ 0x2),
        )),
        // The adaptive fault-model family: execution-observing
        // adversaries the closed enum could not express.
        "adaptive-worst-case" => scenario.adversary(Adversary::adaptive_worst_case(t)),
        "mobile" => scenario.adversary(Adversary::mobile(
            (n.saturating_sub(t)..n).map(ProcessId),
            2,
        )),
        "scheduler" => scenario.adversary(Adversary::scheduler(
            last,
            (n.saturating_sub(1)) / 2,
            seed ^ 0x3,
        )),
        // "none" (validated up front).
        _ => scenario,
    }
}

fn falsify_points<P, F, G>(
    points: &[CampaignPoint],
    threads: usize,
    factory: G,
    recorder: Option<Arc<dyn Recorder>>,
) -> Vec<FalsifierSweepPoint>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
    G: Fn(&CampaignPoint) -> F + Sync,
{
    let mut campaign = Campaign::over(points.to_vec());
    if threads > 0 {
        campaign = campaign.threads(threads);
    }
    if let Some(r) = &recorder {
        campaign = campaign.recorder(r.clone());
    }
    campaign
        .map(|point| falsify_point_recorded(point, factory(point), recorder.clone()))
        .into_iter()
        .map(|(_, fp)| fp)
        .collect()
}

/// Runs a scenario sweep distributed over `shards` worker processes and
/// reassembles the exact single-process [`CampaignReport`].
///
/// # Errors
///
/// Any [`DistError`] from spawning, transport, decoding, or merging.
pub fn distributed_scenario_sweep(
    points: &[CampaignPoint],
    protocol: &str,
    base_seed: u64,
    shards: usize,
    worker: WorkerCommand,
) -> Result<CampaignReport<Bit>, DistError> {
    let spec = SweepSpec::scenarios(points.to_vec(), protocol).base_seed(base_seed);
    Coordinator::new(worker, shards).run_campaign(&spec)
}

/// Runs the Theorem 2 falsifier sweep distributed over `shards` worker
/// processes; reproduces [`falsifier_sweep`](crate::falsifier_sweep) over
/// the same `(n, t)` grid exactly.
///
/// # Errors
///
/// Any [`DistError`] from spawning, transport, decoding, or merging.
///
/// # Panics
///
/// Panics if a worker reports a simulator error for a point — mirroring the
/// in-process sweep, which panics on simulator errors (protocol bugs).
pub fn distributed_falsifier_sweep(
    nts: &[(usize, usize)],
    protocol: &str,
    shards: usize,
    worker: WorkerCommand,
) -> Result<Vec<FalsifierSweepPoint>, DistError> {
    let points = crate::falsifier_points(nts);
    let spec = SweepSpec::falsifier(points, protocol);
    let merged = Coordinator::new(worker, shards).run::<FalsifierSweepPoint>(&spec)?;
    Ok(merged
        .into_iter()
        .map(|outcome| outcome.expect("falsifier run"))
        .collect())
}

impl Encode for FalsifierSweepPoint {
    fn encode(&self, out: &mut String) {
        out.push_str(&format!(
            "fpoint refuted={} verdict={} max={} bound={}\n",
            self.refuted,
            ba_dist::wire::escape(&self.verdict),
            self.max_message_complexity,
            self.paper_bound,
        ));
        self.point.encode(out);
    }
}

impl Decode for FalsifierSweepPoint {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rec = reader.record("fpoint")?;
        let refuted = rec.parse_field("refuted")?;
        let verdict = rec.text("verdict")?;
        let max_message_complexity = rec.parse_field("max")?;
        let paper_bound = rec.parse_field("bound")?;
        let point = CampaignPoint::decode(reader)?;
        Ok(FalsifierSweepPoint {
            point,
            refuted,
            verdict,
            max_message_complexity,
            paper_bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_dist::plan_shards;

    fn mixed_grid() -> Vec<CampaignPoint> {
        Campaign::grid(
            [(4, 1), (5, 1), (6, 2)],
            ADVERSARIES,
            &["zeros", "ones", "random"],
        )
        .points()
        .to_vec()
    }

    #[test]
    fn falsifier_sweep_points_round_trip_on_the_wire() {
        let fp = FalsifierSweepPoint {
            point: CampaignPoint::new(8, 2).with_adversary("theorem-2-families"),
            refuted: true,
            verdict: "REFUTED (agreement violation)".into(),
            max_message_complexity: 14,
            paper_bound: 0,
        };
        let decoded = FalsifierSweepPoint::from_wire(&fp.to_wire()).unwrap();
        assert_eq!(decoded, fp);
    }

    #[test]
    fn manifest_execution_matches_the_in_process_reference() {
        let points = mixed_grid();
        let spec = SweepSpec::scenarios(points.clone(), "flood-set").base_seed(0xD15C);
        let reference = scenario_campaign_report(&points, "flood-set", 0xD15C, 1).unwrap();
        // Execute every shard of a 3-way split in this process and merge.
        let reports: Vec<ShardReport<ba_sim::ScenarioStats<Bit>>> = plan_shards(&spec, 3)
            .iter()
            .map(|m| {
                let wire = run_manifest(m).unwrap();
                ShardReport::from_wire(&wire).unwrap()
            })
            .collect();
        let merged = ba_dist::merge_campaign_report(&points, reports).unwrap();
        assert_eq!(merged, reference);
    }

    #[test]
    fn progress_streaming_is_observation_only_and_covers_every_point() {
        use std::sync::Mutex;
        let points = mixed_grid();
        let spec = SweepSpec::scenarios(points.clone(), "flood-set").base_seed(0xD15C);
        let manifest = plan_shards(&spec, 2).remove(1);
        let plain = run_manifest(&manifest).unwrap();
        let seen = Arc::new(Mutex::new(Vec::<ProgressEvent>::new()));
        let sink = seen.clone();
        let streamed =
            run_manifest_with_progress(&manifest, move |e| sink.lock().unwrap().push(e)).unwrap();
        assert_eq!(plain, streamed, "progress must not change the report");

        let events = seen.lock().unwrap();
        assert_eq!(events.len(), manifest.entries.len());
        // Every manifest entry's global index appears exactly once, and the
        // done counter is a permutation of 1..=total.
        let mut indices: Vec<usize> = events.iter().map(|e| e.index).collect();
        indices.sort_unstable();
        let mut expected: Vec<usize> = manifest.entries.iter().map(|e| e.index).collect();
        expected.sort_unstable();
        assert_eq!(indices, expected);
        let mut dones: Vec<usize> = events.iter().map(|e| e.done).collect();
        dones.sort_unstable();
        assert_eq!(dones, (1..=events.len()).collect::<Vec<_>>());
        for e in events.iter() {
            assert_eq!(e.shard, manifest.shard);
            assert_eq!(e.shards, manifest.shards);
            assert_eq!(e.total, manifest.entries.len());
            assert!(e.ok && e.messages > 0, "{e:?}");
        }
    }

    #[test]
    fn search_manifest_execution_matches_the_in_process_reference() {
        use ba_search::{genome_label, GenomeSpace};
        use ba_sim::SimRng;
        // A small genome population over two grid shapes, each point
        // carrying its genome as the adversary label.
        let mut rng = SimRng::seed_from_u64(0x5EA7C4);
        let points: Vec<CampaignPoint> = (0..12)
            .map(|i| {
                let (n, t) = if i % 2 == 0 { (5, 1) } else { (7, 2) };
                let genome = GenomeSpace::new(n, t, 6).random_genome(&mut rng);
                CampaignPoint::new(n, t)
                    .with_adversary(genome_label(&genome))
                    .with_inputs(if i % 3 == 0 { "majority-one" } else { "zeros" })
            })
            .collect();
        let reference = search_campaign_report(&points, "phase-king-weak", 0xF00D, 1).unwrap();
        let spec = SweepSpec::search(points.clone(), "phase-king-weak").base_seed(0xF00D);
        let reports: Vec<ShardReport<ba_sim::ScenarioStats<Bit>>> = plan_shards(&spec, 3)
            .iter()
            .map(|m| {
                let wire = run_manifest(m).unwrap();
                ShardReport::from_wire(&wire).unwrap()
            })
            .collect();
        let merged = ba_dist::merge_campaign_report(&points, reports).unwrap();
        assert_eq!(merged, reference);
    }

    #[test]
    fn search_mode_rejects_non_genome_adversary_labels() {
        let points = vec![CampaignPoint::new(4, 1).with_adversary("crash")];
        let err = search_campaign_report(&points, "flood-set", 0, 1).unwrap_err();
        assert!(err.contains("genome:"), "{err}");
        let garbage = vec![CampaignPoint::new(4, 1).with_adversary("genome:nonsense")];
        let err = search_campaign_report(&garbage, "flood-set", 0, 1).unwrap_err();
        assert!(err.contains("undecodable"), "{err}");
    }

    #[test]
    fn unknown_labels_are_rejected_with_helpful_messages() {
        let bad_protocol = run_manifest(
            &plan_shards(
                &SweepSpec::scenarios(vec![CampaignPoint::new(4, 1)], "no-such-protocol"),
                1,
            )[0],
        );
        assert!(bad_protocol.unwrap_err().contains("no-such-protocol"));

        let bad_adversary = scenario_campaign_report(
            &[CampaignPoint::new(4, 1).with_adversary("meteor-strike")],
            "flood-set",
            0,
            1,
        );
        assert!(bad_adversary.unwrap_err().contains("meteor-strike"));

        let bad_inputs = scenario_campaign_report(
            &[CampaignPoint::new(4, 1).with_inputs("seventeen")],
            "flood-set",
            0,
            1,
        );
        assert!(bad_inputs.unwrap_err().contains("seventeen"));
    }

    #[test]
    fn every_registry_protocol_resolves_in_both_modes() {
        // n = 13, t = 2 satisfies every registry constraint (incl. n > 3t)
        // and t ≥ 2 keeps the falsifier's family construction non-trivial.
        let points = vec![CampaignPoint::new(13, 2)
            .with_adversary("none")
            .with_inputs("ones")];
        for label in REGISTRY {
            let report = scenario_campaign_report(&points, label, 1, 1)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(report.outcomes.len(), 1, "{label}");
            let sweep = falsifier_report_with(&points, 1, label, None).unwrap();
            assert_eq!(sweep.len(), 1, "{label}");
        }
    }

    #[test]
    fn every_adversary_label_resolves_and_respects_the_model() {
        // One point per adversary label, all protocols stats-swept: the
        // adaptive family must execute without model violations (the
        // adaptive/mobile/scheduler adversaries may slow decisions but
        // never break the engine's execution guarantees).
        let points: Vec<CampaignPoint> = ADVERSARIES
            .iter()
            .map(|adv| {
                CampaignPoint::new(7, 2)
                    .with_adversary(*adv)
                    .with_inputs("ones")
            })
            .collect();
        let report = scenario_campaign_report(&points, "dolev-strong", 5, 1).unwrap();
        assert_eq!(report.outcomes.len(), ADVERSARIES.len());
        assert_eq!(report.errors().count(), 0, "{}", report.summary());
        // The adaptive worst case mutes the chattiest processes, so its
        // correct-sender complexity must differ from the fault-free point.
        let complexity = |label: &str| {
            report
                .stats()
                .find(|(p, _)| p.adversary == label)
                .map(|(_, s)| s.message_complexity)
                .unwrap()
        };
        assert!(complexity("adaptive-worst-case") < complexity("none"));
    }

    #[test]
    fn seeded_labels_are_deterministic_and_seed_sensitive() {
        let points: Vec<CampaignPoint> = (6..12)
            .map(|n| {
                CampaignPoint::new(n, 1)
                    .with_adversary("random-omission")
                    .with_inputs("random")
            })
            .collect();
        let a = scenario_campaign_report(&points, "flood-set", 7, 1).unwrap();
        let b = scenario_campaign_report(&points, "flood-set", 7, 1).unwrap();
        assert_eq!(a, b, "same base seed must reproduce exactly");
        // Different base seed → different per-point seeds, hence different
        // coin flips; across six points the aggregate stats diverge.
        for (p, q) in points.iter().zip(&points) {
            assert_eq!(ba_dist::point_seed(7, p), ba_dist::point_seed(7, q));
        }
        assert_ne!(
            ba_dist::point_seed(7, &points[0]),
            ba_dist::point_seed(8, &points[0])
        );
        let c = scenario_campaign_report(&points, "flood-set", 8, 1).unwrap();
        assert_ne!(a, c, "different base seeds should diverge");
    }
}
