//! A tiny wall-clock benchmarking harness.
//!
//! The workspace builds with zero external dependencies, so the benches use
//! this instead of criterion: warm up, run a fixed number of timed
//! iterations, and print min/mean/max per iteration. Invoke with
//! `cargo bench -p ba-bench` (the bench targets set `harness = false`).
//!
//! Campaign-shaped benches additionally record throughput into a
//! machine-readable [`PerfLog`] (`BENCH_campaign.json`), so CI can track
//! the sweep-performance trajectory across commits.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-bench iteration counts.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Untimed warm-up iterations.
    pub warmup_iters: u32,
    /// Timed iterations.
    pub iters: u32,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup_iters: 3,
            iters: 10,
        }
    }
}

/// A named group of benchmarks, printed as an aligned table.
pub struct BenchGroup {
    name: String,
    config: BenchConfig,
}

impl BenchGroup {
    /// Starts a group with the default iteration counts.
    pub fn new(name: &str) -> Self {
        Self::with_config(name, BenchConfig::default())
    }

    /// Starts a group with explicit iteration counts.
    pub fn with_config(name: &str, config: BenchConfig) -> Self {
        println!("\n== {name} ==");
        println!(
            "{:<44} {:>12} {:>12} {:>12}",
            "benchmark", "min", "mean", "max"
        );
        BenchGroup {
            name: name.to_string(),
            config,
        }
    }

    /// The group's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Times `f` and prints one row. The closure's return value is passed
    /// through [`black_box`] so the work is not optimized away.
    pub fn bench<R>(&self, label: &str, mut f: impl FnMut() -> R) {
        for _ in 0..self.config.warmup_iters {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(self.config.iters as usize);
        for _ in 0..self.config.iters {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed());
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        println!(
            "{:<44} {:>12} {:>12} {:>12}",
            label,
            format_duration(min),
            format_duration(mean),
            format_duration(max)
        );
    }
}

/// The process's peak resident set size ("VmHWM") in bytes, read from
/// `/proc/self/status`. Best-effort: returns `0` where the file (or the
/// field) is unavailable, e.g. off Linux. The kernel's high-water mark is
/// monotone over the process lifetime, so per-sweep readings record "peak
/// RSS observed by the end of this sweep" — a later sweep can only report
/// an equal or larger value.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

/// One timed campaign sweep: how many grid points it covered, how many
/// messages the executions carried, and how long it took.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepPerf {
    /// Sweep label (protocol / experiment name).
    pub label: String,
    /// Number of grid points swept.
    pub points: usize,
    /// Total messages across all executions of the sweep.
    pub total_messages: u64,
    /// Wall-clock time of the sweep.
    pub elapsed: Duration,
    /// Peak RSS in bytes observed by the end of the sweep (see
    /// [`peak_rss_bytes`]; `0` when unavailable).
    pub peak_rss_bytes: u64,
}

impl SweepPerf {
    /// Grid points swept per second of wall-clock; `0.0` when the elapsed
    /// time was too small to measure (keeps the JSON rendering finite —
    /// JSON has no `inf`).
    pub fn points_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.points as f64 / secs
        } else {
            0.0
        }
    }
}

/// A machine-readable log of campaign sweep throughput, written as
/// `BENCH_campaign.json` (hand-rolled JSON; the workspace has no serde).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct PerfLog {
    sweeps: Vec<SweepPerf>,
}

impl PerfLog {
    /// The canonical output filename.
    pub const FILENAME: &'static str = "BENCH_campaign.json";

    /// An empty log.
    pub fn new() -> Self {
        PerfLog::default()
    }

    fn record(&mut self, label: &str, points: usize, total_messages: u64, elapsed: Duration) {
        self.sweeps.push(SweepPerf {
            label: label.to_string(),
            points,
            total_messages,
            elapsed,
            peak_rss_bytes: peak_rss_bytes(),
        });
    }

    /// Times `sweep`, which returns `(points, total_messages, value)`,
    /// records a [`SweepPerf`] row, and passes the value through.
    pub fn time<R>(&mut self, label: &str, sweep: impl FnOnce() -> (usize, u64, R)) -> R {
        let start = Instant::now();
        let (points, total_messages, value) = sweep();
        let elapsed = start.elapsed();
        self.record(label, points, total_messages, elapsed);
        value
    }

    /// Like [`PerfLog::time`], but runs the sweep `reps` times (plus one
    /// untimed warm-up) and records the **best** elapsed time. Millisecond
    /// sweeps are at the mercy of scheduler noise on shared CI runners; the
    /// minimum over a few repetitions is the stable throughput estimate the
    /// regression gate compares.
    ///
    /// # Panics
    ///
    /// Panics if `reps` is zero.
    pub fn time_best<R>(
        &mut self,
        label: &str,
        reps: u32,
        mut sweep: impl FnMut() -> (usize, u64, R),
    ) -> R {
        assert!(reps > 0, "time_best needs at least one repetition");
        let _ = std::hint::black_box(sweep());
        let mut best: Option<(Duration, (usize, u64, R))> = None;
        for _ in 0..reps {
            let start = Instant::now();
            let outcome = sweep();
            let elapsed = start.elapsed();
            match &best {
                Some((b, _)) if elapsed >= *b => {}
                _ => best = Some((elapsed, outcome)),
            }
        }
        let (elapsed, (points, total_messages, value)) = best.expect("reps > 0");
        self.record(label, points, total_messages, elapsed);
        value
    }

    /// The recorded sweeps.
    pub fn sweeps(&self) -> &[SweepPerf] {
        &self.sweeps
    }

    /// Renders the log as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"ba-bench/campaign-perf/v1\",\n");
        let total_points: usize = self.sweeps.iter().map(|s| s.points).sum();
        let total_secs: f64 = self.sweeps.iter().map(|s| s.elapsed.as_secs_f64()).sum();
        let aggregate_pps = if total_secs > 0.0 {
            total_points as f64 / total_secs
        } else {
            0.0
        };
        out.push_str(&format!(
            "  \"total_points\": {total_points},\n  \"points_per_sec\": {aggregate_pps:.3},\n"
        ));
        out.push_str("  \"sweeps\": [\n");
        for (i, sweep) in self.sweeps.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"points\": {}, \"total_messages\": {}, \
                 \"elapsed_secs\": {:.6}, \"points_per_sec\": {:.3}, \
                 \"peak_rss_bytes\": {}}}{}\n",
                json_escape(&sweep.label),
                sweep.points,
                sweep.total_messages,
                sweep.elapsed.as_secs_f64(),
                sweep.points_per_sec(),
                sweep.peak_rss_bytes,
                if i + 1 < self.sweeps.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON document to `path` and prints where it went.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json())?;
        println!("\nwrote {} ({} sweeps)", path.display(), self.sweeps.len());
        Ok(())
    }
}

fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(format_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn perf_log_records_and_renders_json() {
        let mut log = PerfLog::new();
        let value = log.time("dolev-strong \"grid\"", || (8usize, 1234u64, 42));
        assert_eq!(value, 42);
        log.time("flood-set", || (4usize, 99u64, ()));
        assert_eq!(log.sweeps().len(), 2);
        assert!(log.sweeps()[0].points_per_sec().is_finite());
        assert!(log.sweeps()[0].points_per_sec() >= 0.0);
        let json = log.to_json();
        assert!(json.contains("\"schema\": \"ba-bench/campaign-perf/v1\""));
        assert!(json.contains("\"total_points\": 12"));
        assert!(json.contains("dolev-strong \\\"grid\\\""), "{json}");
        assert!(json.contains("\"total_messages\": 1234"));
        assert!(json.contains("\"peak_rss_bytes\": "));
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes() > 0, "Linux exposes VmHWM");
        }
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn zero_elapsed_sweeps_still_render_finite_json() {
        let mut log = PerfLog::new();
        log.sweeps.push(SweepPerf {
            label: "instant".into(),
            points: 5,
            total_messages: 1,
            elapsed: Duration::ZERO,
            peak_rss_bytes: 0,
        });
        assert_eq!(log.sweeps()[0].points_per_sec(), 0.0);
        let json = log.to_json();
        assert!(!json.contains("inf"), "{json}");
        assert!(json.contains("\"points_per_sec\": 0.000"), "{json}");
    }

    #[test]
    fn json_escape_handles_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn bench_runs_the_closure() {
        let group = BenchGroup::with_config(
            "test",
            BenchConfig {
                warmup_iters: 1,
                iters: 2,
            },
        );
        let mut calls = 0u32;
        group.bench("counter", || calls += 1);
        assert_eq!(calls, 3);
        assert_eq!(group.name(), "test");
    }
}
