//! A tiny wall-clock benchmarking harness.
//!
//! The workspace builds with zero external dependencies, so the benches use
//! this instead of criterion: warm up, run a fixed number of timed
//! iterations, and print min/mean/max per iteration. Invoke with
//! `cargo bench -p ba-bench` (the bench targets set `harness = false`).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-bench iteration counts.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Untimed warm-up iterations.
    pub warmup_iters: u32,
    /// Timed iterations.
    pub iters: u32,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup_iters: 3,
            iters: 10,
        }
    }
}

/// A named group of benchmarks, printed as an aligned table.
pub struct BenchGroup {
    name: String,
    config: BenchConfig,
}

impl BenchGroup {
    /// Starts a group with the default iteration counts.
    pub fn new(name: &str) -> Self {
        Self::with_config(name, BenchConfig::default())
    }

    /// Starts a group with explicit iteration counts.
    pub fn with_config(name: &str, config: BenchConfig) -> Self {
        println!("\n== {name} ==");
        println!(
            "{:<44} {:>12} {:>12} {:>12}",
            "benchmark", "min", "mean", "max"
        );
        BenchGroup {
            name: name.to_string(),
            config,
        }
    }

    /// The group's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Times `f` and prints one row. The closure's return value is passed
    /// through [`black_box`] so the work is not optimized away.
    pub fn bench<R>(&self, label: &str, mut f: impl FnMut() -> R) {
        for _ in 0..self.config.warmup_iters {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(self.config.iters as usize);
        for _ in 0..self.config.iters {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed());
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        println!(
            "{:<44} {:>12} {:>12} {:>12}",
            label,
            format_duration(min),
            format_duration(mean),
            format_duration(max)
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(format_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn bench_runs_the_closure() {
        let group = BenchGroup::with_config(
            "test",
            BenchConfig {
                warmup_iters: 1,
                iters: 2,
            },
        );
        let mut calls = 0u32;
        group.bench("counter", || calls += 1);
        assert_eq!(calls, 3);
        assert_eq!(group.name(), "test");
    }
}
