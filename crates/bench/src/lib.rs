//! Shared measurement helpers for the benches and the `paper-experiments`
//! binary: Campaign-driven sweeps plus a dependency-free timing harness
//! (the workspace builds offline, so there is no criterion).

use ba_core::lowerbound::{falsify, FalsifierConfig, FamilyRunner, Partition, Verdict};
use ba_sim::{
    Bit, Campaign, CampaignPoint, ExecutorConfig, Payload, ProcessId, Protocol, Round, Scenario,
};

pub mod check;
pub mod dist;
pub mod harness;
pub mod perf;
pub mod search;

/// A labeled measurement of one protocol's observed message complexity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ComplexityMeasurement {
    /// Protocol label.
    pub protocol: String,
    /// System size.
    pub n: usize,
    /// Fault budget.
    pub t: usize,
    /// The maximum message complexity across the exercised executions.
    pub observed_max: u64,
    /// The paper's `⌊t²/32⌋` floor.
    pub paper_bound: u64,
    /// Number of executions exercised.
    pub executions: usize,
}

impl ComplexityMeasurement {
    /// `true` iff the observation is consistent with Theorem 2 (only
    /// meaningful for *correct* weak-consensus protocols).
    pub fn consistent_with_bound(&self) -> bool {
        self.observed_max >= self.paper_bound
    }
}

/// Exercises a weak-consensus protocol across the Theorem 2 execution
/// families (fault-free ×2, `E_B(k)` and `E_C(k)` sweeps) and reports the
/// maximum observed message complexity.
///
/// This is a *lower estimate* of the worst case, which suffices for the
/// bound-shape experiments: correct protocols land above `t²/32`, the
/// broken sub-quadratic ones far below.
///
/// # Panics
///
/// Panics on simulator errors (protocol bugs).
pub fn measure_family_complexity<P, F>(
    label: &str,
    n: usize,
    t: usize,
    factory: F,
) -> ComplexityMeasurement
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let cfg = ExecutorConfig::new(n, t);
    let mut max = 0u64;
    let mut executions = 0usize;
    let mut observe = |c: u64| {
        max = max.max(c);
        executions += 1;
    };

    for bit in Bit::ALL {
        let exec = Scenario::config(&cfg)
            .protocol(&factory)
            .uniform_input(bit)
            .run()
            .expect("fault-free run");
        observe(exec.message_complexity());
    }
    if t >= 2 {
        let partition = Partition::paper_default(n, t);
        let runner = FamilyRunner::new(cfg, &factory, partition);
        for k in 1..=4u64 {
            for bit in Bit::ALL {
                let eb = runner.isolated_b::<P>(Round(k), bit).expect("family run");
                observe(eb.message_complexity());
                let ec = runner.isolated_c::<P>(Round(k), bit).expect("family run");
                observe(ec.message_complexity());
            }
        }
    }
    ComplexityMeasurement {
        protocol: label.to_string(),
        n,
        t,
        observed_max: max,
        paper_bound: (t as u64 * t as u64) / 32,
        executions,
    }
}

/// Runs one fault-free execution and returns it (bench helper).
///
/// # Panics
///
/// Panics on simulator errors.
pub fn run_fault_free<P, F>(
    n: usize,
    t: usize,
    factory: F,
    proposal: Bit,
) -> ba_sim::Execution<Bit, P::Output, P::Msg>
where
    P: Protocol<Input = Bit>,
    P::Msg: Payload,
    F: Fn(ProcessId) -> P,
{
    Scenario::new(n, t)
        .protocol(factory)
        .uniform_input(proposal)
        .run()
        .expect("fault-free run")
}

/// One grid point's result of a parallel falsifier sweep.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FalsifierSweepPoint {
    /// The swept grid point.
    pub point: CampaignPoint,
    /// `true` iff the falsifier produced a verified violation certificate.
    pub refuted: bool,
    /// The falsifier's one-line verdict.
    pub verdict: String,
    /// The largest message complexity the falsifier observed.
    pub max_message_complexity: u64,
    /// The paper's `⌊t²/32⌋` floor at this point.
    pub paper_bound: u64,
}

/// The canonical falsifier-sweep grid over `(n, t)` points: one labeled
/// [`CampaignPoint`] per pair. Both the in-process [`falsifier_sweep`] and
/// the distributed [`dist::distributed_falsifier_sweep`] sweep exactly these
/// points, which is what makes their results comparable value-for-value.
pub(crate) fn falsifier_points(nts: &[(usize, usize)]) -> Vec<CampaignPoint> {
    Campaign::grid(nts.iter().copied(), &["theorem-2-families"], &["uniform"])
        .points()
        .to_vec()
}

/// Runs the Theorem 2 falsifier at one grid point — the unit of work shared
/// by [`falsifier_sweep`] and the `campaign_worker` shard executor.
///
/// # Panics
///
/// Panics on simulator errors (protocol bugs).
pub(crate) fn falsify_point<P, F>(point: &CampaignPoint, factory: F) -> FalsifierSweepPoint
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
{
    falsify_point_recorded(point, factory, None)
}

/// [`falsify_point`] with the falsifier's own orientation-scan telemetry
/// wired to `recorder` (the same sink the surrounding Campaign records
/// into, when sweeps run with one).
pub(crate) fn falsify_point_recorded<P, F>(
    point: &CampaignPoint,
    factory: F,
    recorder: Option<std::sync::Arc<dyn ba_obs::Recorder>>,
) -> FalsifierSweepPoint
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
{
    let mut cfg = FalsifierConfig::new(point.n, point.t);
    if let Some(r) = recorder {
        cfg = cfg.with_recorder(r);
    }
    let verdict = falsify(&cfg, factory).expect("falsifier run");
    match verdict {
        Verdict::Violation(cert) => {
            cert.verify().expect("certificate must re-verify");
            FalsifierSweepPoint {
                point: point.clone(),
                refuted: true,
                verdict: format!("REFUTED ({})", cert.kind),
                max_message_complexity: cert.execution.message_complexity(),
                paper_bound: cfg.paper_bound(),
            }
        }
        Verdict::Survived(report) => FalsifierSweepPoint {
            point: point.clone(),
            refuted: false,
            verdict: "survived".into(),
            max_message_complexity: report.max_message_complexity,
            paper_bound: cfg.paper_bound(),
        },
    }
}

/// Runs the Theorem 2 falsifier over a grid of `(n, t)` points **in
/// parallel** via [`Campaign::map`] — the batchable sweep interface the
/// old per-point loops in `paper_experiments` hand-rolled. For sweeps too
/// large for one process, [`dist::distributed_falsifier_sweep`] shards the
/// same grid across `campaign_worker` processes and reproduces this
/// function's results exactly.
///
/// `factory` builds, per grid point, the per-process protocol factory.
///
/// # Panics
///
/// Panics on simulator errors (protocol bugs).
pub fn falsifier_sweep<P, F, G>(nts: &[(usize, usize)], factory: G) -> Vec<FalsifierSweepPoint>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
    G: Fn(&CampaignPoint) -> F + Sync,
{
    Campaign::over(falsifier_points(nts))
        .map(|point| falsify_point(point, factory(point)))
        .into_iter()
        .map(|(_, r)| r)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_crypto::Keybook;
    use ba_protocols::broken::LeaderEcho;
    use ba_protocols::DolevStrong;

    #[test]
    fn family_complexity_orders_protocols_correctly() {
        let (n, t) = (12, 4);
        let cheap =
            measure_family_complexity("leader-echo", n, t, |_| LeaderEcho::new(ProcessId(0)));
        let quadratic = measure_family_complexity(
            "dolev-strong",
            n,
            t,
            DolevStrong::factory(Keybook::new(n), ProcessId(0), Bit::Zero),
        );
        assert!(cheap.observed_max < quadratic.observed_max);
        assert!(quadratic.consistent_with_bound());
        assert!(cheap.executions >= 2);
    }

    #[test]
    fn fault_free_runner_works() {
        let exec = run_fault_free(
            5,
            2,
            DolevStrong::factory(Keybook::new(5), ProcessId(0), Bit::Zero),
            Bit::One,
        );
        assert!(exec.all_correct_decided(Bit::One));
    }

    #[test]
    fn falsifier_sweep_refutes_leader_echo_on_a_grid() {
        // A Campaign grid sweep of the falsifier over four (n, t) points,
        // executed in parallel.
        let points = [(8usize, 2usize), (10, 2), (12, 4), (16, 8)];
        let results = falsifier_sweep(&points, |_point| {
            |_: ProcessId| LeaderEcho::new(ProcessId(0))
        });
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(r.refuted, "leader-echo must be refuted at {}", r.point);
            assert!(r.verdict.starts_with("REFUTED"));
        }
    }
}
