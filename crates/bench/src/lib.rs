//! Shared measurement helpers for the benches and the `paper-experiments`
//! binary.

use std::collections::BTreeSet;

use ba_core::lowerbound::{FamilyRunner, Partition};
use ba_sim::{
    run_omission, Bit, ExecutorConfig, NoFaults, Payload, ProcessId, Protocol, Round,
};

/// A labeled measurement of one protocol's observed message complexity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ComplexityMeasurement {
    /// Protocol label.
    pub protocol: String,
    /// System size.
    pub n: usize,
    /// Fault budget.
    pub t: usize,
    /// The maximum message complexity across the exercised executions.
    pub observed_max: u64,
    /// The paper's `⌊t²/32⌋` floor.
    pub paper_bound: u64,
    /// Number of executions exercised.
    pub executions: usize,
}

impl ComplexityMeasurement {
    /// `true` iff the observation is consistent with Theorem 2 (only
    /// meaningful for *correct* weak-consensus protocols).
    pub fn consistent_with_bound(&self) -> bool {
        self.observed_max >= self.paper_bound
    }
}

/// Exercises a weak-consensus protocol across the Theorem 2 execution
/// families (fault-free ×2, `E_B(k)` and `E_C(k)` sweeps) and reports the
/// maximum observed message complexity.
///
/// This is a *lower estimate* of the worst case, which suffices for the
/// bound-shape experiments: correct protocols land above `t²/32`, the
/// broken sub-quadratic ones far below.
///
/// # Panics
///
/// Panics on simulator errors (protocol bugs).
pub fn measure_family_complexity<P, F>(
    label: &str,
    n: usize,
    t: usize,
    factory: F,
) -> ComplexityMeasurement
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let cfg = ExecutorConfig::new(n, t);
    let mut max = 0u64;
    let mut executions = 0usize;
    let mut observe = |c: u64| {
        max = max.max(c);
        executions += 1;
    };

    for bit in Bit::ALL {
        let exec =
            run_omission(&cfg, &factory, &vec![bit; n], &BTreeSet::new(), &mut NoFaults)
                .expect("fault-free run");
        observe(exec.message_complexity());
    }
    if t >= 2 {
        let partition = Partition::paper_default(n, t);
        let runner = FamilyRunner::new(cfg, &factory, partition);
        for k in 1..=4u64 {
            for bit in Bit::ALL {
                let eb = runner.isolated_b::<P>(Round(k), bit).expect("family run");
                observe(eb.message_complexity());
                let ec = runner.isolated_c::<P>(Round(k), bit).expect("family run");
                observe(ec.message_complexity());
            }
        }
    }
    ComplexityMeasurement {
        protocol: label.to_string(),
        n,
        t,
        observed_max: max,
        paper_bound: (t as u64 * t as u64) / 32,
        executions,
    }
}

/// Runs one fault-free execution and returns it (bench helper).
///
/// # Panics
///
/// Panics on simulator errors.
pub fn run_fault_free<P, F>(
    n: usize,
    t: usize,
    factory: F,
    proposal: Bit,
) -> ba_sim::Execution<Bit, P::Output, P::Msg>
where
    P: Protocol<Input = Bit>,
    P::Msg: Payload,
    F: Fn(ProcessId) -> P,
{
    let cfg = ExecutorConfig::new(n, t);
    run_omission(&cfg, &factory, &vec![proposal; n], &BTreeSet::new(), &mut NoFaults)
        .expect("fault-free run")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_crypto::Keybook;
    use ba_protocols::broken::LeaderEcho;
    use ba_protocols::DolevStrong;

    #[test]
    fn family_complexity_orders_protocols_correctly() {
        let (n, t) = (12, 4);
        let cheap = measure_family_complexity("leader-echo", n, t, |_| {
            LeaderEcho::new(ProcessId(0))
        });
        let quadratic = measure_family_complexity(
            "dolev-strong",
            n,
            t,
            DolevStrong::factory(Keybook::new(n), ProcessId(0), Bit::Zero),
        );
        assert!(cheap.observed_max < quadratic.observed_max);
        assert!(quadratic.consistent_with_bound());
        assert!(cheap.executions >= 2);
    }

    #[test]
    fn fault_free_runner_works() {
        let exec = run_fault_free(
            5,
            2,
            DolevStrong::factory(Keybook::new(5), ProcessId(0), Bit::Zero),
            Bit::One,
        );
        assert!(exec.all_correct_decided(Bit::One));
    }
}
