//! Schema validation and regression gating for `BENCH_campaign.json`.
//!
//! The machinery bench writes a [`harness::PerfLog`](crate::harness::PerfLog)
//! throughput log; CI replays it through [`gate`] against the committed
//! `BENCH_baseline.json` and fails the job when a sweep's `points_per_sec`
//! regresses more than the tolerance. The workspace is dependency-free, so
//! this module carries a minimal parser for exactly the JSON the harness
//! emits (flat string/number fields, one array of flat objects).

use std::collections::BTreeMap;

/// One parsed sweep row of a campaign perf log.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepRow {
    /// Sweep label.
    pub label: String,
    /// Grid points swept.
    pub points: f64,
    /// Total messages carried by the sweep's executions.
    pub total_messages: f64,
    /// Wall-clock seconds.
    pub elapsed_secs: f64,
    /// Throughput in grid points per second.
    pub points_per_sec: f64,
    /// Peak RSS in bytes observed by the end of the sweep; `0` when the
    /// log predates the column or the platform could not report it.
    pub peak_rss_bytes: f64,
}

/// A parsed and schema-validated campaign perf log.
#[derive(Clone, PartialEq, Debug)]
pub struct PerfReport {
    /// The schema tag (validated).
    pub schema: String,
    /// Sweep rows, in file order.
    pub sweeps: Vec<SweepRow>,
}

/// The schema tag this module accepts.
pub const SCHEMA: &str = "ba-bench/campaign-perf/v1";

impl PerfReport {
    /// Parses and validates a `BENCH_campaign.json` document.
    ///
    /// # Errors
    ///
    /// A human-readable message for structural problems, a wrong or missing
    /// schema tag, missing fields, or non-finite numbers.
    pub fn parse(json: &str) -> Result<Self, String> {
        let schema =
            string_field(json, "schema").ok_or_else(|| "missing \"schema\" field".to_string())?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (expected {SCHEMA:?})"
            ));
        }
        let sweeps_src =
            array_field(json, "sweeps").ok_or_else(|| "missing \"sweeps\" array".to_string())?;
        let mut sweeps = Vec::new();
        for obj in objects(sweeps_src) {
            let label =
                string_field(obj, "label").ok_or_else(|| format!("sweep missing label: {obj}"))?;
            let num = |key: &str| -> Result<f64, String> {
                let v = number_field(obj, key)
                    .ok_or_else(|| format!("sweep {label:?} missing numeric field {key:?}"))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!(
                        "sweep {label:?} field {key:?} is not a finite non-negative number"
                    ));
                }
                Ok(v)
            };
            sweeps.push(SweepRow {
                points: num("points")?,
                total_messages: num("total_messages")?,
                elapsed_secs: num("elapsed_secs")?,
                points_per_sec: num("points_per_sec")?,
                // Optional: absent from logs written before the column
                // existed, and 0 where the platform can't report it.
                peak_rss_bytes: number_field(obj, "peak_rss_bytes")
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .unwrap_or(0.0),
                label,
            });
        }
        if sweeps.is_empty() {
            return Err("no sweeps recorded".into());
        }
        Ok(PerfReport { schema, sweeps })
    }

    /// The row with the given label, if present.
    pub fn sweep(&self, label: &str) -> Option<&SweepRow> {
        self.sweeps.iter().find(|s| s.label == label)
    }

    /// Label → points-per-second map.
    pub fn throughput(&self) -> BTreeMap<&str, f64> {
        self.sweeps
            .iter()
            .map(|s| (s.label.as_str(), s.points_per_sec))
            .collect()
    }
}

/// Compares a current perf log against a baseline: every sweep label in the
/// baseline must exist in the current log with
/// `points_per_sec >= (1 - tolerance) * baseline`. Returns the list of
/// human-readable verdict lines (one per compared label, pass or fail).
///
/// # Errors
///
/// The failure lines, if any label regressed or disappeared.
pub fn gate(
    current: &PerfReport,
    baseline: &PerfReport,
    tolerance: f64,
) -> Result<Vec<String>, Vec<String>> {
    let mut passes = Vec::new();
    let mut failures = Vec::new();
    for base in &baseline.sweeps {
        let Some(cur) = current.sweep(&base.label) else {
            failures.push(format!(
                "sweep {:?} present in baseline but missing from current log",
                base.label
            ));
            continue;
        };
        let floor = (1.0 - tolerance) * base.points_per_sec;
        let verdict = format!(
            "{}: {:.0} pts/s vs baseline {:.0} (floor {:.0})",
            base.label, cur.points_per_sec, base.points_per_sec, floor
        );
        if cur.points_per_sec < floor {
            failures.push(format!("REGRESSION {verdict}"));
        } else {
            passes.push(format!("ok {verdict}"));
        }
    }
    if failures.is_empty() {
        Ok(passes)
    } else {
        Err(failures)
    }
}

/// Renders the per-sweep delta table perf_gate prints before its verdict:
/// one line per label (union of baseline and current, baseline order
/// first), with baseline pts/s, current pts/s, the percent delta, and the
/// pass/fail verdict at `tolerance`. Labels only in the current log show
/// as `new`; labels missing from it show as `MISSING` (the gate itself
/// fails those).
pub fn delta_table(current: &PerfReport, baseline: &PerfReport, tolerance: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44} {:>12} {:>12} {:>8}  {}\n",
        "sweep", "baseline", "current", "delta", "verdict"
    ));
    for base in &baseline.sweeps {
        match current.sweep(&base.label) {
            Some(cur) => {
                let delta = if base.points_per_sec > 0.0 {
                    (cur.points_per_sec - base.points_per_sec) / base.points_per_sec * 100.0
                } else {
                    0.0
                };
                let verdict = if cur.points_per_sec < (1.0 - tolerance) * base.points_per_sec {
                    "FAIL"
                } else {
                    "pass"
                };
                out.push_str(&format!(
                    "{:<44} {:>12.0} {:>12.0} {:>+7.1}%  {}\n",
                    base.label, base.points_per_sec, cur.points_per_sec, delta, verdict
                ));
            }
            None => {
                out.push_str(&format!(
                    "{:<44} {:>12.0} {:>12} {:>8}  MISSING\n",
                    base.label, base.points_per_sec, "-", "-"
                ));
            }
        }
    }
    for cur in &current.sweeps {
        if baseline.sweep(&cur.label).is_none() {
            out.push_str(&format!(
                "{:<44} {:>12} {:>12.0} {:>8}  new\n",
                cur.label, "-", cur.points_per_sec, "-"
            ));
        }
    }
    out
}

/// Compares peak-RSS columns against the baseline: every baseline sweep
/// that recorded a nonzero `peak_rss_bytes` must exist in the current log
/// with `peak_rss_bytes <= (1 + max_growth) * baseline` — the memory
/// counterpart of [`gate`]. Labels whose baseline or current reading is `0`
/// (pre-column logs, non-Linux runners) are skipped, so the gate degrades
/// to a no-op rather than a false failure where the kernel can't report a
/// high-water mark. Readings are process-lifetime monotone, so like labels
/// compare like prefixes of the bench run.
///
/// # Errors
///
/// The failure lines, if any label's peak RSS grew beyond the ceiling.
pub fn rss_gate(
    current: &PerfReport,
    baseline: &PerfReport,
    max_growth: f64,
) -> Result<Vec<String>, Vec<String>> {
    let mut passes = Vec::new();
    let mut failures = Vec::new();
    let mib = |bytes: f64| bytes / (1024.0 * 1024.0);
    for base in &baseline.sweeps {
        if base.peak_rss_bytes <= 0.0 {
            continue;
        }
        let Some(cur) = current.sweep(&base.label) else {
            continue; // gate() already fails missing labels
        };
        if cur.peak_rss_bytes <= 0.0 {
            continue;
        }
        let ceiling = (1.0 + max_growth) * base.peak_rss_bytes;
        let verdict = format!(
            "{}: peak RSS {:.1} MiB vs baseline {:.1} (ceiling {:.1})",
            base.label,
            mib(cur.peak_rss_bytes),
            mib(base.peak_rss_bytes),
            mib(ceiling)
        );
        if cur.peak_rss_bytes > ceiling {
            failures.push(format!("RSS REGRESSION {verdict}"));
        } else {
            passes.push(format!("ok {verdict}"));
        }
    }
    if failures.is_empty() {
        Ok(passes)
    } else {
        Err(failures)
    }
}

/// Asserts a bounded instrumentation cost *within one log*: the sweep
/// labeled `instrumented` must run at least `(1 - max_overhead)` times the
/// points/sec of the identical-work sweep labeled `bare`. Like
/// [`speedup_gate`], the comparison is hardware-independent because both
/// lines come from the same machine and run.
///
/// # Errors
///
/// A message when a label is missing, the bare sweep has zero throughput,
/// or the overhead exceeds the ceiling.
pub fn overhead_gate(
    report: &PerfReport,
    bare: &str,
    instrumented: &str,
    max_overhead: f64,
) -> Result<String, String> {
    let b = report
        .sweep(bare)
        .ok_or_else(|| format!("missing sweep {bare:?}"))?;
    let i = report
        .sweep(instrumented)
        .ok_or_else(|| format!("missing sweep {instrumented:?}"))?;
    if b.points_per_sec <= 0.0 {
        return Err(format!("sweep {bare:?} has zero throughput"));
    }
    let overhead = b.points_per_sec / i.points_per_sec.max(f64::MIN_POSITIVE) - 1.0;
    if overhead > max_overhead {
        Err(format!(
            "OVERHEAD REGRESSION {instrumented} costs {:.1}% over {bare} (ceiling {:.1}%)",
            overhead * 100.0,
            max_overhead * 100.0
        ))
    } else {
        Ok(format!(
            "ok {instrumented} costs {:.1}% over {bare} (ceiling {:.1}%)",
            overhead * 100.0,
            max_overhead * 100.0
        ))
    }
}

/// Asserts a hardware-independent speedup *within one log*: the sweep
/// labeled `fast` must run at least `min_ratio` times the points/sec of the
/// sweep labeled `slow`. Used to gate the stats-engine speedup without
/// depending on the CI machine matching the baseline machine.
///
/// # Errors
///
/// A message when a label is missing or the ratio is below the floor.
pub fn speedup_gate(
    report: &PerfReport,
    fast: &str,
    slow: &str,
    min_ratio: f64,
) -> Result<String, String> {
    let f = report
        .sweep(fast)
        .ok_or_else(|| format!("missing sweep {fast:?}"))?;
    let s = report
        .sweep(slow)
        .ok_or_else(|| format!("missing sweep {slow:?}"))?;
    if s.points_per_sec <= 0.0 {
        return Err(format!("sweep {slow:?} has zero throughput"));
    }
    let ratio = f.points_per_sec / s.points_per_sec;
    if ratio < min_ratio {
        Err(format!(
            "SPEEDUP REGRESSION {fast} is only {ratio:.2}x {slow} (floor {min_ratio:.2}x)"
        ))
    } else {
        Ok(format!(
            "ok {fast} is {ratio:.2}x {slow} (floor {min_ratio:.2}x)"
        ))
    }
}

/// Extracts the raw value text following `"key":`, or `None`.
fn raw_field<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = src.find(&needle)? + needle.len();
    Some(src[start..].trim_start())
}

fn string_field(src: &str, key: &str) -> Option<String> {
    let rest = raw_field(src, key)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn number_field(src: &str, key: &str) -> Option<f64> {
    let rest = raw_field(src, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The bracketed source text of `"key": [ ... ]`. Bracket counting is
/// string-aware, so labels containing `[` or `]` cannot truncate the array.
fn array_field<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let rest = raw_field(src, key)?;
    let rest = rest.strip_prefix('[')?;
    let mut depth = 1usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits an array body into its top-level `{...}` object sources. The
/// harness never nests objects or puts braces inside labels beyond JSON
/// escapes, so brace counting outside strings suffices.
fn objects(array_src: &str) -> impl Iterator<Item = &str> {
    let mut rest = array_src;
    std::iter::from_fn(move || {
        let start = rest.find('{')?;
        let mut depth = 0usize;
        let mut in_string = false;
        let mut escaped = false;
        for (i, c) in rest[start..].char_indices() {
            if in_string {
                match c {
                    _ if escaped => escaped = false,
                    '\\' => escaped = true,
                    '"' => in_string = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        let obj = &rest[start..start + i + 1];
                        rest = &rest[start + i + 1..];
                        return Some(obj);
                    }
                }
                _ => {}
            }
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::PerfLog;

    fn sample() -> String {
        r#"{
  "schema": "ba-bench/campaign-perf/v1",
  "total_points": 100,
  "points_per_sec": 20938.497,
  "sweeps": [
    {"label": "scenario-sweep/dolev-strong", "points": 96, "total_messages": 12418, "elapsed_secs": 0.004181, "points_per_sec": 22962.761},
    {"label": "falsifier-sweep/leader-echo", "points": 4, "total_messages": 41, "elapsed_secs": 0.000595, "points_per_sec": 6720.317}
  ]
}
"#
        .to_string()
    }

    #[test]
    fn parses_the_committed_log_format() {
        let report = PerfReport::parse(&sample()).unwrap();
        assert_eq!(report.schema, SCHEMA);
        assert_eq!(report.sweeps.len(), 2);
        let ds = report.sweep("scenario-sweep/dolev-strong").unwrap();
        assert_eq!(ds.points, 96.0);
        assert_eq!(ds.total_messages, 12418.0);
        assert!((ds.points_per_sec - 22962.761).abs() < 1e-6);
        assert_eq!(report.throughput().len(), 2);
    }

    #[test]
    fn parses_whatever_the_harness_emits() {
        // Round-trip against the real PerfLog writer, including escapes and
        // labels containing brackets/braces that naive scanners trip over.
        let mut log = PerfLog::new();
        log.time("weird \"label\"\n", || (8usize, 1234u64, ()));
        log.time("sweep[n=8] {grid}", || (4usize, 99u64, ()));
        let report = PerfReport::parse(&log.to_json()).unwrap();
        assert_eq!(report.sweeps.len(), 2);
        assert_eq!(report.sweeps[0].label, "weird \"label\"\n");
        assert_eq!(report.sweeps[0].points, 8.0);
        assert_eq!(report.sweeps[1].label, "sweep[n=8] {grid}");
        assert_eq!(report.sweeps[1].points, 4.0);
        if cfg!(target_os = "linux") {
            assert!(report.sweeps[0].peak_rss_bytes > 0.0);
        }
    }

    #[test]
    fn pre_column_logs_parse_with_zero_rss() {
        // The committed baseline format before the peak-RSS column.
        let report = PerfReport::parse(&sample()).unwrap();
        assert_eq!(report.sweeps[0].peak_rss_bytes, 0.0);
    }

    #[test]
    fn rss_gate_bounds_memory_growth_and_skips_unreported_labels() {
        let make = |a: u64, b: u64| {
            let log = format!(
                r#"{{"schema": "ba-bench/campaign-perf/v1", "sweeps": [
                    {{"label": "a", "points": 8, "total_messages": 1, "elapsed_secs": 0.001, "points_per_sec": 100.0, "peak_rss_bytes": {a}}},
                    {{"label": "b", "points": 8, "total_messages": 1, "elapsed_secs": 0.001, "points_per_sec": 100.0, "peak_rss_bytes": {b}}}
                ]}}"#
            );
            PerfReport::parse(&log).unwrap()
        };
        let baseline = make(100_000_000, 0);
        // Within the 50% ceiling; label "b" unreported in baseline → skipped.
        let passes = rss_gate(&make(140_000_000, 900_000_000), &baseline, 0.5).unwrap();
        assert_eq!(passes.len(), 1, "{passes:?}");
        assert!(passes[0].contains("133.5 MiB"), "{passes:?}");
        // Beyond it.
        let failures = rss_gate(&make(160_000_000, 0), &baseline, 0.5).unwrap_err();
        assert!(failures[0].contains("RSS REGRESSION"), "{failures:?}");
        // Current log predates the column → no-op.
        let old = PerfReport::parse(&sample()).unwrap();
        let baseline_with_labels = make(100_000_000, 0);
        assert!(rss_gate(&old, &baseline_with_labels, 0.5)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn rejects_wrong_or_missing_schema() {
        assert!(PerfReport::parse("{}").unwrap_err().contains("schema"));
        let wrong = sample().replace("campaign-perf/v1", "campaign-perf/v9");
        assert!(PerfReport::parse(&wrong).unwrap_err().contains("v9"));
    }

    #[test]
    fn rejects_missing_fields_and_empty_logs() {
        let no_pps = sample().replace("\"points_per_sec\": 22962.761", "\"x\": 1");
        assert!(PerfReport::parse(&no_pps)
            .unwrap_err()
            .contains("points_per_sec"));
        let empty = r#"{"schema": "ba-bench/campaign-perf/v1", "sweeps": []}"#;
        assert!(PerfReport::parse(empty).unwrap_err().contains("no sweeps"));
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let baseline = PerfReport::parse(&sample()).unwrap();
        // 25% slower: inside the 30% tolerance.
        let slower = sample().replace("22962.761", "17222.071");
        let current = PerfReport::parse(&slower).unwrap();
        let passes = gate(&current, &baseline, 0.30).unwrap();
        assert_eq!(passes.len(), 2);

        // 40% slower: outside it.
        let much_slower = sample().replace("22962.761", "13777.657");
        let current = PerfReport::parse(&much_slower).unwrap();
        let failures = gate(&current, &baseline, 0.30).unwrap_err();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("REGRESSION"));
        assert!(failures[0].contains("scenario-sweep/dolev-strong"));
    }

    #[test]
    fn gate_fails_when_a_baseline_sweep_disappears() {
        let baseline = PerfReport::parse(&sample()).unwrap();
        let one_line = r#"{"schema": "ba-bench/campaign-perf/v1", "sweeps": [
            {"label": "falsifier-sweep/leader-echo", "points": 4, "total_messages": 41, "elapsed_secs": 0.0005, "points_per_sec": 8000.0}
        ]}"#;
        let current = PerfReport::parse(one_line).unwrap();
        let failures = gate(&current, &baseline, 0.30).unwrap_err();
        assert!(failures[0].contains("missing from current log"));
    }

    #[test]
    fn delta_table_covers_union_of_labels_with_verdicts() {
        let baseline = PerfReport::parse(&sample()).unwrap();
        let current = r#"{"schema": "ba-bench/campaign-perf/v1", "sweeps": [
            {"label": "scenario-sweep/dolev-strong", "points": 96, "total_messages": 12418, "elapsed_secs": 0.008, "points_per_sec": 11481.0},
            {"label": "telemetry-overhead/dolev-strong", "points": 8, "total_messages": 15040, "elapsed_secs": 0.0006, "points_per_sec": 13000.0}
        ]}"#;
        let current = PerfReport::parse(current).unwrap();
        let table = delta_table(&current, &baseline, 0.30);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4, "{table}");
        assert!(lines[0].contains("baseline") && lines[0].contains("verdict"));
        // 50% slower than baseline: outside the 30% tolerance.
        assert!(lines[1].contains("scenario-sweep/dolev-strong"));
        assert!(
            lines[1].contains("-50.0%") && lines[1].contains("FAIL"),
            "{table}"
        );
        // In baseline but not in current.
        assert!(lines[2].contains("falsifier-sweep/leader-echo"));
        assert!(lines[2].contains("MISSING"));
        // In current but not in baseline.
        assert!(lines[3].contains("telemetry-overhead/dolev-strong"));
        assert!(lines[3].contains("new"));

        // Within tolerance: pass with a small signed delta.
        let ok = sample().replace("22962.761", "22000.0");
        let table = delta_table(&PerfReport::parse(&ok).unwrap(), &baseline, 0.30);
        assert!(table.contains("-4.2%"), "{table}");
        assert!(table.contains("pass"));
        assert!(!table.contains("FAIL"));
    }

    #[test]
    fn overhead_gate_bounds_instrumentation_cost() {
        let log = r#"{"schema": "ba-bench/campaign-perf/v1", "sweeps": [
            {"label": "bare", "points": 8, "total_messages": 1, "elapsed_secs": 0.001, "points_per_sec": 10000.0},
            {"label": "cheap", "points": 8, "total_messages": 1, "elapsed_secs": 0.00102, "points_per_sec": 9800.0},
            {"label": "costly", "points": 8, "total_messages": 1, "elapsed_secs": 0.00125, "points_per_sec": 8000.0}
        ]}"#;
        let report = PerfReport::parse(log).unwrap();
        let ok = overhead_gate(&report, "bare", "cheap", 0.05).unwrap();
        assert!(ok.contains("2.0%"), "{ok}");
        let err = overhead_gate(&report, "bare", "costly", 0.05).unwrap_err();
        assert!(err.contains("OVERHEAD REGRESSION"), "{err}");
        assert!(err.contains("25.0%"), "{err}");
        assert!(overhead_gate(&report, "bare", "nope", 0.05).is_err());
        assert!(overhead_gate(&report, "nope", "cheap", 0.05).is_err());
    }

    #[test]
    fn speedup_gate_compares_labels_within_one_log() {
        let report = PerfReport::parse(&sample()).unwrap();
        let ok = speedup_gate(
            &report,
            "scenario-sweep/dolev-strong",
            "falsifier-sweep/leader-echo",
            2.0,
        )
        .unwrap();
        assert!(ok.contains("3.42x"), "{ok}");
        let err = speedup_gate(
            &report,
            "falsifier-sweep/leader-echo",
            "scenario-sweep/dolev-strong",
            2.0,
        )
        .unwrap_err();
        assert!(err.contains("SPEEDUP REGRESSION"));
        assert!(speedup_gate(&report, "nope", "also-nope", 1.0).is_err());
    }
}
