//! Registry-facing entry points for the `ba-search` adversary search:
//! resolve a protocol label, hunt for a violating strategy, shrink it, and
//! replay the resulting attack report.
//!
//! This is the layer the `adversary_search` binary and the regression
//! tests drive. Everything is deterministic in the spec's seed: the same
//! `SearchSpec` reproduces the same trajectory, winner, and shrunk report
//! regardless of thread count.

use ba_search::{
    search, shrink, AttackReport, DecisionRounds, DisagreementRate, GenomeModel, GenomeSpace,
    MessageComplexity, Objective, SearchConfig, SearchOutcome, StrategyGenome, ValidityViolation,
};
use ba_sim::{Adversary, Bit, CampaignPoint, ProcessId, Scenario, ScenarioStats, SimError};

use crate::dist::{input_bits, with_registry_factory, INPUTS, REGISTRY};

// The registry macro expands textually, so the protocol factories it names
// must be in scope at every call site.
use ba_crypto::Keybook;
use ba_protocols::broken::{
    LeaderEcho, OneRoundAllToAll, OwnProposal, ParanoidEcho, SilentConstant,
};
use ba_protocols::{DolevStrong, FloodSet, PhaseKing};

/// Objective labels resolvable by [`objective_by_name`].
pub const OBJECTIVES: &[&str] = &[
    "disagreement",
    "validity",
    "decision-rounds",
    "message-complexity",
];

/// Resolves an objective label. `expected` is the bit the `validity`
/// objective defends (ignored by the others).
///
/// # Errors
///
/// Returns a message listing [`OBJECTIVES`] for unknown labels.
pub fn objective_by_name(name: &str, expected: Bit) -> Result<Box<dyn Objective>, String> {
    match name {
        "disagreement" => Ok(Box::new(DisagreementRate)),
        "validity" => Ok(Box::new(ValidityViolation { expected })),
        "decision-rounds" => Ok(Box::new(DecisionRounds)),
        "message-complexity" => Ok(Box::new(MessageComplexity)),
        other => Err(format!(
            "unknown objective label {other:?} (known: {OBJECTIVES:?})"
        )),
    }
}

/// The bit most processes propose under `inputs` (ties go to `Zero`) — the
/// value the `validity` objective defends by default.
pub fn majority_bit(inputs: &[Bit]) -> Bit {
    let ones = inputs.iter().filter(|b| **b == Bit::One).count();
    Bit::from(2 * ones > inputs.len())
}

/// A complete, seed-reproducible adversary-search job.
#[derive(Clone, Debug)]
pub struct SearchSpec {
    /// Registry protocol label (see [`crate::dist::REGISTRY`]).
    pub protocol: String,
    /// Objective label (see [`OBJECTIVES`]).
    pub objective: String,
    /// Number of processes.
    pub n: usize,
    /// Fault budget.
    pub t: usize,
    /// Input-profile label (see [`crate::dist::INPUTS`]).
    pub inputs: String,
    /// Largest round a genome trigger may arm at.
    pub trigger_horizon: u64,
    /// Driver configuration (seed, budget, batch size, algorithm).
    pub config: SearchConfig,
    /// Whether to delta-debug a violating winner down to a minimal report.
    pub shrink: bool,
}

impl SearchSpec {
    /// A default job against `protocol` on an `(n, t)` system: hunt
    /// disagreement from all-zero inputs with the default driver budget.
    pub fn new(protocol: &str, n: usize, t: usize) -> Self {
        SearchSpec {
            protocol: protocol.to_string(),
            objective: "disagreement".to_string(),
            n,
            t,
            inputs: "zeros".to_string(),
            trigger_horizon: 6,
            config: SearchConfig::new(0xBA5EC4),
            shrink: true,
        }
    }
}

/// The result of [`run_adversary_search`]: the raw driver outcome plus,
/// when the winner violates the objective, the shrunk attack report.
#[derive(Clone, Debug)]
pub struct SearchRun {
    /// The driver's outcome (best genome, score, trajectory).
    pub outcome: SearchOutcome,
    /// The shrunk report, if the search found a violation (and shrinking
    /// was requested; otherwise the report carries the unshrunk winner).
    pub report: Option<AttackReport>,
}

/// Runs the full pipeline for `spec`: resolve labels, search, and (on a
/// violation) shrink to an [`AttackReport`].
///
/// # Errors
///
/// Unknown protocol / objective / input labels, and simulator errors
/// (which would indicate an interpreter soundness bug) as strings.
pub fn run_adversary_search(spec: &SearchSpec) -> Result<SearchRun, String> {
    if !INPUTS.contains(&spec.inputs.as_str()) {
        return Err(format!(
            "unknown input label {:?} (known: {INPUTS:?})",
            spec.inputs
        ));
    }
    let inputs = input_bits(&spec.inputs, spec.n, spec.config.seed);
    let objective = objective_by_name(&spec.objective, majority_bit(&inputs))?;
    let space = GenomeSpace::new(spec.n, spec.t, spec.trigger_horizon);
    let run: Result<SearchRun, String> = with_registry_factory!(spec.protocol.as_str(), factory => {
        let point = CampaignPoint::new(spec.n, spec.t);
        let eval = |genome: &StrategyGenome| -> Result<ScenarioStats<Bit>, SimError> {
            Scenario::new(spec.n, spec.t)
                .protocol(factory(&point))
                .inputs(inputs.iter().copied())
                .adversary(Adversary::model(GenomeModel::new(genome.clone())))
                .run_stats()
        };
        let outcome = search(&space, objective.as_ref(), &spec.config, eval)
            .map_err(|e| format!("search evaluation failed: {e}"))?;
        let report = if outcome.violation {
            let genome = if spec.shrink {
                shrink(&outcome.best, objective.as_ref(), eval)
                    .map_err(|e| format!("shrink evaluation failed: {e}"))?
            } else {
                outcome.best.clone()
            };
            let stats = eval(&genome).map_err(|e| format!("replay failed: {e}"))?;
            Some(AttackReport {
                protocol: spec.protocol.clone(),
                objective: objective.name().to_string(),
                n: spec.n,
                t: spec.t,
                inputs: inputs.clone(),
                seed: spec.config.seed,
                evals: outcome.evals,
                score: objective.score(&stats),
                violations: stats.violations,
                genome,
            })
        } else {
            None
        };
        Ok(SearchRun { outcome, report })
    })?;
    run
}

/// Replays an [`AttackReport`] against the registry: evaluates its genome
/// on its scenario and returns the stats, which must exhibit the same
/// violation the report records (the regression tests assert exactly
/// that).
///
/// # Errors
///
/// Unknown protocol labels and simulator errors, as strings.
pub fn replay_report(report: &AttackReport) -> Result<ScenarioStats<Bit>, String> {
    let stats: Result<ScenarioStats<Bit>, String> = with_registry_factory!(report.protocol.as_str(), factory => {
        let point = CampaignPoint::new(report.n, report.t);
        Scenario::new(report.n, report.t)
            .protocol(factory(&point))
            .inputs(report.inputs.iter().copied())
            .adversary(Adversary::model(GenomeModel::new(report.genome.clone())))
            .run_stats()
            .map_err(|e| format!("replay failed: {e}"))
    })?;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_labels_resolve_and_reject() {
        for label in OBJECTIVES {
            assert_eq!(objective_by_name(label, Bit::Zero).unwrap().name(), *label);
        }
        let err = objective_by_name("world-peace", Bit::Zero)
            .err()
            .expect("unknown objective must be rejected");
        assert!(err.contains("world-peace"));
    }

    #[test]
    fn majority_bit_breaks_ties_to_zero() {
        assert_eq!(majority_bit(&[Bit::One, Bit::One, Bit::Zero]), Bit::One);
        assert_eq!(majority_bit(&[Bit::One, Bit::Zero]), Bit::Zero);
        assert_eq!(majority_bit(&[]), Bit::Zero);
    }

    #[test]
    fn unknown_labels_surface_as_errors() {
        let mut spec = SearchSpec::new("no-such-protocol", 4, 1);
        spec.config = spec.config.with_max_evals(2);
        assert!(run_adversary_search(&spec)
            .unwrap_err()
            .contains("no-such-protocol"));
        let mut spec = SearchSpec::new("flood-set", 4, 1);
        spec.inputs = "gibberish".into();
        assert!(run_adversary_search(&spec)
            .unwrap_err()
            .contains("gibberish"));
        let mut spec = SearchSpec::new("flood-set", 4, 1);
        spec.objective = "gibberish".into();
        assert!(run_adversary_search(&spec)
            .unwrap_err()
            .contains("gibberish"));
    }

    #[test]
    fn searching_a_correct_protocol_finds_no_violation() {
        // FloodSet tolerates t faults by construction; a tiny search budget
        // must come back empty-handed rather than mislabel an outcome.
        let mut spec = SearchSpec::new("flood-set", 4, 1);
        spec.config = spec.config.with_max_evals(40).with_lambda(4);
        let run = run_adversary_search(&spec).unwrap();
        assert!(!run.outcome.violation);
        assert!(run.report.is_none());
    }
}
