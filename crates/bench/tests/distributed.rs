//! End-to-end tests of distributed campaign sharding against the real
//! `campaign_worker` binary (located via `CARGO_BIN_EXE_campaign_worker`).
//!
//! The load-bearing property: a sweep sharded over k worker *processes*
//! merges into the **identical** value — stats, violations, message
//! complexity, grid order — as the same sweep in one process, for every k.

use ba_bench::dist::{
    distributed_falsifier_sweep, distributed_scenario_sweep, scenario_campaign_report,
    scenario_campaign_report_mode,
};
use ba_bench::falsifier_sweep;
use ba_dist::{Coordinator, ShardMode, SweepSpec, WorkerCommand};
use ba_protocols::broken::LeaderEcho;
use ba_sim::{Campaign, CampaignPoint, ProcessId};

fn worker() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_campaign_worker"))
}

/// A mixed-adversary, mixed-input grid: every adversary flavor the worker
/// registry interprets — the static plans, the seeded one, and the adaptive
/// fault-model family (`adaptive-worst-case` / `mobile` / `scheduler`), so
/// shard invariance is checked end-to-end for execution-observing
/// adversaries too.
fn mixed_grid() -> Vec<CampaignPoint> {
    Campaign::grid(
        [(4, 1), (5, 1), (6, 2), (7, 2)],
        ba_bench::dist::ADVERSARIES,
        &["ones", "alternating", "random"],
    )
    .points()
    .to_vec()
}

#[test]
fn sharded_scenario_sweeps_are_invariant_in_shard_count() {
    let points = mixed_grid();
    let base_seed = 0xBA5E_D15C;
    // In-process reference: the exact computation the workers run, on one
    // local Campaign pool.
    let reference =
        scenario_campaign_report(&points, "flood-set", base_seed, 0).expect("reference sweep");
    // The same sweep through the full coordinator → worker-process → merge
    // pipeline, at two shard counts.
    let one = distributed_scenario_sweep(&points, "flood-set", base_seed, 1, worker())
        .expect("1-shard sweep");
    let four = distributed_scenario_sweep(&points, "flood-set", base_seed, 4, worker())
        .expect("4-shard sweep");
    assert_eq!(one, reference, "coordinator(k=1) must equal in-process run");
    assert_eq!(
        four, reference,
        "coordinator(k=4) must equal in-process run"
    );
    // Spot-check that the equality is over real content: the grid exercises
    // faults, so some traffic was actually dropped somewhere.
    assert_eq!(reference.outcomes.len(), points.len());
    assert!(reference.total_message_complexity() > 0);
    assert!(
        reference
            .stats()
            .any(|(_, s)| s.total_messages > s.message_complexity),
        "the mixed grid should produce faulty-process traffic"
    );
}

#[test]
fn stats_only_workers_reproduce_the_full_trace_reference_bit_for_bit() {
    // Workers run the TraceMode::Stats engine (no Execution is ever
    // materialized in a worker process); the reference here deliberately
    // materializes and validates FULL traces before deriving stats. The
    // merged wire-format reports must still be value-identical — shard
    // invariance composed with sink equivalence.
    let points = mixed_grid();
    let base_seed = 0x0005_7A75;
    let full_reference =
        scenario_campaign_report_mode(&points, "flood-set", base_seed, 0, ba_sim::TraceMode::Full)
            .expect("full-trace reference sweep");
    let merged = distributed_scenario_sweep(&points, "flood-set", base_seed, 3, worker())
        .expect("3-shard stats-only sweep");
    assert_eq!(
        merged, full_reference,
        "merge(k stats-only shards) must equal the full-trace run(1)"
    );
}

#[test]
fn distributed_falsifier_sweep_reproduces_the_single_process_sweep() {
    // ≥ 4 (n, t) points, 4 shards — the acceptance grid of the sharding
    // subsystem. Leader-echo is refuted at every point.
    let nts = [(8usize, 2usize), (10, 2), (12, 4), (16, 8), (14, 4)];
    let local = falsifier_sweep(&nts, |_point| |_: ProcessId| LeaderEcho::new(ProcessId(0)));
    let distributed = distributed_falsifier_sweep(&nts, "leader-echo", 4, worker())
        .expect("4-shard falsifier sweep");
    assert_eq!(distributed, local);
    assert_eq!(distributed.len(), nts.len());
    for point in &distributed {
        assert!(
            point.refuted,
            "leader-echo must be refuted at {}",
            point.point
        );
    }
}

#[test]
fn worker_processes_run_shards_concurrently_with_retries_enabled() {
    // Exercise the coordinator's threaded dispatch path with more shards
    // than points in some shards (k > points ⇒ k clamps to the grid size).
    let points: Vec<CampaignPoint> = (4..10)
        .map(|n| CampaignPoint::new(n, 1).with_inputs("ones"))
        .collect();
    let spec = SweepSpec::scenarios(points.clone(), "dolev-strong").base_seed(3);
    let report = Coordinator::new(worker(), 16)
        .retries(1)
        .run_campaign(&spec)
        .expect("over-sharded sweep");
    assert!(report.all_clean(), "{}", report.summary());
    assert_eq!(
        report,
        scenario_campaign_report(&points, "dolev-strong", 3, 0).unwrap()
    );
}

#[test]
fn worker_binary_supports_file_based_manifests() {
    // The --manifest/--out flags are the file transport for runs where
    // shards are dispatched out-of-band (e.g. a batch queue).
    use ba_dist::{plan_shards, Decode, Encode, ShardReport};
    use ba_sim::{Bit, ScenarioStats};

    let spec = SweepSpec::scenarios(mixed_grid(), "flood-set").base_seed(99);
    let manifest = &plan_shards(&spec, 2)[1];
    let dir = std::env::temp_dir();
    let manifest_path = dir.join("ba_dist_test_manifest.wire");
    let out_path = dir.join("ba_dist_test_report.wire");
    std::fs::write(&manifest_path, manifest.to_wire()).unwrap();

    let status = std::process::Command::new(env!("CARGO_BIN_EXE_campaign_worker"))
        .arg("--manifest")
        .arg(&manifest_path)
        .arg("--out")
        .arg(&out_path)
        .status()
        .expect("spawn worker");
    assert!(status.success());

    let report: ShardReport<ScenarioStats<Bit>> =
        ShardReport::from_wire(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
    assert_eq!(report.shard, 1);
    assert_eq!(report.outcomes.len(), manifest.entries.len());
    let _ = std::fs::remove_file(manifest_path);
    let _ = std::fs::remove_file(out_path);
}

#[test]
fn chaos_injected_worker_processes_reproduce_the_reference_bit_for_bit() {
    // Real worker processes in `--stream --progress` dress, wrapped in the
    // deterministic chaos transport (crashes, stalls, truncations, corrupt
    // lines, dropped connections; relenting after two faulted attempts per
    // shard). The point-level recovery fabric must absorb every fault and
    // merge the exact in-process report.
    use ba_dist::{Backoff, ChaosPlan, ChaosTransport};
    use std::time::Duration;

    let points: Vec<CampaignPoint> = (4..10)
        .map(|n| CampaignPoint::new(n, 1).with_inputs("ones"))
        .collect();
    let spec = SweepSpec::scenarios(points.clone(), "dolev-strong").base_seed(0xC0DE);
    let reference = scenario_campaign_report(&points, "dolev-strong", 0xC0DE, 0).unwrap();
    for seed in [1u64, 7, 23] {
        let chaos = ChaosTransport::new(
            worker().with_stream(true).with_progress(true),
            ChaosPlan::new(seed),
        );
        let report = Coordinator::new(chaos, 3)
            .retries(4)
            .backoff(Backoff::none())
            .watchdog(Duration::from_secs(2))
            .run_campaign(&spec)
            .unwrap_or_else(|e| panic!("chaos seed {seed}: sweep failed: {e}"));
        assert_eq!(
            report, reference,
            "chaos seed {seed}: merged report diverged"
        );
    }
}

#[test]
fn streamed_worker_stdout_carries_the_plain_report_bit_for_bit() {
    // `--stream` interleaves progress JSONL and checksummed outcome lines
    // before the report; stripping those must leave the *byte-identical*
    // plain report, and every streamed outcome must decode to the report's
    // value for its index.
    use ba_dist::{plan_shards, Decode, Encode, PointOutcome, ShardReport};
    use ba_sim::{Bit, ScenarioStats};

    let spec = SweepSpec::scenarios(mixed_grid(), "flood-set").base_seed(0x57AB);
    let manifest = &plan_shards(&spec, 2)[0];
    let run = |extra_args: &[&str]| -> String {
        use std::io::Write;
        use std::process::Stdio;
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_campaign_worker"))
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn worker");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(manifest.to_wire().as_bytes())
            .unwrap();
        let output = child.wait_with_output().unwrap();
        assert!(output.status.success());
        String::from_utf8(output.stdout).expect("worker stdout")
    };

    let plain = run(&[]);
    let streamed = run(&["--stream", "--progress"]);

    let mut report_text = String::new();
    let mut outcome_lines = Vec::new();
    for line in streamed.lines() {
        if line.starts_with('{') {
            continue;
        }
        if line.starts_with("outcome ") {
            outcome_lines.push(line.to_string());
            continue;
        }
        report_text.push_str(line);
        report_text.push('\n');
    }
    assert_eq!(
        report_text, plain,
        "the trailing streamed report must be byte-identical to the plain run"
    );

    let report: ShardReport<ScenarioStats<Bit>> = ShardReport::from_wire(&plain).unwrap();
    assert_eq!(outcome_lines.len(), report.outcomes.len());
    for line in &outcome_lines {
        let streamed: PointOutcome<ScenarioStats<Bit>> =
            PointOutcome::from_wire(&format!("{line}\n")).expect("streamed outcome decodes");
        assert!(
            report
                .outcomes
                .contains(&(streamed.index, streamed.result.clone())),
            "streamed outcome for index {} diverges from the report",
            streamed.index
        );
    }
}

#[test]
fn tcp_served_shards_merge_identically_to_the_in_process_sweep() {
    // `campaign_worker --serve 127.0.0.1:0` announces its bound port on
    // stdout; `TcpTransport` dials it once per shard attempt. The merged
    // report must equal the in-process reference.
    use ba_dist::TcpTransport;
    use std::io::BufRead;
    use std::process::Stdio;

    let points: Vec<CampaignPoint> = (4..9)
        .map(|n| CampaignPoint::new(n, 1).with_inputs("alternating"))
        .collect();
    let spec = SweepSpec::scenarios(points.clone(), "flood-set").base_seed(0x7C9);
    let shards = 2;

    let mut server = std::process::Command::new(env!("CARGO_BIN_EXE_campaign_worker"))
        .args(["--serve", "127.0.0.1:0", "--conns", "2", "--progress"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn shard server");
    let mut announce = String::new();
    std::io::BufReader::new(server.stdout.take().unwrap())
        .read_line(&mut announce)
        .expect("read announce line");
    let addr = announce
        .trim()
        .strip_prefix("listening addr=")
        .unwrap_or_else(|| panic!("unexpected announce line {announce:?}"))
        .to_string();

    let report = Coordinator::new(TcpTransport::new(addr), shards)
        .run_campaign(&spec)
        .expect("TCP-served sweep");
    assert_eq!(
        report,
        scenario_campaign_report(&points, "flood-set", 0x7C9, 0).unwrap()
    );

    // --conns 2 means the server exits cleanly once both shards are served.
    let status = server.wait().expect("server exit");
    assert!(status.success());
}

#[test]
fn worker_binary_rejects_garbage_and_unknown_labels() {
    use ba_dist::{plan_shards, Encode};
    use std::io::Write;
    use std::process::Stdio;

    let run_with_stdin = |input: &str| -> std::process::Output {
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_campaign_worker"))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn worker");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
        child.wait_with_output().unwrap()
    };

    let garbage = run_with_stdin("this is not a manifest\n");
    assert!(!garbage.status.success());
    assert!(String::from_utf8_lossy(&garbage.stderr).contains("bad manifest"));

    let spec = SweepSpec {
        points: vec![CampaignPoint::new(4, 1)],
        mode: ShardMode::Scenarios,
        protocol: "no-such-protocol".into(),
        base_seed: 0,
        worker_threads: 1,
    };
    let unknown = run_with_stdin(&plan_shards(&spec, 1)[0].to_wire());
    assert!(!unknown.status.success());
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("no-such-protocol"));
}
