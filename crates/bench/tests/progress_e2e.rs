//! End-to-end progress pipeline: `campaign_worker --progress` streaming
//! JSONL per-point events, composed through `campaign_watch --once --json`
//! as a filter — the wire report passes through untouched while the
//! telemetry stream is folded into the end-of-run summary, including
//! straggler flagging for a shard throttled by `$CAMPAIGN_WORKER_DELAY_MS`.

use std::io::Write as _;
use std::process::{Command, Stdio};

use ba_dist::{merge_campaign_report, plan_shards, Decode, Encode, ShardReport, SweepSpec};
use ba_sim::{Bit, Campaign, CampaignPoint, ScenarioStats};

fn grid_points() -> Vec<CampaignPoint> {
    Campaign::grid(
        (4..12).map(|n| (n, (n - 1) / 3)),
        &["none", "isolation"],
        &["ones"],
    )
    .points()
    .to_vec()
}

/// Runs one shard's worker binary with `--progress`, optionally throttled,
/// and returns its full stdout (JSONL events interleaved before the wire
/// report).
fn run_worker(manifest_wire: &str, shard: usize, delay_ms: Option<u64>) -> String {
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "ba-progress-e2e-{}-shard{shard}.wire",
        std::process::id()
    ));
    std::fs::write(&path, manifest_wire).expect("write manifest");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign_worker"));
    cmd.arg("--manifest").arg(&path).arg("--progress");
    match delay_ms {
        Some(ms) => cmd.env("CAMPAIGN_WORKER_DELAY_MS", ms.to_string()),
        None => cmd.env_remove("CAMPAIGN_WORKER_DELAY_MS"),
    };
    let output = cmd.output().expect("spawn campaign_worker");
    let _ = std::fs::remove_file(&path);
    assert!(
        output.status.success(),
        "worker shard {shard} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("worker stdout is UTF-8")
}

/// Pipes a captured progress stream through `campaign_watch --once --json`
/// and returns its stdout: passthrough lines plus one summary JSON line.
fn run_watch(stream: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_campaign_watch"))
        .arg("--once")
        .arg("--json")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn campaign_watch");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(stream.as_bytes())
        .expect("feed campaign_watch");
    let output = child.wait_with_output().expect("campaign_watch exit");
    assert!(
        output.status.success(),
        "campaign_watch failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("watch stdout is UTF-8")
}

/// A 2-shard sweep where one worker is wall-clock throttled: the dashboard
/// flags it as the straggler, the sweep completes, and the wire reports —
/// having passed *through* the dashboard filter — still merge to the exact
/// in-process reference.
#[test]
fn throttled_shard_is_flagged_straggler_and_reports_survive_the_filter() {
    let points = grid_points();
    let spec = SweepSpec::scenarios(points.clone(), "dolev-strong")
        .base_seed(0xE2E)
        .worker_threads(1);
    let manifests = plan_shards(&spec, 2);
    assert_eq!(manifests.len(), 2);

    // Shard 0 runs free; shard 1 sleeps 10ms per point, slowing its
    // reported rate by ~3 orders of magnitude without touching any
    // deterministic output.
    let fast = run_worker(&manifests[0].to_wire(), 0, None);
    let slow = run_worker(&manifests[1].to_wire(), 1, Some(10));

    // Each worker emitted one JSONL line per point plus the wire report.
    for (stdout, manifest) in [(&fast, &manifests[0]), (&slow, &manifests[1])] {
        let json_lines = stdout.lines().filter(|l| l.starts_with('{')).count();
        assert_eq!(json_lines, manifest.entries.len());
    }

    let watched = run_watch(&format!("{fast}{slow}"));

    // Non-JSON wire lines passed through untouched. A shard report spans
    // multiple lines (a `shard-report` header then its records), so regroup
    // the passthrough lines at each header before decoding.
    let mut chunks: Vec<String> = Vec::new();
    for line in watched.lines().filter(|l| !l.starts_with('{')) {
        if line.starts_with("shard-report ") {
            chunks.push(String::new());
        }
        let chunk = chunks.last_mut().expect("records preceded their header");
        chunk.push_str(line);
        chunk.push('\n');
    }
    let reports: Vec<ShardReport<ScenarioStats<Bit>>> = chunks
        .iter()
        .map(|c| ShardReport::from_wire(c).expect("wire chunk survived the filter"))
        .collect();
    assert_eq!(reports.len(), 2, "both shard reports must pass through");
    let merged = merge_campaign_report(&points, reports).expect("merge");
    let reference = ba_bench::dist::scenario_campaign_report(&points, "dolev-strong", 0xE2E, 1)
        .expect("reference sweep");
    assert_eq!(merged, reference, "progress pipeline changed the results");

    // The summary line: sweep complete, shard 1 (and only shard 1) flagged.
    let summary = watched
        .lines()
        .find(|l| l.starts_with("{\"type\":\"summary\""))
        .expect("summary JSON line");
    assert!(summary.contains("\"complete\":true"), "{summary}");
    let shard0 = summary.find("\"shard\":0").expect("shard 0 in summary");
    let shard1 = summary.find("\"shard\":1").expect("shard 1 in summary");
    let shard0_obj = &summary[shard0..shard1];
    let shard1_obj = &summary[shard1..];
    assert!(
        shard0_obj.contains("\"straggler\":false"),
        "shard 0 wrongly flagged: {summary}"
    );
    assert!(
        shard1_obj.contains("\"straggler\":true"),
        "throttled shard 1 not flagged: {summary}"
    );
}
