//! The deterministic exhaustive explorer: lazy decision-tree enumeration,
//! parallel frontier fan-out, fingerprint dedup, and delta-debug
//! minimization.
//!
//! The tree's nodes are choice tapes ending in a non-default digit (the
//! root is the empty tape). Running a node's tape yields one execution —
//! the leaf value — and the recorded decision points; every point at a
//! position past the node's explicit digits spawns `arity − 1` children
//! (the non-default alternatives), so each choice vector is generated
//! exactly once and a child's decision-point prefix is fixed by its
//! parent (prefix determinism).
//!
//! Exploration runs in two phases. A sequential breadth-first warm-up
//! expands the tree until the frontier holds [`FRONTIER_TARGET`] nodes
//! (the warm-up is a pure function of the spec, so every slice replays it
//! identically; only slice 0 *banks* its statistics). The frontier
//! subtrees then fan out over [`par_map`] with per-subtree execution
//! budgets derived from the **global** subtree index — which is what
//! makes the outcome independent of both the thread count and the
//! slice split.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Mutex;

use ba_core::lowerbound::{weak_consensus_violation, Certificate, ViolationKind};
use ba_sim::{
    par_map, Adversary, Bit, CompressedExecution, Execution, Payload, PayloadArena, ProcessId,
    Protocol, Scenario,
};

use crate::tape::{PointRec, TapeModel};
use crate::{
    CheckError, CheckOutcome, CheckProgress, CheckReport, CheckSpec, FoundViolation, Replay,
    ViolationKey,
};

/// The warm-up stops once the frontier holds this many subtrees: wide
/// enough to keep every worker of a many-core box busy, small enough that
/// replaying the warm-up on each slice stays negligible.
const FRONTIER_TARGET: usize = 64;

/// Progress snapshots are emitted about once per this many leaves.
const PROGRESS_BATCH: u64 = 64;

/// One leaf evaluation: the recorded branch and its verdict.
struct Leaf {
    points: Vec<PointRec>,
    corrupted: BTreeSet<ProcessId>,
    fingerprint: u64,
    violation: Option<ViolationKind>,
}

/// Statistics of one explored subtree (or warm-up), merged associatively.
#[derive(Default)]
struct SubStats {
    executions: u64,
    violations: u64,
    fingerprints: BTreeSet<u64>,
    max_depth: usize,
    arity_profile: BTreeMap<u32, u64>,
    /// Minimal violating branch seen: selection key, corruption set, tape.
    best: Option<(ViolationKey, BTreeSet<ProcessId>, Vec<u32>)>,
    incomplete: bool,
}

impl SubStats {
    fn absorb_leaf(&mut self, tape: &[u32], leaf: &Leaf) {
        self.executions += 1;
        self.fingerprints.insert(leaf.fingerprint);
        self.max_depth = self.max_depth.max(tape.len());
        for point in &leaf.points {
            *self.arity_profile.entry(point.arity).or_insert(0) += 1;
        }
        if leaf.violation.is_some() {
            self.violations += 1;
            let key = ViolationKey::of(&leaf.points);
            if self.best.as_ref().map_or(true, |(k, _, _)| key < *k) {
                self.best = Some((key, leaf.corrupted.clone(), tape.to_vec()));
            }
        }
    }

    fn merge(&mut self, other: SubStats) {
        self.executions += other.executions;
        self.violations += other.violations;
        self.fingerprints.extend(other.fingerprints);
        self.max_depth = self.max_depth.max(other.max_depth);
        for (arity, count) in other.arity_profile {
            *self.arity_profile.entry(arity).or_insert(0) += count;
        }
        if let Some((key, corrupted, tape)) = other.best {
            if self.best.as_ref().map_or(true, |(k, _, _)| key < *k) {
                self.best = Some((key, corrupted, tape));
            }
        }
        self.incomplete |= other.incomplete;
    }
}

/// Shared per-process progress accounting (telemetry only — never feeds
/// back into exploration decisions).
struct ProgressState {
    executions: u64,
    states: BTreeSet<u64>,
    depth: usize,
    since_emit: u64,
}

struct ProgressSink<'a> {
    hook: &'a (dyn Fn(CheckProgress) + Sync),
    state: Mutex<ProgressState>,
}

impl ProgressSink<'_> {
    fn note(&self, fingerprint: u64, depth: usize, flush: bool) {
        let mut state = self.state.lock().expect("progress lock poisoned");
        state.executions += 1;
        state.states.insert(fingerprint);
        state.depth = state.depth.max(depth);
        state.since_emit += 1;
        if flush || state.since_emit >= PROGRESS_BATCH {
            state.since_emit = 0;
            let snapshot = CheckProgress {
                executions: state.executions,
                states: state.states.len() as u64,
                depth: state.depth,
            };
            drop(state);
            (self.hook)(snapshot);
        }
    }

    fn flush(&self) {
        let state = self.state.lock().expect("progress lock poisoned");
        let snapshot = CheckProgress {
            executions: state.executions,
            states: state.states.len() as u64,
            depth: state.depth,
        };
        drop(state);
        (self.hook)(snapshot);
    }
}

/// Runs one tape: interprets it through a [`TapeModel`], fingerprints the
/// execution through `arena`, and classifies the verdict.
fn run_leaf<P, F>(
    spec: &CheckSpec<P::Msg>,
    subsets: &[BTreeSet<ProcessId>],
    factory: &F,
    proposals: &[Bit],
    tape: &[u32],
    arena: &mut PayloadArena<P::Msg>,
) -> Result<Leaf, CheckError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let mut model = TapeModel::new(spec, subsets, tape);
    let execution = Scenario::config(&spec.cfg)
        .protocol(factory)
        .inputs(proposals.iter().cloned())
        .adversary(Adversary::model(&mut model))
        .run()?;
    let fingerprint = CompressedExecution::compress(&execution, arena).fingerprint(arena);
    let violation = classify(&execution);
    Ok(Leaf {
        points: model.points().to_vec(),
        corrupted: model.corrupted().clone(),
        fingerprint,
        violation,
    })
}

/// Full weak-consensus verdict of one execution: the shared
/// Termination/Agreement scan, plus Weak Validity on fully correct
/// uniform-proposal executions (the only ones it constrains).
fn classify<M: Payload>(execution: &Execution<Bit, Bit, M>) -> Option<ViolationKind> {
    if let Some(kind) = weak_consensus_violation(execution) {
        return Some(kind);
    }
    if !execution.faulty.is_empty() {
        return None;
    }
    let proposed = execution.records.first()?.proposal;
    if execution.records.iter().any(|r| r.proposal != proposed) {
        return None;
    }
    for process in execution.correct() {
        if let Some(decided) = execution.decision_of(process) {
            if *decided != proposed {
                return Some(ViolationKind::WeakValidity {
                    process,
                    proposed,
                    decided: *decided,
                });
            }
        }
    }
    None
}

/// The children of a node: every non-default alternative at every
/// decision point past the node's explicit digits, in `(position,
/// choice)` order.
fn children(tape: &[u32], points: &[PointRec]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for (position, point) in points.iter().enumerate().skip(tape.len()) {
        for choice in 1..point.arity {
            let mut child = Vec::with_capacity(position + 1);
            child.extend_from_slice(tape);
            child.resize(position, 0);
            child.push(choice);
            out.push(child);
        }
    }
    out
}

/// Direct interpretation of one tape (the public [`crate::replay`]).
pub(crate) fn interpret<P, F>(
    spec: &CheckSpec<P::Msg>,
    subsets: &[BTreeSet<ProcessId>],
    factory: &F,
    proposals: &[Bit],
    choices: &[u32],
) -> Result<Replay<P::Msg>, CheckError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    interpret_recorded(spec, subsets, factory, proposals, choices).map(|(replay, _)| replay)
}

/// [`interpret`], also returning the recorded decision points (whose
/// clamped choices define the canonical key of the tape).
fn interpret_recorded<P, F>(
    spec: &CheckSpec<P::Msg>,
    subsets: &[BTreeSet<ProcessId>],
    factory: &F,
    proposals: &[Bit],
    choices: &[u32],
) -> Result<(Replay<P::Msg>, Vec<PointRec>), CheckError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let mut model = TapeModel::new(spec, subsets, choices);
    let execution = Scenario::config(&spec.cfg)
        .protocol(factory)
        .inputs(proposals.iter().cloned())
        .adversary(Adversary::model(&mut model))
        .run()?;
    let violation = classify(&execution);
    let points = model.points().to_vec();
    let mut canonical: Vec<u32> = points.iter().map(|p| p.choice).collect();
    while canonical.last() == Some(&0) {
        canonical.pop();
    }
    let replay = Replay {
        execution,
        corrupted: model.corrupted().clone(),
        choices: canonical,
        violation,
    };
    Ok((replay, points))
}

/// Depth-first exhaustion of one frontier subtree under a leaf budget.
fn dfs_subtree<P, F>(
    spec: &CheckSpec<P::Msg>,
    subsets: &[BTreeSet<ProcessId>],
    factory: &F,
    proposals: &[Bit],
    root: Vec<u32>,
    budget: u64,
    progress: Option<&ProgressSink<'_>>,
) -> Result<SubStats, CheckError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let mut stats = SubStats::default();
    let mut arena = PayloadArena::new();
    let mut stack = vec![root];
    while let Some(tape) = stack.pop() {
        if stats.executions >= budget {
            stats.incomplete = true;
            break;
        }
        let leaf = run_leaf(spec, subsets, factory, proposals, &tape, &mut arena)?;
        if let Some(sink) = progress {
            sink.note(leaf.fingerprint, tape.len(), false);
        }
        let offspring = children(&tape, &leaf.points);
        stats.absorb_leaf(&tape, &leaf);
        stack.extend(offspring.into_iter().rev());
    }
    if let Some(sink) = progress {
        sink.flush();
    }
    Ok(stats)
}

/// The full exploration: warm-up, frontier fan-out, minimization.
pub(crate) fn run<P, F>(
    spec: &CheckSpec<P::Msg>,
    factory: &F,
    proposals: &[Bit],
    threads: usize,
    hook: Option<&(dyn Fn(CheckProgress) + Sync)>,
) -> Result<CheckOutcome<P::Msg>, CheckError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
{
    let (slice_index, slice_of) = spec.slice;
    assert!(slice_of >= 1 && slice_index < slice_of, "invalid slice");
    let subsets = spec.corruption_subsets()?;
    let progress = hook.map(|hook| ProgressSink {
        hook,
        state: Mutex::new(ProgressState {
            executions: 0,
            states: BTreeSet::new(),
            depth: 0,
            since_emit: 0,
        }),
    });
    let progress = progress.as_ref();

    // Phase 1: sequential breadth-first warm-up, identical on every
    // slice. Only slice 0 banks the warm-up leaves; the others replay the
    // expansion purely to reconstruct the same frontier.
    let mut stats = SubStats::default();
    let mut warmup_arena = PayloadArena::new();
    let mut warmup_executions = 0u64;
    let mut queue: VecDeque<Vec<u32>> = VecDeque::from([Vec::new()]);
    while queue.len() < FRONTIER_TARGET {
        let Some(tape) = queue.pop_front() else { break };
        if warmup_executions >= spec.max_executions {
            stats.incomplete = true;
            queue.clear();
            break;
        }
        let leaf = run_leaf(spec, &subsets, factory, proposals, &tape, &mut warmup_arena)?;
        warmup_executions += 1;
        if let Some(sink) = progress {
            sink.note(leaf.fingerprint, tape.len(), false);
        }
        queue.extend(children(&tape, &leaf.points));
        if slice_index == 0 {
            stats.absorb_leaf(&tape, &leaf);
        }
    }

    // Phase 2: fan the frontier out. Budgets split the remaining cap by
    // *global* subtree index, so every slice computes the same per-subtree
    // budget regardless of which subtrees it owns.
    let frontier: Vec<Vec<u32>> = queue.into_iter().collect();
    if !frontier.is_empty() {
        let remaining = spec.max_executions.saturating_sub(warmup_executions);
        let total = frontier.len() as u64;
        let (per_subtree, extra) = (remaining / total, remaining % total);
        let owned: Vec<(u64, Vec<u32>)> = frontier
            .into_iter()
            .enumerate()
            .filter(|(global, _)| global % slice_of == slice_index)
            .map(|(global, tape)| (global as u64, tape))
            .collect();
        let results = par_map(owned, threads, |_, (global, tape)| {
            let budget = per_subtree + u64::from(global < extra);
            dfs_subtree(spec, &subsets, factory, proposals, tape, budget, progress)
        });
        for result in results {
            stats.merge(result?);
        }
    }
    if let Some(sink) = progress {
        sink.flush();
    }

    let report = CheckReport {
        executions: stats.executions,
        fingerprints: stats.fingerprints,
        max_depth: stats.max_depth,
        arity_profile: stats.arity_profile,
        violations: stats.violations,
        complete: !stats.incomplete,
    };
    match stats.best {
        None => Ok(CheckOutcome::Exhausted(report)),
        Some((key, _, tape)) => {
            let violation = minimize::<P, F>(spec, &subsets, factory, proposals, tape, key)?;
            Ok(CheckOutcome::Violation(Box::new(violation), report))
        }
    }
}

/// Greedy delta-debug shrink of a violating tape, then certification.
///
/// Each pass tries lowering one non-default digit toward the default; a
/// candidate is accepted only when its replay still violates *and* its
/// canonical key strictly decreased (which also guarantees termination).
/// On complete explorations the input is globally minimal and shrinking
/// is a provable no-op; under a budget cap it walks the violation down to
/// a local minimum. The final replay *is* the certificate's execution, so
/// certificates can never go stale relative to their trace.
fn minimize<P, F>(
    spec: &CheckSpec<P::Msg>,
    subsets: &[BTreeSet<ProcessId>],
    factory: &F,
    proposals: &[Bit],
    tape: Vec<u32>,
    discovery_key: ViolationKey,
) -> Result<FoundViolation<P::Msg>, CheckError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let (mut current, points) = interpret_recorded(spec, subsets, factory, proposals, &tape)?;
    let mut key = ViolationKey::of(&points);

    loop {
        let mut improved = false;
        'candidates: for position in 0..current.choices.len() {
            if current.choices[position] == 0 {
                continue;
            }
            for lowered in 0..current.choices[position] {
                let mut candidate = current.choices.clone();
                candidate[position] = lowered;
                let (replayed, candidate_points) =
                    interpret_recorded(spec, subsets, factory, proposals, &candidate)?;
                if replayed.violation.is_none() {
                    continue;
                }
                let candidate_key = ViolationKey::of(&candidate_points);
                if candidate_key < key {
                    current = replayed;
                    key = candidate_key;
                    improved = true;
                    break 'candidates;
                }
            }
        }
        if !improved {
            break;
        }
    }

    let kind = current
        .violation
        .expect("minimization preserves the violation");
    let provenance = vec![format!(
        "exhaustive model check: corrupted {{{}}}, choice tape {:?} ({} non-default choices)",
        current
            .corrupted
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        current.choices,
        key.weight,
    )];
    Ok(FoundViolation {
        corrupted: current.corrupted,
        choices: current.choices,
        key: discovery_key,
        certificate: Certificate {
            execution: current.execution,
            kind,
            provenance,
        },
    })
}

#[cfg(test)]
mod tests {
    use ba_protocols::broken::OneRoundAllToAll;
    use ba_sim::{Bit, ExecutorConfig, ProcessId};

    use crate::{check, merge_outcomes, replay, CheckOutcome, CheckSpec};

    fn one_round_spec() -> CheckSpec<Bit> {
        CheckSpec::new(ExecutorConfig::new(4, 1), 1).send_only()
    }

    #[test]
    fn broken_one_round_protocol_yields_a_minimal_replayable_violation() {
        let spec = one_round_spec();
        let proposals = [Bit::Zero; 4];
        let outcome = check(&spec, |_| OneRoundAllToAll::new(), &proposals, 1).unwrap();
        let violation = outcome.violation().expect("the protocol is broken");

        // Shrunk to a single corruption and a single omission.
        assert_eq!(violation.corrupted.len(), 1);
        assert_eq!(
            violation.choices.iter().filter(|&&c| c != 0).count(),
            2,
            "one corruption digit + one omission digit: {:?}",
            violation.choices
        );
        violation.certificate.verify().unwrap();

        // The shrunk tape replays to the same violation under direct
        // fault-model interpretation.
        let replayed = replay(
            &spec,
            |_| OneRoundAllToAll::new(),
            &proposals,
            &violation.choices,
        )
        .unwrap();
        assert_eq!(replayed.violation, Some(violation.certificate.kind));
        assert_eq!(replayed.choices, violation.choices);
        assert_eq!(replayed.execution, violation.certificate.execution);

        let report = outcome.report();
        assert!(report.complete, "the tiny space must be exhausted");
        // Root + 4 single-corruption subtrees of 2^3 omission patterns.
        assert_eq!(report.executions, 33);
        assert!(report.violations > 0);
    }

    #[test]
    fn correct_inputs_produce_an_exhaustiveness_certificate() {
        let spec = one_round_spec();
        let proposals = [Bit::One; 4];
        let outcome = check(&spec, |_| OneRoundAllToAll::new(), &proposals, 1).unwrap();
        let report = match outcome {
            CheckOutcome::Exhausted(report) => report,
            CheckOutcome::Violation(v, _) => panic!("unexpected violation: {:?}", v.certificate),
        };
        assert!(report.complete);
        assert_eq!(report.executions, 33);
        assert_eq!(report.violations, 0);
        // Every branch differs in its faulty set or delivery pattern, so
        // each of the 33 executions is its own state here.
        assert_eq!(report.states(), 33);
    }

    #[test]
    fn thread_counts_do_not_change_the_outcome() {
        let spec = one_round_spec();
        for proposals in [[Bit::Zero; 4], [Bit::One; 4]] {
            let lone = check(&spec, |_| OneRoundAllToAll::new(), &proposals, 1).unwrap();
            let wide = check(&spec, |_| OneRoundAllToAll::new(), &proposals, 8).unwrap();
            assert_eq!(lone, wide);
        }
    }

    #[test]
    fn slices_merge_to_the_unsharded_outcome() {
        for proposals in [[Bit::Zero; 4], [Bit::One; 4]] {
            let whole = check(
                &one_round_spec(),
                |_| OneRoundAllToAll::new(),
                &proposals,
                2,
            )
            .unwrap();
            let shards: Vec<_> = (0..3)
                .map(|i| {
                    check(
                        &one_round_spec().slice(i, 3),
                        |_| OneRoundAllToAll::new(),
                        &proposals,
                        2,
                    )
                    .unwrap()
                })
                .collect();
            assert_eq!(merge_outcomes(&shards), whole);
        }
    }

    #[test]
    fn execution_budgets_cap_the_exploration_and_mark_it_incomplete() {
        let spec = one_round_spec().max_executions(5);
        let proposals = [Bit::One; 4];
        let outcome = check(&spec, |_| OneRoundAllToAll::new(), &proposals, 1).unwrap();
        let report = outcome.report();
        assert!(!report.complete);
        assert!(report.executions <= 5);
    }

    #[test]
    fn capped_violation_search_still_merges_exactly() {
        // A budget that truncates phase 2 mid-subtree: merge(k) == run(1)
        // must hold even though each slice hits its caps at different
        // local points, because budgets key off the global subtree index.
        let spec = one_round_spec().max_executions(17);
        let proposals = [Bit::Zero; 4];
        let whole = check(&spec, |_| OneRoundAllToAll::new(), &proposals, 1).unwrap();
        let shards: Vec<_> = (0..3)
            .map(|i| {
                check(
                    &one_round_spec().max_executions(17).slice(i, 3),
                    |_| OneRoundAllToAll::new(),
                    &proposals,
                    2,
                )
                .unwrap()
            })
            .collect();
        assert_eq!(merge_outcomes(&shards), whole);
    }

    #[test]
    fn reordering_branches_are_explored_and_deduplicated() {
        // n = 2: the per-round delivery queue holds exactly two envelopes,
        // so reordering contributes one binary decision point per round.
        // Delivery order is semantically inert for this protocol, so the
        // permuted executions collapse to one fingerprint.
        let spec: CheckSpec<Bit> = CheckSpec::new(ExecutorConfig::new(2, 1), 1).reorder(true);
        let proposals = [Bit::Zero; 2];
        let outcome = check(&spec, |_| OneRoundAllToAll::new(), &proposals, 1).unwrap();
        let report = outcome.report().clone();
        assert!(report.complete);
        assert!(report.executions > 1, "the swap branch must be explored");
        assert!(
            report.states() < report.executions,
            "permutation-equivalent executions must deduplicate: {} states / {} executions",
            report.states(),
            report.executions
        );
    }

    #[test]
    fn forged_payloads_reach_byzantine_violations_omissions_cannot() {
        // Proposals (1, 0, 0): omissions only ever push receivers toward
        // deciding 1, which every correct process does anyway. Forging
        // process 0's report down to 0 toward exactly one receiver splits
        // the correct processes — a genuinely Byzantine counterexample.
        let spec: CheckSpec<Bit> = CheckSpec::new(ExecutorConfig::new(3, 1), 1)
            .static_corruption([ProcessId(0)])
            .forge([Bit::Zero, Bit::One]);
        let proposals = [Bit::One, Bit::Zero, Bit::Zero];
        let outcome = check(&spec, |_| OneRoundAllToAll::new(), &proposals, 1).unwrap();
        let violation = outcome.violation().expect("forging splits the receivers");
        violation.certificate.verify().unwrap();
        assert_eq!(
            violation.choices.iter().filter(|&&c| c != 0).count(),
            1,
            "a single forged edge suffices: {:?}",
            violation.choices
        );
        let replayed = replay(
            &spec,
            |_| OneRoundAllToAll::new(),
            &proposals,
            &violation.choices,
        )
        .unwrap();
        assert_eq!(replayed.violation, Some(violation.certificate.kind));
    }

    #[test]
    fn progress_hooks_observe_without_perturbing() {
        use std::sync::Mutex;

        let spec = one_round_spec();
        let proposals = [Bit::Zero; 4];
        let snapshots = Mutex::new(Vec::new());
        let hook = |p: crate::CheckProgress| snapshots.lock().unwrap().push(p);
        let observed = crate::check_with_progress(
            &spec,
            |_| OneRoundAllToAll::new(),
            &proposals,
            1,
            Some(&hook),
        )
        .unwrap();
        let silent = check(&spec, |_| OneRoundAllToAll::new(), &proposals, 1).unwrap();
        assert_eq!(observed, silent);

        let snapshots = snapshots.into_inner().unwrap();
        let last = snapshots.last().expect("at least one snapshot");
        assert_eq!(last.executions, observed.report().executions);
        assert_eq!(last.states, observed.report().states());
    }
}
