//! # ba-check — exhaustive adversary-space model checking
//!
//! The paper's lower bounds quantify over *all* adversaries; the falsifier
//! follows one proof path and the prober samples. This crate closes the
//! remaining gap for **small `(n, t)` instances** by enumeration: it
//! branches over every decision point of the trait-based fault layer —
//! which corruption set to charge, each in-horizon message's fate
//! (deliver / send-omit / receive-omit / forge), and optionally the
//! within-round delivery order — and runs the protocol on every branch,
//! checking Termination, Agreement, and Weak Validity.
//!
//! The exploration is a lazy decision tree. A branch is a **choice tape**
//! (digits, one per decision point, `0` = "no fault"); running a tape
//! through the [`TapeModel`] fault model both produces the execution and
//! *records* the decision points it encountered, which is exactly what is
//! needed to enumerate the tape's children. The explorer:
//!
//! * runs a sequential breadth-first warm-up until the frontier is wide
//!   enough, then fans the frontier subtrees out over
//!   [`ba_sim::par_map`] — results are merged in deterministic order, so
//!   the outcome is **bit-identical at every thread count**;
//! * hash-conses every visited execution through
//!   [`ba_sim::PayloadArena`] / [`ba_sim::CompressedExecution`] and
//!   deduplicates states by the content-addressed
//!   [`fingerprint`](ba_sim::CompressedExecution::fingerprint) — distinct
//!   adversary branches that produce the same execution count as one
//!   state;
//! * supports **sharding**: [`CheckSpec::slice`] assigns each shard a
//!   residue class of the frontier subtrees, and
//!   [`merge_outcomes`] recombines shard outcomes such that
//!   `merge(k slices) == run(1)` exactly, on both violation and
//!   exhausted outcomes;
//! * emits either a **minimal, replayable violation** (delta-debug
//!   shrunk, re-validated by [`Certificate::verify`]) or an
//!   **exhaustiveness certificate** ([`CheckReport`]: state count,
//!   frontier depth, branching profile, whether the execution budget was
//!   exhausted).
//!
//! Minimality is measured by [`ViolationKey`]: fewest non-default choices
//! first, then positionally by stable decision-point rank. On the
//! single-corruption omission subspace this ordering coincides with the
//! legacy `exhaustive_omission_check` popcount-then-mask order, so the two
//! checkers return identical minimal certificates there — a property the
//! differential test suite pins for every protocol in `ba-protocols`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explore;
mod tape;

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use ba_core::lowerbound::{Certificate, ViolationKind};
use ba_sim::{Bit, Execution, ExecutorConfig, Payload, ProcessId, Protocol, SimError};

pub use tape::{PointRec, TapeModel, CORRUPTION_RANK, MAX_REORDER_QUEUE};

/// Default ceiling on executions explored per check (the budget cap a
/// [`CheckReport`] reports against).
pub const DEFAULT_MAX_EXECUTIONS: u64 = 1 << 20;

/// Ceiling on the corruption decision point's arity; a larger corruption
/// space is refused up front with [`CheckError::SpaceTooLarge`].
pub const MAX_CORRUPTION_CHOICES: u64 = 1 << 16;

/// Which corruption sets the explorer branches over.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CorruptionSpace {
    /// Exactly this set, in every branch (no corruption decision point).
    Static(BTreeSet<ProcessId>),
    /// Every subset of the processes with at most `min(b, t)` members,
    /// enumerated size-ascending then lexicographically — the empty
    /// (fault-free) set is the default choice.
    UpTo(usize),
}

/// The instance and adversary space of one exhaustive check.
///
/// Embeds the exact [`ExecutorConfig`] the scenarios run under, so a
/// check explores precisely the executions other tools (falsifier, legacy
/// exhaustive checker) would construct for the same configuration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckSpec<M> {
    /// Executor configuration (n, t, horizon, quiescence).
    pub cfg: ExecutorConfig,
    /// The corruption sets to branch over.
    pub corruption: CorruptionSpace,
    /// Rounds in which the adversary may act (later rounds always deliver
    /// in natural order) — the fault horizon, as in the legacy checker.
    pub rounds: u64,
    /// Branch over send-omissions of corrupted senders.
    pub send_omissions: bool,
    /// Branch over receive-omissions of corrupted receivers.
    pub receive_omissions: bool,
    /// Payloads a corrupted sender may forge in place of its real message
    /// (empty = omission-only). A forged payload equal to the real one is
    /// never offered as a choice.
    pub forge_payloads: Vec<M>,
    /// Branch over within-round delivery reorderings (queues of up to
    /// [`MAX_REORDER_QUEUE`] messages).
    pub reorder: bool,
    /// Budget cap: the explorer stops branching after this many
    /// executions and reports `complete = false`.
    pub max_executions: u64,
    /// Shard assignment `(index, of)`: this check explores the frontier
    /// subtrees whose global index is `index` modulo `of`. `(0, 1)` is the
    /// whole space; [`merge_outcomes`] over all `of` slices reproduces it
    /// exactly.
    pub slice: (usize, usize),
}

impl<M: Payload> CheckSpec<M> {
    /// A spec exploring both omission directions for every corruption set
    /// of size ≤ `t` over the first `rounds` rounds.
    pub fn new(cfg: ExecutorConfig, rounds: u64) -> Self {
        CheckSpec {
            corruption: CorruptionSpace::UpTo(cfg.t),
            cfg,
            rounds,
            send_omissions: true,
            receive_omissions: true,
            forge_payloads: Vec::new(),
            reorder: false,
            max_executions: DEFAULT_MAX_EXECUTIONS,
            slice: (0, 1),
        }
    }

    /// Fixes the corruption set (no corruption decision point).
    pub fn static_corruption(mut self, set: impl IntoIterator<Item = ProcessId>) -> Self {
        self.corruption = CorruptionSpace::Static(set.into_iter().collect());
        self
    }

    /// Branches over all corruption sets of size ≤ `min(b, t)`.
    pub fn up_to(mut self, b: usize) -> Self {
        self.corruption = CorruptionSpace::UpTo(b);
        self
    }

    /// Restricts omission branching to send-omissions.
    pub fn send_only(mut self) -> Self {
        self.receive_omissions = false;
        self
    }

    /// Lets corrupted senders forge these payloads.
    pub fn forge(mut self, payloads: impl IntoIterator<Item = M>) -> Self {
        self.forge_payloads = payloads.into_iter().collect();
        self
    }

    /// Enables delivery-reorder branching.
    pub fn reorder(mut self, on: bool) -> Self {
        self.reorder = on;
        self
    }

    /// Sets the execution budget cap.
    pub fn max_executions(mut self, cap: u64) -> Self {
        self.max_executions = cap;
        self
    }

    /// Assigns this check shard `index` of `of`.
    ///
    /// # Panics
    ///
    /// Panics unless `index < of`.
    pub fn slice(mut self, index: usize, of: usize) -> Self {
        assert!(index < of, "slice index {index} out of {of}");
        self.slice = (index, of);
        self
    }

    /// The corruption space in canonical enumeration order: the branch
    /// options of the corruption decision point, choice `0` first.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::SpaceTooLarge`] when an [`CorruptionSpace::UpTo`]
    /// space exceeds [`MAX_CORRUPTION_CHOICES`] subsets.
    pub fn corruption_subsets(&self) -> Result<Vec<BTreeSet<ProcessId>>, CheckError> {
        match &self.corruption {
            CorruptionSpace::Static(set) => Ok(vec![set.clone()]),
            CorruptionSpace::UpTo(b) => {
                let n = self.cfg.n;
                let b = (*b).min(self.cfg.t);
                let choices: u64 = (0..=b).map(|k| binomial(n, k)).fold(0, u64::saturating_add);
                if choices > MAX_CORRUPTION_CHOICES {
                    return Err(CheckError::SpaceTooLarge {
                        choices,
                        cap: MAX_CORRUPTION_CHOICES,
                    });
                }
                let mut subsets = Vec::with_capacity(choices as usize);
                for k in 0..=b {
                    combinations(n, k, &mut subsets);
                }
                Ok(subsets)
            }
        }
    }
}

/// `C(n, k)`, saturating.
fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i + 1) as u128;
        if acc > u128::from(u64::MAX) {
            return u64::MAX;
        }
    }
    acc as u64
}

/// Appends every size-`k` subset of `0..n` in lexicographic order.
fn combinations(n: usize, k: usize, out: &mut Vec<BTreeSet<ProcessId>>) {
    if k > n {
        return;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|i| ProcessId(*i)).collect());
        // Advance to the next combination: bump the rightmost index that
        // is not yet at its ceiling, then repack everything after it.
        let mut i = k;
        while i > 0 && idx[i - 1] == i - 1 + n - k {
            i -= 1;
        }
        if i == 0 {
            return;
        }
        idx[i - 1] += 1;
        for j in i..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Why a check could not run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckError {
    /// The corruption space alone exceeds the supported arity — shrink
    /// `n` or the corruption bound.
    SpaceTooLarge {
        /// Number of corruption choices the spec asks for.
        choices: u64,
        /// The supported ceiling ([`MAX_CORRUPTION_CHOICES`]).
        cap: u64,
    },
    /// The simulator rejected a constructed scenario.
    Sim(SimError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::SpaceTooLarge { choices, cap } => write!(
                f,
                "corruption space has {choices} choices, above the cap of {cap}; shrink the bounds"
            ),
            CheckError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl Error for CheckError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckError::SpaceTooLarge { .. } => None,
            CheckError::Sim(e) => Some(e),
        }
    }
}

impl From<SimError> for CheckError {
    fn from(e: SimError) -> Self {
        CheckError::Sim(e)
    }
}

/// Total order of violating adversary branches: fewest non-default
/// choices first ([`weight`](ViolationKey::weight)), then positionally by
/// decision-point rank. The derived lexicographic order over the
/// rank-descending digit list makes "smaller key" mean "numerically
/// smaller adversary mask" on the legacy checker's subspace, so the two
/// checkers agree on which violation is *the* minimal one.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct ViolationKey {
    /// Number of non-default choices (the legacy mask's popcount).
    pub weight: usize,
    /// The non-default `(rank, choice)` digits, sorted rank-descending.
    pub digits: Vec<(u64, u32)>,
}

impl ViolationKey {
    /// The key of a recorded decision-point sequence.
    pub fn of(points: &[PointRec]) -> Self {
        let mut digits: Vec<(u64, u32)> = points
            .iter()
            .filter(|p| p.choice != 0)
            .map(|p| (p.rank, p.choice))
            .collect();
        digits.sort_unstable_by(|a, b| b.cmp(a));
        ViolationKey {
            weight: digits.len(),
            digits,
        }
    }
}

/// The minimal violation an exhaustive check found.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FoundViolation<M> {
    /// The corruption set the violating branch charges.
    pub corrupted: BTreeSet<ProcessId>,
    /// The delta-debug shrunk choice tape; [`replay`] it to reproduce the
    /// certificate's execution exactly.
    pub choices: Vec<u32>,
    /// The selection key of the minimal violation *as discovered* during
    /// enumeration (the key shards are merged by). Equal to the key of
    /// [`choices`](FoundViolation::choices) whenever the exploration ran
    /// to completion — shrinking a globally minimal branch is a no-op.
    pub key: ViolationKey,
    /// The violating execution with its verified claim.
    pub certificate: Certificate<M>,
}

/// The exhaustiveness statistics of a check — the certificate side of an
/// [`CheckOutcome::Exhausted`] outcome, and context for violations.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CheckReport {
    /// Executions explored (leaves run) by this check/slice.
    pub executions: u64,
    /// Canonical fingerprints of the distinct states visited. Slices
    /// union these, so the merged state count is exact, not a sum of
    /// overlapping counts.
    pub fingerprints: BTreeSet<u64>,
    /// Deepest explored node, in non-default tree depth (explicit tape
    /// digits).
    pub max_depth: usize,
    /// Branching profile: how many decision points of each arity were
    /// encountered, summed over all executions.
    pub arity_profile: BTreeMap<u32, u64>,
    /// Number of violating executions encountered (before minimization).
    pub violations: u64,
    /// `false` iff the [`CheckSpec::max_executions`] budget cap was hit
    /// and part of the tree was left unexplored.
    pub complete: bool,
}

impl CheckReport {
    /// Number of distinct states visited (deduplicated by fingerprint).
    pub fn states(&self) -> u64 {
        self.fingerprints.len() as u64
    }

    /// Folds `other` into `self`: counts add, fingerprints union,
    /// completeness ANDs.
    pub fn absorb(&mut self, other: &CheckReport) {
        self.executions += other.executions;
        self.fingerprints.extend(other.fingerprints.iter().copied());
        self.max_depth = self.max_depth.max(other.max_depth);
        for (arity, count) in &other.arity_profile {
            *self.arity_profile.entry(*arity).or_insert(0) += count;
        }
        self.violations += other.violations;
        self.complete &= other.complete;
    }
}

/// The outcome of an exhaustive check (or of merging shard outcomes).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckOutcome<M> {
    /// At least one branch violates weak consensus; the boxed violation is
    /// the minimal one.
    Violation(Box<FoundViolation<M>>, CheckReport),
    /// No explored branch violates weak consensus. When
    /// [`CheckReport::complete`] also holds, this is a
    /// proof-by-enumeration for the spec's whole adversary space.
    Exhausted(CheckReport),
}

impl<M: Payload> CheckOutcome<M> {
    /// The minimal violation, if one was found.
    pub fn violation(&self) -> Option<&FoundViolation<M>> {
        match self {
            CheckOutcome::Violation(v, _) => Some(v),
            CheckOutcome::Exhausted(_) => None,
        }
    }

    /// The certificate of the minimal violation, if one was found.
    pub fn certificate(&self) -> Option<&Certificate<M>> {
        self.violation().map(|v| &v.certificate)
    }

    /// The exhaustiveness statistics.
    pub fn report(&self) -> &CheckReport {
        match self {
            CheckOutcome::Violation(_, r) | CheckOutcome::Exhausted(r) => r,
        }
    }

    /// `true` iff no violation was found *and* the space was fully
    /// explored within budget.
    pub fn is_proof(&self) -> bool {
        matches!(self, CheckOutcome::Exhausted(r) if r.complete)
    }
}

/// Merges shard outcomes into the outcome of the unsharded run:
/// `merge(run over slice 0/k, …, run over slice k-1/k) == run over (0, 1)`
/// bit-for-bit, on both variants. Reports fold via
/// [`CheckReport::absorb`]; the minimal violation is the key-minimal one
/// across shards (keys are unambiguous — equal keys denote the identical
/// branch).
///
/// # Panics
///
/// Panics on an empty slice of outcomes.
pub fn merge_outcomes<M: Payload>(outcomes: &[CheckOutcome<M>]) -> CheckOutcome<M> {
    assert!(!outcomes.is_empty(), "nothing to merge");
    let mut report = CheckReport {
        complete: true,
        ..CheckReport::default()
    };
    let mut best: Option<&FoundViolation<M>> = None;
    for outcome in outcomes {
        report.absorb(outcome.report());
        if let Some(v) = outcome.violation() {
            if best.map_or(true, |b| v.key < b.key) {
                best = Some(v);
            }
        }
    }
    match best {
        Some(v) => CheckOutcome::Violation(Box::new(v.clone()), report),
        None => CheckOutcome::Exhausted(report),
    }
}

/// A snapshot streamed to a progress hook while a check runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CheckProgress {
    /// Executions explored so far by this check process.
    pub executions: u64,
    /// Distinct states (fingerprints) seen so far by this check process.
    pub states: u64,
    /// Deepest frontier node explored so far.
    pub depth: usize,
}

/// One replayed adversary branch: the direct [`TapeModel`] interpretation
/// of a choice tape, with its recorded canonical form and verdict.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Replay<M> {
    /// The produced execution.
    pub execution: Execution<Bit, Bit, M>,
    /// The corruption set the tape selected.
    pub corrupted: BTreeSet<ProcessId>,
    /// The canonical choice digits actually consumed (out-of-range input
    /// digits collapse to `0`; trailing defaults are trimmed).
    pub choices: Vec<u32>,
    /// The weak-consensus violation this branch exhibits, if any.
    pub violation: Option<ViolationKind>,
}

/// Runs one choice tape through the fault layer — the "direct `FaultModel`
/// interpretation" a shrunk trace must replay under.
///
/// # Errors
///
/// Propagates [`CheckError`] from spec validation and the simulator.
pub fn replay<P, F>(
    spec: &CheckSpec<P::Msg>,
    factory: F,
    proposals: &[Bit],
    choices: &[u32],
) -> Result<Replay<P::Msg>, CheckError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let subsets = spec.corruption_subsets()?;
    explore::interpret(spec, &subsets, &factory, proposals, choices)
}

/// Exhaustively explores the spec's adversary space.
///
/// Deterministic: the outcome is bit-identical for every `threads` value
/// (`0` = auto), and [`merge_outcomes`] over a full set of
/// [`CheckSpec::slice`] shards reproduces the unsharded outcome exactly.
///
/// # Errors
///
/// Returns [`CheckError::SpaceTooLarge`] for oversized corruption spaces
/// and propagates simulator errors.
pub fn check<P, F>(
    spec: &CheckSpec<P::Msg>,
    factory: F,
    proposals: &[Bit],
    threads: usize,
) -> Result<CheckOutcome<P::Msg>, CheckError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
{
    check_with_progress(spec, factory, proposals, threads, None)
}

/// [`check`], streaming [`CheckProgress`] snapshots to `hook` as the
/// exploration advances (roughly once per state batch and at every task
/// boundary). The hook observes *this process's* work — including the
/// deterministic warm-up a non-zero slice replays without banking — so a
/// dashboard can show live states/s per shard. Telemetry is
/// observation-only: the outcome is identical with and without a hook.
///
/// # Errors
///
/// See [`check`].
pub fn check_with_progress<P, F>(
    spec: &CheckSpec<P::Msg>,
    factory: F,
    proposals: &[Bit],
    threads: usize,
    hook: Option<&(dyn Fn(CheckProgress) + Sync)>,
) -> Result<CheckOutcome<P::Msg>, CheckError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
{
    explore::run(spec, &factory, proposals, threads, hook)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomials_are_exact_for_small_instances() {
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(4, 1), 4);
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(3, 4), 0);
    }

    #[test]
    fn corruption_subsets_enumerate_size_then_lex() {
        let spec: CheckSpec<Bit> = CheckSpec::new(ExecutorConfig::new(3, 2), 1);
        let subsets = spec.corruption_subsets().unwrap();
        let rendered: Vec<Vec<usize>> = subsets
            .iter()
            .map(|s| s.iter().map(|p| p.0).collect())
            .collect();
        assert_eq!(
            rendered,
            vec![
                vec![],
                vec![0],
                vec![1],
                vec![2],
                vec![0, 1],
                vec![0, 2],
                vec![1, 2],
            ]
        );
    }

    #[test]
    fn oversized_corruption_spaces_are_refused() {
        let mut cfg = ExecutorConfig::new(40, 39);
        cfg.max_rounds = 1;
        let spec: CheckSpec<Bit> = CheckSpec::new(cfg, 1).up_to(39);
        let err = spec.corruption_subsets().unwrap_err();
        assert!(matches!(err, CheckError::SpaceTooLarge { .. }));
        assert!(err.to_string().contains("above the cap"));
    }

    #[test]
    fn violation_keys_order_like_legacy_masks() {
        // Equal weight: the rank-descending digit list compares like the
        // numeric mask. {rank 3, rank 1} < {rank 3, rank 2} < {rank 4}+{0}.
        let key = |ranks: &[u64]| {
            ViolationKey::of(
                &ranks
                    .iter()
                    .map(|r| PointRec {
                        arity: 2,
                        rank: *r,
                        choice: 1,
                    })
                    .collect::<Vec<_>>(),
            )
        };
        assert!(key(&[3, 1]) < key(&[3, 2]));
        assert!(key(&[3, 2]) < key(&[4, 0]));
        assert!(key(&[2, 1]) < key(&[3, 0]));
        // Weight dominates: one omission beats two, whatever the ranks.
        assert!(key(&[9]) < key(&[0, 1]));
    }
}
