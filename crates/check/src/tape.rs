//! The tape-driven [`FaultModel`]: one adversary branch of the decision
//! tree, interpreted deterministically.
//!
//! Every nondeterministic choice the fault layer offers — which corruption
//! set to charge, each in-horizon message's fate (deliver / send-omit /
//! receive-omit / forge), and optionally the within-round delivery order —
//! is a **decision point** with a finite arity. A [`TapeModel`] resolves
//! the `j`-th decision point encountered during an execution from the
//! `j`-th digit of a choice tape; positions beyond the tape (or digits out
//! of range) take the *default* choice `0`, which always means "no fault"
//! (deliver, identity schedule, empty corruption when the space allows it).
//!
//! The model also **records** every decision point it encountered
//! ([`TapeModel::points`]): the recording is what lets the explorer
//! enumerate the children of a tape (each recorded point with arity `a`
//! spawns `a − 1` siblings of the default), and what gives every leaf its
//! canonical [`ViolationKey`](crate::ViolationKey) digits.
//!
//! Decision points carry a **rank**, a stable label independent of the
//! order in which points are consumed: `(round, edge, kind)` for routing
//! points, the round for schedule points, and `u64::MAX` for the
//! corruption point. Ranks exist so minimality between two adversary
//! branches can be compared positionally even when the branches encounter
//! their points in different orders — and so the minimal branch matches
//! the legacy `exhaustive_omission_check` bit order on the shared
//! single-corruption omission subspace.

use std::collections::BTreeSet;

use ba_sim::{
    Envelope, ExecutionView, FaultBudget, FaultMode, FaultModel, Payload, ProcessId, Routing,
};

use crate::CheckSpec;

/// Longest routing queue a schedule decision point is created for. `5! =
/// 120` children per reorder point is already generous; longer queues are
/// delivered in natural order (no point, no branching).
pub const MAX_REORDER_QUEUE: usize = 5;

/// The rank reserved for the corruption decision point. It compares after
/// every routing/schedule rank, so among equal-weight violations the
/// corruption choice is the most significant digit.
pub const CORRUPTION_RANK: u64 = u64::MAX;

/// One decision point encountered while interpreting a tape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PointRec {
    /// Number of alternatives at this point (`≥ 2`; unary "choices" are
    /// not points).
    pub arity: u32,
    /// Stable order label of this point (see the module docs).
    pub rank: u64,
    /// The choice taken (`0` = default / no fault).
    pub choice: u32,
}

/// `n!` for the tiny factorials a schedule point can have.
pub(crate) fn factorial(n: usize) -> usize {
    (1..=n).product::<usize>().max(1)
}

/// A [`FaultModel`] that replays one branch of the adversary decision tree
/// from a digit tape, recording every decision point it encounters.
#[derive(Debug)]
pub struct TapeModel<'a, M> {
    spec: &'a CheckSpec<M>,
    corrupted: BTreeSet<ProcessId>,
    tape: &'a [u32],
    points: Vec<PointRec>,
}

impl<'a, M: Payload> TapeModel<'a, M> {
    /// Builds the model for one tape. `subsets` is the corruption space in
    /// canonical order (see
    /// [`CheckSpec::corruption_subsets`](crate::CheckSpec::corruption_subsets));
    /// when it offers more than one subset, the first tape digit selects
    /// one (the corruption decision point), otherwise the single subset is
    /// taken unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `subsets` is empty.
    pub fn new(spec: &'a CheckSpec<M>, subsets: &[BTreeSet<ProcessId>], tape: &'a [u32]) -> Self {
        assert!(!subsets.is_empty(), "corruption space cannot be empty");
        let mut model = TapeModel {
            spec,
            corrupted: BTreeSet::new(),
            tape,
            points: Vec::new(),
        };
        let choice = if subsets.len() > 1 {
            model.next_choice(subsets.len() as u32, CORRUPTION_RANK)
        } else {
            0
        };
        model.corrupted = subsets[choice as usize].clone();
        model
    }

    /// The decision points encountered so far, in consumption order.
    pub fn points(&self) -> &[PointRec] {
        &self.points
    }

    /// The corruption set this branch charges.
    pub fn corrupted(&self) -> &BTreeSet<ProcessId> {
        &self.corrupted
    }

    /// Consumes the next tape digit as a decision point of the given
    /// `arity`, recording it. Missing or out-of-range digits collapse to
    /// the default choice `0`.
    fn next_choice(&mut self, arity: u32, rank: u64) -> u32 {
        debug_assert!(arity >= 2, "unary choices are not decision points");
        let raw = self.tape.get(self.points.len()).copied().unwrap_or(0);
        let choice = if raw < arity { raw } else { 0 };
        self.points.push(PointRec {
            arity,
            rank,
            choice,
        });
        choice
    }

    /// Per-round rank stride: `3n²` edge labels (send-only / receive-only /
    /// mixed kinds) plus one schedule label.
    fn per_round(n: usize) -> u64 {
        let n = n as u64;
        3 * n * n + 1
    }
}

impl<M: Payload> FaultModel<M> for TapeModel<'_, M> {
    fn budget(&self) -> FaultBudget {
        FaultBudget::Static(self.corrupted.clone())
    }

    fn mode(&self) -> FaultMode {
        if self.spec.forge_payloads.is_empty() || self.corrupted.is_empty() {
            FaultMode::Omission
        } else {
            FaultMode::Byzantine
        }
    }

    fn reorders(&self) -> bool {
        self.spec.reorder
    }

    fn schedule(&mut self, view: ExecutionView<'_>, queue: &mut [Envelope]) {
        if view.round.0 > self.spec.rounds {
            return;
        }
        let len = queue.len();
        if !(2..=MAX_REORDER_QUEUE).contains(&len) {
            return;
        }
        let n = view.n as u64;
        let rank = (view.round.0 - 1) * Self::per_round(view.n) + 3 * n * n;
        let choice = self.next_choice(factorial(len) as u32, rank) as usize;
        // Lehmer unrank: choice in factorial base selects a permutation;
        // each digit rotates the chosen element to the front of the
        // remaining subslice (envelopes can only be permuted, not cloned).
        let mut rest = choice;
        for i in 0..len {
            let base = factorial(len - 1 - i);
            let digit = rest / base;
            rest %= base;
            queue[i..=i + digit].rotate_right(1);
        }
    }

    fn route(
        &mut self,
        view: ExecutionView<'_>,
        sender: ProcessId,
        receiver: ProcessId,
        payload: &M,
    ) -> Routing<M> {
        if view.round.0 > self.spec.rounds {
            return Routing::Deliver;
        }
        let can_send_omit = self.spec.send_omissions && self.corrupted.contains(&sender);
        let can_receive_omit = self.spec.receive_omissions && self.corrupted.contains(&receiver);
        let can_forge = self.corrupted.contains(&sender)
            && self.spec.forge_payloads.iter().any(|f| f != payload);
        if !can_send_omit && !can_receive_omit && !can_forge {
            return Routing::Deliver;
        }

        let mut options: Vec<Routing<M>> = Vec::with_capacity(4);
        options.push(Routing::Deliver);
        if can_send_omit {
            options.push(Routing::SendOmit);
        }
        if can_receive_omit {
            options.push(Routing::ReceiveOmit);
        }
        if can_forge {
            options.extend(
                self.spec
                    .forge_payloads
                    .iter()
                    .filter(|f| *f != payload)
                    .map(|f| Routing::Forge(f.clone())),
            );
        }

        // The edge's rank kind is derived from its option set so that on
        // the single-corruption omission subspace (where every point is
        // send-only or receive-only) ranks ascend exactly like the legacy
        // checker's bit positions: sends of a round before its receives,
        // rounds major.
        let n = view.n as u64;
        let base = (view.round.0 - 1) * Self::per_round(view.n);
        let (s, r) = (sender.0 as u64, receiver.0 as u64);
        let rank = if can_send_omit && !can_receive_omit && !can_forge {
            base + r * n + s
        } else if can_receive_omit && !can_send_omit && !can_forge {
            base + n * n + s * n + r
        } else {
            base + 2 * n * n + s * n + r
        };
        let choice = self.next_choice(options.len() as u32, rank);
        options.swap_remove(choice as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{Bit, ExecutorConfig, Round};

    fn spec(rounds: u64) -> CheckSpec<Bit> {
        CheckSpec::new(ExecutorConfig::new(4, 1), rounds)
    }

    fn view<'a>(
        round: u64,
        corrupted: &'a BTreeSet<ProcessId>,
        counters: &'a [u64; 4],
    ) -> ExecutionView<'a> {
        ExecutionView {
            round: Round(round),
            n: 4,
            t: 1,
            corrupted,
            charged: corrupted,
            sent: counters,
            delivered: counters,
        }
    }

    #[test]
    fn default_tape_delivers_everything_and_still_records_points() {
        let spec = spec(1);
        let subsets = vec![[ProcessId(3)].into_iter().collect::<BTreeSet<_>>()];
        let mut model = TapeModel::new(&spec, &subsets, &[]);
        let (c, counters) = (subsets[0].clone(), [0u64; 4]);
        let v = view(1, &c, &counters);
        // Corrupted sender: a real decision point, defaulting to Deliver.
        assert_eq!(
            model.route(v, ProcessId(3), ProcessId(0), &Bit::Zero),
            Routing::Deliver
        );
        // Correct-to-correct edge: no fault available, no point consumed.
        assert_eq!(
            model.route(v, ProcessId(0), ProcessId(1), &Bit::Zero),
            Routing::Deliver
        );
        assert_eq!(model.points().len(), 1);
        assert_eq!(model.points()[0].arity, 2);
        assert_eq!(model.points()[0].choice, 0);
    }

    #[test]
    fn tape_digits_select_omissions_in_consumption_order() {
        let spec = spec(1);
        let subsets = vec![[ProcessId(3)].into_iter().collect::<BTreeSet<_>>()];
        let mut model = TapeModel::new(&spec, &subsets, &[0, 1]);
        let (c, counters) = (subsets[0].clone(), [0u64; 4]);
        let v = view(1, &c, &counters);
        assert_eq!(
            model.route(v, ProcessId(3), ProcessId(0), &Bit::Zero),
            Routing::Deliver
        );
        assert_eq!(
            model.route(v, ProcessId(3), ProcessId(1), &Bit::Zero),
            Routing::SendOmit
        );
        // Receive side of the corrupted process ranks after every send.
        assert_eq!(
            model.route(v, ProcessId(0), ProcessId(3), &Bit::Zero),
            Routing::Deliver
        );
        let ranks: Vec<u64> = model.points().iter().map(|p| p.rank).collect();
        assert!(ranks[0] < ranks[1], "send ranks ascend by receiver");
        assert!(ranks[1] < ranks[2], "receives rank after sends");
    }

    #[test]
    fn out_of_horizon_rounds_are_fault_free() {
        let spec = spec(1);
        let subsets = vec![[ProcessId(3)].into_iter().collect::<BTreeSet<_>>()];
        let mut model = TapeModel::new(&spec, &subsets, &[1]);
        let (c, counters) = (subsets[0].clone(), [0u64; 4]);
        assert_eq!(
            model.route(
                view(2, &c, &counters),
                ProcessId(3),
                ProcessId(0),
                &Bit::Zero
            ),
            Routing::Deliver
        );
        assert!(model.points().is_empty());
    }

    #[test]
    fn corruption_point_is_consumed_first_when_the_space_branches() {
        let spec = spec(1);
        let subsets: Vec<BTreeSet<ProcessId>> = vec![
            BTreeSet::new(),
            [ProcessId(0)].into_iter().collect(),
            [ProcessId(1)].into_iter().collect(),
        ];
        let model: TapeModel<'_, Bit> = TapeModel::new(&spec, &subsets, &[2]);
        assert_eq!(model.corrupted(), &subsets[2]);
        assert_eq!(model.points().len(), 1);
        assert_eq!(model.points()[0].rank, CORRUPTION_RANK);
        // Out-of-range digits collapse to the default (empty) subset.
        let model: TapeModel<'_, Bit> = TapeModel::new(&spec, &subsets, &[9]);
        assert!(model.corrupted().is_empty());
    }

    #[test]
    fn forge_options_exclude_the_payload_itself() {
        let mut spec = spec(1);
        spec.forge_payloads = vec![Bit::Zero, Bit::One];
        let subsets = vec![[ProcessId(3)].into_iter().collect::<BTreeSet<_>>()];
        // Choice 2 on a corrupted send edge: [Deliver, SendOmit, Forge(One)]
        // when the payload is Zero (forging Zero onto Zero is not a choice).
        let mut model = TapeModel::new(&spec, &subsets, &[2]);
        let (c, counters) = (subsets[0].clone(), [0u64; 4]);
        assert_eq!(
            model.route(
                view(1, &c, &counters),
                ProcessId(3),
                ProcessId(0),
                &Bit::Zero
            ),
            Routing::Forge(Bit::One)
        );
        assert_eq!(model.points()[0].arity, 3);
    }

    #[test]
    fn lehmer_unranking_enumerates_every_permutation() {
        // Indirectly: digits of the factorial-base decomposition cover all
        // orders of a 3-element slice.
        let mut seen = BTreeSet::new();
        for choice in 0..6usize {
            let mut items = [0, 1, 2];
            let mut rest = choice;
            for i in 0..3 {
                let base = factorial(2 - i);
                let digit = rest / base;
                rest %= base;
                items[i..=i + digit].rotate_right(1);
            }
            seen.insert(items);
        }
        assert_eq!(seen.len(), 6);
    }
}
