//! A first-class, type-erased catalog of agreement problems — the
//! programmatic form of the paper's solvability landscape (§5).
//!
//! [`ValidityProperty`] implementations have heterogeneous input/output
//! types (bits, numeric levels, vectors), which makes "iterate over every
//! problem and print its Theorem 4 verdict" awkward. [`ProblemEntry`]
//! erases the types down to what the landscape needs: a name and a
//! [`LandscapeRow`] per `(n, t)`. The binary catalog used throughout the
//! experiments is [`binary_catalog`].

use std::fmt;

use crate::solvability::{solvability, SolvabilityReport};
use crate::validity::{
    AnythingGoes, ExternalValidity, IntervalValidity, MajorityValidity, SenderValidity,
    StrongValidity, SystemParams, UnanimityOrDefault, ValidityProperty, WeakValidity,
};
use ba_sim::{Bit, ProcessId};

/// One cell of the solvability landscape: a problem's complete Theorem 4
/// verdict at one `(n, t)`, with types erased for tabulation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LandscapeRow {
    /// Problem name.
    pub problem: String,
    /// System parameters.
    pub params: SystemParams,
    /// `true` iff some value is admissible in every configuration.
    pub trivial: bool,
    /// `true` iff the containment condition holds.
    pub cc: bool,
    /// Theorem 4: authenticated solvability.
    pub authenticated_solvable: bool,
    /// Theorem 4: unauthenticated solvability.
    pub unauthenticated_solvable: bool,
    /// A rendering of the CC witness, when CC fails.
    pub witness: Option<String>,
}

impl fmt::Display for LandscapeRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<26} (n={}, t={}) trivial={} CC={} auth={} unauth={}",
            self.problem,
            self.params.n,
            self.params.t,
            self.trivial,
            if self.cc { "✓" } else { "✗" },
            self.authenticated_solvable,
            self.unauthenticated_solvable,
        )
    }
}

fn row_from_report<VI, VO>(report: &SolvabilityReport<VI, VO>) -> LandscapeRow
where
    VI: ba_sim::Value + fmt::Debug,
    VO: ba_sim::Value + fmt::Debug,
{
    LandscapeRow {
        problem: report.problem.clone(),
        params: report.params,
        trivial: report.trivial_value.is_some(),
        cc: report.cc.holds(),
        authenticated_solvable: report.authenticated_solvable,
        unauthenticated_solvable: report.unauthenticated_solvable,
        witness: report.cc.witness().map(|w| format!("{w:?}")),
    }
}

/// A catalog entry: a named agreement problem that can be analyzed at any
/// `(n, t)`.
pub trait ProblemEntry {
    /// The problem's name.
    fn name(&self) -> String;

    /// The Theorem 4 verdict at `params`.
    fn analyze(&self, params: &SystemParams) -> LandscapeRow;
}

/// Blanket adapter: every sized validity property is a catalog entry.
impl<VP> ProblemEntry for VP
where
    VP: ValidityProperty,
    VP::Input: fmt::Debug,
    VP::Output: fmt::Debug,
{
    fn name(&self) -> String {
        ValidityProperty::name(self)
    }

    fn analyze(&self, params: &SystemParams) -> LandscapeRow {
        row_from_report(&solvability(self, params))
    }
}

/// The catalog of binary-proposal problems used across the experiments, in
/// presentation order.
///
/// ```
/// use ba_core::landscape::binary_catalog;
/// use ba_core::validity::SystemParams;
///
/// let rows: Vec<_> = binary_catalog()
///     .iter()
///     .map(|p| p.analyze(&SystemParams::new(4, 1)))
///     .collect();
/// assert!(rows.iter().any(|r| r.problem == "weak-validity" && r.authenticated_solvable));
/// assert!(rows.iter().any(|r| r.problem == "majority-validity" && !r.cc));
/// ```
pub fn binary_catalog() -> Vec<Box<dyn ProblemEntry>> {
    vec![
        Box::new(WeakValidity::binary()),
        Box::new(StrongValidity::binary()),
        Box::new(SenderValidity::new(ProcessId(0), vec![Bit::Zero, Bit::One])),
        Box::new(MajorityValidity::new()),
        Box::new(UnanimityOrDefault::new(Bit::Zero)),
        Box::new(AnythingGoes::new()),
    ]
}

/// The extended catalog including multi-valued problems.
pub fn full_catalog() -> Vec<Box<dyn ProblemEntry>> {
    let mut catalog = binary_catalog();
    catalog.push(Box::new(IntervalValidity::new(3)));
    catalog.push(Box::new(ExternalValidity::new(
        vec![0u8, 1, 2, 3],
        [1u8, 3],
    )));
    catalog
}

/// Analyzes the full catalog over a grid of parameters, producing the
/// landscape in row-major order.
pub fn analyze_grid(params: &[SystemParams]) -> Vec<LandscapeRow> {
    let catalog = full_catalog();
    let mut rows = Vec::with_capacity(catalog.len() * params.len());
    for p in params {
        for entry in &catalog {
            rows.push(entry.analyze(p));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique() {
        let catalog = full_catalog();
        let mut names: Vec<String> = catalog.iter().map(|p| p.name()).collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate catalog names");
    }

    #[test]
    fn grid_analysis_matches_direct_solvability() {
        let params = SystemParams::new(4, 1);
        let rows = analyze_grid(&[params]);
        assert_eq!(rows.len(), full_catalog().len());
        let weak = rows.iter().find(|r| r.problem == "weak-validity").unwrap();
        assert!(weak.cc && weak.authenticated_solvable && weak.unauthenticated_solvable);
        assert!(!weak.trivial);
        let majority = rows
            .iter()
            .find(|r| r.problem == "majority-validity")
            .unwrap();
        assert!(!majority.cc);
        assert!(majority.witness.is_some());
    }

    #[test]
    fn rows_render_readably() {
        let row = binary_catalog()[0].analyze(&SystemParams::new(4, 1));
        let text = row.to_string();
        assert!(text.contains("weak-validity"));
        assert!(text.contains("n=4"));
    }

    #[test]
    fn theorem_boundaries_visible_in_the_grid() {
        let grid = [
            SystemParams::new(5, 2), // n > 2t, n ≤ 3t
            SystemParams::new(7, 2), // n > 3t
            SystemParams::new(4, 2), // n = 2t
        ];
        let rows = analyze_grid(&grid);
        let strong = |n: usize| {
            rows.iter()
                .find(|r| r.problem == "strong-validity" && r.params.n == n)
        };
        assert!(strong(5).unwrap().authenticated_solvable);
        assert!(!strong(5).unwrap().unauthenticated_solvable, "5 ≤ 3·2");
        assert!(strong(7).unwrap().unauthenticated_solvable);
        assert!(
            !strong(4).unwrap().authenticated_solvable,
            "Theorem 5 at n = 2t"
        );
    }
}
