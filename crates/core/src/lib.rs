//! # ba-core — the paper's contribution, executable
//!
//! This crate is the heart of the reproduction of *All Byzantine Agreement
//! Problems are Expensive* (Civit, Gilbert, Guerraoui, Komatovic, Paramonov,
//! Vidigueira; PODC 2024). Each section of the paper maps to a module:
//!
//! | Paper | Module |
//! |---|---|
//! | §4.1 validity formalism (input configurations, containment `⊒`) | [`validity`] |
//! | §5 containment condition, general solvability theorem (Thm 4, Thm 5) | [`solvability`] |
//! | §4.2 Lemma 7 as an executable validity refuter (Thm 4 necessity) | [`refuter`] |
//! | §5 the solvability landscape as a typed catalog | [`landscape`] |
//! | §4.2 Algorithm 1 (weak consensus from any non-trivial problem) | [`reduction`] |
//! | §5.2.2 Algorithm 2 (any CC problem from interactive consistency) | [`reduction`] |
//! | §3 + Appendix A: isolation (Def. 1), `swap_omission` (Alg. 4), `merge` (Alg. 5), critical round (Lemma 4), and the Ω(t²) argument as a **falsifier** | [`lowerbound`] |
//!
//! The falsifier deserves emphasis: it is the Theorem 2 proof *run forward*.
//! Given any claimed weak-consensus protocol, it constructs the execution
//! families of the paper's Table 1, applies Lemmas 2–5, and either
//!
//! * produces a [`lowerbound::Certificate`] — a concrete, machine-checkable
//!   omission-only execution in which two correct processes disagree (or a
//!   correct process never decides, or Weak Validity fails), or
//! * reports survival with the observed message complexity, which for a
//!   correct protocol is at least the paper's `t²/32` floor.
//!
//! ## Quickstart
//!
//! ```
//! use ba_core::lowerbound::{falsify, FalsifierConfig, Verdict};
//! use ba_protocols::broken::LeaderEcho;
//! use ba_sim::ProcessId;
//!
//! // LeaderEcho claims weak consensus with O(n) messages — Theorem 2 says
//! // that is impossible, and the falsifier proves it concretely:
//! let cfg = FalsifierConfig::new(12, 4);
//! let verdict = falsify(&cfg, |_pid| LeaderEcho::new(ProcessId(0))).unwrap();
//! match verdict {
//!     Verdict::Violation(cert) => cert.verify().unwrap(),
//!     Verdict::Survived(report) => panic!("LeaderEcho should not survive: {report:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod landscape;
pub mod lowerbound;
pub mod reduction;
pub mod refuter;
pub mod solvability;
pub mod validity;
