//! Exhaustive small-model checking of weak consensus under single-process
//! omission adversaries.
//!
//! The falsifier follows the paper's proof; the prober samples randomly.
//! This module *enumerates*: for one corrupted process and a bounded number
//! of rounds, it tries **every** combination of send/receive omissions that
//! process can commit, checking Termination, Agreement, and (vacuously
//! satisfied here, since one process is faulty) Weak Validity in each
//! resulting execution.
//!
//! On tiny instances this yields actual proofs-by-enumeration:
//!
//! * for broken protocols, the *minimal* violating adversary (fewest
//!   omissions), as a verified [`Certificate`];
//! * for correct protocols, the guarantee that **no** single-process
//!   omission adversary within the horizon can cause a violation.
//!
//! The search space is `2^(d·(n-1)·r)` for `d ∈ {1, 2}` directions, so this
//! is strictly a small-`n`, few-rounds tool; [`ExhaustiveConfig`] caps the
//! space and the checker refuses blow-ups.

use std::error::Error;
use std::fmt;

use ba_sim::{
    Adversary, Bit, ExecutorConfig, Fate, FnPlan, ProcessId, Protocol, Round, Scenario, SimError,
};

use super::falsifier::{weak_consensus_violation, Certificate};

/// Bounds for the exhaustive search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExhaustiveConfig {
    /// Rounds in which the corrupted process may omit (messages in later
    /// rounds are always delivered).
    pub omission_rounds: u64,
    /// Enumerate send-omissions.
    pub send_omissions: bool,
    /// Enumerate receive-omissions.
    pub receive_omissions: bool,
    /// Hard cap on the number of adversaries enumerated. A larger space is
    /// refused up front with [`ExhaustiveError::SpaceTooLarge`] — never
    /// silently truncated, since a truncated enumeration would fake a
    /// robustness proof.
    pub max_adversaries: u64,
}

impl ExhaustiveConfig {
    /// Sends and receives over the first `omission_rounds` rounds.
    pub fn new(omission_rounds: u64) -> Self {
        ExhaustiveConfig {
            omission_rounds,
            send_omissions: true,
            receive_omissions: true,
            max_adversaries: 1 << 22,
        }
    }

    /// Restricts enumeration to send-omissions only.
    pub fn send_only(mut self) -> Self {
        self.receive_omissions = false;
        self
    }

    fn bits(&self, n: usize) -> u32 {
        let directions = usize::from(self.send_omissions) + usize::from(self.receive_omissions);
        (directions * (n - 1) * self.omission_rounds as usize) as u32
    }
}

/// Why an exhaustive check could not run to completion.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExhaustiveError {
    /// The adversary space exceeds [`ExhaustiveConfig::max_adversaries`].
    /// Shrink `n`, the omission rounds, or the directions instead of
    /// waiting forever.
    SpaceTooLarge {
        /// The required mask width: the space holds `2^bits` adversaries.
        bits: u32,
        /// The configured cap the space exceeds.
        cap: u64,
    },
    /// The simulator rejected a constructed scenario.
    Sim(SimError),
}

impl fmt::Display for ExhaustiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExhaustiveError::SpaceTooLarge { bits, cap } => write!(
                f,
                "search space 2^{bits} exceeds the cap of {cap} adversaries; shrink the bounds"
            ),
            ExhaustiveError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl Error for ExhaustiveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExhaustiveError::SpaceTooLarge { .. } => None,
            ExhaustiveError::Sim(e) => Some(e),
        }
    }
}

impl From<SimError> for ExhaustiveError {
    fn from(e: SimError) -> Self {
        ExhaustiveError::Sim(e)
    }
}

/// The outcome of an exhaustive check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExhaustiveOutcome<M> {
    /// A violating adversary exists; the certificate uses a *minimal* one
    /// (fewest omissions among those enumerated first by popcount).
    Violation(Box<Certificate<M>>, ExhaustiveReport),
    /// No single-process omission adversary within the bounds violates weak
    /// consensus — a proof by enumeration for this instance.
    Robust(ExhaustiveReport),
}

/// Statistics of the enumeration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExhaustiveReport {
    /// Number of adversaries enumerated.
    pub adversaries: u64,
    /// The corrupted process.
    pub corrupted: ProcessId,
    /// Proposals used (as a packed bit mask over process ids).
    pub proposal_mask: u64,
}

impl<M: ba_sim::Payload> ExhaustiveOutcome<M> {
    /// The certificate, if a violation was found.
    pub fn certificate(&self) -> Option<&Certificate<M>> {
        match self {
            ExhaustiveOutcome::Violation(c, _) => Some(c),
            ExhaustiveOutcome::Robust(_) => None,
        }
    }

    /// The enumeration statistics.
    pub fn report(&self) -> &ExhaustiveReport {
        match self {
            ExhaustiveOutcome::Violation(_, r) | ExhaustiveOutcome::Robust(r) => r,
        }
    }
}

/// Exhaustively checks every omission adversary controlling `corrupted`
/// against the given proposals.
///
/// Adversaries are enumerated in increasing popcount (fewest omissions
/// first), so a returned violation uses a minimal adversary.
///
/// # Errors
///
/// Returns [`ExhaustiveError::SpaceTooLarge`] when the search space exceeds
/// `bounds.max_adversaries`, and propagates simulator errors as
/// [`ExhaustiveError::Sim`].
pub fn exhaustive_omission_check<P, F>(
    cfg: &ExecutorConfig,
    factory: F,
    proposals: &[Bit],
    corrupted: ProcessId,
    bounds: &ExhaustiveConfig,
) -> Result<ExhaustiveOutcome<P::Msg>, ExhaustiveError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let n = cfg.n;
    assert!(corrupted.index() < n, "corrupted process out of range");
    let bits = bounds.bits(n);
    let space = 1u64
        .checked_shl(bits)
        .filter(|space| *space <= bounds.max_adversaries)
        .ok_or(ExhaustiveError::SpaceTooLarge {
            bits,
            cap: bounds.max_adversaries,
        })?;

    let peers: Vec<ProcessId> = ProcessId::all(n).filter(|p| *p != corrupted).collect();
    let proposal_mask = proposals
        .iter()
        .enumerate()
        .map(|(i, b)| u64::from(b.is_one()) << i)
        .sum();

    // Enumerate masks ordered by popcount so the first hit is minimal.
    let mut masks: Vec<u64> = (0..space).collect();
    masks.sort_by_key(|m| m.count_ones());

    let mut report = ExhaustiveReport {
        adversaries: 0,
        corrupted,
        proposal_mask,
    };
    for mask in masks {
        report.adversaries += 1;
        // Bit layout: round-major, then peer, then direction
        // (send first if enabled).
        let plan = FnPlan(
            |round: Round, sender: ProcessId, receiver: ProcessId, _: &P::Msg| {
                if round.0 > bounds.omission_rounds {
                    return Fate::Deliver;
                }
                let directions =
                    usize::from(bounds.send_omissions) + usize::from(bounds.receive_omissions);
                let per_round = directions * peers.len();
                let base = (round.0 as usize - 1) * per_round;
                if bounds.send_omissions && sender == corrupted {
                    let peer_idx = peers.iter().position(|p| *p == receiver).expect("peer");
                    if mask >> (base + peer_idx) & 1 == 1 {
                        return Fate::SendOmit;
                    }
                }
                if bounds.receive_omissions && receiver == corrupted {
                    let peer_idx = peers.iter().position(|p| *p == sender).expect("peer");
                    let offset = if bounds.send_omissions {
                        peers.len()
                    } else {
                        0
                    };
                    if mask >> (base + offset + peer_idx) & 1 == 1 {
                        return Fate::ReceiveOmit;
                    }
                }
                Fate::Deliver
            },
        );
        let exec = Scenario::config(cfg)
            .protocol(&factory)
            .inputs(proposals.iter().cloned())
            .adversary(Adversary::omission([corrupted], plan))
            .run()?;

        // Check Termination and Agreement among correct processes.
        if let Some(kind) = weak_consensus_violation(&exec) {
            return Ok(ExhaustiveOutcome::Violation(
                Box::new(Certificate {
                    execution: exec,
                    kind,
                    provenance: vec![format!(
                        "exhaustive omission check: corrupted {corrupted}, adversary mask \
                         {mask:#b} ({} omissions), proposals mask {proposal_mask:#b}",
                        mask.count_ones()
                    )],
                }),
                report,
            ));
        }
    }
    Ok(ExhaustiveOutcome::Robust(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_crypto::Keybook;
    use ba_protocols::broken::{OneRoundAllToAll, ParanoidEcho};
    use ba_protocols::DolevStrong;

    #[test]
    fn one_round_all_to_all_minimal_violation_is_one_omission() {
        let (n, t) = (4, 1);
        let cfg = ExecutorConfig::new(n, t);
        let bounds = ExhaustiveConfig::new(1).send_only();
        let outcome = exhaustive_omission_check(
            &cfg,
            |_| OneRoundAllToAll::new(),
            &[Bit::Zero; 4],
            ProcessId(3),
            &bounds,
        )
        .unwrap();
        let cert = outcome.certificate().expect("violation must exist");
        cert.verify().unwrap();
        // Minimality: a single send omission suffices, and popcount ordering
        // guarantees the certificate uses exactly one.
        let omissions: usize = cert
            .execution
            .records
            .iter()
            .map(|r| r.all_send_omitted().count() + r.all_receive_omitted().count())
            .sum();
        assert_eq!(omissions, 1);
    }

    #[test]
    fn paranoid_echo_violation_found_exhaustively() {
        let (n, t) = (4, 1);
        let cfg = ExecutorConfig::new(n, t);
        let bounds = ExhaustiveConfig::new(2).send_only();
        let outcome = exhaustive_omission_check(
            &cfg,
            |_| ParanoidEcho::new(),
            &[Bit::Zero; 4],
            ProcessId(3),
            &bounds,
        )
        .unwrap();
        let cert = outcome.certificate().expect("violation must exist");
        cert.verify().unwrap();
    }

    #[test]
    fn dolev_strong_is_robust_to_every_single_process_omission_adversary() {
        // A proof by enumeration (n = 4, t = 1, both directions, 2 rounds):
        // no omission adversary controlling p3 can break DS weak consensus.
        let (n, t) = (4, 1);
        let cfg = ExecutorConfig::new(n, t);
        let book = Keybook::new(n);
        let bounds = ExhaustiveConfig::new(2);
        for proposals in [[Bit::Zero; 4], [Bit::One; 4]] {
            let outcome = exhaustive_omission_check(
                &cfg,
                DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
                &proposals,
                ProcessId(3),
                &bounds,
            )
            .unwrap();
            match outcome {
                ExhaustiveOutcome::Robust(report) => {
                    assert_eq!(report.adversaries, 1 << 12); // 2·3·2 bits
                }
                ExhaustiveOutcome::Violation(cert, _) => {
                    panic!(
                        "DS wrongly refuted: {:?}\n{:#?}",
                        cert.kind, cert.provenance
                    )
                }
            }
        }
    }

    #[test]
    fn corrupting_the_sender_is_also_harmless_for_ds() {
        // Even the designated sender, under every send-omission pattern of
        // the first two rounds, cannot split the correct processes.
        let (n, t) = (4, 1);
        let cfg = ExecutorConfig::new(n, t);
        let book = Keybook::new(n);
        let bounds = ExhaustiveConfig::new(2).send_only();
        let outcome = exhaustive_omission_check(
            &cfg,
            DolevStrong::factory(book, ProcessId(0), Bit::Zero),
            &[Bit::One; 4],
            ProcessId(0),
            &bounds,
        )
        .unwrap();
        assert!(outcome.certificate().is_none());
    }

    #[test]
    fn oversized_search_spaces_are_refused_with_a_typed_error() {
        let cfg = ExecutorConfig::new(8, 1);
        let bounds = ExhaustiveConfig {
            max_adversaries: 1 << 10,
            ..ExhaustiveConfig::new(4)
        };
        let err = exhaustive_omission_check(
            &cfg,
            |_| OneRoundAllToAll::new(),
            &[Bit::Zero; 8],
            ProcessId(7),
            &bounds,
        )
        .unwrap_err();
        // 2 directions · 7 peers · 4 rounds = 56 mask bits, far past 2^10.
        assert_eq!(
            err,
            ExhaustiveError::SpaceTooLarge {
                bits: 56,
                cap: 1 << 10
            }
        );
        assert!(err.to_string().contains("exceeds the cap"));
    }

    #[test]
    fn mask_widths_past_u64_are_refused_not_wrapped() {
        // 2 directions · 9 peers · 4 rounds = 72 bits: 1 << 72 would wrap.
        let cfg = ExecutorConfig::new(10, 1);
        let err = exhaustive_omission_check(
            &cfg,
            |_| OneRoundAllToAll::new(),
            &[Bit::Zero; 10],
            ProcessId(9),
            &ExhaustiveConfig::new(4),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ExhaustiveError::SpaceTooLarge { bits: 72, .. }
        ));
    }
}
