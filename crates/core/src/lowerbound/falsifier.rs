//! The Ω(t²) lower-bound argument (paper §3, Theorem 2) as an executable
//! **falsifier** for claimed weak-consensus protocols.
//!
//! The paper's proof assumes a weak-consensus algorithm `A` with message
//! complexity below `t²/32` and derives a contradiction through a chain of
//! constructed executions. The falsifier performs the identical chain on a
//! *real* protocol:
//!
//! 1. **Weak Validity / Termination** on the two fully correct uniform
//!    executions (`E_0` and its all-ones sibling) — also measuring `R_max`;
//! 2. **Lemma 2** on every isolation execution: an isolated process that
//!    disagrees with the correct processes and receive-omitted few messages
//!    is made *correct* via [`swap_omission`], yielding a concrete
//!    Agreement/Termination violation;
//! 3. **Lemma 3** on the mergeable pairs `(E_B(1)_0, E_C(1)_0)` and
//!    `(E_B(1)_0, E_C(1)_1)`: if group `A` decides differently, the
//!    [`merge`]d execution plus step 2 produces the violation;
//! 4. **WLOG flip**: if the default bit is 0, the whole argument re-runs on
//!    the [`BitFlipped`] protocol (Weak Validity is bit-symmetric);
//! 5. **Lemma 4**: scan for the critical round `R` where `E_B(R)_0` decides
//!    1 but `E_B(R+1)_0` decides 0;
//! 6. **Lemma 5**: merge `E_B(R or R+1)_0` with `E_C(R)_0` and apply step 2.
//!
//! Each produced [`Certificate`] carries the violating [`Execution`] and is
//! independently re-checkable with [`Certificate::verify`]. When every step
//! fails to produce a violation — which, per the paper, *must* happen for
//! correct protocols and can only happen because they send too many
//! messages for the Lemma 2 pigeonhole — the falsifier reports
//! [`SurvivalReport`] with the observed message complexity and the paper's
//! `t²/32` floor.
//!
//! With a [`FalsifierConfig::recorder`] attached, the run emits
//! orientation-scan telemetry: `falsifier.orientation` /
//! `falsifier.default_bit` / `falsifier.scan.critical` /
//! `falsifier.scan.exhausted` / `falsifier.verdict` events, plus
//! `falsifier.orientations`, `falsifier.executions`,
//! `falsifier.scan.rounds` and `falsifier.violations` counters and a
//! `falsifier.execution.messages` histogram — all derived from logical
//! argument state (the deterministic channel), never from the clock.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use ba_obs::{NoopRecorder, Recorder};
use ba_sim::{
    Bit, Execution, ExecutionInvariantError, ExecutorConfig, Payload, ProcessId, Protocol, Round,
    SimError,
};

use super::family::{FamilyRunner, Partition};
use super::flip::{unflip_execution, BitFlipped};
use super::merge::{merge, MergeError};
use super::swap::swap_omission;

/// Parameters of a falsification run.
#[derive(Clone)]
pub struct FalsifierConfig {
    /// Number of processes.
    pub n: usize,
    /// Resilience bound.
    pub t: usize,
    /// Fixed execution horizon: all constructed executions run exactly this
    /// many rounds so they are comparable. Termination certificates assert
    /// "undecided within the horizon" — generous by default
    /// (`4·(t + 2) + 8`, ample for every protocol in this repository, all
    /// of which decide within `3(t + 1) + 1` rounds).
    pub horizon: u64,
    /// Run the two bit orientations of the argument concurrently
    /// (`Some(choice)`), or decide by instance size (`None`, the default):
    /// big instances parallelize, small ones keep the sequential
    /// short-circuit — a refuted canonical orientation skips the flipped
    /// pass entirely, which thread-spawn overhead would otherwise swamp.
    pub parallel_orientations: Option<bool>,
    /// Precompute the Lemma 4 `E_B(k)` scan's isolation executions
    /// concurrently within one orientation (`Some(choice)`), or decide by
    /// instance size (`None`, the default — the same
    /// [`FalsifierConfig::PARALLEL_WORK_THRESHOLD`] gate as orientations).
    /// The precomputed executions are then replayed through the exact
    /// sequential examination order, so verdicts, statistics, and
    /// certificates are value-identical to the sequential scan; the only
    /// trade-off is speculative work past the critical round.
    pub parallel_scan: Option<bool>,
    /// Telemetry sink for orientation/scan events (`None` = off).
    /// Observation-only: everything recorded is logical argument state
    /// (orientations entered, executions explored, critical rounds), so
    /// snapshots for a fixed mode are schedule-independent. Sequential
    /// mode short-circuits a refuted canonical orientation while parallel
    /// mode always runs both, so exploration *counts* — like
    /// [`SurvivalReport::executions_explored`] — are comparable within a
    /// mode, not across modes.
    pub recorder: Option<Arc<dyn Recorder>>,
}

impl fmt::Debug for FalsifierConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FalsifierConfig")
            .field("n", &self.n)
            .field("t", &self.t)
            .field("horizon", &self.horizon)
            .field("parallel_orientations", &self.parallel_orientations)
            .field("parallel_scan", &self.parallel_scan)
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl FalsifierConfig {
    /// Above this `n · t` product the per-orientation work dwarfs the cost
    /// of two scoped-thread spawns and forgoing the refuted-early
    /// short-circuit, so orientations default to running concurrently.
    pub const PARALLEL_WORK_THRESHOLD: usize = 512;

    /// Creates a configuration with the default horizon.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ t < n` and the paper partition fits (see
    /// [`Partition::paper_default`]).
    pub fn new(n: usize, t: usize) -> Self {
        let cfg = FalsifierConfig {
            n,
            t,
            horizon: 4 * (t as u64 + 2) + 8,
            parallel_orientations: None,
            parallel_scan: None,
            recorder: None,
        };
        let _ = cfg.partition(); // validate early
        cfg
    }

    /// Forces orientation parallelism on or off (default: by size).
    pub fn with_parallel_orientations(mut self, parallel: bool) -> Self {
        self.parallel_orientations = Some(parallel);
        self
    }

    /// Whether this run executes its two bit orientations concurrently.
    pub fn orientations_in_parallel(&self) -> bool {
        self.parallel_orientations
            .unwrap_or(self.n * self.t >= Self::PARALLEL_WORK_THRESHOLD)
    }

    /// Forces Lemma 4 scan parallelism on or off (default: by size).
    pub fn with_parallel_scan(mut self, parallel: bool) -> Self {
        self.parallel_scan = Some(parallel);
        self
    }

    /// Attaches a telemetry recorder (see [`FalsifierConfig::recorder`]).
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The configured recorder, or the zero-cost no-op sink.
    fn telemetry(&self) -> &dyn Recorder {
        match &self.recorder {
            Some(r) => r.as_ref(),
            None => &NoopRecorder,
        }
    }

    /// Whether this run precomputes the Lemma 4 `E_B(k)` scan in parallel.
    pub fn scan_in_parallel(&self) -> bool {
        self.parallel_scan
            .unwrap_or(self.n * self.t >= Self::PARALLEL_WORK_THRESHOLD)
    }

    /// The executor configuration used for every constructed execution:
    /// fixed horizon, no early stopping.
    pub fn executor_config(&self) -> ExecutorConfig {
        ExecutorConfig::new(self.n, self.t)
            .with_max_rounds(self.horizon)
            .with_stop_when_quiescent(false)
    }

    /// The `(A, B, C)` partition (paper Table 1).
    pub fn partition(&self) -> Partition {
        Partition::paper_default(self.n, self.t)
    }

    /// The paper's worst-case floor `⌊t²/32⌋` (Lemma 1). Vacuous for very
    /// small `t`; the falsifier's per-process pigeonhole is sharper.
    pub fn paper_bound(&self) -> u64 {
        (self.t as u64 * self.t as u64) / 32
    }
}

/// Which weak-consensus property a certificate violates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// Two correct processes decided different values.
    Agreement {
        /// A correct process.
        p: ProcessId,
        /// Another correct process with a different decision.
        q: ProcessId,
    },
    /// A correct process never decided within the horizon.
    Termination {
        /// The undecided correct process.
        undecided: ProcessId,
        /// A decided correct process, when one exists (for context).
        decided: Option<ProcessId>,
    },
    /// All processes were correct and proposed the same bit, but some
    /// process decided the other bit.
    WeakValidity {
        /// The offending process.
        process: ProcessId,
        /// The bit everyone proposed.
        proposed: Bit,
        /// The bit the process decided.
        decided: Bit,
    },
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Agreement { p, q } => write!(f, "Agreement violated by {p} and {q}"),
            ViolationKind::Termination { undecided, .. } => {
                write!(f, "Termination violated by {undecided}")
            }
            ViolationKind::WeakValidity {
                process,
                proposed,
                decided,
            } => write!(
                f,
                "Weak Validity violated by {process}: all proposed {proposed}, it decided {decided}"
            ),
        }
    }
}

/// A machine-checkable counterexample: an omission-only execution in which
/// the claimed weak-consensus protocol violates one of its properties.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Certificate<M> {
    /// The violating execution (valid per the five execution guarantees).
    pub execution: Execution<Bit, Bit, M>,
    /// What is violated, by whom.
    pub kind: ViolationKind,
    /// Human-readable derivation: which lemmas produced this execution.
    pub provenance: Vec<String>,
}

/// Why a certificate failed verification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CertificateError {
    /// The execution violates the model's guarantees.
    InvalidExecution(ExecutionInvariantError),
    /// A process named by the violation is not correct in the execution.
    NamedProcessFaulty(ProcessId),
    /// The recorded decisions do not exhibit the claimed violation.
    ClaimMismatch(String),
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::InvalidExecution(e) => write!(f, "invalid execution: {e}"),
            CertificateError::NamedProcessFaulty(p) => {
                write!(f, "named process {p} is faulty in the execution")
            }
            CertificateError::ClaimMismatch(s) => write!(f, "claim mismatch: {s}"),
        }
    }
}

impl Error for CertificateError {}

impl<M: Payload> Certificate<M> {
    /// Independently re-checks this certificate: the execution satisfies
    /// the five execution guarantees with at most `t` omission-faulty
    /// processes, and the named correct processes exhibit exactly the
    /// claimed violation.
    ///
    /// # Errors
    ///
    /// Returns the first failed check.
    pub fn verify(&self) -> Result<(), CertificateError> {
        let exec = &self.execution;
        exec.validate()
            .map_err(CertificateError::InvalidExecution)?;
        let check_correct = |p: ProcessId| {
            if exec.is_correct(p) {
                Ok(())
            } else {
                Err(CertificateError::NamedProcessFaulty(p))
            }
        };
        match self.kind {
            ViolationKind::Agreement { p, q } => {
                check_correct(p)?;
                check_correct(q)?;
                let (dp, dq) = (exec.decision_of(p), exec.decision_of(q));
                match (dp, dq) {
                    (Some(a), Some(b)) if a != b => Ok(()),
                    _ => Err(CertificateError::ClaimMismatch(format!(
                        "decisions of {p} and {q} are {dp:?} and {dq:?}"
                    ))),
                }
            }
            ViolationKind::Termination { undecided, decided } => {
                check_correct(undecided)?;
                if exec.decision_of(undecided).is_some() {
                    return Err(CertificateError::ClaimMismatch(format!(
                        "{undecided} actually decided"
                    )));
                }
                if let Some(q) = decided {
                    check_correct(q)?;
                    if exec.decision_of(q).is_none() {
                        return Err(CertificateError::ClaimMismatch(format!(
                            "{q} is claimed decided but is not"
                        )));
                    }
                }
                Ok(())
            }
            ViolationKind::WeakValidity {
                process,
                proposed,
                decided,
            } => {
                if !exec.faulty.is_empty() {
                    return Err(CertificateError::ClaimMismatch(
                        "weak-validity violations require a fully correct execution".into(),
                    ));
                }
                if exec.records.iter().any(|r| r.proposal != proposed) {
                    return Err(CertificateError::ClaimMismatch(
                        "proposals are not uniform".into(),
                    ));
                }
                if proposed == decided {
                    return Err(CertificateError::ClaimMismatch(
                        "claimed decision equals the proposal".into(),
                    ));
                }
                if exec.decision_of(process) != Some(&decided) {
                    return Err(CertificateError::ClaimMismatch(format!(
                        "{process} did not decide {decided}"
                    )));
                }
                Ok(())
            }
        }
    }
}

/// Scans the correct processes of `exec` for a Termination or Agreement
/// violation, in ascending process order, returning the first one found.
///
/// This is the shared violation classifier of the enumeration checkers
/// ([`exhaustive_omission_check`](super::exhaustive::exhaustive_omission_check)
/// and the `ba-check` explorer): an undecided correct process yields
/// [`ViolationKind::Termination`] (paired with the first decided correct
/// process, when one exists, for context); two correct processes with
/// different decisions yield [`ViolationKind::Agreement`]. Weak Validity is
/// deliberately out of scope — it only applies to fully correct executions
/// and is checked separately by callers that enumerate those.
pub fn weak_consensus_violation<M: Payload>(
    exec: &Execution<Bit, Bit, M>,
) -> Option<ViolationKind> {
    let mut decided: Option<(Bit, ProcessId)> = None;
    for p in exec.correct() {
        match exec.decision_of(p) {
            None => {
                let partner = exec.correct().find(|q| exec.decision_of(*q).is_some());
                return Some(ViolationKind::Termination {
                    undecided: p,
                    decided: partner,
                });
            }
            Some(v) => match decided {
                Some((w, q)) if *v != w => {
                    return Some(ViolationKind::Agreement { p: q, q: p });
                }
                Some(_) => {}
                None => decided = Some((*v, p)),
            },
        }
    }
    None
}

/// The falsifier ran the complete argument without finding a violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SurvivalReport {
    /// The largest message complexity observed across all constructed
    /// executions. For a correct protocol, Theorem 2 puts the *worst-case*
    /// complexity at ≥ `t²/32`; the observed value is a lower estimate.
    pub max_message_complexity: u64,
    /// The paper's floor `⌊t²/32⌋`.
    pub paper_bound: u64,
    /// Number of executions constructed and examined.
    pub executions_explored: usize,
    /// Notes on why each avenue of the proof failed to produce a violation.
    pub notes: Vec<String>,
}

/// The overall outcome of a falsification run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict<M> {
    /// A concrete, verifiable counterexample was constructed.
    Violation(Certificate<M>),
    /// The protocol survived the full argument.
    Survived(SurvivalReport),
}

impl<M: Payload> Verdict<M> {
    /// The certificate, if a violation was found.
    pub fn certificate(&self) -> Option<&Certificate<M>> {
        match self {
            Verdict::Violation(c) => Some(c),
            Verdict::Survived(_) => None,
        }
    }

    /// `true` iff a violation was found.
    pub fn is_violation(&self) -> bool {
        matches!(self, Verdict::Violation(_))
    }
}

/// An error while driving the falsifier (distinct from finding or not
/// finding a violation).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FalsifyError {
    /// The simulator rejected a run — the protocol violates the
    /// computational model itself.
    Sim(SimError),
    /// The merge construction failed — typically protocol non-determinism.
    Merge(MergeError),
}

impl fmt::Display for FalsifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FalsifyError::Sim(e) => write!(f, "simulation error: {e}"),
            FalsifyError::Merge(e) => write!(f, "merge error: {e}"),
        }
    }
}

impl Error for FalsifyError {}

impl From<SimError> for FalsifyError {
    fn from(e: SimError) -> Self {
        FalsifyError::Sim(e)
    }
}

impl From<MergeError> for FalsifyError {
    fn from(e: MergeError) -> Self {
        FalsifyError::Merge(e)
    }
}

struct Stats<'r> {
    recorder: &'r dyn Recorder,
    max_complexity: u64,
    explored: usize,
    notes: Vec<String>,
}

impl<'r> Stats<'r> {
    fn new(recorder: &'r dyn Recorder) -> Self {
        Stats {
            recorder,
            max_complexity: 0,
            explored: 0,
            notes: Vec::new(),
        }
    }

    fn observe<M: Payload>(&mut self, exec: &Execution<Bit, Bit, M>) {
        let complexity = exec.message_complexity();
        self.max_complexity = self.max_complexity.max(complexity);
        self.explored += 1;
        self.recorder.counter("falsifier.executions", 1, &[]);
        self.recorder
            .histogram("falsifier.execution.messages", complexity, &[]);
    }

    fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }
}

/// Runs the complete Theorem 2 argument against `factory`'s protocol.
///
/// The two bit orientations — the canonical protocol and its
/// [`BitFlipped`] WLOG sibling — are **independent** full passes of the
/// argument; on big instances
/// ([`FalsifierConfig::orientations_in_parallel`]) they run concurrently
/// on the `ba_sim::par_map` pool (the same pool Campaign sweeps use), while
/// small instances keep the sequential short-circuit. The verdict is
/// orientation-ordered exactly as the sequential argument: a canonical
/// violation wins over a flipped one, and a survival report accumulates
/// canonical statistics before flipped ones, so survival results are
/// value-identical in both modes.
///
/// # Errors
///
/// Returns [`FalsifyError`] only for protocols that violate the
/// computational model (non-determinism, self-sends, revoked decisions);
/// "the protocol is broken as weak consensus" is a successful
/// [`Verdict::Violation`], not an error.
pub fn falsify<P, F>(cfg: &FalsifierConfig, factory: F) -> Result<Verdict<P::Msg>, FalsifyError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
{
    let verdict = falsify_inner(cfg, factory)?;
    let recorder = cfg.telemetry();
    if verdict.is_violation() {
        recorder.counter("falsifier.violations", 1, &[]);
    }
    recorder.event(
        "falsifier.verdict",
        &[("violation", verdict.is_violation().into())],
    );
    Ok(verdict)
}

fn falsify_inner<P, F>(cfg: &FalsifierConfig, factory: F) -> Result<Verdict<P::Msg>, FalsifyError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
{
    if !cfg.orientations_in_parallel() {
        let mut stats = Stats::new(cfg.telemetry());
        if let Some(cert) = attempt(cfg, &factory, &mut stats, false)? {
            return Ok(Verdict::Violation(cert));
        }
        // WLOG step: rerun the whole argument on the bit-flipped protocol.
        let flipped_factory = |pid: ProcessId| BitFlipped::new(factory(pid));
        if let Some(cert) = attempt(cfg, &flipped_factory, &mut stats, true)? {
            return Ok(Verdict::Violation(unflip_certificate(cert)));
        }
        return Ok(survival(cfg, stats));
    }

    let mut outcomes = ba_sim::par_map(vec![false, true], 2, |_, flipped| {
        let mut stats = Stats::new(cfg.telemetry());
        let result = if flipped {
            // WLOG step: the whole argument on the bit-flipped protocol.
            let flipped_factory = |pid: ProcessId| BitFlipped::new(factory(pid));
            attempt(cfg, &flipped_factory, &mut stats, true)
        } else {
            attempt(cfg, &factory, &mut stats, false)
        };
        (result, stats)
    });
    let (flipped_outcome, flipped_stats) = outcomes.pop().expect("two orientations");
    let (canonical_outcome, mut stats) = outcomes.pop().expect("two orientations");
    if let Some(cert) = canonical_outcome? {
        return Ok(Verdict::Violation(cert));
    }
    if let Some(cert) = flipped_outcome? {
        return Ok(Verdict::Violation(unflip_certificate(cert)));
    }
    stats.max_complexity = stats.max_complexity.max(flipped_stats.max_complexity);
    stats.explored += flipped_stats.explored;
    stats.notes.extend(flipped_stats.notes);
    Ok(Verdict::Survived(survival_report(cfg, stats)))
}

fn survival<M: Payload>(cfg: &FalsifierConfig, stats: Stats<'_>) -> Verdict<M> {
    Verdict::Survived(survival_report(cfg, stats))
}

fn survival_report(cfg: &FalsifierConfig, stats: Stats<'_>) -> SurvivalReport {
    SurvivalReport {
        max_message_complexity: stats.max_complexity,
        paper_bound: cfg.paper_bound(),
        executions_explored: stats.explored,
        notes: stats.notes,
    }
}

fn unflip_certificate<M: Payload>(cert: Certificate<M>) -> Certificate<M> {
    let mut provenance = cert.provenance;
    provenance.push("mapped back from the bit-flipped orientation".into());
    let kind = match cert.kind {
        ViolationKind::WeakValidity {
            process,
            proposed,
            decided,
        } => ViolationKind::WeakValidity {
            process,
            proposed: proposed.flip(),
            decided: decided.flip(),
        },
        other => other,
    };
    Certificate {
        execution: unflip_execution(cert.execution),
        kind,
        provenance,
    }
}

/// Either a clean unanimous verdict of the correct processes, or a direct
/// violation certificate (the execution itself is the counterexample).
fn correct_verdict<M: Payload>(
    exec: &Execution<Bit, Bit, M>,
    provenance: &[String],
    label: &str,
) -> Result<Bit, Box<Certificate<M>>> {
    let mut decided: Option<(Bit, ProcessId)> = None;
    let mut undecided: Option<ProcessId> = None;
    for p in exec.correct() {
        match exec.decision_of(p) {
            Some(v) => match decided {
                Some((w, q)) if *v != w => {
                    return Err(Box::new(Certificate {
                        execution: exec.clone(),
                        kind: ViolationKind::Agreement { p: q, q: p },
                        provenance: with_note(
                            provenance,
                            format!("{label}: correct processes disagree directly"),
                        ),
                    }));
                }
                Some(_) => {}
                None => decided = Some((*v, p)),
            },
            None => undecided = Some(p),
        }
    }
    if let Some(u) = undecided {
        return Err(Box::new(Certificate {
            execution: exec.clone(),
            kind: ViolationKind::Termination {
                undecided: u,
                decided: decided.map(|(_, q)| q),
            },
            provenance: with_note(
                provenance,
                format!("{label}: a correct process never decides within the horizon"),
            ),
        }));
    }
    Ok(decided.expect("at least one correct process exists").0)
}

fn with_note(provenance: &[String], note: String) -> Vec<String> {
    let mut out = provenance.to_vec();
    out.push(note);
    out
}

/// The Lemma 2 engine, exposed for standalone use: given an execution in
/// which the processes of `group` are faulty (e.g. isolated per
/// Definition 1) while the rest decided `expected`, find a group member
/// that disagrees and can be made correct by [`swap_omission`] within the
/// fault budget — a direct, verifiable violation of weak consensus.
///
/// Returns `None` when every disagreeing member receive-omitted messages
/// from too many senders (the pigeonhole of Lemma 2 does not apply — the
/// protocol sent too much), which is exactly how correct quadratic
/// protocols escape.
///
/// `provenance` and `label` annotate the certificate's derivation trail.
pub fn lemma2_violation<M: Payload>(
    exec: &Execution<Bit, Bit, M>,
    group: &BTreeSet<ProcessId>,
    expected: Bit,
    provenance: &[String],
    label: &str,
) -> Option<Certificate<M>> {
    // Cheapest pivots first: fewer receive-omissions blame fewer senders.
    let mut candidates: Vec<(usize, ProcessId)> = group
        .iter()
        .filter(|p| exec.decision_of(**p) != Some(&expected))
        .map(|p| (exec.record(*p).all_receive_omitted().count(), *p))
        .collect();
    candidates.sort_unstable();
    for (_, pivot) in candidates {
        let Ok(swapped) = swap_omission(exec, pivot) else {
            continue;
        };
        if swapped.validate().is_err() {
            continue;
        }
        let Some(partner) = swapped
            .correct()
            .find(|q| *q != pivot && swapped.decision_of(*q) == Some(&expected))
        else {
            continue;
        };
        let kind = match swapped.decision_of(pivot) {
            Some(_) => ViolationKind::Agreement {
                p: pivot,
                q: partner,
            },
            None => ViolationKind::Termination {
                undecided: pivot,
                decided: Some(partner),
            },
        };
        return Some(Certificate {
            execution: swapped,
            kind,
            provenance: with_note(
                provenance,
                format!(
                    "{label}: Lemma 2 — swap_omission (Algorithm 4) makes disagreeing \
                     isolated process {pivot} correct"
                ),
            ),
        });
    }
    None
}

/// One full pass of the argument in one bit orientation.
#[allow(clippy::too_many_lines, clippy::type_complexity)]
fn attempt<P, F>(
    cfg: &FalsifierConfig,
    factory: &F,
    stats: &mut Stats<'_>,
    flipped: bool,
) -> Result<Option<Certificate<P::Msg>>, FalsifyError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
{
    let ecfg = cfg.executor_config();
    let partition = cfg.partition();
    let runner = FamilyRunner::new(ecfg, factory, partition.clone());
    let orientation = if flipped { "flipped" } else { "canonical" };
    let mut prov = vec![format!("orientation: {orientation}")];
    let recorder = cfg.telemetry();
    recorder.counter("falsifier.orientations", 1, &[]);
    recorder.event(
        "falsifier.orientation",
        &[
            ("orientation", orientation.into()),
            ("n", cfg.n.into()),
            ("t", cfg.t.into()),
        ],
    );

    // Step 1: Weak Validity and Termination on the fully correct uniform
    // executions; also measure R_max.
    let mut rmax = Round(1);
    for bit in Bit::ALL {
        let e = runner.e0::<P>(bit)?;
        stats.observe(&e);
        for p in ProcessId::all(cfg.n) {
            match e.decision_of(p) {
                Some(v) if *v != bit => {
                    return Ok(Some(Certificate {
                        kind: ViolationKind::WeakValidity {
                            process: p,
                            proposed: bit,
                            decided: *v,
                        },
                        execution: e,
                        provenance: with_note(
                            &prov,
                            format!("fully correct all-{bit} execution decides {}", bit.flip()),
                        ),
                    }));
                }
                Some(_) => {}
                None => {
                    let decided = e.correct().find(|q| e.decision_of(*q).is_some());
                    return Ok(Some(Certificate {
                        kind: ViolationKind::Termination {
                            undecided: p,
                            decided,
                        },
                        execution: e,
                        provenance: with_note(
                            &prov,
                            format!("fully correct all-{bit} execution: {p} never decides"),
                        ),
                    }));
                }
            }
        }
        rmax = rmax.max(e.all_decided_by().expect("all decided above"));
    }
    prov.push(format!(
        "R_max = {} (all correct decide by then in E_0)",
        rmax.0
    ));

    // Helper: run one isolation execution, require a clean verdict of the
    // correct processes, and apply the Lemma 2 engine to the isolated group.
    let examine = |exec: Execution<Bit, Bit, P::Msg>,
                   group: &BTreeSet<ProcessId>,
                   label: &str,
                   prov: &[String],
                   stats: &mut Stats<'_>|
     -> Result<Bit, Box<Certificate<P::Msg>>> {
        stats.observe(&exec);
        debug_assert_eq!(exec.validate(), Ok(()));
        let verdict = correct_verdict(&exec, prov, label)?;
        if let Some(cert) = lemma2_violation(&exec, group, verdict, prov, label) {
            return Err(Box::new(cert));
        }
        Ok(verdict)
    };

    // Step 2/3: the k = 1 isolation executions and the Lemma 3 pairs.
    let eb1_0 = runner.isolated_b::<P>(Round(1), Bit::Zero)?;
    let x = match examine(eb1_0.clone(), partition.b(), "E_B(1)_0", &prov, stats) {
        Ok(v) => v,
        Err(cert) => return Ok(Some(*cert)),
    };
    let ec1_0 = runner.isolated_c::<P>(Round(1), Bit::Zero)?;
    let y = match examine(ec1_0.clone(), partition.c(), "E_C(1)_0", &prov, stats) {
        Ok(v) => v,
        Err(cert) => return Ok(Some(*cert)),
    };
    prov.push(format!("A decides {x} in E_B(1)_0 and {y} in E_C(1)_0"));
    if x != y {
        prov.push("Lemma 3 violated by (E_B(1)_0, E_C(1)_0): merging".into());
        return contradict::<P, F>(
            cfg,
            factory,
            &partition,
            stats,
            &prov,
            &eb1_0,
            Round(1),
            &ec1_0,
            Round(1),
            Bit::Zero,
        );
    }
    let ec1_1 = runner.isolated_c::<P>(Round(1), Bit::One)?;
    let z = match examine(ec1_1.clone(), partition.c(), "E_C(1)_1", &prov, stats) {
        Ok(v) => v,
        Err(cert) => return Ok(Some(*cert)),
    };
    prov.push(format!("A decides {z} in E_C(1)_1"));
    if x != z {
        prov.push("Lemma 3 violated by (E_B(1)_0, E_C(1)_1): merging".into());
        return contradict::<P, F>(
            cfg,
            factory,
            &partition,
            stats,
            &prov,
            &eb1_0,
            Round(1),
            &ec1_1,
            Round(1),
            Bit::One,
        );
    }

    // Step 4: the WLOG orientation check.
    let default_bit = x;
    recorder.event(
        "falsifier.default_bit",
        &[
            ("orientation", orientation.into()),
            ("bit", default_bit.to_string().into()),
        ],
    );
    if default_bit == Bit::Zero {
        stats.note(format!(
            "{orientation}: default bit is 0; Lemma-3 pairs agree; the argument continues in \
             the other orientation"
        ));
        return Ok(None);
    }
    prov.push("default bit is 1 (paper's WLOG normal form)".into());

    // Step 5 (Lemma 4): scan for the critical round R. On big instances
    // the isolation executions for every k are precomputed concurrently,
    // then *replayed through the identical sequential walk* below — each
    // execution passes through `examine` (and the stats) in ascending-k
    // order, stopping at the first critical round, so verdicts and
    // statistics are value-identical to the sequential scan. Work past the
    // stopping point is speculative and discarded unexamined.
    let scan_rounds: Vec<u64> = (2..=rmax.0 + 1).collect();
    // Speculative executions are held *compressed* (payloads interned into a
    // per-task arena, fragments as u32 handles) while they wait their turn —
    // all-to-all traces repeat the same few payloads across n² slots per
    // round, so the resident cost of the whole scan is a handful of distinct
    // payloads per k instead of the full cloned traces. Hydration in the
    // walk below is a lossless bit-for-bit round trip.
    let precomputed: Option<Vec<Result<_, SimError>>> =
        if cfg.scan_in_parallel() && scan_rounds.len() > 1 {
            Some(ba_sim::par_map(scan_rounds.clone(), 0, |_, k| {
                runner.isolated_b::<P>(Round(k), Bit::Zero).map(|e| {
                    let mut arena = ba_sim::PayloadArena::new();
                    let compressed = ba_sim::CompressedExecution::compress(&e, &mut arena);
                    (arena, compressed)
                })
            }))
        } else {
            None
        };
    let mut precomputed = precomputed.map(Vec::into_iter);
    let mut prev = eb1_0;
    let mut critical: Option<(
        Round,
        Execution<Bit, Bit, P::Msg>,
        Execution<Bit, Bit, P::Msg>,
    )> = None;
    for k in scan_rounds {
        recorder.counter("falsifier.scan.rounds", 1, &[]);
        let e = match precomputed.as_mut() {
            Some(runs) => {
                let (arena, compressed) = runs.next().expect("one precomputed run per k")?;
                compressed.hydrate(&arena)
            }
            None => runner.isolated_b::<P>(Round(k), Bit::Zero)?,
        };
        let d = match examine(
            e.clone(),
            partition.b(),
            &format!("E_B({k})_0"),
            &prov,
            stats,
        ) {
            Ok(v) => v,
            Err(cert) => return Ok(Some(*cert)),
        };
        if d == Bit::Zero {
            critical = Some((Round(k - 1), prev, e));
            break;
        }
        prev = e;
    }
    let Some((r, eb_r, eb_r1)) = critical else {
        stats.note(format!(
            "{orientation}: no critical round up to R_max + 1 = {} — A never abandons the \
             default within the horizon",
            rmax.0 + 1
        ));
        recorder.event(
            "falsifier.scan.exhausted",
            &[
                ("orientation", orientation.into()),
                ("r_max", rmax.0.into()),
            ],
        );
        return Ok(None);
    };
    prov.push(format!(
        "Lemma 4: critical round R = {} (A decides 1 in E_B({})_0 and 0 in E_B({})_0)",
        r.0,
        r.0,
        r.0 + 1
    ));
    recorder.event(
        "falsifier.scan.critical",
        &[
            ("orientation", orientation.into()),
            ("round", r.0.into()),
            ("r_max", rmax.0.into()),
        ],
    );

    // Step 6 (Lemma 5): merge the appropriate pair with E_C(R)_0.
    let ec_r = runner.isolated_c::<P>(r, Bit::Zero)?;
    let w = match examine(
        ec_r.clone(),
        partition.c(),
        &format!("E_C({})_0", r.0),
        &prov,
        stats,
    ) {
        Ok(v) => v,
        Err(cert) => return Ok(Some(*cert)),
    };
    prov.push(format!("A decides {w} in E_C({})_0", r.0));
    let outcome = if w == Bit::One {
        prov.push("merging E_B(R+1)_0 (A: 0) with E_C(R)_0 (A: 1) — Lemma 5".into());
        contradict::<P, F>(
            cfg,
            factory,
            &partition,
            stats,
            &prov,
            &eb_r1,
            r.next(),
            &ec_r,
            r,
            Bit::Zero,
        )
    } else {
        prov.push("merging E_B(R)_0 (A: 1) with E_C(R)_0 (A: 0) — Lemma 5".into());
        contradict::<P, F>(
            cfg,
            factory,
            &partition,
            stats,
            &prov,
            &eb_r,
            r,
            &ec_r,
            r,
            Bit::Zero,
        )
    }?;
    if outcome.is_none() {
        stats.note(format!(
            "{orientation}: merged execution around the critical round produced no \
             low-omission disagreeing process (Lemma 2 pigeonhole holds — the protocol \
             sends too many messages)"
        ));
    }
    Ok(outcome)
}

/// The Lemma 3/5 endgame: merge a mergeable pair whose `A`-decisions differ
/// and extract a violation via the Lemma 2 engine.
#[allow(clippy::too_many_arguments)]
fn contradict<P, F>(
    cfg: &FalsifierConfig,
    factory: &F,
    partition: &Partition,
    stats: &mut Stats<'_>,
    prov: &[String],
    eb: &Execution<Bit, Bit, P::Msg>,
    kb: Round,
    ec: &Execution<Bit, Bit, P::Msg>,
    kc: Round,
    b: Bit,
) -> Result<Option<Certificate<P::Msg>>, FalsifyError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let ecfg = cfg.executor_config();
    let merged = merge::<P, _>(&ecfg, factory, partition, eb, kb, ec, kc, b)?;
    stats.observe(&merged);
    debug_assert_eq!(merged.validate(), Ok(()));
    // Lemma 16 sanity: isolated groups cannot distinguish E* from their
    // originals, so they decide identically.
    debug_assert!(partition
        .b()
        .iter()
        .all(|p| merged.indistinguishable_to(eb, *p)));
    debug_assert!(partition
        .c()
        .iter()
        .all(|p| merged.indistinguishable_to(ec, *p)));

    let prov = with_note(
        prov,
        format!("merged execution E* (Algorithm 5) with B isolated from {kb}, C from {kc}"),
    );
    let a_verdict = match correct_verdict(&merged, &prov, "E*") {
        Ok(v) => v,
        Err(cert) => return Ok(Some(*cert)),
    };
    let prov = with_note(&prov, format!("group A decides {a_verdict} in E*"));
    for (group, label) in [(partition.b(), "E*/B"), (partition.c(), "E*/C")] {
        if let Some(cert) = lemma2_violation(&merged, group, a_verdict, &prov, label) {
            return Ok(Some(cert));
        }
    }
    stats.note(
        "merged execution: every disagreeing isolated process receive-omitted messages from \
         too many correct senders for swap_omission to stay within the fault budget",
    );
    Ok(None)
}

/// The outcome of the standalone Lemma 4 analysis (experiment EXP-L4).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CriticalRoundReport {
    /// `true` iff the default-1 structure appeared only after the WLOG bit
    /// flip.
    pub flipped: bool,
    /// The bit group `A` decides in `E_B(1)_0` in the canonical
    /// orientation.
    pub default_bit_canonical: Bit,
    /// The round by which all processes decide in the fault-free all-zeros
    /// execution (of the analyzed orientation).
    pub r_max: Round,
    /// The critical round `R`: `A` decides the default in `E_B(R)_0` and
    /// abandons it in `E_B(R+1)_0`.
    pub critical_round: Round,
}

/// Standalone Lemma 4 analysis: locate the critical round of a protocol, if
/// its isolation behavior has the default-bit structure (in either bit
/// orientation).
///
/// Returns `None` when the structure is absent — e.g. for sender-driven
/// protocols whose `A`-decision tracks the proposals rather than fault
/// detection, where the Theorem 2 argument instead proceeds through the
/// Lemma 3 pair mismatch.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn find_critical_round<P, F>(
    cfg: &FalsifierConfig,
    factory: F,
) -> Result<Option<CriticalRoundReport>, FalsifyError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let canonical_default = default_bit::<P, _>(cfg, &factory)?;
    match canonical_default {
        Some(Bit::One) => {
            let found = scan_critical::<P, _>(cfg, &factory)?;
            Ok(found.map(|(r_max, critical_round)| CriticalRoundReport {
                flipped: false,
                default_bit_canonical: Bit::One,
                r_max,
                critical_round,
            }))
        }
        Some(Bit::Zero) => {
            let flipped_factory = |pid: ProcessId| BitFlipped::new(factory(pid));
            let flipped_default = default_bit::<BitFlipped<P>, _>(cfg, &flipped_factory)?;
            if flipped_default != Some(Bit::One) {
                return Ok(None);
            }
            let found = scan_critical::<BitFlipped<P>, _>(cfg, &flipped_factory)?;
            Ok(found.map(|(r_max, critical_round)| CriticalRoundReport {
                flipped: true,
                default_bit_canonical: Bit::Zero,
                r_max,
                critical_round,
            }))
        }
        None => Ok(None),
    }
}

/// The `A`-decision in `E_B(1)_0`, or `None` if `A` is not unanimous.
fn default_bit<P, F>(cfg: &FalsifierConfig, factory: &F) -> Result<Option<Bit>, FalsifyError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let partition = cfg.partition();
    let runner = FamilyRunner::new(cfg.executor_config(), factory, partition.clone());
    let eb = runner.isolated_b::<P>(Round(1), Bit::Zero)?;
    Ok(eb.unanimous_decision(partition.a().iter()))
}

fn scan_critical<P, F>(
    cfg: &FalsifierConfig,
    factory: &F,
) -> Result<Option<(Round, Round)>, FalsifyError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let partition = cfg.partition();
    let runner = FamilyRunner::new(cfg.executor_config(), factory, partition.clone());
    let e0 = runner.e0::<P>(Bit::Zero)?;
    let Some(r_max) = e0.all_decided_by() else {
        return Ok(None);
    };
    for k in 2..=r_max.0 + 1 {
        let e = runner.isolated_b::<P>(Round(k), Bit::Zero)?;
        match e.unanimous_decision(partition.a().iter()) {
            Some(Bit::Zero) => return Ok(Some((r_max, Round(k - 1)))),
            Some(Bit::One) => {}
            None => return Ok(None),
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_protocols::broken::{LeaderEcho, OneRoundAllToAll, OwnProposal, SilentConstant};

    #[test]
    fn parallel_and_sequential_orientations_agree() {
        use ba_crypto::Keybook;
        use ba_protocols::DolevStrong;
        // A surviving protocol: both orientations always run, so the
        // survival reports must be value-identical across modes.
        let (n, t) = (8, 2);
        let factory = DolevStrong::factory(Keybook::new(n), ProcessId(0), Bit::Zero);
        let sequential = falsify(
            &FalsifierConfig::new(n, t).with_parallel_orientations(false),
            &factory,
        )
        .unwrap();
        let parallel = falsify(
            &FalsifierConfig::new(n, t).with_parallel_orientations(true),
            &factory,
        )
        .unwrap();
        match (&sequential, &parallel) {
            (Verdict::Survived(a), Verdict::Survived(b)) => assert_eq!(a, b),
            other => panic!("dolev-strong should survive in both modes: {other:?}"),
        }
        // A refuted protocol yields the same certificate in both modes (the
        // canonical orientation wins regardless of scheduling).
        let seq = falsify(
            &FalsifierConfig::new(n, t).with_parallel_orientations(false),
            |_: ProcessId| LeaderEcho::new(ProcessId(0)),
        )
        .unwrap();
        let par = falsify(
            &FalsifierConfig::new(n, t).with_parallel_orientations(true),
            |_: ProcessId| LeaderEcho::new(ProcessId(0)),
        )
        .unwrap();
        assert_eq!(
            seq.certificate().map(|c| (&c.kind, &c.provenance)),
            par.certificate().map(|c| (&c.kind, &c.provenance)),
        );
    }

    #[test]
    fn orientation_parallelism_defaults_by_instance_size() {
        assert!(!FalsifierConfig::new(8, 2).orientations_in_parallel());
        assert!(FalsifierConfig::new(96, 88).orientations_in_parallel());
        assert!(FalsifierConfig::new(8, 2)
            .with_parallel_orientations(true)
            .orientations_in_parallel());
    }

    #[test]
    fn parallel_and_sequential_scans_agree() {
        use ba_protocols::broken::ParanoidEcho;
        let (n, t) = (8, 2);
        let run = |parallel: bool| {
            falsify(
                &FalsifierConfig::new(n, t).with_parallel_scan(parallel),
                |_: ProcessId| ParanoidEcho::new(),
            )
            .unwrap()
        };
        // ParanoidEcho reaches the Lemma 4 critical-round scan and then
        // survives, so the survival reports (statistics, notes, explored
        // counts) must be value-identical across scan modes.
        match (&run(false), &run(true)) {
            (Verdict::Survived(a), Verdict::Survived(b)) => assert_eq!(a, b),
            other => panic!("paranoid-echo should survive in both modes: {other:?}"),
        }
        // A refuted protocol yields the same certificate either way.
        let refuted = |parallel: bool| {
            falsify(
                &FalsifierConfig::new(n, t).with_parallel_scan(parallel),
                |_: ProcessId| LeaderEcho::new(ProcessId(0)),
            )
            .unwrap()
        };
        let (seq, par) = (refuted(false), refuted(true));
        assert_eq!(
            seq.certificate().map(|c| (&c.kind, &c.provenance)),
            par.certificate().map(|c| (&c.kind, &c.provenance)),
        );
    }

    #[test]
    fn scan_parallelism_defaults_by_instance_size() {
        assert!(!FalsifierConfig::new(8, 2).scan_in_parallel());
        assert!(FalsifierConfig::new(96, 88).scan_in_parallel());
        assert!(FalsifierConfig::new(8, 2)
            .with_parallel_scan(true)
            .scan_in_parallel());
    }

    #[test]
    fn telemetry_is_observation_only_and_schedule_independent() {
        use ba_obs::Aggregator;
        use ba_protocols::broken::ParanoidEcho;
        use std::sync::Arc;

        // ParanoidEcho traverses the full argument (both orientations, the
        // Lemma 4 scan, the Lemma 5 merge) and survives.
        let (n, t) = (8, 2);
        let run = |recorder: Option<Arc<Aggregator>>, scan_parallel: bool| {
            let mut cfg = FalsifierConfig::new(n, t)
                .with_parallel_orientations(false)
                .with_parallel_scan(scan_parallel);
            if let Some(agg) = &recorder {
                cfg = cfg.with_recorder(agg.clone());
            }
            falsify(&cfg, |_: ProcessId| ParanoidEcho::new()).unwrap()
        };

        // Recording changes nothing about the verdict.
        let plain = run(None, false);
        let agg_seq = Arc::new(Aggregator::new());
        let recorded = run(Some(agg_seq.clone()), false);
        match (&plain, &recorded) {
            (Verdict::Survived(a), Verdict::Survived(b)) => assert_eq!(a, b),
            other => panic!("paranoid-echo should survive: {other:?}"),
        }

        // The deterministic channel is identical whether the Lemma 4 scan
        // precomputes in parallel or walks sequentially.
        let agg_par = Arc::new(Aggregator::new());
        let _ = run(Some(agg_par.clone()), true);
        let seq = agg_seq.snapshot().deterministic();
        let par = agg_par.snapshot().deterministic();
        assert_eq!(seq, par);

        // Counters mirror the survival report's logical quantities.
        let Verdict::Survived(report) = &recorded else {
            unreachable!()
        };
        assert_eq!(
            seq.counters["falsifier.executions"],
            report.executions_explored as u64
        );
        assert_eq!(seq.counters["falsifier.orientations"], 2);
        assert_eq!(seq.events["falsifier.orientation"], 2);
        assert_eq!(seq.events["falsifier.verdict"], 1);
        assert!(seq.counters["falsifier.scan.rounds"] >= 1);
        assert!(!seq.counters.contains_key("falsifier.violations"));

        // A refuted protocol counts its violation.
        let agg = Arc::new(Aggregator::new());
        let cfg = FalsifierConfig::new(n, t).with_recorder(agg.clone());
        let verdict = falsify(&cfg, |_| LeaderEcho::new(ProcessId(0))).unwrap();
        assert!(verdict.is_violation());
        let snap = agg.snapshot().deterministic();
        assert_eq!(snap.counters["falsifier.violations"], 1);
    }

    #[test]
    fn silent_constant_one_fails_weak_validity() {
        let cfg = FalsifierConfig::new(8, 2);
        let verdict = falsify(&cfg, |_| SilentConstant::new(Bit::One)).unwrap();
        let cert = verdict.certificate().expect("violation expected");
        cert.verify().unwrap();
        assert!(matches!(
            cert.kind,
            ViolationKind::WeakValidity {
                proposed: Bit::Zero,
                decided: Bit::One,
                ..
            }
        ));
    }

    #[test]
    fn silent_constant_zero_fails_weak_validity() {
        let cfg = FalsifierConfig::new(8, 2);
        let verdict = falsify(&cfg, |_| SilentConstant::new(Bit::Zero)).unwrap();
        let cert = verdict.certificate().expect("violation expected");
        cert.verify().unwrap();
        assert!(matches!(
            cert.kind,
            ViolationKind::WeakValidity {
                proposed: Bit::One,
                decided: Bit::Zero,
                ..
            }
        ));
    }

    #[test]
    fn own_proposal_fails_agreement_via_merge() {
        let cfg = FalsifierConfig::new(8, 2);
        let verdict = falsify(&cfg, |_| OwnProposal::new()).unwrap();
        let cert = verdict.certificate().expect("violation expected");
        cert.verify().unwrap();
        assert!(matches!(cert.kind, ViolationKind::Agreement { .. }));
        // The provenance should show the merge path.
        assert!(cert
            .provenance
            .iter()
            .any(|s| s.contains("merged execution")));
    }

    #[test]
    fn leader_echo_fails_agreement_via_lemma_2() {
        for (n, t) in [(8usize, 2usize), (12, 4), (16, 8)] {
            let cfg = FalsifierConfig::new(n, t);
            let verdict = falsify(&cfg, |_| LeaderEcho::new(ProcessId(0))).unwrap();
            let cert = verdict
                .certificate()
                .expect("violation expected at n={n}, t={t}");
            cert.verify().unwrap();
            assert!(matches!(cert.kind, ViolationKind::Agreement { .. }));
        }
    }

    #[test]
    fn certificates_reject_tampering() {
        let cfg = FalsifierConfig::new(8, 2);
        let verdict = falsify(&cfg, |_| LeaderEcho::new(ProcessId(0))).unwrap();
        let cert = verdict.certificate().unwrap().clone();
        let ViolationKind::Agreement { p, q } = cert.kind else {
            panic!("expected an agreement certificate")
        };
        // Tamper 1: name a faulty process as the violator.
        let mut bad = cert.clone();
        let faulty = *bad
            .execution
            .faulty
            .iter()
            .next()
            .expect("certificate has faults");
        bad.kind = ViolationKind::Agreement { p: faulty, q };
        assert!(matches!(
            bad.verify(),
            Err(CertificateError::NamedProcessFaulty(_))
        ));
        // Tamper 2: claim two processes that actually agree.
        let mut bad = cert.clone();
        let agree_with_q = bad
            .execution
            .correct()
            .find(|r| *r != q && bad.execution.decision_of(*r) == bad.execution.decision_of(q))
            .expect("some correct process agrees with q");
        bad.kind = ViolationKind::Agreement { p: agree_with_q, q };
        assert!(matches!(
            bad.verify(),
            Err(CertificateError::ClaimMismatch(_))
        ));
        // Tamper 3: excess fault blame breaks the execution guarantees.
        let mut bad = cert.clone();
        for pid in ProcessId::all(bad.execution.n) {
            bad.execution.faulty.insert(pid);
        }
        assert!(matches!(
            bad.verify(),
            Err(CertificateError::InvalidExecution(_))
        ));
        // The untampered certificate still verifies.
        cert.verify().unwrap();
        let _ = p;
    }

    #[test]
    fn one_round_all_to_all_survives_the_paper_recipe() {
        // n(n-1) messages: the Lemma 2 pigeonhole never applies, exactly as
        // the theory predicts. (The protocol is still broken — the random
        // prober finds the violation; see prober tests.)
        let cfg = FalsifierConfig::new(8, 2);
        let verdict = falsify(&cfg, |_| OneRoundAllToAll::new()).unwrap();
        match verdict {
            Verdict::Survived(report) => {
                assert!(report.max_message_complexity >= report.paper_bound);
                assert!(!report.notes.is_empty());
            }
            Verdict::Violation(cert) => {
                panic!(
                    "unexpected violation: {:?} / {:?}",
                    cert.kind, cert.provenance
                )
            }
        }
    }

    #[test]
    fn config_rejects_t_below_two() {
        let result = std::panic::catch_unwind(|| FalsifierConfig::new(5, 1));
        assert!(result.is_err());
    }
}
