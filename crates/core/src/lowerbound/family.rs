//! The execution families of the Theorem 2 proof (paper Table 1) and the
//! `(A, B, C)` partition they are built over.

use std::collections::BTreeSet;

use ba_sim::{
    Adversary, Bit, Execution, ExecutorConfig, ProcessId, Protocol, Round, Scenario, SimError,
};

/// A partition `(A, B, C)` of `Π` with `B` and `C` the isolation groups
/// (paper Table 1: `|B| = |C| = t/4`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Partition {
    a: BTreeSet<ProcessId>,
    b: BTreeSet<ProcessId>,
    c: BTreeSet<ProcessId>,
}

impl Partition {
    /// Builds a partition from explicit groups.
    ///
    /// # Panics
    ///
    /// Panics unless the three sets are disjoint, cover `{p_0, …, p_{n-1}}`,
    /// `A` is non-empty, and `|B| + |C| ≤ t` (both groups must be
    /// simultaneously faulty in the merged execution).
    pub fn new(
        n: usize,
        t: usize,
        a: BTreeSet<ProcessId>,
        b: BTreeSet<ProcessId>,
        c: BTreeSet<ProcessId>,
    ) -> Self {
        assert!(!a.is_empty(), "group A must be non-empty");
        assert!(
            !b.is_empty() && !c.is_empty(),
            "isolation groups must be non-empty"
        );
        assert!(b.len() + c.len() <= t, "require |B| + |C| ≤ t");
        let mut all = BTreeSet::new();
        for set in [&a, &b, &c] {
            for p in set {
                assert!(p.index() < n, "process {p} out of range");
                assert!(all.insert(*p), "groups must be disjoint (duplicate {p})");
            }
        }
        assert_eq!(all.len(), n, "groups must cover all {n} processes");
        Partition { a, b, c }
    }

    /// The paper's default shape: `|B| = |C| = max(1, ⌊t/4⌋)`, drawn from
    /// the top of the id range so that low-id processes (typical designated
    /// senders/leaders) stay in `A`.
    ///
    /// # Panics
    ///
    /// Panics unless `t ≥ 2` (two disjoint non-empty groups must fit in the
    /// fault budget) and `n ≥ 2·max(1, ⌊t/4⌋) + 1`.
    pub fn paper_default(n: usize, t: usize) -> Self {
        assert!(
            t >= 2,
            "the merged execution needs |B| + |C| ≤ t with both non-empty; t = {t} < 2"
        );
        let g = (t / 4).max(1);
        assert!(n > 2 * g, "need n > 2·{g} for a non-empty group A");
        let c: BTreeSet<ProcessId> = (n - g..n).map(ProcessId).collect();
        let b: BTreeSet<ProcessId> = (n - 2 * g..n - g).map(ProcessId).collect();
        let a: BTreeSet<ProcessId> = (0..n - 2 * g).map(ProcessId).collect();
        Partition { a, b, c }
    }

    /// Group `A` (correct in every family execution).
    pub fn a(&self) -> &BTreeSet<ProcessId> {
        &self.a
    }

    /// Isolation group `B`.
    pub fn b(&self) -> &BTreeSet<ProcessId> {
        &self.b
    }

    /// Isolation group `C`.
    pub fn c(&self) -> &BTreeSet<ProcessId> {
        &self.c
    }
}

/// Runs the Table 1 execution families for a fixed protocol and partition.
///
/// All executions use the same executor configuration, so horizons line up
/// and indistinguishability comparisons are meaningful.
pub struct FamilyRunner<'f, F> {
    cfg: ExecutorConfig,
    factory: &'f F,
    partition: Partition,
}

impl<'f, F> FamilyRunner<'f, F> {
    /// Creates a runner.
    pub fn new(cfg: ExecutorConfig, factory: &'f F, partition: Partition) -> Self {
        FamilyRunner {
            cfg,
            factory,
            partition,
        }
    }

    /// The partition in use.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The executor configuration in use.
    pub fn cfg(&self) -> &ExecutorConfig {
        &self.cfg
    }
}

impl<'f, F> FamilyRunner<'f, F> {
    /// `E_bit`: the fully correct execution in which every process proposes
    /// `bit` (Table 1's `E_0`, plus its all-ones sibling).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (protocol bugs).
    pub fn e0<P>(&self, bit: Bit) -> Result<Execution<Bit, Bit, P::Msg>, SimError>
    where
        P: Protocol<Input = Bit, Output = Bit>,
        F: Fn(ProcessId) -> P,
    {
        Scenario::config(&self.cfg)
            .protocol(self.factory)
            .uniform_input(bit)
            .run()
    }

    /// `E_B(k)_bit`: all processes propose `bit`; group `B` is isolated from
    /// round `k`; `A ∪ C` are correct.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn isolated_b<P>(&self, k: Round, bit: Bit) -> Result<Execution<Bit, Bit, P::Msg>, SimError>
    where
        P: Protocol<Input = Bit, Output = Bit>,
        F: Fn(ProcessId) -> P,
    {
        self.isolated::<P>(self.partition.b.clone(), k, bit)
    }

    /// `E_C(k)_bit`: all processes propose `bit`; group `C` is isolated from
    /// round `k`; `A ∪ B` are correct.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn isolated_c<P>(&self, k: Round, bit: Bit) -> Result<Execution<Bit, Bit, P::Msg>, SimError>
    where
        P: Protocol<Input = Bit, Output = Bit>,
        F: Fn(ProcessId) -> P,
    {
        self.isolated::<P>(self.partition.c.clone(), k, bit)
    }

    fn isolated<P>(
        &self,
        group: BTreeSet<ProcessId>,
        k: Round,
        bit: Bit,
    ) -> Result<Execution<Bit, Bit, P::Msg>, SimError>
    where
        P: Protocol<Input = Bit, Output = Bit>,
        F: Fn(ProcessId) -> P,
    {
        Scenario::config(&self.cfg)
            .protocol(self.factory)
            .uniform_input(bit)
            .adversary(Adversary::isolation(group, k))
            .run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_crypto::Keybook;
    use ba_protocols::DolevStrong;

    fn runner_cfg(n: usize, t: usize) -> ExecutorConfig {
        ExecutorConfig::new(n, t)
            .with_stop_when_quiescent(false)
            .with_max_rounds(12)
    }

    #[test]
    fn paper_default_partition_shape() {
        let p = Partition::paper_default(16, 8);
        assert_eq!(p.b().len(), 2);
        assert_eq!(p.c().len(), 2);
        assert_eq!(p.a().len(), 12);
        assert!(p.a().contains(&ProcessId(0)));
        assert!(p.c().contains(&ProcessId(15)));
    }

    #[test]
    fn small_t_partition_uses_singletons() {
        let p = Partition::paper_default(5, 2);
        assert_eq!(p.b().len(), 1);
        assert_eq!(p.c().len(), 1);
    }

    #[test]
    #[should_panic(expected = "t = 1 < 2")]
    fn t_one_is_rejected() {
        let _ = Partition::paper_default(5, 1);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_groups_are_rejected() {
        let b: BTreeSet<_> = [ProcessId(1)].into();
        let c: BTreeSet<_> = [ProcessId(1)].into();
        let a: BTreeSet<_> = [ProcessId(0), ProcessId(2)].into();
        let _ = Partition::new(3, 2, a, b, c);
    }

    #[test]
    fn family_executions_are_valid_and_isolated() {
        let (n, t) = (6, 2);
        let cfg = runner_cfg(n, t);
        let factory = DolevStrong::factory(Keybook::new(n), ProcessId(0), Bit::Zero);
        let partition = Partition::paper_default(n, t);
        let runner = FamilyRunner::new(cfg, &factory, partition);

        let e0 = runner.e0::<DolevStrong<Bit>>(Bit::Zero).unwrap();
        e0.validate().unwrap();
        assert!(e0.all_correct_decided(Bit::Zero));

        let eb = runner
            .isolated_b::<DolevStrong<Bit>>(Round(2), Bit::Zero)
            .unwrap();
        eb.validate().unwrap();
        // B is faulty and receives nothing from outside from round 2 on.
        let b_member = *runner.partition().b().iter().next().unwrap();
        assert!(!eb.is_correct(b_member));
        let frag = &eb.record(b_member).fragments[1];
        assert!(frag
            .received
            .keys()
            .all(|s| runner.partition().b().contains(s)));
    }

    #[test]
    fn isolation_from_round_one_blinds_the_group_entirely() {
        let (n, t) = (6, 2);
        let cfg = runner_cfg(n, t);
        let factory = DolevStrong::factory(Keybook::new(n), ProcessId(0), Bit::Zero);
        let partition = Partition::paper_default(n, t);
        let runner = FamilyRunner::new(cfg, &factory, partition);
        let ec = runner
            .isolated_c::<DolevStrong<Bit>>(Round(1), Bit::One)
            .unwrap();
        let c_member = *runner.partition().c().iter().next().unwrap();
        for frag in &ec.record(c_member).fragments {
            assert!(frag
                .received
                .keys()
                .all(|s| runner.partition().c().contains(s)));
        }
        // C never extracts the sender's value and decides the default 0,
        // while A ∪ B decide the broadcast value 1.
        assert_eq!(ec.decision_of(c_member), Some(&Bit::Zero));
        assert_eq!(ec.decision_of(ProcessId(0)), Some(&Bit::One));
    }

    #[test]
    fn figure_1_divergence_anatomy() {
        // Paper Figure 1: E_G(R) proceeds identically to E_0 up to round R;
        // the isolated group's *sending* behavior may first deviate in round
        // R + 1, and the outside world's in round R + 2.
        let (n, t) = (6, 2);
        let cfg = runner_cfg(n, t);
        let factory = DolevStrong::factory(Keybook::new(n), ProcessId(0), Bit::One);
        let partition = Partition::paper_default(n, t);
        let runner = FamilyRunner::new(cfg, &factory, partition.clone());
        let e0 = runner.e0::<DolevStrong<Bit>>(Bit::Zero).unwrap();
        let r = Round(1);
        let eb = runner.isolated_b::<DolevStrong<Bit>>(r, Bit::Zero).unwrap();
        for pid in ProcessId::all(n) {
            if let Some(div) = e0.first_send_divergence(&eb, pid) {
                if partition.b().contains(&pid) {
                    assert!(div >= r.next(), "{pid} diverged at {div}, before R+1");
                } else {
                    assert!(div >= Round(r.0 + 2), "{pid} diverged at {div}, before R+2");
                }
            }
        }
    }
}
