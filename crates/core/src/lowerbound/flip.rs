//! The WLOG bit relabeling of the Theorem 2 proof.
//!
//! The paper assumes "without loss of generality" that group `A` decides `1`
//! in `E_B(1)_0` — justified because Weak Validity is symmetric under
//! relabeling the bits. [`BitFlipped`] makes the relabeling executable: it
//! is a weak consensus protocol iff its inner protocol is, and its executions
//! are in 1-1 correspondence with the inner protocol's via
//! [`unflip_execution`].

use ba_sim::{Bit, Execution, Inbox, Outbox, Payload, ProcessCtx, Protocol, Round};

/// The bit-relabeled protocol: `propose(b)` becomes `propose(1 − b)` and a
/// decision `d` is reported as `1 − d`. Messages are untouched.
#[derive(Clone, Debug)]
pub struct BitFlipped<P> {
    inner: P,
}

impl<P> BitFlipped<P>
where
    P: Protocol<Input = Bit, Output = Bit>,
{
    /// Wraps `inner`.
    pub fn new(inner: P) -> Self {
        BitFlipped { inner }
    }

    /// The wrapped protocol.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P> Protocol for BitFlipped<P>
where
    P: Protocol<Input = Bit, Output = Bit>,
{
    type Input = Bit;
    type Output = Bit;
    type Msg = P::Msg;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<P::Msg> {
        self.inner.propose(ctx, proposal.flip())
    }

    fn round(&mut self, ctx: &ProcessCtx, round: Round, inbox: &Inbox<P::Msg>) -> Outbox<P::Msg> {
        self.inner.round(ctx, round, inbox)
    }

    fn decision(&self) -> Option<Bit> {
        self.inner.decision().map(Bit::flip)
    }
}

/// Maps an execution of `BitFlipped(P)` back to the corresponding execution
/// of `P`: proposals and decisions are complemented, everything else
/// (messages, fragments, fault set) is identical.
///
/// The result is a genuine execution of `P` — this is how a violation
/// certificate found in the flipped orientation is reported against the
/// original protocol.
pub fn unflip_execution<M: Payload>(mut exec: Execution<Bit, Bit, M>) -> Execution<Bit, Bit, M> {
    for record in &mut exec.records {
        record.proposal = record.proposal.flip();
        if let Some((v, _)) = &mut record.decision {
            *v = v.flip();
        }
    }
    exec
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{ProcessId, Scenario};

    /// Broadcast proposal once; decide own proposal.
    #[derive(Clone)]
    struct Echo {
        decision: Option<Bit>,
    }

    impl Protocol for Echo {
        type Input = Bit;
        type Output = Bit;
        type Msg = Bit;

        fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<Bit> {
            self.decision = Some(proposal);
            let mut out = Outbox::new();
            out.broadcast(ctx.others(), proposal);
            out
        }

        fn round(&mut self, _: &ProcessCtx, _: Round, _: &Inbox<Bit>) -> Outbox<Bit> {
            Outbox::new()
        }

        fn decision(&self) -> Option<Bit> {
            self.decision
        }
    }

    #[test]
    fn flipped_protocol_flips_proposals_and_decisions() {
        let exec = Scenario::new(3, 1)
            .protocol(|_| BitFlipped::new(Echo { decision: None }))
            .uniform_input(Bit::Zero)
            .run()
            .unwrap();
        // Inner protocol saw One (flipped), decided One, reported flipped
        // back as Zero.
        assert!(exec.all_correct_decided(Bit::Zero));
        // But the *messages* carry the inner value One.
        assert_eq!(
            exec.record(ProcessId(0)).fragments[0]
                .sent
                .get(&ProcessId(1)),
            Some(&Bit::One)
        );
    }

    #[test]
    fn unflip_recovers_inner_execution() {
        let flipped = Scenario::new(3, 1)
            .protocol(|_| BitFlipped::new(Echo { decision: None }))
            .uniform_input(Bit::Zero)
            .run()
            .unwrap();
        let unflipped = unflip_execution(flipped);
        // The unflipped execution is exactly what running Echo on all-One
        // proposals produces.
        let direct = Scenario::new(3, 1)
            .protocol(|_| Echo { decision: None })
            .uniform_input(Bit::One)
            .run()
            .unwrap();
        assert_eq!(unflipped, direct);
    }

    #[test]
    fn double_flip_is_identity_on_behavior() {
        let twice = Scenario::new(3, 1)
            .protocol(|_| BitFlipped::new(BitFlipped::new(Echo { decision: None })))
            .inputs([Bit::One, Bit::Zero, Bit::One])
            .run()
            .unwrap();
        let direct = Scenario::new(3, 1)
            .protocol(|_| Echo { decision: None })
            .inputs([Bit::One, Bit::Zero, Bit::One])
            .run()
            .unwrap();
        assert_eq!(twice, direct);
    }
}
