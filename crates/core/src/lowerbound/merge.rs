//! `merge` (paper Definition 2, Algorithm 5, Lemma 16): combine two
//! mergeable isolation executions into one execution in which **both**
//! groups are simultaneously isolated and behave exactly as in their
//! respective originals.
//!
//! The construction re-runs all state machines: group `A` receives
//! everything addressed to it; groups `B` and `C` receive *exactly* the
//! messages they received in `E_B(k₁)_0` and `E_C(k₂)_b` respectively
//! (receive-omitting the rest). Lemma 16's receive-validity argument — that
//! every such message is in fact re-sent in the merged run — is not assumed
//! but **checked**: any divergence is reported as
//! [`MergeError::Diverged`].

use std::error::Error;
use std::fmt;

use ba_sim::{
    Adversary, Bit, Execution, ExecutorConfig, Fate, FnPlan, ProcessId, Protocol, Round, Scenario,
    SimError,
};

use super::family::Partition;

/// Why a merge failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MergeError {
    /// The two executions are not mergeable per Definition 2
    /// (`k₁ = k₂ = 1`, or `|k₁ − k₂| ≤ 1` with `b = 0`).
    NotMergeable {
        /// Isolation round of `B` in the first execution.
        kb: Round,
        /// Isolation round of `C` in the second execution.
        kc: Round,
        /// The proposal bit of the second execution.
        b: Bit,
    },
    /// The executor rejected the merged run.
    Sim(SimError),
    /// A process of an isolated group did not receive, in the merged run,
    /// exactly what it received in its original execution — the protocol is
    /// non-deterministic or the inputs were not the advertised families.
    Diverged {
        /// The process whose inbox diverged.
        process: ProcessId,
        /// The first round of divergence.
        round: Round,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NotMergeable { kb, kc, b } => {
                write!(
                    f,
                    "executions E_B({}) and E_C({})_{b} are not mergeable",
                    kb.0, kc.0
                )
            }
            MergeError::Sim(e) => write!(f, "merged run failed: {e}"),
            MergeError::Diverged { process, round } => {
                write!(
                    f,
                    "merged inbox of {process} diverged from the original in {round}"
                )
            }
        }
    }
}

impl Error for MergeError {}

impl From<SimError> for MergeError {
    fn from(e: SimError) -> Self {
        MergeError::Sim(e)
    }
}

/// Definition 2: are `E_B(k₁)_0` and `E_C(k₂)_b` mergeable?
pub fn mergeable(kb: Round, kc: Round, b: Bit) -> bool {
    (kb == Round(1) && kc == Round(1)) || (kb.0.abs_diff(kc.0) <= 1 && b == Bit::Zero)
}

/// Algorithm 5: construct the merged execution `E*`.
///
/// * `eb` must be `E_B(kb)_0` (all propose 0, `B` isolated from `kb`);
/// * `ec` must be `E_C(kc)_b` (all propose `b`, `C` isolated from `kc`);
/// * the merged run has `A ∪ B` proposing 0 and `C` proposing `b`, with
///   faulty set `B ∪ C`, `B` isolated from `kb` and `C` from `kc`.
///
/// On success the merged execution is indistinguishable from `eb` to every
/// process in `B` and from `ec` to every process in `C` (Lemma 16), which
/// the caller can (and the falsifier does) assert via
/// [`Execution::indistinguishable_to`].
///
/// # Errors
///
/// See [`MergeError`].
#[allow(clippy::too_many_arguments)]
pub fn merge<P, F>(
    cfg: &ExecutorConfig,
    factory: F,
    partition: &Partition,
    eb: &Execution<Bit, Bit, P::Msg>,
    kb: Round,
    ec: &Execution<Bit, Bit, P::Msg>,
    kc: Round,
    b: Bit,
) -> Result<Execution<Bit, Bit, P::Msg>, MergeError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    if !mergeable(kb, kc, b) {
        return Err(MergeError::NotMergeable { kb, kc, b });
    }

    // Proposals: A ∪ B propose 0, C proposes b (Algorithm 5 lines 4–7).
    let proposals: Vec<Bit> = ProcessId::all(cfg.n)
        .map(|p| {
            if partition.c().contains(&p) {
                b
            } else {
                Bit::Zero
            }
        })
        .collect();
    let faulty: std::collections::BTreeSet<ProcessId> =
        partition.b().union(partition.c()).copied().collect();

    // Delivery: A receives everything; B and C receive exactly their
    // original inboxes (lines 10–18).
    let plan = FnPlan(
        |round: Round, sender: ProcessId, receiver: ProcessId, payload: &P::Msg| {
            let original = if partition.b().contains(&receiver) {
                eb
            } else if partition.c().contains(&receiver) {
                ec
            } else {
                return Fate::Deliver;
            };
            let received_originally = original
                .record(receiver)
                .fragment(round)
                .is_some_and(|frag| frag.received.get(&sender) == Some(payload));
            if received_originally {
                Fate::Deliver
            } else {
                Fate::ReceiveOmit
            }
        },
    );

    let merged = Scenario::config(cfg)
        .protocol(&factory)
        .inputs(proposals)
        .adversary(Adversary::omission(faulty, plan))
        .run()?;

    // Lemma 16's receive-validity claim, checked: each isolated process
    // received exactly its original inbox, round by round.
    for (group, original) in [(partition.b(), eb), (partition.c(), ec)] {
        for pid in group {
            let horizon = merged.rounds.max(original.rounds);
            for round in Round::up_to(horizon) {
                let got = merged.record(*pid).fragment(round).map(|f| &f.received);
                let want = original.record(*pid).fragment(round).map(|f| &f.received);
                let empty = std::collections::BTreeMap::new();
                if got.unwrap_or(&empty) != want.unwrap_or(&empty) {
                    return Err(MergeError::Diverged {
                        process: *pid,
                        round,
                    });
                }
            }
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowerbound::family::FamilyRunner;
    use ba_crypto::Keybook;
    use ba_protocols::DolevStrong;

    fn setup(
        n: usize,
        t: usize,
    ) -> (
        ExecutorConfig,
        impl Fn(ProcessId) -> DolevStrong<Bit>,
        Partition,
    ) {
        let cfg = ExecutorConfig::new(n, t)
            .with_stop_when_quiescent(false)
            .with_max_rounds(10);
        let factory = DolevStrong::factory(Keybook::new(n), ProcessId(0), Bit::Zero);
        let partition = Partition::paper_default(n, t);
        (cfg, factory, partition)
    }

    #[test]
    fn mergeability_follows_definition_2() {
        assert!(mergeable(Round(1), Round(1), Bit::One));
        assert!(mergeable(Round(1), Round(1), Bit::Zero));
        assert!(mergeable(Round(4), Round(3), Bit::Zero));
        assert!(mergeable(Round(3), Round(3), Bit::Zero));
        assert!(mergeable(Round(3), Round(4), Bit::Zero));
        assert!(
            !mergeable(Round(4), Round(2), Bit::Zero),
            "two rounds apart"
        );
        assert!(
            !mergeable(Round(2), Round(2), Bit::One),
            "b = 1 requires k = 1"
        );
        assert!(!mergeable(Round(1), Round(2), Bit::One));
    }

    #[test]
    fn merge_rejects_non_mergeable_inputs() {
        let (cfg, factory, partition) = setup(6, 2);
        let runner = FamilyRunner::new(cfg, &factory, partition.clone());
        let eb = runner
            .isolated_b::<DolevStrong<Bit>>(Round(4), Bit::Zero)
            .unwrap();
        let ec = runner
            .isolated_c::<DolevStrong<Bit>>(Round(2), Bit::Zero)
            .unwrap();
        let err = merge(
            &cfg,
            &factory,
            &partition,
            &eb,
            Round(4),
            &ec,
            Round(2),
            Bit::Zero,
        )
        .unwrap_err();
        assert!(matches!(err, MergeError::NotMergeable { .. }));
    }

    #[test]
    fn merged_execution_is_valid_and_isolates_both_groups() {
        let (cfg, factory, partition) = setup(6, 2);
        let runner = FamilyRunner::new(cfg, &factory, partition.clone());
        let eb = runner
            .isolated_b::<DolevStrong<Bit>>(Round(2), Bit::Zero)
            .unwrap();
        let ec = runner
            .isolated_c::<DolevStrong<Bit>>(Round(2), Bit::Zero)
            .unwrap();
        let merged = merge(
            &cfg,
            &factory,
            &partition,
            &eb,
            Round(2),
            &ec,
            Round(2),
            Bit::Zero,
        )
        .unwrap();
        merged.validate().unwrap();
        assert_eq!(
            merged.faulty,
            partition.b().union(partition.c()).copied().collect()
        );
        // Both groups receive nothing from outside their group from round 2.
        for group in [partition.b(), partition.c()] {
            for pid in group {
                for frag in &merged.record(*pid).fragments[1..] {
                    assert!(frag.received.keys().all(|s| group.contains(s)));
                }
            }
        }
    }

    #[test]
    fn lemma_16_indistinguishability_for_isolated_groups() {
        let (cfg, factory, partition) = setup(6, 2);
        let runner = FamilyRunner::new(cfg, &factory, partition.clone());
        let eb = runner
            .isolated_b::<DolevStrong<Bit>>(Round(1), Bit::Zero)
            .unwrap();
        let ec = runner
            .isolated_c::<DolevStrong<Bit>>(Round(1), Bit::One)
            .unwrap();
        let merged = merge(
            &cfg,
            &factory,
            &partition,
            &eb,
            Round(1),
            &ec,
            Round(1),
            Bit::One,
        )
        .unwrap();
        for pid in partition.b() {
            assert!(
                merged.indistinguishable_to(&eb, *pid),
                "{pid} distinguishes E* from E_B"
            );
        }
        for pid in partition.c() {
            assert!(
                merged.indistinguishable_to(&ec, *pid),
                "{pid} distinguishes E* from E_C"
            );
        }
        // Consequence: isolated groups decide in E* exactly as in their
        // originals.
        for pid in partition.b() {
            assert_eq!(merged.decision_of(*pid), eb.decision_of(*pid));
        }
        for pid in partition.c() {
            assert_eq!(merged.decision_of(*pid), ec.decision_of(*pid));
        }
    }

    #[test]
    fn merge_one_round_apart_works() {
        let (cfg, factory, partition) = setup(6, 2);
        let runner = FamilyRunner::new(cfg, &factory, partition.clone());
        let eb = runner
            .isolated_b::<DolevStrong<Bit>>(Round(3), Bit::Zero)
            .unwrap();
        let ec = runner
            .isolated_c::<DolevStrong<Bit>>(Round(2), Bit::Zero)
            .unwrap();
        let merged = merge(
            &cfg,
            &factory,
            &partition,
            &eb,
            Round(3),
            &ec,
            Round(2),
            Bit::Zero,
        )
        .unwrap();
        merged.validate().unwrap();
        for pid in partition.b() {
            assert!(merged.indistinguishable_to(&eb, *pid));
        }
        for pid in partition.c() {
            assert!(merged.indistinguishable_to(&ec, *pid));
        }
    }

    #[test]
    fn merged_message_complexity_counts_only_group_a() {
        let (cfg, factory, partition) = setup(6, 2);
        let runner = FamilyRunner::new(cfg, &factory, partition.clone());
        let eb = runner
            .isolated_b::<DolevStrong<Bit>>(Round(1), Bit::Zero)
            .unwrap();
        let ec = runner
            .isolated_c::<DolevStrong<Bit>>(Round(1), Bit::Zero)
            .unwrap();
        let merged = merge(
            &cfg,
            &factory,
            &partition,
            &eb,
            Round(1),
            &ec,
            Round(1),
            Bit::Zero,
        )
        .unwrap();
        let a_sent: u64 = partition
            .a()
            .iter()
            .map(|p| merged.record(*p).total_sent())
            .sum();
        assert_eq!(merged.message_complexity(), a_sent);
    }
}
