//! The Ω(t²) lower bound of paper §3, as executable machinery.
//!
//! | Paper artifact | Here |
//! |---|---|
//! | Isolation (Definition 1) & the execution families of Table 1 | [`family`] |
//! | `swap_omission` (Algorithm 4, Lemma 15) | [`swap`] |
//! | Mergeable executions (Definition 2) & `merge` (Algorithm 5, Lemma 16) | the `merge` module |
//! | The WLOG bit-relabeling ("assume the default bit is 1") | [`flip`] |
//! | Critical round (Lemma 4) and the full Theorem 2 argument | [`falsifier`] |
//! | Randomized omission fault injection (complementary testing) | [`prober`] |
//! | Exhaustive single-corruption model checking (tiny instances) | [`exhaustive`] |
//!
//! The [`falsifier`] is the proof of Theorem 2 *run forward*: instead of
//! deriving a contradiction from an assumed cheap algorithm, it takes an
//! actual protocol and mechanically constructs the executions the proof
//! talks about. For genuinely sub-quadratic protocols it terminates with a
//! [`Certificate`] — a concrete omission-only execution, checkable by
//! [`Certificate::verify`], in which weak consensus is violated. For
//! protocols that send enough messages, the very steps of the proof fail in
//! the ways the paper predicts (the pigeonhole of Lemma 2 finds no
//! low-omission process), and the falsifier reports survival along with the
//! observed message complexity — at least `t²/32` for correct algorithms.

pub mod exhaustive;
pub mod falsifier;
pub mod family;
pub mod flip;
pub mod merge;
pub mod prober;
pub mod swap;

pub use exhaustive::{
    exhaustive_omission_check, ExhaustiveConfig, ExhaustiveError, ExhaustiveOutcome,
    ExhaustiveReport,
};
pub use falsifier::{
    falsify, find_critical_round, lemma2_violation, weak_consensus_violation, Certificate,
    CertificateError, CriticalRoundReport, FalsifierConfig, FalsifyError, SurvivalReport, Verdict,
    ViolationKind,
};
pub use family::{FamilyRunner, Partition};
pub use flip::{unflip_execution, BitFlipped};
pub use merge::{merge, MergeError};
pub use prober::{probe_weak_consensus, ProbeOutcome, ProbeReport};
pub use swap::{swap_omission, SwapError};
