//! Randomized omission fault injection — the complement of the falsifier.
//!
//! The falsifier follows the paper's proof, whose pigeonhole step only
//! bites protocols with fewer than `t²/32` messages. Protocols that send
//! more can still be incorrect (e.g.
//! `ba_protocols::broken::OneRoundAllToAll`); this prober finds such
//! violations by seeded random search over fault sets, proposals, and
//! omission patterns, and reports them in the same verifiable
//! [`Certificate`] format.

use std::collections::BTreeSet;

use ba_sim::{
    Adversary, Bit, ExecutorConfig, Fate, ProcessId, Protocol, RandomOmissionPlan, Round, Scenario,
    SimError, SimRng, TableOmissionPlan,
};

use super::falsifier::{Certificate, ViolationKind};

/// Aggregate statistics of a probe run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProbeReport {
    /// Trials executed (including the one that found a violation, if any).
    pub trials: usize,
    /// The largest message complexity observed.
    pub max_message_complexity: u64,
}

/// The outcome of [`probe_weak_consensus`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProbeOutcome<M> {
    /// A violating execution was found (and is re-verifiable).
    Violation(Box<Certificate<M>>, ProbeReport),
    /// No violation in the given number of trials.
    Clean(ProbeReport),
}

impl<M: ba_sim::Payload> ProbeOutcome<M> {
    /// The certificate, if a violation was found.
    pub fn certificate(&self) -> Option<&Certificate<M>> {
        match self {
            ProbeOutcome::Violation(c, _) => Some(c),
            ProbeOutcome::Clean(_) => None,
        }
    }

    /// The aggregate report.
    pub fn report(&self) -> &ProbeReport {
        match self {
            ProbeOutcome::Violation(_, r) | ProbeOutcome::Clean(r) => r,
        }
    }
}

/// Runs `trials` random omission-fault executions of a claimed weak
/// consensus protocol, checking Agreement, Termination, and (in fully
/// correct uniform trials) Weak Validity among correct processes.
///
/// Two adversary generators alternate (both seeded and deterministic):
///
/// * **random rates** — every message touching a faulty process is dropped
///   with random per-trial probabilities;
/// * **sandbagging** — a structured nemesis: one faulty process proposes the
///   minority value, stays silent for a random prefix of rounds, then
///   reveals itself to a random strict subset of processes. This is the
///   shape of attack that separates the omission model from crash (and
///   breaks e.g. FloodSet); random rates essentially never produce it by
///   chance.
///
/// Deterministic for a fixed `seed`.
///
/// # Errors
///
/// Propagates simulator errors (protocol bugs).
pub fn probe_weak_consensus<P, F>(
    cfg: &ExecutorConfig,
    factory: F,
    trials: usize,
    seed: u64,
) -> Result<ProbeOutcome<P::Msg>, SimError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let mut rng = SimRng::seed_from_u64(seed);
    let mut report = ProbeReport {
        trials: 0,
        max_message_complexity: 0,
    };

    for trial in 0..trials {
        report.trials = trial + 1;

        // Random fault set of size 0..=t (size 0 exercises Weak Validity).
        let fault_count = rng.gen_index(0, cfg.t + 1);
        let mut ids: Vec<ProcessId> = ProcessId::all(cfg.n).collect();
        rng.shuffle(&mut ids);
        let faulty: BTreeSet<ProcessId> = ids.into_iter().take(fault_count).collect();

        // Pick the nemesis for this trial: random rates always available;
        // the structured ones need at least one faulty process.
        let nemesis = if faulty.is_empty() {
            0
        } else {
            rng.gen_index(0, 3)
        };

        // Proposals: uniform in a third of the trials (to probe validity),
        // random otherwise; the structured nemeses always use uniform
        // proposals (their attacks target the unanimous case).
        let uniform = nemesis != 0 || rng.gen_index(0, 3) == 0;
        let uniform_bit = Bit::from(rng.gen_bool(0.5));
        let mut proposals: Vec<Bit> = (0..cfg.n)
            .map(|_| {
                if uniform {
                    uniform_bit
                } else {
                    Bit::from(rng.gen_bool(0.5))
                }
            })
            .collect();

        let horizon = cfg.max_rounds.min(4 * (cfg.t as u64 + 2));
        let scenario = Scenario::config(cfg).protocol(&factory);
        let exec = match nemesis {
            // Sandbag: a faulty minority-value proposer hides its sends for
            // a prefix of rounds, then reveals to a strict subset.
            1 => {
                let sandbagger = *faulty.iter().next().expect("non-empty");
                proposals[sandbagger.index()] = uniform_bit.flip();
                let reveal_round = rng.gen_range(1, cfg.t as u64 + 3);
                let mut plan = TableOmissionPlan::new();
                let mut receivers: Vec<ProcessId> =
                    ProcessId::all(cfg.n).filter(|p| *p != sandbagger).collect();
                rng.shuffle(&mut receivers);
                let reveal_count = rng.gen_index(1, receivers.len());
                let hidden: Vec<ProcessId> = receivers.into_iter().skip(reveal_count).collect();
                for round in 1..=horizon {
                    for receiver in ProcessId::all(cfg.n).filter(|p| *p != sandbagger) {
                        if round < reveal_round || hidden.contains(&receiver) {
                            plan.set(Round(round), sandbagger, receiver, Fate::SendOmit);
                        }
                    }
                }
                scenario
                    .inputs(proposals.iter().cloned())
                    .adversary(Adversary::omission(faulty.iter().copied(), plan))
                    .run()?
            }
            // Stutter: behave perfectly except for one round, in which the
            // faulty process send-omits to a strict subset — the minimal
            // "detectable fault" that splits echo-style protocols.
            2 => {
                let stutterer = *faulty.iter().next().expect("non-empty");
                let stutter_round = rng.gen_range(1, cfg.t as u64 + 3);
                let mut plan = TableOmissionPlan::new();
                let mut receivers: Vec<ProcessId> =
                    ProcessId::all(cfg.n).filter(|p| *p != stutterer).collect();
                rng.shuffle(&mut receivers);
                let omit_count = rng.gen_index(1, receivers.len());
                for receiver in receivers.into_iter().take(omit_count) {
                    plan.set(Round(stutter_round), stutterer, receiver, Fate::SendOmit);
                }
                scenario
                    .inputs(proposals.iter().cloned())
                    .adversary(Adversary::omission(faulty.iter().copied(), plan))
                    .run()?
            }
            // Random per-message omission rates.
            _ => {
                let plan = RandomOmissionPlan::new(
                    faulty.iter().copied(),
                    rng.gen_f64(0.05, 0.95),
                    rng.gen_f64(0.05, 0.95),
                    rng.next_u64(),
                );
                scenario
                    .inputs(proposals.iter().cloned())
                    .adversary(Adversary::omission(faulty.iter().copied(), plan))
                    .run()?
            }
        };
        report.max_message_complexity =
            report.max_message_complexity.max(exec.message_complexity());
        let provenance = vec![format!("random omission probe: trial {trial}, seed {seed}")];

        // Termination + Agreement among correct processes.
        let mut decided: Option<(Bit, ProcessId)> = None;
        let mut violation: Option<ViolationKind> = None;
        for p in exec.correct() {
            match exec.decision_of(p) {
                None => {
                    let partner = exec.correct().find(|q| exec.decision_of(*q).is_some());
                    violation = Some(ViolationKind::Termination {
                        undecided: p,
                        decided: partner,
                    });
                    break;
                }
                Some(v) => match decided {
                    Some((w, q)) if *v != w => {
                        violation = Some(ViolationKind::Agreement { p: q, q: p });
                        break;
                    }
                    Some(_) => {}
                    None => decided = Some((*v, p)),
                },
            }
        }
        // Weak Validity in fully correct uniform trials.
        if violation.is_none() && faulty.is_empty() && uniform {
            if let Some((v, p)) = decided {
                if v != uniform_bit {
                    violation = Some(ViolationKind::WeakValidity {
                        process: p,
                        proposed: uniform_bit,
                        decided: v,
                    });
                }
            }
        }
        if let Some(kind) = violation {
            return Ok(ProbeOutcome::Violation(
                Box::new(Certificate {
                    execution: exec,
                    kind,
                    provenance,
                }),
                report,
            ));
        }
    }
    Ok(ProbeOutcome::Clean(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_crypto::Keybook;
    use ba_protocols::broken::{OneRoundAllToAll, ParanoidEcho};
    use ba_protocols::DolevStrong;

    #[test]
    fn prober_finds_one_round_all_to_all_violation() {
        let cfg = ExecutorConfig::new(6, 2);
        let outcome = probe_weak_consensus(&cfg, |_| OneRoundAllToAll::new(), 200, 7).unwrap();
        let cert = outcome.certificate().expect("violation expected");
        cert.verify().unwrap();
    }

    #[test]
    fn prober_finds_paranoid_echo_violation() {
        let cfg = ExecutorConfig::new(6, 2);
        let outcome = probe_weak_consensus(&cfg, |_| ParanoidEcho::new(), 600, 11).unwrap();
        let cert = outcome.certificate().expect("violation expected");
        cert.verify().unwrap();
    }

    #[test]
    fn prober_passes_dolev_strong_weak_consensus() {
        let (n, t) = (5, 2);
        let cfg = ExecutorConfig::new(n, t);
        let book = Keybook::new(n);
        let outcome = probe_weak_consensus(
            &cfg,
            DolevStrong::factory(book, ProcessId(0), Bit::Zero),
            150,
            13,
        )
        .unwrap();
        assert!(
            outcome.certificate().is_none(),
            "Dolev-Strong must survive: {outcome:?}"
        );
        assert_eq!(outcome.report().trials, 150);
    }

    #[test]
    fn prober_is_deterministic_per_seed() {
        let cfg = ExecutorConfig::new(5, 2);
        let run = |seed| {
            probe_weak_consensus(&cfg, |_| OneRoundAllToAll::new(), 50, seed)
                .unwrap()
                .report()
                .clone()
        };
        assert_eq!(run(3), run(3));
    }
}
