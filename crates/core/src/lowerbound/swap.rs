//! `swap_omission` (paper Algorithm 4, Lemma 15): re-attribute one
//! process's receive-omission faults to the senders as send-omission
//! faults, making that process correct.
//!
//! This is the engine of Lemma 2: if an isolated process `p` decides
//! "wrong" and only few correct processes ever addressed it, the swap
//! produces a *valid* execution — indistinguishable to every process, hence
//! with identical decisions — in which `p` is correct, turning the wrong
//! decision into a genuine Agreement/Termination violation.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use ba_sim::{Execution, Payload, ProcessId, Value};

/// Why a swap could not produce a valid execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SwapError {
    /// The pivot process also committed send-omission faults, so it remains
    /// faulty after the swap (Lemma 15 requires
    /// `all_send_omitted(B_i) = ∅`).
    PivotSendOmitted {
        /// The pivot process.
        pivot: ProcessId,
    },
    /// The swapped execution would blame more than `t` processes — the
    /// pigeonhole of Lemma 2 did not hold for this pivot (the protocol sent
    /// it too many messages).
    TooManyFaulty {
        /// Number of faulty processes after the swap.
        got: usize,
        /// The resilience bound.
        t: usize,
    },
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::PivotSendOmitted { pivot } => {
                write!(
                    f,
                    "pivot {pivot} send-omitted messages and would stay faulty"
                )
            }
            SwapError::TooManyFaulty { got, t } => {
                write!(
                    f,
                    "swap would need {got} faulty processes, exceeding t = {t}"
                )
            }
        }
    }
}

impl Error for SwapError {}

/// Applies Algorithm 4: every message receive-omitted by `pivot` becomes
/// send-omitted by its sender; `pivot`'s receive-omissions are cleared; the
/// fault set is recomputed as exactly the processes that still commit
/// omissions.
///
/// The returned execution is indistinguishable from the input to **every**
/// process (Lemma 15(2)): received messages, states, proposals, and
/// decisions are untouched — only fault attribution moves.
///
/// # Errors
///
/// * [`SwapError::PivotSendOmitted`] if the pivot itself send-omitted
///   (it would stay faulty);
/// * [`SwapError::TooManyFaulty`] if the recomputed fault set exceeds `t`.
pub fn swap_omission<I, O, M>(
    exec: &Execution<I, O, M>,
    pivot: ProcessId,
) -> Result<Execution<I, O, M>, SwapError>
where
    I: Value,
    O: Value,
    M: Payload,
{
    if exec.record(pivot).all_send_omitted().next().is_some() {
        return Err(SwapError::PivotSendOmitted { pivot });
    }

    let mut out = exec.clone();

    // Collect the (round, sender) index of every message the pivot
    // receive-omitted, then clear them at the pivot.
    let dropped: Vec<(usize, ProcessId)> = out.records[pivot.index()]
        .fragments
        .iter()
        .enumerate()
        .flat_map(|(j, frag)| frag.receive_omitted.keys().map(move |s| (j, *s)))
        .collect();
    for frag in &mut out.records[pivot.index()].fragments {
        frag.receive_omitted.clear();
    }

    // Re-attribute: the sender send-omitted the message instead.
    for (j, sender) in dropped {
        let frag = &mut out.records[sender.index()].fragments[j];
        let payload = frag
            .sent
            .remove(&pivot)
            .expect("receive-validity: a receive-omitted message was sent");
        frag.send_omitted.insert(pivot, payload);
    }

    // Recompute the fault set: exactly the processes still committing
    // omissions (Algorithm 4 lines 10–11).
    let faulty: BTreeSet<ProcessId> = ba_sim::ProcessId::all(out.n)
        .filter(|p| {
            let rec = &out.records[p.index()];
            rec.all_send_omitted().next().is_some() || rec.all_receive_omitted().next().is_some()
        })
        .collect();
    if faulty.len() > out.t {
        return Err(SwapError::TooManyFaulty {
            got: faulty.len(),
            t: out.t,
        });
    }
    out.faulty = faulty;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{
        Adversary, Bit, Fate, Inbox, Outbox, ProcessCtx, Protocol, Round, Scenario,
        TableOmissionPlan,
    };

    /// Everyone broadcasts its bit each round for `rounds` rounds, then
    /// decides its own proposal.
    #[derive(Clone)]
    struct Broadcaster {
        proposal: Bit,
        rounds: u64,
        decision: Option<Bit>,
    }

    impl Broadcaster {
        fn new(rounds: u64) -> Self {
            Broadcaster {
                proposal: Bit::Zero,
                rounds,
                decision: None,
            }
        }
    }

    impl Protocol for Broadcaster {
        type Input = Bit;
        type Output = Bit;
        type Msg = Bit;

        fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<Bit> {
            self.proposal = proposal;
            let mut out = Outbox::new();
            out.broadcast(ctx.others(), proposal);
            out
        }

        fn round(&mut self, ctx: &ProcessCtx, round: Round, _: &Inbox<Bit>) -> Outbox<Bit> {
            if round.0 >= self.rounds {
                self.decision = Some(self.proposal);
                return Outbox::new();
            }
            let mut out = Outbox::new();
            out.broadcast(ctx.others(), self.proposal);
            out
        }

        fn decision(&self) -> Option<Bit> {
            self.decision
        }
    }

    fn isolated_run(n: usize, t: usize, group: &[usize], from: Round) -> Execution<Bit, Bit, Bit> {
        let group: BTreeSet<ProcessId> = group.iter().map(|i| ProcessId(*i)).collect();
        Scenario::new(n, t)
            .protocol(|_| Broadcaster::new(3))
            .uniform_input(Bit::Zero)
            .adversary(Adversary::isolation(group, from))
            .run()
            .unwrap()
    }

    #[test]
    fn swap_clears_pivot_and_blames_senders() {
        let exec = isolated_run(4, 3, &[3], Round(2));
        let swapped = swap_omission(&exec, ProcessId(3)).unwrap();
        swapped.validate().unwrap();
        // The pivot is correct now; the three senders take the blame.
        assert!(swapped.is_correct(ProcessId(3)));
        assert_eq!(
            swapped.faulty,
            [ProcessId(0), ProcessId(1), ProcessId(2)].into()
        );
        for sender in [ProcessId(0), ProcessId(1), ProcessId(2)] {
            assert!(swapped.record(sender).all_send_omitted().next().is_some());
        }
    }

    #[test]
    fn swap_preserves_indistinguishability_for_everyone() {
        let exec = isolated_run(5, 4, &[4], Round(2));
        let swapped = swap_omission(&exec, ProcessId(4)).unwrap();
        for pid in ProcessId::all(5) {
            assert!(
                exec.indistinguishable_to(&swapped, pid),
                "{pid} can distinguish"
            );
        }
        // Decisions are untouched.
        for pid in ProcessId::all(5) {
            assert_eq!(exec.decision_of(pid), swapped.decision_of(pid));
        }
    }

    #[test]
    fn swap_fails_when_too_many_senders_get_blamed() {
        // n = 4, t = 1: isolating p3 re-attributes to 3 senders > t.
        let exec = isolated_run(4, 1, &[3], Round(2));
        let err = swap_omission(&exec, ProcessId(3)).unwrap_err();
        assert_eq!(err, SwapError::TooManyFaulty { got: 3, t: 1 });
    }

    #[test]
    fn swap_fails_for_send_omitting_pivot() {
        let mut plan = TableOmissionPlan::new();
        plan.set(Round(1), ProcessId(2), ProcessId(0), Fate::SendOmit);
        let exec = Scenario::new(3, 1)
            .protocol(|_| Broadcaster::new(2))
            .uniform_input(Bit::Zero)
            .adversary(Adversary::omission([ProcessId(2)], plan))
            .run()
            .unwrap();
        let err = swap_omission(&exec, ProcessId(2)).unwrap_err();
        assert_eq!(
            err,
            SwapError::PivotSendOmitted {
                pivot: ProcessId(2)
            }
        );
    }

    #[test]
    fn swap_result_passes_execution_validation() {
        let exec = isolated_run(6, 5, &[5], Round(1));
        let swapped = swap_omission(&exec, ProcessId(5)).unwrap();
        swapped.validate().unwrap();
        // Lemma 15: the pivot's messages are now send-omitted at the exact
        // rounds they were receive-omitted before.
        let before: Vec<_> = exec
            .record(ProcessId(5))
            .all_receive_omitted()
            .map(|(r, s, m)| (r, s, *m))
            .collect();
        let mut after: Vec<_> = Vec::new();
        for sender in ProcessId::all(6) {
            for (r, recv, m) in swapped.record(sender).all_send_omitted() {
                if recv == ProcessId(5) {
                    after.push((r, sender, *m));
                }
            }
        }
        after.sort();
        let mut before = before;
        before.sort();
        assert_eq!(before, after);
    }

    #[test]
    fn swap_on_unomitted_process_is_identity_modulo_fault_set() {
        let exec = isolated_run(4, 2, &[3], Round(2));
        // p0 never omitted anything; swapping on it only recomputes the
        // fault set (which shrinks to the truly-omitting processes).
        let swapped = swap_omission(&exec, ProcessId(0)).unwrap();
        for pid in ProcessId::all(4) {
            assert_eq!(
                exec.record(pid).fragments,
                swapped.record(pid).fragments,
                "{pid} fragments changed"
            );
        }
        assert_eq!(swapped.faulty, [ProcessId(3)].into());
    }
}
