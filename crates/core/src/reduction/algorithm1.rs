//! Algorithm 1: weak consensus from any solvable non-trivial agreement
//! problem, at **zero** additional message cost (paper §4.2).
//!
//! The reduction hinges on the paper's Table 2 artifacts, which
//! [`derive_reduction_inputs`] discovers automatically for a given protocol
//! `A` solving a `val`-agreement problem `P`:
//!
//! * `c0 ∈ I_n` — any fully correct input configuration; running `A` on it
//!   yields the decision `v'_0`;
//! * `c*_1 ∈ I` — a configuration with `v'_0 ∉ val(c*_1)` (exists because
//!   `P` is non-trivial);
//! * `c1 ∈ I_n` — any fully correct extension of `c*_1` (`c1 ⊒ c*_1`);
//!   running `A` on it yields `v'_1`, and **Lemma 7/17 guarantees
//!   `v'_1 ≠ v'_0`** — the fact the reduction exploits.
//!
//! [`WeakFromAgreement`] then wraps `A`: proposing `0` means proposing one's
//! slot of `c0` to `A`, proposing `1` means one's slot of `c1`; deciding
//! `v'_0` from `A` means deciding `0`, anything else `1`. No message is
//! added or removed, so a sub-quadratic solution to *any* non-trivial
//! problem would yield sub-quadratic weak consensus — contradicting
//! Theorem 2. That is Theorem 3.
//!
//! **Corollary 1** (External Validity) uses the same wrapper: any algorithm
//! with two fully correct executions deciding differently supplies
//! `(c0, v'_0, c1, v'_1)` directly, regardless of its (formally trivial)
//! validity property.

use std::error::Error;
use std::fmt;

use ba_sim::{
    Bit, ExecutorConfig, Inbox, Outbox, ProcessCtx, ProcessId, Protocol, Round, Scenario, SimError,
};

use crate::validity::{enumerate_configs, InputConfig, SystemParams, ValidityProperty};

/// The paper's Table 2, materialized for one protocol/problem pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReductionInputs<VI, VO> {
    /// Fully correct configuration proposed when a process proposes `0`.
    pub c0: Vec<VI>,
    /// Fully correct configuration proposed when a process proposes `1`.
    pub c1: Vec<VI>,
    /// The value `A` decides in the fully correct execution on `c0`.
    pub v0: VO,
    /// The value `A` decides in the fully correct execution on `c1`
    /// (distinct from `v0` by Lemma 17).
    pub v1: VO,
    /// The intermediate witness `c*_1` with `v0 ∉ val(c*_1)`.
    pub c_star: InputConfig<VI>,
}

/// Why the reduction inputs could not be derived.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReductionError {
    /// The simulator rejected a run (protocol bug).
    Sim(SimError),
    /// The underlying protocol failed Termination/Agreement on a fully
    /// correct execution — it does not solve any agreement problem.
    NotAnAgreementAlgorithm {
        /// Description of what went wrong.
        detail: String,
    },
    /// `v0` is admissible in every configuration: the problem is trivial,
    /// and the reduction (rightly) does not apply.
    ProblemIsTrivial,
    /// The protocol decided `v1 = v0` on `c1`, violating Lemma 17 — i.e. it
    /// does not actually satisfy the claimed validity property.
    ValidityViolated {
        /// The common decision.
        value: String,
    },
}

impl fmt::Display for ReductionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReductionError::Sim(e) => write!(f, "simulation failed: {e}"),
            ReductionError::NotAnAgreementAlgorithm { detail } => {
                write!(f, "protocol is not an agreement algorithm: {detail}")
            }
            ReductionError::ProblemIsTrivial => {
                write!(f, "v0 is admissible everywhere: the problem is trivial")
            }
            ReductionError::ValidityViolated { value } => {
                write!(
                    f,
                    "protocol decided {value} on both c0 and c1, violating its validity property"
                )
            }
        }
    }
}

impl Error for ReductionError {}

impl From<SimError> for ReductionError {
    fn from(e: SimError) -> Self {
        ReductionError::Sim(e)
    }
}

/// Runs the two fully correct executions of the paper's Table 2 and
/// assembles the reduction inputs.
///
/// # Errors
///
/// See [`ReductionError`]; notably, [`ReductionError::ProblemIsTrivial`] is
/// returned when no configuration rejects `v0` — exactly the case the
/// paper's reduction excludes.
pub fn derive_reduction_inputs<P, F, VP>(
    cfg: &ExecutorConfig,
    factory: F,
    vp: &VP,
) -> Result<ReductionInputs<P::Input, P::Output>, ReductionError>
where
    P: Protocol,
    F: Fn(ProcessId) -> P,
    VP: ValidityProperty<Input = P::Input, Output = P::Output>,
{
    let params = SystemParams::new(cfg.n, cfg.t);
    let domain = vp.input_domain();
    let fill = domain.first().expect("non-empty domain").clone();

    // E0: fully correct on c0 = (fill, …, fill).
    let c0 = vec![fill.clone(); cfg.n];
    let v0 = run_fully_correct(cfg, &factory, &c0)?;

    // c*_1: any configuration with v0 ∉ val(c*_1). Non-triviality ⇔ exists.
    let c_star = enumerate_configs(&params, &domain)
        .into_iter()
        .find(|c| !vp.admissible(&params, c).contains(&v0))
        .ok_or(ReductionError::ProblemIsTrivial)?;

    // c1 ⊒ c*_1, fully correct.
    let c1 = c_star
        .extend_to_full(&params, fill)
        .as_full_vec(&params)
        .expect("extended to full");
    let v1 = run_fully_correct(cfg, &factory, &c1)?;

    if v1 == v0 {
        return Err(ReductionError::ValidityViolated {
            value: format!("{v0:?}"),
        });
    }
    Ok(ReductionInputs {
        c0,
        c1,
        v0,
        v1,
        c_star,
    })
}

fn run_fully_correct<P, F>(
    cfg: &ExecutorConfig,
    factory: &F,
    proposals: &[P::Input],
) -> Result<P::Output, ReductionError>
where
    P: Protocol,
    F: Fn(ProcessId) -> P,
{
    let exec = Scenario::config(cfg)
        .protocol(factory)
        .inputs(proposals.iter().cloned())
        .run()?;
    let all: Vec<ProcessId> = ProcessId::all(cfg.n).collect();
    exec.unanimous_decision(all.iter())
        .ok_or_else(|| ReductionError::NotAnAgreementAlgorithm {
            detail: "fully correct execution did not reach a unanimous decision".into(),
        })
}

/// Algorithm 1's wrapper: a weak consensus protocol built from any
/// agreement protocol `P`, with **identical** message complexity.
///
/// ```
/// use ba_core::reduction::{derive_reduction_inputs, WeakFromAgreement};
/// use ba_core::validity::StrongValidity;
/// use ba_protocols::PhaseKing;
/// use ba_sim::{Bit, ExecutorConfig, Scenario};
///
/// let cfg = ExecutorConfig::new(4, 1);
/// let inputs = derive_reduction_inputs(
///     &cfg,
///     |_| PhaseKing::new(4, 1),
///     &StrongValidity::binary(),
/// ).unwrap();
///
/// // The wrapped protocol solves weak consensus: all-One fully correct
/// // execution decides One.
/// let exec = Scenario::config(&cfg)
///     .protocol(|_| WeakFromAgreement::new(PhaseKing::new(4, 1), inputs.clone()))
///     .uniform_input(Bit::One)
///     .run()
///     .unwrap();
/// assert!(exec.all_correct_decided(Bit::One));
/// ```
#[derive(Clone, Debug)]
pub struct WeakFromAgreement<P: Protocol> {
    inner: P,
    inputs: ReductionInputs<P::Input, P::Output>,
}

impl<P: Protocol> WeakFromAgreement<P> {
    /// Wraps `inner` with the derived reduction inputs.
    pub fn new(inner: P, inputs: ReductionInputs<P::Input, P::Output>) -> Self {
        WeakFromAgreement { inner, inputs }
    }

    /// The reduction inputs in use.
    pub fn inputs(&self) -> &ReductionInputs<P::Input, P::Output> {
        &self.inputs
    }
}

impl<P: Protocol> Protocol for WeakFromAgreement<P> {
    type Input = Bit;
    type Output = Bit;
    type Msg = P::Msg;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<P::Msg> {
        // Line 4–7 of Algorithm 1: forward the proposal from c0 (for 0) or
        // c1 (for 1).
        let slot = match proposal {
            Bit::Zero => self.inputs.c0[ctx.id.index()].clone(),
            Bit::One => self.inputs.c1[ctx.id.index()].clone(),
        };
        self.inner.propose(ctx, slot)
    }

    fn round(&mut self, ctx: &ProcessCtx, round: Round, inbox: &Inbox<P::Msg>) -> Outbox<P::Msg> {
        self.inner.round(ctx, round, inbox)
    }

    fn decision(&self) -> Option<Bit> {
        // Line 9–12: v'_0 ↦ 0, anything else ↦ 1.
        self.inner.decision().map(|v| {
            if v == self.inputs.v0 {
                Bit::Zero
            } else {
                Bit::One
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::{AnythingGoes, SenderValidity, StrongValidity};
    use ba_crypto::Keybook;
    use ba_protocols::{DolevStrong, PhaseKing};

    #[test]
    fn table_2_artifacts_for_phase_king() {
        let cfg = ExecutorConfig::new(4, 1);
        let inputs =
            derive_reduction_inputs(&cfg, |_| PhaseKing::new(4, 1), &StrongValidity::binary())
                .unwrap();
        assert_eq!(inputs.v0, Bit::Zero);
        assert_eq!(inputs.v1, Bit::One);
        assert_ne!(inputs.c0, inputs.c1);
    }

    #[test]
    fn table_2_artifacts_for_broadcast() {
        let cfg = ExecutorConfig::new(4, 1);
        let book = Keybook::new(4);
        let vp = SenderValidity::new(ProcessId(0), vec![Bit::Zero, Bit::One]);
        let inputs = derive_reduction_inputs(
            &cfg,
            DolevStrong::factory(book, ProcessId(0), Bit::Zero),
            &vp,
        )
        .unwrap();
        assert_ne!(inputs.v0, inputs.v1, "Lemma 17");
        // The witness configuration must reject v0.
        let params = SystemParams::new(4, 1);
        assert!(!vp.admissible(&params, &inputs.c_star).contains(&inputs.v0));
    }

    #[test]
    fn trivial_problems_are_rejected() {
        // A protocol that "solves" AnythingGoes by always deciding Zero.
        #[derive(Clone)]
        struct AlwaysZero {
            decision: Option<Bit>,
        }
        impl Protocol for AlwaysZero {
            type Input = Bit;
            type Output = Bit;
            type Msg = Bit;
            fn propose(&mut self, _: &ProcessCtx, _: Bit) -> Outbox<Bit> {
                self.decision = Some(Bit::Zero);
                Outbox::new()
            }
            fn round(&mut self, _: &ProcessCtx, _: Round, _: &Inbox<Bit>) -> Outbox<Bit> {
                Outbox::new()
            }
            fn decision(&self) -> Option<Bit> {
                self.decision
            }
        }
        let cfg = ExecutorConfig::new(4, 1);
        let err = derive_reduction_inputs(
            &cfg,
            |_| AlwaysZero { decision: None },
            &AnythingGoes::new(),
        )
        .unwrap_err();
        assert_eq!(err, ReductionError::ProblemIsTrivial);
    }

    #[test]
    fn wrapped_protocol_satisfies_weak_validity_both_ways() {
        let cfg = ExecutorConfig::new(4, 1);
        let inputs =
            derive_reduction_inputs(&cfg, |_| PhaseKing::new(4, 1), &StrongValidity::binary())
                .unwrap();
        for bit in Bit::ALL {
            let exec = Scenario::config(&cfg)
                .protocol(|_| WeakFromAgreement::new(PhaseKing::new(4, 1), inputs.clone()))
                .uniform_input(bit)
                .run()
                .unwrap();
            assert!(exec.all_correct_decided(bit), "weak validity for {bit}");
        }
    }

    #[test]
    fn reduction_adds_zero_messages() {
        // Paper Lemma 18: the wrapper's message complexity is identical to
        // the wrapped protocol's, execution by execution.
        let cfg = ExecutorConfig::new(4, 1);
        let inputs =
            derive_reduction_inputs(&cfg, |_| PhaseKing::new(4, 1), &StrongValidity::binary())
                .unwrap();
        let wrapped = Scenario::config(&cfg)
            .protocol(|_| WeakFromAgreement::new(PhaseKing::new(4, 1), inputs.clone()))
            .uniform_input(Bit::Zero)
            .run()
            .unwrap();
        let bare = Scenario::config(&cfg)
            .protocol(|_| PhaseKing::new(4, 1))
            .inputs(inputs.c0.iter().cloned())
            .run()
            .unwrap();
        assert_eq!(wrapped.message_complexity(), bare.message_complexity());
        assert_eq!(wrapped.total_messages(), bare.total_messages());
    }

    #[test]
    fn corollary_1_external_validity_reduction() {
        // An "External Validity" protocol: Phase King deciding among valid
        // values only. It has two fully correct executions deciding
        // differently, so Algorithm 1 applies with (c0, v0, c1, v1) taken
        // from those executions directly — no validity enumeration at all.
        let cfg = ExecutorConfig::new(4, 1);
        let run = |proposals: &[Bit; 4]| {
            Scenario::config(&cfg)
                .protocol(|_| PhaseKing::new(4, 1))
                .inputs(proposals.iter().copied())
                .run()
                .unwrap()
        };
        let e0 = run(&[Bit::Zero; 4]);
        let e1 = run(&[Bit::One; 4]);
        let all: Vec<ProcessId> = ProcessId::all(4).collect();
        let v0 = e0.unanimous_decision(all.iter()).unwrap();
        let v1 = e1.unanimous_decision(all.iter()).unwrap();
        assert_ne!(v0, v1, "Corollary 1 precondition");
        let inputs = ReductionInputs {
            c0: vec![Bit::Zero; 4],
            c1: vec![Bit::One; 4],
            v0,
            v1,
            c_star: InputConfig::full(vec![Bit::One; 4]),
        };
        for bit in Bit::ALL {
            let exec = Scenario::config(&cfg)
                .protocol(|_| WeakFromAgreement::new(PhaseKing::new(4, 1), inputs.clone()))
                .uniform_input(bit)
                .run()
                .unwrap();
            assert!(exec.all_correct_decided(bit));
        }
    }
}
