//! Algorithm 2: solving any containment-condition problem on top of
//! interactive consistency (paper §5.2.2, Lemma 9).
//!
//! The construction is two lines of pseudocode in the paper: forward the
//! proposal to an IC instance; when IC decides the vector `vec ∈ I_n`,
//! decide `Γ(vec)`. IC-Validity gives `vec ⊒ c` for the actual input
//! configuration `c`, and the containment condition gives
//! `Γ(vec) ∈ val(c)` — so the construction satisfies `val`.
//!
//! Combined with the authenticated-solvable-for-any-`t` Dolev-Strong IC and
//! the unauthenticated `n > 3t` EIG IC (`ba-protocols`), this is the
//! sufficiency half of the general solvability theorem.

use std::sync::Arc;

use ba_sim::{Inbox, Outbox, ProcessCtx, Protocol, Round, Value};

use crate::solvability::Gamma;
use crate::validity::InputConfig;

/// The Algorithm 2 wrapper: an agreement protocol for a CC problem, built
/// from an interactive-consistency protocol `P` and a Γ table.
///
/// `P::Output` must be the full proposal vector `Vec<V>` (as produced by
/// `ba-protocols`' IC constructions); the wrapper decides `Γ` of that
/// vector.
#[derive(Clone, Debug)]
pub struct ViaInteractiveConsistency<P, VO>
where
    P: Protocol,
{
    inner: P,
    gamma: Arc<Gamma<P::Input, VO>>,
}

impl<P, VO> ViaInteractiveConsistency<P, VO>
where
    P: Protocol<Output = Vec<<P as Protocol>::Input>>,
    VO: Value,
{
    /// Wraps the IC instance `inner` with the Γ table (obtained from
    /// [`crate::solvability::check_containment_condition`]).
    ///
    /// The table is shared via `Arc`: every process of a run can hold the
    /// same materialized table cheaply.
    pub fn new(inner: P, gamma: Arc<Gamma<P::Input, VO>>) -> Self {
        ViaInteractiveConsistency { inner, gamma }
    }
}

impl<P, VO> Protocol for ViaInteractiveConsistency<P, VO>
where
    P: Protocol<Output = Vec<<P as Protocol>::Input>>,
    VO: Value,
{
    type Input = P::Input;
    type Output = VO;
    type Msg = P::Msg;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: P::Input) -> Outbox<P::Msg> {
        // Line 4 of Algorithm 2: forward to IC.
        self.inner.propose(ctx, proposal)
    }

    fn round(&mut self, ctx: &ProcessCtx, round: Round, inbox: &Inbox<P::Msg>) -> Outbox<P::Msg> {
        self.inner.round(ctx, round, inbox)
    }

    fn decision(&self) -> Option<VO> {
        // Line 6: decide Γ(vec). The decided vector is a full I_n
        // configuration by construction.
        self.inner.decision().map(|vec| {
            let config = InputConfig::full(vec);
            self.gamma.apply(&config).cloned().expect(
                "Γ is total over I ⊇ I_n; IC decided a vector outside the enumerated domain",
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvability::check_containment_condition;
    use crate::validity::{
        IntervalValidity, StrongValidity, SystemParams, ValidityProperty, WeakValidity,
    };
    use ba_crypto::Keybook;
    use ba_protocols::interactive_consistency::{
        authenticated_ic_factory, unauthenticated_ic_factory,
    };
    use ba_sim::{Adversary, Bit, ProcessId, Scenario, SilentByzantine};

    fn gamma_for<VP: ValidityProperty>(
        vp: &VP,
        params: &SystemParams,
    ) -> Arc<Gamma<VP::Input, VP::Output>> {
        Arc::new(
            check_containment_condition(vp, params)
                .gamma()
                .cloned()
                .expect("problem satisfies CC"),
        )
    }

    #[test]
    fn weak_consensus_via_authenticated_ic() {
        let (n, t) = (4, 1);
        let params = SystemParams::new(n, t);
        let gamma = gamma_for(&WeakValidity::binary(), &params);
        for bit in Bit::ALL {
            let book = Keybook::new(n);
            let gamma = gamma.clone();
            let exec = Scenario::new(n, t)
                .protocol(move |pid| {
                    ViaInteractiveConsistency::new(
                        authenticated_ic_factory(book.clone(), Bit::Zero)(pid),
                        gamma.clone(),
                    )
                })
                .uniform_input(bit)
                .run()
                .unwrap();
            exec.validate().unwrap();
            assert!(exec.all_correct_decided(bit), "weak validity for {bit}");
        }
    }

    #[test]
    fn strong_consensus_via_ic_satisfies_val_under_byzantine_fault() {
        let (n, t) = (4, 1);
        let params = SystemParams::new(n, t);
        let vp = StrongValidity::binary();
        let gamma = gamma_for(&vp, &params);
        let book = Keybook::new(n);
        let gamma2 = gamma.clone();
        let exec = Scenario::new(n, t)
            .protocol(move |pid| {
                ViaInteractiveConsistency::new(
                    authenticated_ic_factory(book.clone(), Bit::Zero)(pid),
                    gamma2.clone(),
                )
            })
            .uniform_input(Bit::One)
            .adversary(Adversary::one_byzantine(ProcessId(3), SilentByzantine))
            .run()
            .unwrap();
        exec.validate().unwrap();
        // Correct processes all proposed One; Strong Validity demands One.
        for pid in exec.correct() {
            assert_eq!(exec.decision_of(pid), Some(&Bit::One));
        }
    }

    #[test]
    fn interval_validity_via_unauthenticated_ic() {
        // Interval validity over {0,1,2} satisfies CC at (4,1); solve it on
        // top of the n > 3t EIG-based IC.
        let (n, t) = (4, 1);
        let params = SystemParams::new(n, t);
        let vp = IntervalValidity::new(3);
        let gamma = gamma_for(&vp, &params);
        let proposals = [2u8, 0, 2, 1];
        let gamma2 = gamma.clone();
        let exec = Scenario::new(n, t)
            .protocol(move |pid| {
                ViaInteractiveConsistency::new(
                    unauthenticated_ic_factory(n, t, 0u8)(pid),
                    gamma2.clone(),
                )
            })
            .inputs(proposals)
            .run()
            .unwrap();
        exec.validate().unwrap();
        let config = InputConfig::full(proposals.to_vec());
        let admissible = vp.admissible(&params, &config);
        let all: Vec<ProcessId> = ProcessId::all(n).collect();
        let decided = exec
            .unanimous_decision(all.iter())
            .expect("agreement + termination");
        assert!(admissible.contains(&decided), "decided {decided} ∉ val(c)");
    }

    #[test]
    fn reduction_decisions_are_admissible_across_all_full_configs() {
        // Exhaustive: for every full binary input configuration at (3,1),
        // the Algorithm 2 construction over authenticated IC decides an
        // admissible value of strong consensus.
        let (n, t) = (3, 1);
        let params = SystemParams::new(n, t);
        let vp = StrongValidity::binary();
        let gamma = gamma_for(&vp, &params);
        for mask in 0u32..(1 << n) {
            let proposals: Vec<Bit> = (0..n).map(|i| Bit::from(mask & (1 << i) != 0)).collect();
            let book = Keybook::new(n);
            let gamma2 = gamma.clone();
            let exec = Scenario::new(n, t)
                .protocol(move |pid| {
                    ViaInteractiveConsistency::new(
                        authenticated_ic_factory(book.clone(), Bit::Zero)(pid),
                        gamma2.clone(),
                    )
                })
                .inputs(proposals.iter().copied())
                .run()
                .unwrap();
            let config = InputConfig::full(proposals.clone());
            let admissible = vp.admissible(&params, &config);
            let all: Vec<ProcessId> = ProcessId::all(n).collect();
            let decided = exec.unanimous_decision(all.iter()).expect("agreement");
            assert!(
                admissible.contains(&decided),
                "proposals {proposals:?}: {decided} inadmissible"
            );
        }
    }
}
