//! The paper's two reductions.
//!
//! * [`algorithm1`] — **weak consensus from any solvable non-trivial
//!   agreement problem** at zero message cost (paper §4.2, Algorithm 1;
//!   Lemma 6). This is what generalizes the Ω(t²) bound from weak consensus
//!   to *every* non-trivial problem (Theorem 3), and, through the
//!   two-fully-correct-executions condition, to External-Validity agreement
//!   (Corollary 1).
//! * [`algorithm2`] — **any agreement problem satisfying the containment
//!   condition, from interactive consistency** (paper §5.2.2, Algorithm 2;
//!   Lemma 9) — the sufficiency half of the general solvability theorem.

pub mod algorithm1;
pub mod algorithm2;

pub use algorithm1::{derive_reduction_inputs, ReductionError, ReductionInputs, WeakFromAgreement};
pub use algorithm2::ViaInteractiveConsistency;
