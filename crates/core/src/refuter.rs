//! The executable Lemma 7 argument — the *necessity* half of the general
//! solvability theorem.
//!
//! Lemma 7 (paper §4.2): if an algorithm decides `v` in an execution whose
//! input configuration is `c`, then `v` must be admissible in **every**
//! configuration `c' ∈ Cnt(c)` — because an execution in which the
//! processes of `π(c) \ π(c')` are *declared faulty but behave honestly*
//! is indistinguishable from the original, yet corresponds to `c'`.
//!
//! [`lemma7_refute`] runs this argument against a concrete protocol: it
//! enumerates fully correct executions, and whenever the decided value is
//! inadmissible under some contained configuration, it *constructs* the
//! indistinguishable Byzantine execution (honest-mimic adversaries, see
//! [`HonestMimic`]) and returns it as a re-verifiable
//! [`ValidityRefutation`].
//!
//! Consequences reproduced here:
//!
//! * any claimed solution to a containment-condition-violating problem
//!   (e.g. majority validity) is refuted mechanically — Lemma 8;
//! * correct solutions (Algorithm 2 over IC with a genuine Γ) produce no
//!   refutation, their Γ *is* the containment-condition witness.

use std::error::Error;
use std::fmt;

use ba_sim::{
    Adversary, BoxedBehavior, Execution, ExecutorConfig, FaultMode, HonestMimic, ProcessId,
    Protocol, Scenario, SimError,
};

use crate::validity::{containment_set, InputConfig, SystemParams, ValidityProperty};

/// A mechanical counterexample to a protocol's claimed validity property: a
/// (Byzantine-mode) execution corresponding to `config` in which the
/// correct processes decide an inadmissible value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValidityRefutation<I, O, M> {
    /// The execution `E'` (honest-mimic adversaries at `Π \ π(c')`).
    pub execution: Execution<I, O, M>,
    /// The input configuration `c'` that `E'` corresponds to.
    pub config: InputConfig<I>,
    /// The inadmissible decided value.
    pub decided: O,
    /// The full proposal vector of the indistinguishable fully correct
    /// execution `E` the argument started from.
    pub base_proposals: Vec<I>,
    /// Human-readable derivation.
    pub provenance: Vec<String>,
}

/// Why a refutation failed re-verification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RefutationError {
    /// The execution does not correspond to the claimed configuration.
    ConfigMismatch(String),
    /// The correct processes did not all decide the claimed value.
    DecisionMismatch(String),
    /// The claimed value is actually admissible.
    ValueAdmissible,
}

impl fmt::Display for RefutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefutationError::ConfigMismatch(s) => write!(f, "configuration mismatch: {s}"),
            RefutationError::DecisionMismatch(s) => write!(f, "decision mismatch: {s}"),
            RefutationError::ValueAdmissible => write!(f, "the decided value is admissible"),
        }
    }
}

impl Error for RefutationError {}

impl<I: ba_sim::Value, O: ba_sim::Value, M: ba_sim::Payload> ValidityRefutation<I, O, M> {
    /// Independently re-checks the refutation against the validity
    /// property: the execution's correct set and proposals realize
    /// `config`, every correct process decided `decided`, and `decided` is
    /// inadmissible under `config`.
    ///
    /// # Errors
    ///
    /// Returns the first failed check.
    pub fn verify<VP>(&self, vp: &VP, params: &SystemParams) -> Result<(), RefutationError>
    where
        VP: ValidityProperty<Input = I, Output = O>,
    {
        // Execution ↔ configuration correspondence (paper §4.1).
        let correct: Vec<ProcessId> = self.execution.correct().collect();
        let expected: Vec<ProcessId> = self.config.processes().collect();
        if correct != expected {
            return Err(RefutationError::ConfigMismatch(format!(
                "correct set {correct:?} ≠ π(c') {expected:?}"
            )));
        }
        for pid in &correct {
            if Some(&self.execution.record(*pid).proposal) != self.config.proposal_of(*pid) {
                return Err(RefutationError::ConfigMismatch(format!(
                    "proposal of {pid} differs from c'"
                )));
            }
        }
        for pid in &correct {
            if self.execution.decision_of(*pid) != Some(&self.decided) {
                return Err(RefutationError::DecisionMismatch(format!(
                    "{pid} did not decide the claimed value"
                )));
            }
        }
        if vp.admissible(params, &self.config).contains(&self.decided) {
            return Err(RefutationError::ValueAdmissible);
        }
        Ok(())
    }
}

/// Runs the Lemma 7 argument against `factory`'s protocol and the claimed
/// validity property `vp`.
///
/// Enumerates all fully correct executions over `vp`'s input domain (there
/// are `|domain|^n`; keep `n` small), and for each decided value checks
/// admissibility across the containment set. On the first miss, constructs
/// the indistinguishable honest-mimic execution and returns the refutation.
///
/// Returns `Ok(None)` if every decision is admissible everywhere it must be
/// — which, per Lemma 8, is guaranteed for genuine solutions.
///
/// # Errors
///
/// Propagates simulator errors; protocols that break Termination/Agreement
/// on fully correct executions are reported as
/// [`SimError`]-wrapped? No — they are skipped with a provenance note, as
/// they are refuted by more basic means (the falsifier).
#[allow(clippy::type_complexity)]
pub fn lemma7_refute<P, F, VP>(
    cfg: &ExecutorConfig,
    factory: F,
    vp: &VP,
) -> Result<Option<ValidityRefutation<P::Input, P::Output, P::Msg>>, SimError>
where
    P: Protocol + 'static,
    F: Fn(ProcessId) -> P,
    VP: ValidityProperty<Input = P::Input, Output = P::Output>,
{
    let params = SystemParams::new(cfg.n, cfg.t);
    let domain = vp.input_domain();

    // Mixed-radix enumeration of all full proposal vectors.
    let mut assignment = vec![0usize; cfg.n];
    loop {
        let proposals: Vec<P::Input> = assignment.iter().map(|d| domain[*d].clone()).collect();

        let exec = Scenario::config(cfg)
            .protocol(&factory)
            .inputs(proposals.iter().cloned())
            .run()?;
        let all: Vec<ProcessId> = ProcessId::all(cfg.n).collect();
        if let Some(decided) = exec.unanimous_decision(all.iter()) {
            let full = InputConfig::full(proposals.clone());
            for sub in containment_set(&params, &full) {
                if vp.admissible(&params, &sub).contains(&decided) {
                    continue;
                }
                // Lemma 7's construction: declare Π \ π(c') faulty but run
                // them honestly — indistinguishable, so the decision stands,
                // but now it is inadmissible.
                let behaviors = ProcessId::all(cfg.n)
                    .filter(|p| sub.proposal_of(*p).is_none())
                    .map(|p| {
                        (
                            p,
                            Box::new(HonestMimic::new(factory(p)))
                                as BoxedBehavior<'_, P::Input, P::Msg>,
                        )
                    });
                let shadow = Scenario::config(cfg)
                    .protocol(&factory)
                    .inputs(proposals.iter().cloned())
                    .adversary(Adversary::byzantine(behaviors))
                    .run()?;
                debug_assert_eq!(shadow.mode, FaultMode::Byzantine);
                // Determinism + indistinguishability ⇒ identical decisions.
                debug_assert!(shadow
                    .correct()
                    .all(|p| shadow.decision_of(p) == Some(&decided)));
                return Ok(Some(ValidityRefutation {
                    execution: shadow,
                    config: sub.clone(),
                    decided,
                    base_proposals: proposals,
                    provenance: vec![
                        "Lemma 7: the fully correct execution E on the base proposals decides v"
                            .into(),
                        format!("v is inadmissible under the contained configuration {sub:?}"),
                        "E' declares the dropped processes faulty but runs them honestly \
                         (HonestMimic) — indistinguishable from E, so v is still decided"
                            .into(),
                    ],
                }));
            }
        }

        // Increment the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == assignment.len() {
                return Ok(None);
            }
            assignment[i] += 1;
            if assignment[i] < domain.len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::ViaInteractiveConsistency;
    use crate::solvability::{check_containment_condition, Gamma};
    use crate::validity::{enumerate_configs, MajorityValidity, StrongValidity};
    use ba_crypto::Keybook;
    use ba_protocols::interactive_consistency::authenticated_ic_factory;
    use ba_sim::Bit;
    use std::sync::Arc;

    /// A bogus "solution" to majority validity: Algorithm 2 over IC with
    /// Γ(vec) = majority of the vector (ties → 0). It terminates and agrees,
    /// but its decisions cannot satisfy majority validity — the problem
    /// violates the containment condition.
    fn bogus_majority_factory(
        n: usize,
    ) -> impl Fn(
        ProcessId,
    ) -> ViaInteractiveConsistency<
        ba_protocols::interactive_consistency::AuthenticatedIc<Bit>,
        Bit,
    > + Clone {
        let params = SystemParams::new(n, 1);
        let table: std::collections::BTreeMap<InputConfig<Bit>, Bit> =
            enumerate_configs(&params, &[Bit::Zero, Bit::One])
                .into_iter()
                .map(|c| {
                    let ones = c.iter().filter(|(_, v)| **v == Bit::One).count();
                    let majority = Bit::from(ones * 2 > c.len());
                    (c, majority)
                })
                .collect();
        let gamma = Arc::new(Gamma::from_table(table));
        let book = Keybook::new(n);
        move |pid| {
            ViaInteractiveConsistency::new(
                authenticated_ic_factory(book.clone(), Bit::Zero)(pid),
                gamma.clone(),
            )
        }
    }

    #[test]
    fn bogus_majority_solution_is_refuted() {
        let n = 4;
        let cfg = ExecutorConfig::new(n, 1);
        let vp = MajorityValidity::new();
        let refutation = lemma7_refute(&cfg, bogus_majority_factory(n), &vp)
            .unwrap()
            .expect("majority validity violates CC, so every solution must be refutable");
        refutation.verify(&vp, &SystemParams::new(n, 1)).unwrap();
        // The refuting execution uses honest-mimic adversaries only.
        assert_eq!(refutation.execution.mode, FaultMode::Byzantine);
        assert!(!refutation.execution.faulty.is_empty());
    }

    #[test]
    fn genuine_strong_consensus_solution_survives() {
        let n = 4;
        let cfg = ExecutorConfig::new(n, 1);
        let params = SystemParams::new(n, 1);
        let vp = StrongValidity::binary();
        let gamma = Arc::new(
            check_containment_condition(&vp, &params)
                .gamma()
                .cloned()
                .unwrap(),
        );
        let book = Keybook::new(n);
        let factory = move |pid: ProcessId| {
            ViaInteractiveConsistency::new(
                authenticated_ic_factory(book.clone(), Bit::Zero)(pid),
                gamma.clone(),
            )
        };
        let refutation = lemma7_refute(&cfg, factory, &vp).unwrap();
        assert!(
            refutation.is_none(),
            "genuine solution wrongly refuted: {refutation:?}"
        );
    }

    #[test]
    fn refutation_verification_rejects_tampering() {
        let n = 4;
        let cfg = ExecutorConfig::new(n, 1);
        let params = SystemParams::new(n, 1);
        let vp = MajorityValidity::new();
        let refutation = lemma7_refute(&cfg, bogus_majority_factory(n), &vp)
            .unwrap()
            .unwrap();
        // Tamper: claim an admissible value instead.
        let mut bad = refutation.clone();
        bad.decided = bad.decided.flip();
        assert!(bad.verify(&vp, &params).is_err());
    }
}
