//! The containment condition and the general solvability theorem
//! (paper §5, Theorem 4; application to strong consensus, Theorem 5).
//!
//! A non-trivial agreement problem is *authenticated-solvable* iff it
//! satisfies the **containment condition** (CC, Definition 3): there is a
//! computable `Γ : I → V_O` with `Γ(c) ∈ ⋂_{c' ∈ Cnt(c)} val(c')` for every
//! input configuration `c`. It is *unauthenticated-solvable* iff
//! additionally `n > 3t`.
//!
//! On the finite instances this crate targets, CC is decided *exhaustively*:
//! [`check_containment_condition`] either materializes the Γ table (used by
//! the Algorithm 2 reduction in [`crate::reduction`]) or returns a witness
//! configuration whose containment-set intersection is empty — the shape of
//! the paper's Theorem 5 proof for strong consensus with `n ≤ 2t`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::validity::{
    containment_set, enumerate_configs, InputConfig, SystemParams, ValidityProperty,
};

/// A materialized `Γ : I → V_O` table (Definition 3), proving CC and
/// powering the Algorithm 2 reduction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Gamma<VI, VO> {
    table: BTreeMap<InputConfig<VI>, VO>,
}

impl<VI: ba_sim::Value, VO: ba_sim::Value> Gamma<VI, VO> {
    /// Builds a Γ table directly from a map.
    ///
    /// [`check_containment_condition`] produces tables whose values are
    /// guaranteed admissible; tables built here carry **no such guarantee**
    /// — they are for plugging *claimed* (possibly bogus) decision rules
    /// into the Algorithm 2 wrapper, e.g. to exercise the Lemma 7 refuter.
    pub fn from_table(table: BTreeMap<InputConfig<VI>, VO>) -> Self {
        Gamma { table }
    }

    /// The value `Γ(c)`, or `None` if `c` was not in the enumerated domain.
    pub fn apply(&self, c: &InputConfig<VI>) -> Option<&VO> {
        self.table.get(c)
    }

    /// Number of table entries (i.e. `|I|`).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` iff the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Iterates over `(c, Γ(c))` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&InputConfig<VI>, &VO)> {
        self.table.iter()
    }
}

/// A violation of the containment condition: a configuration whose
/// containment-set intersection is empty, optionally refined to two
/// contained configurations with disjoint admissible sets (the paper's
/// Theorem 5 witness shape).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CcWitness<VI> {
    /// The configuration `c` with `⋂_{c' ∈ Cnt(c)} val(c') = ∅`.
    pub config: InputConfig<VI>,
    /// Two contained configurations whose admissible sets are disjoint, when
    /// a single pair suffices to expose the violation.
    pub disjoint_pair: Option<(InputConfig<VI>, InputConfig<VI>)>,
}

impl<VI: ba_sim::Value + fmt::Display> fmt::Display for CcWitness<VI> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CC violated at c = {}", self.config)?;
        if let Some((a, b)) = &self.disjoint_pair {
            write!(
                f,
                "; contained configs {a} and {b} admit disjoint decision sets"
            )?;
        }
        Ok(())
    }
}

/// The outcome of the exhaustive containment-condition check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CcResult<VI, VO> {
    /// CC holds; the Γ table is materialized.
    Satisfied(Gamma<VI, VO>),
    /// CC fails at the witnessed configuration.
    Violated(CcWitness<VI>),
}

impl<VI: ba_sim::Value, VO: ba_sim::Value> CcResult<VI, VO> {
    /// `true` iff the condition holds.
    pub fn holds(&self) -> bool {
        matches!(self, CcResult::Satisfied(_))
    }

    /// The Γ table, if CC holds.
    pub fn gamma(&self) -> Option<&Gamma<VI, VO>> {
        match self {
            CcResult::Satisfied(g) => Some(g),
            CcResult::Violated(_) => None,
        }
    }

    /// The witness, if CC fails.
    pub fn witness(&self) -> Option<&CcWitness<VI>> {
        match self {
            CcResult::Satisfied(_) => None,
            CcResult::Violated(w) => Some(w),
        }
    }
}

/// Exhaustively decides the containment condition (Definition 3) for `vp`
/// under `params`.
///
/// For every `c ∈ I`, intersects `val(c')` over all `c' ∈ Cnt(c)`; CC holds
/// iff every intersection is non-empty, and `Γ(c)` is chosen as the minimum
/// of the intersection (any deterministic choice works).
pub fn check_containment_condition<VP: ValidityProperty>(
    vp: &VP,
    params: &SystemParams,
) -> CcResult<VP::Input, VP::Output> {
    let domain = vp.input_domain();
    let mut table = BTreeMap::new();
    for c in enumerate_configs(params, &domain) {
        let cnt = containment_set(params, &c);
        let mut intersection: Option<BTreeSet<VP::Output>> = None;
        for sub in &cnt {
            let adm = vp.admissible(params, sub);
            intersection = Some(match intersection {
                None => adm,
                Some(acc) => acc.intersection(&adm).cloned().collect(),
            });
            if intersection.as_ref().is_some_and(BTreeSet::is_empty) {
                break;
            }
        }
        let intersection = intersection.expect("containment sets are non-empty (reflexivity)");
        match intersection.into_iter().next() {
            Some(gamma_value) => {
                table.insert(c, gamma_value);
            }
            None => {
                // Refine: look for a single disjoint pair among Cnt(c).
                let mut disjoint_pair = None;
                'outer: for (i, a) in cnt.iter().enumerate() {
                    let adm_a = vp.admissible(params, a);
                    for b in cnt.iter().skip(i + 1) {
                        let adm_b = vp.admissible(params, b);
                        if adm_a.intersection(&adm_b).next().is_none() {
                            disjoint_pair = Some((a.clone(), b.clone()));
                            break 'outer;
                        }
                    }
                }
                return CcResult::Violated(CcWitness {
                    config: c,
                    disjoint_pair,
                });
            }
        }
    }
    CcResult::Satisfied(Gamma { table })
}

/// Decides triviality (paper §4.1): the problem is trivial iff some value is
/// admissible in *every* input configuration; returns such a value.
pub fn trivial_value<VP: ValidityProperty>(vp: &VP, params: &SystemParams) -> Option<VP::Output> {
    let domain = vp.input_domain();
    let mut candidates: Option<BTreeSet<VP::Output>> = None;
    for c in enumerate_configs(params, &domain) {
        let adm = vp.admissible(params, &c);
        candidates = Some(match candidates {
            None => adm,
            Some(acc) => acc.intersection(&adm).cloned().collect(),
        });
        if candidates.as_ref().is_some_and(BTreeSet::is_empty) {
            return None;
        }
    }
    candidates.and_then(|set| set.into_iter().next())
}

/// The complete Theorem 4 verdict for one problem at one `(n, t)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SolvabilityReport<VI, VO> {
    /// The analyzed parameters.
    pub params: SystemParams,
    /// The problem's name (from [`ValidityProperty::name`]).
    pub problem: String,
    /// A value admissible everywhere, if the problem is trivial.
    pub trivial_value: Option<VO>,
    /// The containment-condition outcome (for non-trivial problems this
    /// decides everything; computed for trivial problems too — CC always
    /// holds for them).
    pub cc: CcResult<VI, VO>,
    /// Theorem 4: authenticated-solvable ⟺ CC (trivial problems are
    /// vacuously solvable).
    pub authenticated_solvable: bool,
    /// Theorem 4: unauthenticated-solvable ⟺ CC ∧ `n > 3t` (except trivial
    /// problems, solvable without any communication at any resilience —
    /// Lemma 10's contrapositive).
    pub unauthenticated_solvable: bool,
}

impl<VI: ba_sim::Value, VO: ba_sim::Value> SolvabilityReport<VI, VO> {
    /// `true` iff the problem is trivial at these parameters.
    pub fn is_trivial(&self) -> bool {
        self.trivial_value.is_some()
    }
}

/// Applies the general solvability theorem (Theorem 4) to `vp` at `params`.
///
/// ```
/// use ba_core::solvability::solvability;
/// use ba_core::validity::{StrongValidity, SystemParams};
///
/// // Theorem 5: strong consensus is authenticated-solvable iff n > 2t.
/// let ok = solvability(&StrongValidity::binary(), &SystemParams::new(5, 2));
/// assert!(ok.authenticated_solvable);
/// let bad = solvability(&StrongValidity::binary(), &SystemParams::new(4, 2));
/// assert!(!bad.authenticated_solvable);
/// ```
pub fn solvability<VP: ValidityProperty>(
    vp: &VP,
    params: &SystemParams,
) -> SolvabilityReport<VP::Input, VP::Output> {
    let trivial = trivial_value(vp, params);
    let cc = check_containment_condition(vp, params);
    let cc_holds = cc.holds();
    let authenticated = trivial.is_some() || cc_holds;
    let unauthenticated = trivial.is_some() || (cc_holds && params.n > 3 * params.t);
    SolvabilityReport {
        params: *params,
        problem: vp.name(),
        trivial_value: trivial,
        cc,
        authenticated_solvable: authenticated,
        unauthenticated_solvable: unauthenticated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::{
        AnythingGoes, ExternalValidity, IcValidity, IntervalValidity, MajorityValidity,
        SenderValidity, StrongValidity, WeakValidity,
    };
    use ba_sim::{Bit, ProcessId};

    #[test]
    fn weak_consensus_satisfies_cc_and_gamma_is_admissible() {
        let params = SystemParams::new(4, 1);
        let vp = WeakValidity::binary();
        let cc = check_containment_condition(&vp, &params);
        let gamma = cc.gamma().expect("weak consensus satisfies CC");
        for (c, v) in gamma.iter() {
            // Γ(c) must be admissible in every contained configuration.
            for sub in containment_set(&params, c) {
                assert!(vp.admissible(&params, &sub).contains(v));
            }
        }
    }

    #[test]
    fn weak_consensus_is_not_trivial() {
        let params = SystemParams::new(4, 1);
        assert_eq!(trivial_value(&WeakValidity::binary(), &params), None);
    }

    #[test]
    fn anything_goes_is_trivial() {
        let params = SystemParams::new(4, 1);
        assert!(trivial_value(&AnythingGoes::new(), &params).is_some());
        let report = solvability(&AnythingGoes::new(), &params);
        assert!(report.is_trivial());
        assert!(report.authenticated_solvable);
        assert!(report.unauthenticated_solvable);
    }

    #[test]
    fn theorem_5_strong_consensus_fails_cc_iff_n_le_2t() {
        // The paper's Theorem 5 witness, checked exhaustively.
        for (n, t) in [(4usize, 2usize), (2, 1), (6, 3), (5, 3)] {
            let report = solvability(&StrongValidity::binary(), &SystemParams::new(n, t));
            assert!(
                !report.cc.holds(),
                "strong consensus must fail CC at n={n}, t={t}"
            );
            assert!(!report.authenticated_solvable);
        }
        for (n, t) in [(3usize, 1usize), (5, 2), (7, 3)] {
            let report = solvability(&StrongValidity::binary(), &SystemParams::new(n, t));
            assert!(
                report.cc.holds(),
                "strong consensus must satisfy CC at n={n}, t={t}"
            );
            assert!(report.authenticated_solvable);
        }
    }

    #[test]
    fn theorem_5_witness_matches_paper_construction() {
        // n = 2t = 4: c = (0,0,1,1) contains c0 = (0,0) with val = {0} and
        // c1 = (1,1) with val = {1}.
        let params = SystemParams::new(4, 2);
        let cc = check_containment_condition(&StrongValidity::binary(), &params);
        let witness = cc.witness().expect("CC must fail");
        let (a, b) = witness
            .disjoint_pair
            .as_ref()
            .expect("a disjoint pair exists");
        let vp = StrongValidity::binary();
        let adm_a = vp.admissible(&params, a);
        let adm_b = vp.admissible(&params, b);
        assert!(adm_a.intersection(&adm_b).next().is_none());
        assert!(witness.config.contains(a) && witness.config.contains(b));
    }

    #[test]
    fn unauthenticated_solvability_needs_n_over_3t() {
        let weak = WeakValidity::binary();
        let ok = solvability(&weak, &SystemParams::new(4, 1));
        assert!(ok.unauthenticated_solvable);
        let bad = solvability(&weak, &SystemParams::new(3, 1));
        assert!(bad.cc.holds(), "CC still holds");
        assert!(bad.authenticated_solvable);
        assert!(!bad.unauthenticated_solvable, "n = 3t is not enough");
    }

    #[test]
    fn sender_validity_satisfies_cc_for_any_t() {
        // Byzantine broadcast is authenticated-solvable for any t < n [52].
        for (n, t) in [(3usize, 1usize), (3, 2), (4, 3), (5, 4)] {
            let vp = SenderValidity::new(ProcessId(0), vec![Bit::Zero, Bit::One]);
            let report = solvability(&vp, &SystemParams::new(n, t));
            assert!(
                report.authenticated_solvable,
                "broadcast solvable at n={n}, t={t}"
            );
            assert!(!report.is_trivial());
        }
    }

    #[test]
    fn ic_validity_satisfies_cc_for_any_t() {
        for (n, t) in [(3usize, 1usize), (3, 2), (4, 2)] {
            let vp = IcValidity::new(vec![Bit::Zero, Bit::One]);
            let report = solvability(&vp, &SystemParams::new(n, t));
            assert!(report.authenticated_solvable, "IC solvable at n={n}, t={t}");
            assert!(!report.is_trivial());
        }
    }

    #[test]
    fn ic_gamma_extends_partial_configs() {
        let params = SystemParams::new(3, 1);
        let vp = IcValidity::new(vec![Bit::Zero, Bit::One]);
        let gamma = check_containment_condition(&vp, &params)
            .gamma()
            .cloned()
            .expect("IC satisfies CC");
        let partial = InputConfig::new(
            &params,
            [(ProcessId(0), Bit::One), (ProcessId(2), Bit::One)],
        );
        let vec = gamma.apply(&partial).expect("in domain").clone();
        assert_eq!(vec[0], Bit::One);
        assert_eq!(vec[2], Bit::One);
    }

    #[test]
    fn majority_validity_fails_cc_even_at_small_t() {
        // A full config with a 2-2 tie contains two majority-pinned
        // sub-configs with opposite verdicts.
        let report = solvability(&MajorityValidity::new(), &SystemParams::new(4, 1));
        assert!(!report.cc.holds());
        assert!(!report.authenticated_solvable);
    }

    #[test]
    fn interval_validity_graded_solvability() {
        // Solvable at t = 1 (n = 4), unsolvable at t = 2 (n = 4): two
        // disjoint sub-configs pin disjoint intervals.
        let ok = solvability(&IntervalValidity::new(3), &SystemParams::new(4, 1));
        assert!(ok.cc.holds());
        let bad = solvability(&IntervalValidity::new(3), &SystemParams::new(4, 2));
        assert!(!bad.cc.holds());
    }

    #[test]
    fn external_validity_is_formally_trivial() {
        // Paper §4.3: the formalism classifies External Validity as trivial.
        let vp = ExternalValidity::new(vec![0u8, 1, 2, 3], [2u8]);
        let report = solvability(&vp, &SystemParams::new(4, 1));
        assert_eq!(report.trivial_value, Some(2));
    }

    #[test]
    fn unanimity_or_default_is_unsolvable() {
        // Over-specified validity: every configuration pins one value, and
        // the pins conflict across the containment order.
        use crate::validity::UnanimityOrDefault;
        for (n, t) in [(3usize, 1usize), (4, 1), (5, 2)] {
            let report = solvability(
                &UnanimityOrDefault::new(Bit::Zero),
                &SystemParams::new(n, t),
            );
            assert!(!report.cc.holds(), "must fail CC at n={n}, t={t}");
            assert!(!report.authenticated_solvable);
            assert!(!report.is_trivial());
            let witness = report.cc.witness().unwrap();
            let (a, b) = witness
                .disjoint_pair
                .as_ref()
                .expect("a disjoint pair exists");
            assert!(witness.config.contains(a) && witness.config.contains(b));
        }
    }

    #[test]
    fn gamma_table_covers_all_of_i() {
        let params = SystemParams::new(4, 1);
        let vp = WeakValidity::binary();
        let gamma = check_containment_condition(&vp, &params)
            .gamma()
            .cloned()
            .unwrap();
        let configs = enumerate_configs(&params, &vp.input_domain());
        assert_eq!(gamma.len(), configs.len());
        for c in &configs {
            assert!(gamma.apply(c).is_some());
        }
    }

    #[test]
    fn cc_witness_displays() {
        let params = SystemParams::new(4, 2);
        let cc = check_containment_condition(&StrongValidity::binary(), &params);
        let text = cc.witness().unwrap().to_string();
        assert!(text.contains("CC violated"));
        assert!(text.contains("disjoint"));
    }
}
