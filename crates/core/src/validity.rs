//! The validity-property formalism of paper §4.1.
//!
//! A *validity property* maps the proposals of correct processes — an
//! **input configuration** — to the set of admissible decisions. The exact
//! validity property uniquely defines a specific Byzantine agreement
//! problem; this module provides the formalism (configurations, the
//! containment relation `⊒`, enumeration of `I`) and a catalog of the
//! validity properties discussed in the paper.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ba_sim::{Bit, ProcessId, Value};

/// The `(n, t)` system parameters a validity property is interpreted under.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SystemParams {
    /// Number of processes.
    pub n: usize,
    /// Resilience bound `t < n`.
    pub t: usize,
}

impl SystemParams {
    /// Creates system parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < n`, `t < n`.
    pub fn new(n: usize, t: usize) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(t < n, "require t < n (got t = {t}, n = {n})");
        SystemParams { n, t }
    }

    /// The minimum number of correct processes, `n − t`.
    pub fn min_correct(&self) -> usize {
        self.n - self.t
    }
}

/// An input configuration `c ∈ I`: an assignment of proposals to the
/// correct processes, with `n − t ≤ |π(c)| ≤ n` (paper §4.1).
///
/// ```
/// use ba_core::validity::{InputConfig, SystemParams};
/// use ba_sim::{Bit, ProcessId};
///
/// let params = SystemParams::new(4, 1);
/// let full = InputConfig::full(vec![Bit::Zero; 4]);
/// let sub = InputConfig::new(
///     &params,
///     [(ProcessId(0), Bit::Zero), (ProcessId(1), Bit::Zero), (ProcessId(2), Bit::Zero)],
/// );
/// assert!(full.contains(&sub));   // full ⊒ sub
/// assert!(!sub.contains(&full));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InputConfig<V> {
    entries: BTreeMap<ProcessId, V>,
}

impl<V: Value> InputConfig<V> {
    /// Creates a configuration, validating the size bounds.
    ///
    /// # Panics
    ///
    /// Panics if the number of process-proposal pairs is outside
    /// `[n − t, n]` or a process id is out of range.
    pub fn new<E>(params: &SystemParams, entries: E) -> Self
    where
        E: IntoIterator<Item = (ProcessId, V)>,
    {
        let entries: BTreeMap<ProcessId, V> = entries.into_iter().collect();
        assert!(
            entries.len() >= params.min_correct() && entries.len() <= params.n,
            "input configuration must assign between n - t = {} and n = {} proposals (got {})",
            params.min_correct(),
            params.n,
            entries.len()
        );
        assert!(
            entries.keys().all(|p| p.index() < params.n),
            "process id out of range in input configuration"
        );
        InputConfig { entries }
    }

    /// The configuration in which all `n` processes are correct with the
    /// given proposals (an element of `I_n`).
    pub fn full(proposals: Vec<V>) -> Self {
        InputConfig {
            entries: proposals
                .into_iter()
                .enumerate()
                .map(|(i, v)| (ProcessId(i), v))
                .collect(),
        }
    }

    /// The proposal of `pid` — the paper's `c[i]`, `None` for `⊥`.
    pub fn proposal_of(&self, pid: ProcessId) -> Option<&V> {
        self.entries.get(&pid)
    }

    /// The correct processes according to this configuration — the paper's
    /// `π(c)`.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.entries.keys().copied()
    }

    /// The set `π(c)` as a `BTreeSet`.
    pub fn process_set(&self) -> BTreeSet<ProcessId> {
        self.entries.keys().copied().collect()
    }

    /// Number of process-proposal pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the configuration is empty (never valid under any
    /// `SystemParams`).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` iff all `n` processes are correct according to this
    /// configuration (i.e. `c ∈ I_n`).
    pub fn is_full(&self, params: &SystemParams) -> bool {
        self.entries.len() == params.n
    }

    /// Iterates over `(process, proposal)` pairs in process order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &V)> {
        self.entries.iter().map(|(p, v)| (*p, v))
    }

    /// The **containment relation** `self ⊒ other` (paper §4.2): every
    /// process of `other` appears in `self` with an identical proposal.
    pub fn contains(&self, other: &InputConfig<V>) -> bool {
        other
            .entries
            .iter()
            .all(|(p, v)| self.entries.get(p) == Some(v))
    }

    /// The restriction of this configuration to `keep ∩ π(c)`.
    ///
    /// The result is a configuration the original *contains*; it is only an
    /// element of `I` if it retains at least `n − t` pairs (the caller
    /// checks, e.g. via [`containment_set`]).
    pub fn restrict(&self, keep: &BTreeSet<ProcessId>) -> InputConfig<V> {
        InputConfig {
            entries: self
                .entries
                .iter()
                .filter(|(p, _)| keep.contains(p))
                .map(|(p, v)| (*p, v.clone()))
                .collect(),
        }
    }

    /// Extends this configuration to a full `I_n` configuration, filling
    /// missing processes with `fill`. Used by the paper's Table 2 step
    /// "`c1 ⊒ c*1` with `π(c1) = Π`".
    pub fn extend_to_full(&self, params: &SystemParams, fill: V) -> InputConfig<V> {
        let mut entries = self.entries.clone();
        for pid in ProcessId::all(params.n) {
            entries.entry(pid).or_insert_with(|| fill.clone());
        }
        InputConfig { entries }
    }

    /// The proposals as a dense vector, or `None` unless the configuration
    /// is full.
    pub fn as_full_vec(&self, params: &SystemParams) -> Option<Vec<V>> {
        if !self.is_full(params) {
            return None;
        }
        Some(self.entries.values().cloned().collect())
    }
}

impl<V: Value + fmt::Display> fmt::Display for InputConfig<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (p, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({p}, {v})")?;
        }
        write!(f, "]")
    }
}

/// Enumerates the complete set `I` of input configurations for `params`
/// over the given proposal domain.
///
/// Size: `Σ_{s = n-t}^{n} C(n, s)·|domain|^s`; intended for the small
/// instances on which the solvability theorems are checked exhaustively.
///
/// # Panics
///
/// Panics if `n > 20` (the enumeration would be astronomically large).
pub fn enumerate_configs<V: Value>(params: &SystemParams, domain: &[V]) -> Vec<InputConfig<V>> {
    assert!(
        params.n <= 20,
        "enumeration is exhaustive; n = {} is too large",
        params.n
    );
    assert!(!domain.is_empty(), "empty proposal domain");
    let mut out = Vec::new();
    for mask in 0u32..(1 << params.n) {
        let members: Vec<ProcessId> = ProcessId::all(params.n)
            .filter(|p| mask & (1 << p.index()) != 0)
            .collect();
        if members.len() < params.min_correct() {
            continue;
        }
        // Every |domain|^|members| assignment.
        let mut assignment = vec![0usize; members.len()];
        loop {
            out.push(InputConfig {
                entries: members
                    .iter()
                    .zip(&assignment)
                    .map(|(p, d)| (*p, domain[*d].clone()))
                    .collect(),
            });
            // Increment the mixed-radix counter.
            let mut i = 0;
            loop {
                if i == assignment.len() {
                    break;
                }
                assignment[i] += 1;
                if assignment[i] < domain.len() {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
            if i == assignment.len() {
                break;
            }
        }
    }
    out
}

/// The containment set `Cnt(c)` (paper §4.2): all input configurations that
/// `c` contains, i.e. all restrictions of `c` to at least `n − t` of its
/// processes. Always includes `c` itself (containment is reflexive).
pub fn containment_set<V: Value>(params: &SystemParams, c: &InputConfig<V>) -> Vec<InputConfig<V>> {
    let members: Vec<ProcessId> = c.processes().collect();
    let mut out = Vec::new();
    for mask in 0u32..(1 << members.len()) {
        let keep: BTreeSet<ProcessId> = members
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, p)| *p)
            .collect();
        if keep.len() < params.min_correct() {
            continue;
        }
        out.push(c.restrict(&keep));
    }
    out
}

/// A validity property `val : I → 2^{V_O}` (paper §4.1): the defining
/// component of a specific Byzantine agreement problem.
///
/// Implementations must return a non-empty admissible set for every valid
/// input configuration, and expose finite input/output domains so that the
/// solvability machinery can enumerate exhaustively.
pub trait ValidityProperty {
    /// The proposal domain `V_I`.
    type Input: Value;
    /// The decision domain `V_O`.
    type Output: Value;

    /// A short human-readable name for reports.
    fn name(&self) -> String;

    /// The set of admissible decisions `val(c)` for configuration `c`.
    fn admissible(
        &self,
        params: &SystemParams,
        c: &InputConfig<Self::Input>,
    ) -> BTreeSet<Self::Output>;

    /// The (finite) proposal domain used for exhaustive enumeration.
    fn input_domain(&self) -> Vec<Self::Input>;

    /// The (finite) decision domain used for exhaustive enumeration.
    fn output_domain(&self, params: &SystemParams) -> Vec<Self::Output>;
}

fn all_outputs<VP: ValidityProperty + ?Sized>(
    vp: &VP,
    params: &SystemParams,
) -> BTreeSet<VP::Output> {
    vp.output_domain(params).into_iter().collect()
}

/// **Weak Validity** (paper §1, §3): if all processes are correct and all
/// propose the same value, that value must be decided; anything goes
/// otherwise. The weakest non-trivial agreement problem (paper Lemma 6).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WeakValidity<V> {
    domain: Vec<V>,
}

impl<V: Value> WeakValidity<V> {
    /// Creates the property over the given proposal/decision domain.
    pub fn new(domain: Vec<V>) -> Self {
        assert!(
            domain.len() >= 2,
            "a one-value domain makes every problem trivial"
        );
        WeakValidity { domain }
    }
}

impl WeakValidity<Bit> {
    /// The binary weak consensus of the paper's §3.
    pub fn binary() -> Self {
        WeakValidity::new(vec![Bit::Zero, Bit::One])
    }
}

impl<V: Value> ValidityProperty for WeakValidity<V> {
    type Input = V;
    type Output = V;

    fn name(&self) -> String {
        "weak-validity".into()
    }

    fn admissible(&self, params: &SystemParams, c: &InputConfig<V>) -> BTreeSet<V> {
        if c.is_full(params) {
            let mut values = c.iter().map(|(_, v)| v);
            if let Some(first) = values.next() {
                if values.all(|v| v == first) {
                    return [first.clone()].into();
                }
            }
        }
        all_outputs(self, params)
    }

    fn input_domain(&self) -> Vec<V> {
        self.domain.clone()
    }

    fn output_domain(&self, _: &SystemParams) -> Vec<V> {
        self.domain.clone()
    }
}

/// **Strong Validity** (paper §1): if all *correct* processes propose the
/// same value, that value must be decided.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StrongValidity<V> {
    domain: Vec<V>,
}

impl<V: Value> StrongValidity<V> {
    /// Creates the property over the given domain.
    pub fn new(domain: Vec<V>) -> Self {
        assert!(
            domain.len() >= 2,
            "a one-value domain makes every problem trivial"
        );
        StrongValidity { domain }
    }
}

impl StrongValidity<Bit> {
    /// Binary strong consensus.
    pub fn binary() -> Self {
        StrongValidity::new(vec![Bit::Zero, Bit::One])
    }
}

impl<V: Value> ValidityProperty for StrongValidity<V> {
    type Input = V;
    type Output = V;

    fn name(&self) -> String {
        "strong-validity".into()
    }

    fn admissible(&self, params: &SystemParams, c: &InputConfig<V>) -> BTreeSet<V> {
        let mut values = c.iter().map(|(_, v)| v);
        if let Some(first) = values.next() {
            if values.all(|v| v == first) {
                return [first.clone()].into();
            }
        }
        all_outputs(self, params)
    }

    fn input_domain(&self) -> Vec<V> {
        self.domain.clone()
    }

    fn output_domain(&self, _: &SystemParams) -> Vec<V> {
        self.domain.clone()
    }
}

/// **Sender Validity** (Byzantine broadcast, paper §1): if the designated
/// sender is correct, its proposal must be decided.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SenderValidity<V> {
    sender: ProcessId,
    domain: Vec<V>,
}

impl<V: Value> SenderValidity<V> {
    /// Creates the property with the given designated sender.
    pub fn new(sender: ProcessId, domain: Vec<V>) -> Self {
        assert!(
            domain.len() >= 2,
            "a one-value domain makes every problem trivial"
        );
        SenderValidity { sender, domain }
    }

    /// The designated sender.
    pub fn sender(&self) -> ProcessId {
        self.sender
    }
}

impl<V: Value> ValidityProperty for SenderValidity<V> {
    type Input = V;
    type Output = V;

    fn name(&self) -> String {
        format!("sender-validity({})", self.sender)
    }

    fn admissible(&self, params: &SystemParams, c: &InputConfig<V>) -> BTreeSet<V> {
        match c.proposal_of(self.sender) {
            Some(v) => [v.clone()].into(),
            None => all_outputs(self, params),
        }
    }

    fn input_domain(&self) -> Vec<V> {
        self.domain.clone()
    }

    fn output_domain(&self, _: &SystemParams) -> Vec<V> {
        self.domain.clone()
    }
}

/// **IC-Validity** (interactive consistency, paper §5.2.2): decisions are
/// full `n`-vectors; the decided vector must hold each correct process's
/// proposal at its index. Formally `IC-Validity(c) = {c' ∈ I_n | c' ⊒ c}`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IcValidity<V> {
    domain: Vec<V>,
}

impl<V: Value> IcValidity<V> {
    /// Creates the property over the given per-slot domain.
    pub fn new(domain: Vec<V>) -> Self {
        assert!(!domain.is_empty(), "empty domain");
        IcValidity { domain }
    }
}

impl<V: Value> ValidityProperty for IcValidity<V> {
    type Input = V;
    type Output = Vec<V>;

    fn name(&self) -> String {
        "ic-validity".into()
    }

    fn admissible(&self, params: &SystemParams, c: &InputConfig<V>) -> BTreeSet<Vec<V>> {
        self.output_domain(params)
            .into_iter()
            .filter(|vec| c.iter().all(|(p, v)| &vec[p.index()] == v))
            .collect()
    }

    fn input_domain(&self) -> Vec<V> {
        self.domain.clone()
    }

    fn output_domain(&self, params: &SystemParams) -> Vec<Vec<V>> {
        // All |domain|^n full vectors.
        let mut out: Vec<Vec<V>> = vec![Vec::new()];
        for _ in 0..params.n {
            out = out
                .into_iter()
                .flat_map(|prefix| {
                    self.domain.iter().map(move |v| {
                        let mut next = prefix.clone();
                        next.push(v.clone());
                        next
                    })
                })
                .collect();
        }
        out
    }
}

/// **Majority Validity**: if a strict majority of correct processes propose
/// `v`, then `v` must be decided. Included in the catalog because it fails
/// the containment condition for every `n`, `t ≥ 1` with `n` even (two
/// disjoint sub-configurations can have opposite majorities) — an
/// *unsolvable-by-Theorem-4* exhibit.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MajorityValidity;

impl MajorityValidity {
    /// Creates the (binary) property.
    pub fn new() -> Self {
        MajorityValidity
    }
}

impl ValidityProperty for MajorityValidity {
    type Input = Bit;
    type Output = Bit;

    fn name(&self) -> String {
        "majority-validity".into()
    }

    fn admissible(&self, params: &SystemParams, c: &InputConfig<Bit>) -> BTreeSet<Bit> {
        let ones = c.iter().filter(|(_, v)| **v == Bit::One).count();
        let zeros = c.len() - ones;
        if ones * 2 > c.len() {
            [Bit::One].into()
        } else if zeros * 2 > c.len() {
            [Bit::Zero].into()
        } else {
            all_outputs(self, params)
        }
    }

    fn input_domain(&self) -> Vec<Bit> {
        vec![Bit::Zero, Bit::One]
    }

    fn output_domain(&self, _: &SystemParams) -> Vec<Bit> {
        vec![Bit::Zero, Bit::One]
    }
}

/// **Interval (range) Validity** over an ordered numeric domain: the decided
/// value must lie between the minimum and maximum proposal of correct
/// processes. Solvable for small `t`, unsolvable once `t ≥ n/2` (two
/// disjoint sub-configurations pin disjoint intervals) — a graded exhibit
/// for the solvability landscape.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IntervalValidity {
    domain: Vec<u8>,
}

impl IntervalValidity {
    /// Creates the property over `0..levels` (e.g. `levels = 3` gives the
    /// domain `{0, 1, 2}`).
    pub fn new(levels: u8) -> Self {
        assert!(levels >= 2, "need at least two levels");
        IntervalValidity {
            domain: (0..levels).collect(),
        }
    }
}

impl ValidityProperty for IntervalValidity {
    type Input = u8;
    type Output = u8;

    fn name(&self) -> String {
        format!("interval-validity({})", self.domain.len())
    }

    fn admissible(&self, _: &SystemParams, c: &InputConfig<u8>) -> BTreeSet<u8> {
        let min = c
            .iter()
            .map(|(_, v)| *v)
            .min()
            .expect("configs are non-empty");
        let max = c
            .iter()
            .map(|(_, v)| *v)
            .max()
            .expect("configs are non-empty");
        self.domain
            .iter()
            .copied()
            .filter(|v| (min..=max).contains(v))
            .collect()
    }

    fn input_domain(&self) -> Vec<u8> {
        self.domain.clone()
    }

    fn output_domain(&self, _: &SystemParams) -> Vec<u8> {
        self.domain.clone()
    }
}

/// **External Validity** (paper §4.3): any decision satisfying a global
/// predicate is admissible, *independently of the proposals*.
///
/// As the paper observes, the §4.1 formalism classifies this property as
/// **trivial** — any fixed valid value is admissible in every configuration
/// — even though blockchain systems cannot actually decide a value they
/// have never learned (cryptographic hardness lives outside the formalism).
/// The quadratic bound is recovered through Corollary 1, implemented in
/// [`crate::reduction`]: any external-validity *algorithm* with two
/// differing fully-correct executions yields weak consensus at zero cost.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExternalValidity<V> {
    valid: BTreeSet<V>,
    domain: Vec<V>,
}

impl<V: Value> ExternalValidity<V> {
    /// Creates the property: `valid` is the image of the globally
    /// verifiable predicate over `domain`.
    ///
    /// # Panics
    ///
    /// Panics if no domain value is valid (the problem would be
    /// unsatisfiable).
    pub fn new<I: IntoIterator<Item = V>>(domain: Vec<V>, valid: I) -> Self {
        let valid: BTreeSet<V> = valid.into_iter().collect();
        assert!(!valid.is_empty(), "at least one valid value required");
        ExternalValidity { valid, domain }
    }
}

impl<V: Value> ValidityProperty for ExternalValidity<V> {
    type Input = V;
    type Output = V;

    fn name(&self) -> String {
        "external-validity".into()
    }

    fn admissible(&self, _: &SystemParams, _: &InputConfig<V>) -> BTreeSet<V> {
        self.valid.clone()
    }

    fn input_domain(&self) -> Vec<V> {
        self.domain.clone()
    }

    fn output_domain(&self, _: &SystemParams) -> Vec<V> {
        self.domain.clone()
    }
}

/// **Unanimity-or-default**: if the correct processes are unanimous their
/// value must be decided, otherwise a fixed default must be decided.
///
/// Looks innocuous, but *pins* exactly one admissible value in every
/// configuration — and fails the containment condition whenever a
/// non-unanimous configuration contains a unanimous one pinning a different
/// value (e.g. `n = 3, t = 1`: `c = (0,1,1)` pins the default while its
/// sub-configuration `(1,1)` pins `1`). A cautionary catalog entry: making
/// validity *more* specific can make the problem unsolvable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnanimityOrDefault {
    default: Bit,
}

impl UnanimityOrDefault {
    /// Creates the property with the given default.
    pub fn new(default: Bit) -> Self {
        UnanimityOrDefault { default }
    }
}

impl ValidityProperty for UnanimityOrDefault {
    type Input = Bit;
    type Output = Bit;

    fn name(&self) -> String {
        format!("unanimity-or-default({})", self.default)
    }

    fn admissible(&self, _: &SystemParams, c: &InputConfig<Bit>) -> BTreeSet<Bit> {
        let mut values = c.iter().map(|(_, v)| v);
        let first = values.next().expect("configs are non-empty");
        if values.all(|v| v == first) {
            [*first].into()
        } else {
            [self.default].into()
        }
    }

    fn input_domain(&self) -> Vec<Bit> {
        vec![Bit::Zero, Bit::One]
    }

    fn output_domain(&self, _: &SystemParams) -> Vec<Bit> {
        vec![Bit::Zero, Bit::One]
    }
}

/// The always-permissive property: every output is admissible everywhere.
/// The canonical **trivial** problem (decide a constant, zero messages).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AnythingGoes;

impl AnythingGoes {
    /// Creates the property.
    pub fn new() -> Self {
        AnythingGoes
    }
}

impl ValidityProperty for AnythingGoes {
    type Input = Bit;
    type Output = Bit;

    fn name(&self) -> String {
        "anything-goes".into()
    }

    fn admissible(&self, params: &SystemParams, _: &InputConfig<Bit>) -> BTreeSet<Bit> {
        all_outputs(self, params)
    }

    fn input_domain(&self) -> Vec<Bit> {
        vec![Bit::Zero, Bit::One]
    }

    fn output_domain(&self, _: &SystemParams) -> Vec<Bit> {
        vec![Bit::Zero, Bit::One]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn config_size_bounds_are_enforced() {
        let params = SystemParams::new(4, 1);
        // 3 = n - t is fine.
        let _ = InputConfig::new(&params, (0..3).map(|i| (p(i), Bit::Zero)));
    }

    #[test]
    #[should_panic(expected = "between")]
    fn too_small_config_is_rejected() {
        let params = SystemParams::new(4, 1);
        let _ = InputConfig::new(&params, [(p(0), Bit::Zero), (p(1), Bit::Zero)]);
    }

    #[test]
    fn containment_matches_paper_example() {
        // Paper §4.2: with n = 3, t = 1, [(p1,v1),(p2,v2),(p3,v3)] contains
        // [(p1,v1),(p3,v3)] but not [(p1,v1),(p3,v3′ ≠ v3)].
        let params = SystemParams::new(3, 1);
        let c = InputConfig::new(&params, [(p(0), 1u8), (p(1), 2u8), (p(2), 3u8)]);
        let contained = InputConfig::new(&params, [(p(0), 1u8), (p(2), 3u8)]);
        let not_contained = InputConfig::new(&params, [(p(0), 1u8), (p(2), 4u8)]);
        assert!(c.contains(&contained));
        assert!(!c.contains(&not_contained));
        assert!(c.contains(&c), "containment is reflexive");
    }

    #[test]
    fn containment_is_a_partial_order() {
        let params = SystemParams::new(4, 2);
        let configs = enumerate_configs(&params, &[Bit::Zero, Bit::One]);
        for a in configs.iter().take(40) {
            assert!(a.contains(a));
            for b in configs.iter().take(40) {
                if a.contains(b) && b.contains(a) {
                    assert_eq!(a, b, "antisymmetry");
                }
                for c in configs.iter().take(40) {
                    if a.contains(b) && b.contains(c) {
                        assert!(a.contains(c), "transitivity");
                    }
                }
            }
        }
    }

    #[test]
    fn enumeration_counts_match_formula() {
        // n = 3, t = 1, binary: C(3,2)·4 + C(3,3)·8 = 12 + 8 = 20.
        let params = SystemParams::new(3, 1);
        assert_eq!(enumerate_configs(&params, &[Bit::Zero, Bit::One]).len(), 20);
        // n = 4, t = 2: C(4,2)·4 + C(4,3)·8 + C(4,4)·16 = 24 + 32 + 16 = 72.
        let params = SystemParams::new(4, 2);
        assert_eq!(enumerate_configs(&params, &[Bit::Zero, Bit::One]).len(), 72);
    }

    #[test]
    fn containment_set_contains_self_and_only_contained() {
        let params = SystemParams::new(4, 1);
        let c = InputConfig::full(vec![Bit::Zero, Bit::Zero, Bit::One, Bit::One]);
        let cnt = containment_set(&params, &c);
        // C(4,3) + C(4,4) = 5 members.
        assert_eq!(cnt.len(), 5);
        assert!(cnt.contains(&c));
        for sub in &cnt {
            assert!(c.contains(sub));
        }
    }

    #[test]
    fn weak_validity_pins_only_unanimous_full_configs() {
        let params = SystemParams::new(3, 1);
        let vp = WeakValidity::binary();
        let unanimous = InputConfig::full(vec![Bit::One; 3]);
        assert_eq!(vp.admissible(&params, &unanimous), [Bit::One].into());
        let partial = InputConfig::new(&params, [(p(0), Bit::One), (p(1), Bit::One)]);
        assert_eq!(
            vp.admissible(&params, &partial).len(),
            2,
            "not full ⇒ anything goes"
        );
        let mixed = InputConfig::full(vec![Bit::One, Bit::Zero, Bit::One]);
        assert_eq!(vp.admissible(&params, &mixed).len(), 2);
    }

    #[test]
    fn strong_validity_pins_unanimous_partial_configs_too() {
        let params = SystemParams::new(3, 1);
        let vp = StrongValidity::binary();
        let partial = InputConfig::new(&params, [(p(0), Bit::One), (p(1), Bit::One)]);
        assert_eq!(vp.admissible(&params, &partial), [Bit::One].into());
    }

    #[test]
    fn sender_validity_pins_exactly_when_sender_is_correct() {
        let params = SystemParams::new(3, 1);
        let vp = SenderValidity::new(p(1), vec![Bit::Zero, Bit::One]);
        let with_sender = InputConfig::new(&params, [(p(0), Bit::Zero), (p(1), Bit::One)]);
        assert_eq!(vp.admissible(&params, &with_sender), [Bit::One].into());
        let without_sender = InputConfig::new(&params, [(p(0), Bit::Zero), (p(2), Bit::Zero)]);
        assert_eq!(vp.admissible(&params, &without_sender).len(), 2);
    }

    #[test]
    fn ic_validity_is_the_containment_upset() {
        let params = SystemParams::new(3, 1);
        let vp = IcValidity::new(vec![Bit::Zero, Bit::One]);
        let c = InputConfig::new(&params, [(p(0), Bit::One), (p(2), Bit::Zero)]);
        let admissible = vp.admissible(&params, &c);
        // Free slot 1 ⇒ exactly two admissible vectors.
        assert_eq!(admissible.len(), 2);
        for vec in &admissible {
            assert_eq!(vec[0], Bit::One);
            assert_eq!(vec[2], Bit::Zero);
        }
    }

    #[test]
    fn majority_validity_pins_strict_majorities() {
        let params = SystemParams::new(4, 1);
        let vp = MajorityValidity::new();
        let majority_one = InputConfig::new(
            &params,
            [(p(0), Bit::One), (p(1), Bit::One), (p(2), Bit::Zero)],
        );
        assert_eq!(vp.admissible(&params, &majority_one), [Bit::One].into());
        let tie = InputConfig::full(vec![Bit::Zero, Bit::Zero, Bit::One, Bit::One]);
        assert_eq!(vp.admissible(&params, &tie).len(), 2);
    }

    #[test]
    fn interval_validity_bounds_by_min_max() {
        let params = SystemParams::new(4, 1);
        let vp = IntervalValidity::new(3);
        let c = InputConfig::new(&params, [(p(0), 0u8), (p(1), 2u8), (p(2), 0u8)]);
        assert_eq!(vp.admissible(&params, &c), [0u8, 1, 2].into());
        let tight = InputConfig::new(&params, [(p(0), 1u8), (p(1), 1u8), (p(2), 1u8)]);
        assert_eq!(vp.admissible(&params, &tight), [1u8].into());
    }

    #[test]
    fn external_validity_ignores_proposals() {
        let params = SystemParams::new(3, 1);
        let vp = ExternalValidity::new(vec![0u8, 1, 2, 3], [1u8, 3]);
        for c in enumerate_configs(&params, &vp.input_domain())
            .iter()
            .take(10)
        {
            assert_eq!(vp.admissible(&params, c), [1u8, 3].into());
        }
    }

    #[test]
    fn unanimity_or_default_pins_exactly_one_value() {
        let params = SystemParams::new(3, 1);
        let vp = UnanimityOrDefault::new(Bit::Zero);
        for c in enumerate_configs(&params, &vp.input_domain()) {
            assert_eq!(vp.admissible(&params, &c).len(), 1);
        }
        let unanimous = InputConfig::new(&params, [(p(1), Bit::One), (p(2), Bit::One)]);
        assert_eq!(vp.admissible(&params, &unanimous), [Bit::One].into());
        let mixed = InputConfig::full(vec![Bit::Zero, Bit::One, Bit::One]);
        assert_eq!(vp.admissible(&params, &mixed), [Bit::Zero].into());
    }

    #[test]
    fn extend_to_full_produces_containing_full_config() {
        let params = SystemParams::new(4, 2);
        let partial = InputConfig::new(&params, [(p(1), Bit::One), (p(3), Bit::One)]);
        let full = partial.extend_to_full(&params, Bit::Zero);
        assert!(full.is_full(&params));
        assert!(full.contains(&partial));
        assert_eq!(
            full.as_full_vec(&params).unwrap(),
            vec![Bit::Zero, Bit::One, Bit::Zero, Bit::One]
        );
    }

    #[test]
    fn display_formats_configs() {
        let c = InputConfig::full(vec![Bit::Zero, Bit::One]);
        assert_eq!(c.to_string(), "[(p0, 0), (p1, 1)]");
    }
}
