//! # ba-crypto — idealized authentication
//!
//! The paper's authenticated setting (§5.1) assumes *idealized digital
//! signatures* in the sense of Canetti's certification model \[30\]: a
//! process can sign its messages so that no other process can forge its
//! signature, while anyone can verify and anyone can *replay* an observed
//! signature.
//!
//! This crate realizes that model without real cryptography, by
//! construction:
//!
//! * a [`Signature`] has **no public constructor** — the only way to mint a
//!   signature of process `p` is through `p`'s [`Keychain`], and the
//!   executor hands each (honest or Byzantine) process only its *own*
//!   keychain;
//! * verification is deterministic: [`Keybook::verify`] recomputes the
//!   digest and compares;
//! * replay is possible (signatures are `Clone` and carried inside message
//!   payloads), matching the idealized model exactly — this is the attack
//!   surface protocols like Dolev-Strong are designed around.
//!
//! The digest is a stable 64-bit hash, deterministic within and across runs
//! (it uses [`std::hash::DefaultHasher`] with its fixed default keys), which
//! keeps executions reproducible.
//!
//! ## Example
//!
//! ```
//! use ba_crypto::Keybook;
//! use ba_sim::ProcessId;
//!
//! let book = Keybook::new(3);
//! let kc = book.keychain(ProcessId(1));
//! let sig = kc.sign(&"block #7");
//! assert!(book.verify(&sig, &"block #7"));
//! assert!(!book.verify(&sig, &"block #8"));       // wrong message
//! assert_eq!(sig.signer(), ProcessId(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hash::{DefaultHasher, Hash, Hasher};

use ba_sim::ProcessId;

/// Types that can be fed to the signing/verification digest.
///
/// Blanket-implemented for every `Hash` type; implement `Hash` for your
/// message content and signing works.
pub trait SignBytes: Hash {}

impl<T: Hash + ?Sized> SignBytes for T {}

/// An idealized, unforgeable signature by one process over one message.
///
/// There is no public constructor: signatures can only be produced by the
/// signer's [`Keychain`] and only over data the signer chose to sign.
/// Cloning (replay) is allowed, as in the idealized model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Signature {
    signer: ProcessId,
    digest: u64,
}

impl Signature {
    /// The process that produced this signature.
    pub fn signer(&self) -> ProcessId {
        self.signer
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ({}, {:016x})", self.signer, self.digest)
    }
}

fn digest_for<T: SignBytes + ?Sized>(signer: ProcessId, data: &T) -> u64 {
    // DefaultHasher::new() uses fixed keys, so digests are deterministic
    // across processes and runs — a requirement for reproducible executions.
    let mut h = DefaultHasher::new();
    signer.index().hash(&mut h);
    data.hash(&mut h);
    h.finish()
}

/// The signing capability of a single process.
///
/// The executor's factory gives each process (honest or Byzantine) exactly
/// its own keychain; unforgeability then holds by construction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Keychain {
    owner: ProcessId,
}

impl Keychain {
    /// The process this keychain signs for.
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// Signs `data` as the keychain's owner.
    pub fn sign<T: SignBytes + ?Sized>(&self, data: &T) -> Signature {
        Signature {
            signer: self.owner,
            digest: digest_for(self.owner, data),
        }
    }
}

/// The public verification side: maps any claimed signature back to its
/// digest and checks it.
///
/// A `Keybook` is cheap to clone and carries no secrets; every process
/// (and every test) may hold one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Keybook {
    n: usize,
}

impl Keybook {
    /// Creates the verification book for an `n`-process system.
    pub fn new(n: usize) -> Self {
        Keybook { n }
    }

    /// The number of processes registered.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Issues the keychain of `owner`.
    ///
    /// This is the trusted-setup step: the system constructor calls it once
    /// per process and hands each process only its own keychain. (Nothing
    /// prevents test code from issuing arbitrary keychains — the *security
    /// argument* is that adversarial behaviors are only ever given their
    /// own.)
    ///
    /// # Panics
    ///
    /// Panics if `owner` is out of range.
    pub fn keychain(&self, owner: ProcessId) -> Keychain {
        assert!(
            owner.index() < self.n,
            "process {owner} out of range (n = {})",
            self.n
        );
        Keychain { owner }
    }

    /// Verifies that `sig` is a valid signature over `data` by
    /// `sig.signer()`.
    pub fn verify<T: SignBytes + ?Sized>(&self, sig: &Signature, data: &T) -> bool {
        sig.signer.index() < self.n && sig.digest == digest_for(sig.signer, data)
    }
}

/// A chain of signatures over a value, as used by Dolev-Strong broadcast:
/// the `k`-th signer endorses the value *and* the identities of the previous
/// `k − 1` signers.
///
/// Chain validity (checked by [`SignatureChain::valid`]):
/// 1. the chain is non-empty and its first signer is the designated sender;
/// 2. all signers are distinct;
/// 3. each signature verifies over `(value, previous signer list)`.
///
/// ```
/// use ba_crypto::{Keybook, SignatureChain};
/// use ba_sim::ProcessId;
///
/// let book = Keybook::new(4);
/// let sender = ProcessId(0);
/// let chain = SignatureChain::originate(&book.keychain(sender), &7u8);
/// let chain = chain.extend(&book.keychain(ProcessId(2)), &7u8);
/// assert!(chain.valid(&book, sender, &7u8));
/// assert!(!chain.valid(&book, ProcessId(1), &7u8)); // wrong sender
/// assert_eq!(chain.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SignatureChain {
    sigs: Sigs,
}

/// Signatures a chain can hold without spilling to the heap. Dolev-Strong
/// chains have at most `t + 1` links, so every chain in the common small-`t`
/// regimes is a flat `Copy` — cloning a chain (which broadcast relays do
/// per receiver) allocates nothing.
const INLINE_SIGS: usize = 4;

/// Canonical filler for unused inline slots, so derived comparisons and
/// hashes over the whole array stay well-defined. Never observable through
/// the public API (accessors slice to `len`).
const UNUSED_SIG: Signature = Signature {
    signer: ProcessId(usize::MAX),
    digest: 0,
};

/// Chain storage: inline while it fits, heap beyond. Comparison traits are
/// implemented over [`Sigs::as_slice`], so equality, ordering, and hashing
/// are exactly the old `Vec<Signature>` semantics (lexicographic), coherent
/// across the inline/heap boundary.
#[derive(Clone, Debug)]
enum Sigs {
    Inline(u8, [Signature; INLINE_SIGS]),
    Heap(Vec<Signature>),
}

impl PartialEq for Sigs {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Sigs {}

impl PartialOrd for Sigs {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sigs {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Sigs {
    fn hash<H: Hasher>(&self, h: &mut H) {
        // Slice hashing matches Vec hashing (length prefix + items), keeping
        // the Hash/Eq contract and the old `Vec<Signature>` digests.
        self.as_slice().hash(h);
    }
}

impl Sigs {
    fn as_slice(&self) -> &[Signature] {
        match self {
            Sigs::Inline(len, arr) => &arr[..*len as usize],
            Sigs::Heap(v) => v,
        }
    }

    /// The canonical representation of `previous ++ [last]`.
    fn appended(previous: &[Signature], last: Signature) -> Self {
        let len = previous.len() + 1;
        if len <= INLINE_SIGS {
            let mut arr = [UNUSED_SIG; INLINE_SIGS];
            arr[..previous.len()].copy_from_slice(previous);
            arr[previous.len()] = last;
            Sigs::Inline(len as u8, arr)
        } else {
            let mut v = Vec::with_capacity(len);
            v.extend_from_slice(previous);
            v.push(last);
            Sigs::Heap(v)
        }
    }
}

/// What the `k`-th chain link signs: the value plus the previous signers.
///
/// Hashes streamingly — signing and verifying a link allocates nothing,
/// which matters because chain validation sits on the executor's hot path
/// (every Dolev-Strong extraction validates a chain).
struct ChainLink<'a, V: SignBytes + ?Sized> {
    value: &'a V,
    previous: &'a [Signature],
}

impl<V: SignBytes + ?Sized> Hash for ChainLink<'_, V> {
    fn hash<H: Hasher>(&self, h: &mut H) {
        self.value.hash(h);
        for sig in self.previous {
            sig.signer().index().hash(h);
        }
    }
}

impl SignatureChain {
    /// Starts a chain: the designated sender signs the value.
    pub fn originate<V: SignBytes>(sender: &Keychain, value: &V) -> Self {
        let payload = ChainLink {
            value,
            previous: &[],
        };
        SignatureChain {
            sigs: Sigs::appended(&[], sender.sign(&payload)),
        }
    }

    /// Appends `signer`'s endorsement of `value` under this chain.
    pub fn extend<V: SignBytes>(&self, signer: &Keychain, value: &V) -> Self {
        let previous = self.sigs.as_slice();
        let payload = ChainLink { value, previous };
        SignatureChain {
            sigs: Sigs::appended(previous, signer.sign(&payload)),
        }
    }

    /// The number of signatures in the chain.
    pub fn len(&self) -> usize {
        self.sigs.as_slice().len()
    }

    /// `true` iff the chain holds no signatures (never produced by the
    /// constructors).
    pub fn is_empty(&self) -> bool {
        self.sigs.as_slice().is_empty()
    }

    /// The signers, in signing order.
    pub fn signers(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.sigs.as_slice().iter().map(Signature::signer)
    }

    /// `true` iff `pid` already signed this chain.
    pub fn contains_signer(&self, pid: ProcessId) -> bool {
        self.signers().any(|s| s == pid)
    }

    /// Full chain validity for `value` with designated `sender` (see type
    /// docs for the three conditions).
    pub fn valid<V: SignBytes>(&self, book: &Keybook, sender: ProcessId, value: &V) -> bool {
        let sigs = self.sigs.as_slice();
        if sigs.is_empty() || sigs[0].signer() != sender {
            return false;
        }
        for (i, sig) in sigs.iter().enumerate() {
            // Chains are at most t + 1 links, so a linear duplicate scan
            // beats building a set.
            if sigs[..i].iter().any(|p| p.signer() == sig.signer()) {
                return false; // duplicate signer
            }
            let payload = ChainLink {
                value,
                previous: &sigs[..i],
            };
            if !book.verify(sig, &payload) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let book = Keybook::new(2);
        let sig = book.keychain(ProcessId(0)).sign("msg");
        assert!(book.verify(&sig, "msg"));
        assert!(!book.verify(&sig, "other"));
    }

    #[test]
    fn signatures_bind_the_signer() {
        let book = Keybook::new(2);
        let s0 = book.keychain(ProcessId(0)).sign("msg");
        let s1 = book.keychain(ProcessId(1)).sign("msg");
        assert_ne!(s0, s1);
        assert_eq!(s0.signer(), ProcessId(0));
        assert_eq!(s1.signer(), ProcessId(1));
    }

    #[test]
    fn signatures_are_deterministic() {
        let book = Keybook::new(1);
        let kc = book.keychain(ProcessId(0));
        assert_eq!(kc.sign(&42u64), kc.sign(&42u64));
    }

    #[test]
    fn out_of_range_signer_fails_verification() {
        let small = Keybook::new(1);
        let large = Keybook::new(3);
        let sig = large.keychain(ProcessId(2)).sign("m");
        assert!(large.verify(&sig, "m"));
        assert!(!small.verify(&sig, "m"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn keychain_for_unknown_process_panics() {
        let _ = Keybook::new(2).keychain(ProcessId(5));
    }

    #[test]
    fn chain_originate_and_extend_are_valid() {
        let book = Keybook::new(4);
        let chain = SignatureChain::originate(&book.keychain(ProcessId(1)), &"v");
        assert!(chain.valid(&book, ProcessId(1), &"v"));
        let chain2 = chain.extend(&book.keychain(ProcessId(3)), &"v");
        assert!(chain2.valid(&book, ProcessId(1), &"v"));
        assert_eq!(
            chain2.signers().collect::<Vec<_>>(),
            vec![ProcessId(1), ProcessId(3)]
        );
    }

    #[test]
    fn chain_rejects_wrong_sender() {
        let book = Keybook::new(4);
        let chain = SignatureChain::originate(&book.keychain(ProcessId(1)), &"v");
        assert!(!chain.valid(&book, ProcessId(0), &"v"));
    }

    #[test]
    fn chain_rejects_wrong_value() {
        let book = Keybook::new(4);
        let chain = SignatureChain::originate(&book.keychain(ProcessId(1)), &"v");
        assert!(!chain.valid(&book, ProcessId(1), &"w"));
    }

    #[test]
    fn chain_rejects_duplicate_signers() {
        let book = Keybook::new(4);
        let kc = book.keychain(ProcessId(1));
        let chain = SignatureChain::originate(&kc, &"v").extend(&kc, &"v");
        assert!(!chain.valid(&book, ProcessId(1), &"v"));
    }

    #[test]
    fn chain_extension_binds_prefix() {
        // A signature minted for one prefix must not validate under another:
        // splice p2's endorsement from a 1-link chain onto a 2-link chain.
        let book = Keybook::new(4);
        let base = SignatureChain::originate(&book.keychain(ProcessId(0)), &"v");
        let via_p1 = base.extend(&book.keychain(ProcessId(1)), &"v");
        let p2_on_base = base.extend(&book.keychain(ProcessId(2)), &"v");
        let spliced = SignatureChain {
            sigs: Sigs::appended(via_p1.sigs.as_slice(), p2_on_base.sigs.as_slice()[1]),
        };
        assert!(!spliced.valid(&book, ProcessId(0), &"v"));
    }

    #[test]
    fn contains_signer_reports_membership() {
        let book = Keybook::new(4);
        let chain = SignatureChain::originate(&book.keychain(ProcessId(0)), &"v");
        assert!(chain.contains_signer(ProcessId(0)));
        assert!(!chain.contains_signer(ProcessId(1)));
    }

    #[test]
    fn chain_signature_count_tracks_extensions() {
        let book = Keybook::new(4);
        let mut chain = SignatureChain::originate(&book.keychain(ProcessId(0)), &1u8);
        for i in 1..4 {
            chain = chain.extend(&book.keychain(ProcessId(i)), &1u8);
        }
        assert_eq!(chain.len(), 4);
        assert!(!chain.is_empty());
        assert!(chain.valid(&book, ProcessId(0), &1u8));
    }
}
