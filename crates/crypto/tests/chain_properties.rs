//! Property tests for the idealized signature chains: the exact properties
//! the Dolev-Strong correctness argument relies on.

use proptest::prelude::*;

use ba_crypto::{Keybook, SignatureChain};
use ba_sim::ProcessId;

fn signer_sequence() -> impl Strategy<Value = (usize, Vec<usize>)> {
    (2usize..=8).prop_flat_map(|n| {
        (Just(n), proptest::collection::vec(0..n, 1..=n.min(6)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A chain built by honestly extending with distinct signers is valid;
    /// any duplicate signer invalidates it.
    #[test]
    fn chains_valid_iff_signers_distinct((n, signers) in signer_sequence(), value in any::<u64>()) {
        let book = Keybook::new(n);
        let sender = ProcessId(signers[0]);
        let mut chain = SignatureChain::originate(&book.keychain(sender), &value);
        for s in &signers[1..] {
            chain = chain.extend(&book.keychain(ProcessId(*s)), &value);
        }
        let mut sorted = signers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let distinct = sorted.len() == signers.len();
        prop_assert_eq!(chain.valid(&book, sender, &value), distinct);
    }

    /// Validity is bound to the exact value: the same chain never validates
    /// for a different value.
    #[test]
    fn chains_bind_the_value(n in 2usize..=6, v1 in any::<u64>(), v2 in any::<u64>()) {
        prop_assume!(v1 != v2);
        let book = Keybook::new(n);
        let sender = ProcessId(0);
        let chain = SignatureChain::originate(&book.keychain(sender), &v1)
            .extend(&book.keychain(ProcessId(1)), &v1);
        prop_assert!(chain.valid(&book, sender, &v1));
        prop_assert!(!chain.valid(&book, sender, &v2));
    }

    /// Validity is bound to the designated sender.
    #[test]
    fn chains_bind_the_sender(n in 3usize..=6, value in any::<u64>()) {
        let book = Keybook::new(n);
        let chain = SignatureChain::originate(&book.keychain(ProcessId(1)), &value);
        for claimed in 0..n {
            prop_assert_eq!(chain.valid(&book, ProcessId(claimed), &value), claimed == 1);
        }
    }

    /// Signatures are deterministic and signer-specific.
    #[test]
    fn signatures_deterministic_and_signer_specific(n in 2usize..=6, data in any::<u64>()) {
        let book = Keybook::new(n);
        let s0a = book.keychain(ProcessId(0)).sign(&data);
        let s0b = book.keychain(ProcessId(0)).sign(&data);
        let s1 = book.keychain(ProcessId(1)).sign(&data);
        prop_assert_eq!(s0a, s0b);
        prop_assert_ne!(s0a, s1);
        prop_assert!(book.verify(&s0a, &data));
        prop_assert!(book.verify(&s1, &data));
        prop_assert!(!book.verify(&s0a, &data.wrapping_add(1)));
    }

    /// A replayed signature verifies only over its original data — replay
    /// is possible, forging new statements is not.
    #[test]
    fn replay_cannot_forge(data in any::<u64>(), other in any::<u64>()) {
        prop_assume!(data != other);
        let book = Keybook::new(2);
        let sig = book.keychain(ProcessId(1)).sign(&data);
        let replayed = sig; // Copy: replay in another context
        prop_assert!(book.verify(&replayed, &data));
        prop_assert!(!book.verify(&replayed, &other));
    }
}
