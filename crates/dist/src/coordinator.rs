//! The merging coordinator: spawns one worker per shard, streams their
//! encoded reports back, retries failed shards, and reassembles the global
//! result.
//!
//! The coordinator is transport-agnostic: a [`ShardRunner`] turns a
//! [`ShardManifest`] into an encoded [`ShardReport`] string. The production
//! transport is [`WorkerCommand`], which launches a worker binary via
//! [`std::process::Command`], writes the manifest to its stdin, and reads
//! the report from its stdout — the shape that later lets shards land on
//! separate machines behind `ssh host campaign_worker`. Tests inject
//! closure runners (including flaky ones) to exercise retry and merge logic
//! without processes.
//!
//! With an observer installed ([`Coordinator::on_event`]) the coordinator
//! additionally streams [`CoordEvent`]s while the sweep runs: per-point
//! progress records filtered out of worker stdout (workers in `--progress`
//! mode interleave JSONL lines with the wire report), shard completions,
//! and retries. Retries are always visible — they are logged to stderr
//! (shard, attempt, cause) whether or not an observer is installed, so
//! flaky workers can't hide behind silent re-dispatch.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use ba_sim::{Bit, CampaignReport, ScenarioStats, SimError};

use crate::progress::{CoordEvent, ProgressEvent};
use crate::shard::{
    assemble_campaign_report, merge_reports, plan_shards, ShardManifest, SweepSpec,
};
use crate::wire::{Decode, Encode, WireError};

/// A distributed-sweep failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DistError {
    /// A worker could not be spawned or its pipes broke.
    Spawn {
        /// The shard being attempted.
        shard: usize,
        /// The OS error text.
        detail: String,
    },
    /// A worker exited unsuccessfully.
    WorkerFailed {
        /// The shard being attempted.
        shard: usize,
        /// The worker's exit code, if any.
        code: Option<i32>,
        /// Captured (truncated) stderr.
        stderr: String,
    },
    /// A worker's output did not decode as a shard report.
    Wire {
        /// The shard being attempted.
        shard: usize,
        /// The decode failure.
        error: WireError,
    },
    /// A report claimed a different shard index than the manifest it was
    /// produced from.
    ShardMismatch {
        /// The shard the coordinator dispatched.
        expected: usize,
        /// The shard index the report claimed.
        got: usize,
    },
    /// A shard kept failing after all retries.
    Exhausted {
        /// The failing shard.
        shard: usize,
        /// Number of attempts made.
        attempts: usize,
        /// The final attempt's failure, rendered.
        last: String,
    },
    /// The merged reports left a grid index uncovered.
    MissingPoint {
        /// The first uncovered global index.
        index: usize,
    },
    /// Two reports covered the same grid index.
    DuplicatePoint {
        /// The doubly-covered global index.
        index: usize,
    },
    /// A report covered an index outside the grid.
    StrayPoint {
        /// The out-of-range global index.
        index: usize,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Spawn { shard, detail } => {
                write!(f, "shard {shard}: failed to spawn worker: {detail}")
            }
            DistError::WorkerFailed {
                shard,
                code,
                stderr,
            } => {
                write!(f, "shard {shard}: worker exited with status {code:?}")?;
                if !stderr.is_empty() {
                    write!(f, "; stderr: {stderr}")?;
                }
                Ok(())
            }
            DistError::Wire { shard, error } => {
                write!(f, "shard {shard}: undecodable report: {error}")
            }
            DistError::ShardMismatch { expected, got } => {
                write!(f, "dispatched shard {expected} but report claims {got}")
            }
            DistError::Exhausted {
                shard,
                attempts,
                last,
            } => write!(
                f,
                "shard {shard} failed all {attempts} attempts; last: {last}"
            ),
            DistError::MissingPoint { index } => {
                write!(f, "merged reports leave grid point {index} uncovered")
            }
            DistError::DuplicatePoint { index } => {
                write!(f, "grid point {index} covered by more than one report")
            }
            DistError::StrayPoint { index } => {
                write!(f, "report covers index {index} outside the grid")
            }
        }
    }
}

impl Error for DistError {}

/// A transport that executes one shard and returns the worker's raw encoded
/// [`ShardReport`].
pub trait ShardRunner: Sync {
    /// Executes `manifest` and returns the encoded report.
    ///
    /// # Errors
    ///
    /// Any [`DistError`]; the coordinator retries failed shards.
    fn run_shard(&self, manifest: &ShardManifest) -> Result<String, DistError>;

    /// Executes `manifest`, forwarding any per-point [`ProgressEvent`]s the
    /// transport surfaces to `on_progress` as they arrive, and returns the
    /// encoded report with progress records filtered out.
    ///
    /// The default ignores streaming and defers to
    /// [`run_shard`](ShardRunner::run_shard), so transports without a
    /// progress channel (closure runners in tests) need not implement it.
    ///
    /// # Errors
    ///
    /// As [`run_shard`](ShardRunner::run_shard).
    fn run_shard_streaming(
        &self,
        manifest: &ShardManifest,
        on_progress: &(dyn Fn(ProgressEvent) + Sync),
    ) -> Result<String, DistError> {
        let _ = on_progress;
        self.run_shard(manifest)
    }
}

impl<F> ShardRunner for F
where
    F: Fn(&ShardManifest) -> Result<String, DistError> + Sync,
{
    fn run_shard(&self, manifest: &ShardManifest) -> Result<String, DistError> {
        self(manifest)
    }
}

/// The process transport: one worker binary invocation per shard, manifest
/// on stdin, report on stdout.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WorkerCommand {
    program: PathBuf,
    args: Vec<String>,
    progress: bool,
}

impl WorkerCommand {
    /// A worker launched as `program [args…]`.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        WorkerCommand {
            program: program.into(),
            args: Vec::new(),
            progress: false,
        }
    }

    /// Appends a fixed argument to every invocation.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Passes `--progress` to the worker, asking it to interleave one JSONL
    /// progress record per completed point with the wire report. The
    /// transport filters those records out of the report stream either way,
    /// so this composes with or without a coordinator observer.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// The worker program path.
    pub fn program(&self) -> &Path {
        &self.program
    }

    /// Locates the stock `campaign_worker` binary: `$CAMPAIGN_WORKER` if
    /// set, else a `campaign_worker` executable next to the current
    /// executable or in its parent directory (where cargo places workspace
    /// binaries relative to test and example executables).
    pub fn locate() -> Option<Self> {
        if let Ok(path) = std::env::var("CAMPAIGN_WORKER") {
            return Some(WorkerCommand::new(path));
        }
        let exe = std::env::current_exe().ok()?;
        let name = format!("campaign_worker{}", std::env::consts::EXE_SUFFIX);
        let mut dir = exe.parent();
        while let Some(d) = dir {
            let candidate = d.join(&name);
            if candidate.is_file() {
                return Some(WorkerCommand::new(candidate));
            }
            // `target/<profile>/{deps,examples}/…` → `target/<profile>/`.
            if d.file_name().is_some_and(|n| n == "target") {
                break;
            }
            dir = d.parent();
        }
        None
    }
}

impl ShardRunner for WorkerCommand {
    fn run_shard(&self, manifest: &ShardManifest) -> Result<String, DistError> {
        self.run_shard_streaming(manifest, &|_| {})
    }

    fn run_shard_streaming(
        &self,
        manifest: &ShardManifest,
        on_progress: &(dyn Fn(ProgressEvent) + Sync),
    ) -> Result<String, DistError> {
        let shard = manifest.shard;
        let spawn_err = |e: std::io::Error| DistError::Spawn {
            shard,
            detail: e.to_string(),
        };
        let mut command = Command::new(&self.program);
        command.args(&self.args);
        if self.progress {
            command.arg("--progress");
        }
        let mut child = command
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(spawn_err)?;

        // Feed the manifest and close stdin so the worker sees EOF.
        let wire = manifest.to_wire();
        child
            .stdin
            .take()
            .expect("stdin was piped")
            .write_all(wire.as_bytes())
            .map_err(spawn_err)?;

        // Drain stderr on a helper thread so neither pipe can deadlock,
        // streaming stdout (the report) on this one. Stdout is read
        // line-by-line: JSONL progress records (which always start with
        // `{`; wire records never do) are forwarded to `on_progress` as
        // they arrive, everything else accumulates as the report.
        let mut stderr_pipe = child.stderr.take().expect("stderr was piped");
        let stderr_thread = std::thread::spawn(move || {
            let mut buf = String::new();
            let _ = stderr_pipe.read_to_string(&mut buf);
            buf
        });
        let stdout_pipe = child.stdout.take().expect("stdout was piped");
        let mut report = String::new();
        for line in BufReader::new(stdout_pipe).lines() {
            let line = line.map_err(spawn_err)?;
            if line.starts_with('{') {
                if let Some(event) = ProgressEvent::parse(&line) {
                    on_progress(event);
                }
                // Non-point JSON (foreign telemetry) is dropped: it is
                // never part of the wire report.
                continue;
            }
            report.push_str(&line);
            report.push('\n');
        }
        let status = child.wait().map_err(spawn_err)?;
        let stderr = stderr_thread.join().unwrap_or_default();
        if !status.success() {
            return Err(DistError::WorkerFailed {
                shard,
                code: status.code(),
                stderr: truncate_lossy(stderr.trim(), 512),
            });
        }
        Ok(report)
    }
}

/// Truncates to at most `max_len` bytes, backing off to the nearest char
/// boundary (a blunt `String::truncate` panics mid-char).
fn truncate_lossy(text: &str, max_len: usize) -> String {
    let mut cut = max_len.min(text.len());
    while !text.is_char_boundary(cut) {
        cut -= 1;
    }
    text[..cut].to_string()
}

/// The coordinator's progress observer: called from shard threads as
/// events arrive, so it must be both `Send` and `Sync`.
type Observer = Box<dyn Fn(&CoordEvent) + Send + Sync>;

/// The merging coordinator: plans shards, dispatches them concurrently over
/// a [`ShardRunner`], retries failures, and merges the reports.
pub struct Coordinator<R> {
    runner: R,
    shards: usize,
    retries: usize,
    observer: Option<Observer>,
}

impl<R: ShardRunner> Coordinator<R> {
    /// A coordinator splitting sweeps into `shards` shards (clamped to at
    /// least 1), with one retry per shard by default.
    pub fn new(runner: R, shards: usize) -> Self {
        Coordinator {
            runner,
            shards: shards.max(1),
            retries: 1,
            observer: None,
        }
    }

    /// Sets how many times a failed shard is re-dispatched (0 = fail fast).
    pub fn retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Installs a progress observer receiving every [`CoordEvent`] while a
    /// sweep runs: per-point progress (when the transport streams it, see
    /// [`ShardRunner::run_shard_streaming`]), shard completions, and
    /// retries. Called concurrently from shard threads.
    pub fn on_event(mut self, observer: impl Fn(&CoordEvent) + Send + Sync + 'static) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    fn emit(&self, event: CoordEvent) {
        // Retries are operationally significant: always log them, so flaky
        // workers stay visible even without an observer.
        if matches!(event, CoordEvent::Retry { .. }) {
            eprintln!("coordinator: {event}");
        }
        if let Some(observer) = &self.observer {
            observer(&event);
        }
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Runs the sweep and returns per-point outcomes in global grid order.
    ///
    /// Workers run concurrently (one thread per shard streaming that
    /// worker's report); each shard is attempted up to `1 + retries` times;
    /// the reports are merged index-stably, so the result is identical to a
    /// single-process sweep of the same grid.
    ///
    /// # Errors
    ///
    /// Returns the first shard's [`DistError`] if it exhausts its retries,
    /// or a merge error if the reports do not tile the grid.
    pub fn run<T: Decode + Send>(
        &self,
        spec: &SweepSpec,
    ) -> Result<Vec<Result<T, SimError>>, DistError> {
        let manifests = plan_shards(spec, self.shards);
        let reports = std::thread::scope(|scope| {
            let handles: Vec<_> = manifests
                .iter()
                .map(|manifest| scope.spawn(move || self.run_shard_with_retry::<T>(manifest)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect::<Result<Vec<_>, DistError>>()
        })?;
        merge_reports(spec.points.len(), reports)
    }

    /// Runs a [`ShardMode::Scenarios`](crate::ShardMode::Scenarios) sweep
    /// and reassembles the exact `CampaignReport` a single-process
    /// [`ba_sim::Campaign::run_scenarios`] over the same grid produces.
    ///
    /// # Errors
    ///
    /// As [`Coordinator::run`].
    pub fn run_campaign(&self, spec: &SweepSpec) -> Result<CampaignReport<Bit>, DistError> {
        let merged = self.run::<ScenarioStats<Bit>>(spec)?;
        Ok(assemble_campaign_report(&spec.points, merged))
    }

    fn run_shard_with_retry<T: Decode>(
        &self,
        manifest: &ShardManifest,
    ) -> Result<crate::shard::ShardReport<T>, DistError> {
        let attempts = 1 + self.retries;
        let mut last: Option<DistError> = None;
        for attempt in 1..=attempts {
            match self.attempt::<T>(manifest) {
                Ok(report) => {
                    self.emit(CoordEvent::ShardDone {
                        shard: manifest.shard,
                    });
                    return Ok(report);
                }
                Err(e) => {
                    if attempt < attempts {
                        self.emit(CoordEvent::Retry {
                            shard: manifest.shard,
                            attempt,
                            attempts,
                            cause: e.to_string(),
                        });
                    }
                    last = Some(e);
                }
            }
        }
        let last = last.expect("at least one attempt was made");
        Err(DistError::Exhausted {
            shard: manifest.shard,
            attempts,
            last: last.to_string(),
        })
    }

    fn attempt<T: Decode>(
        &self,
        manifest: &ShardManifest,
    ) -> Result<crate::shard::ShardReport<T>, DistError> {
        let raw = match &self.observer {
            Some(observer) => self.runner.run_shard_streaming(manifest, &|event| {
                observer(&CoordEvent::Point(event));
            })?,
            None => self.runner.run_shard(manifest)?,
        };
        let report =
            crate::shard::ShardReport::<T>::from_wire(&raw).map_err(|error| DistError::Wire {
                shard: manifest.shard,
                error,
            })?;
        if report.shard != manifest.shard {
            return Err(DistError::ShardMismatch {
                expected: manifest.shard,
                got: report.shard,
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{ShardEntry, ShardReport};
    use crate::wire::WireReader;
    use ba_sim::CampaignPoint;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A minimal wire type for transport-level tests.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    struct Tok(u64);

    impl Encode for Tok {
        fn encode(&self, out: &mut String) {
            out.push_str(&format!("tok v={}\n", self.0));
        }
    }

    impl Decode for Tok {
        fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
            Ok(Tok(reader.record("tok")?.parse_field("v")?))
        }
    }

    fn spec(len: usize) -> SweepSpec {
        SweepSpec::scenarios((0..len).map(|i| CampaignPoint::new(4 + i, 1)), "test")
    }

    /// An in-process runner computing `Tok(seed ^ index)` per entry.
    fn echo_runner(manifest: &ShardManifest) -> Result<String, DistError> {
        let report = ShardReport {
            shard: manifest.shard,
            outcomes: manifest
                .entries
                .iter()
                .map(|e: &ShardEntry| (e.index, Ok(Tok(e.seed ^ e.index as u64))))
                .collect(),
        };
        Ok(report.to_wire())
    }

    #[test]
    fn coordinator_merges_shards_into_grid_order() {
        let spec = spec(11);
        let one = Coordinator::new(echo_runner, 1).run::<Tok>(&spec).unwrap();
        let four = Coordinator::new(echo_runner, 4).run::<Tok>(&spec).unwrap();
        let many = Coordinator::new(echo_runner, 64).run::<Tok>(&spec).unwrap();
        assert_eq!(one.len(), 11);
        assert_eq!(one, four);
        assert_eq!(one, many);
    }

    #[test]
    fn coordinator_retries_flaky_shards() {
        // Every shard's *first* attempt fails; the retry succeeds.
        let attempts: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        let flaky = |manifest: &ShardManifest| -> Result<String, DistError> {
            if attempts[manifest.shard].fetch_add(1, Ordering::SeqCst) == 0 {
                return Err(DistError::Spawn {
                    shard: manifest.shard,
                    detail: "injected".into(),
                });
            }
            echo_runner(manifest)
        };
        let spec = spec(6);
        let result = Coordinator::new(&flaky, 3).retries(1).run::<Tok>(&spec);
        assert!(result.is_ok(), "{result:?}");
        for a in &attempts {
            assert_eq!(a.load(Ordering::SeqCst), 2);
        }
    }

    #[test]
    fn coordinator_reports_exhaustion_with_the_last_error() {
        let always_fail = |manifest: &ShardManifest| -> Result<String, DistError> {
            Err(DistError::Spawn {
                shard: manifest.shard,
                detail: "boom".into(),
            })
        };
        let err = Coordinator::new(always_fail, 2)
            .retries(1)
            .run::<Tok>(&spec(4))
            .unwrap_err();
        match err {
            DistError::Exhausted { attempts, last, .. } => {
                assert_eq!(attempts, 2);
                assert!(last.contains("boom"), "{last}");
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn coordinator_rejects_misattributed_reports() {
        let wrong_shard = |manifest: &ShardManifest| -> Result<String, DistError> {
            let mut report_wire = echo_runner(manifest)?;
            report_wire = report_wire.replacen(
                &format!("shard-report shard={}", manifest.shard),
                "shard-report shard=93",
                1,
            );
            Ok(report_wire)
        };
        let err = Coordinator::new(wrong_shard, 1)
            .retries(0)
            .run::<Tok>(&spec(3))
            .unwrap_err();
        match err {
            DistError::Exhausted { last, .. } => assert!(last.contains("93"), "{last}"),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn coordinator_surfaces_undecodable_output() {
        let garbage =
            |_: &ShardManifest| -> Result<String, DistError> { Ok("not a shard report\n".into()) };
        let err = Coordinator::new(garbage, 1)
            .retries(0)
            .run::<Tok>(&spec(2))
            .unwrap_err();
        assert!(err.to_string().contains("shard 0"), "{err}");
    }

    #[test]
    fn observer_sees_retries_and_shard_completions() {
        use std::sync::Mutex;
        let attempts: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        let flaky = |manifest: &ShardManifest| -> Result<String, DistError> {
            if manifest.shard == 1 && attempts[1].fetch_add(1, Ordering::SeqCst) == 0 {
                return Err(DistError::Spawn {
                    shard: 1,
                    detail: "injected".into(),
                });
            }
            echo_runner(manifest)
        };
        let events = std::sync::Arc::new(Mutex::new(Vec::<CoordEvent>::new()));
        let seen = events.clone();
        let result = Coordinator::new(&flaky, 2)
            .retries(1)
            .on_event(move |e| seen.lock().unwrap().push(e.clone()))
            .run::<Tok>(&spec(6));
        assert!(result.is_ok(), "{result:?}");
        let events = events.lock().unwrap().clone();
        let retries: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, CoordEvent::Retry { .. }))
            .collect();
        assert_eq!(retries.len(), 1);
        match retries[0] {
            CoordEvent::Retry {
                shard,
                attempt,
                attempts,
                cause,
            } => {
                assert_eq!((*shard, *attempt, *attempts), (1, 1, 2));
                assert!(cause.contains("injected"), "{cause}");
            }
            _ => unreachable!(),
        }
        let done = events
            .iter()
            .filter(|e| matches!(e, CoordEvent::ShardDone { .. }))
            .count();
        assert_eq!(done, 2);
    }

    #[test]
    fn streaming_transports_feed_point_events_to_the_observer() {
        use std::sync::Mutex;

        /// A transport that surfaces one progress record per entry before
        /// returning the report, like a worker in `--progress` mode.
        struct Streaming;
        impl ShardRunner for Streaming {
            fn run_shard(&self, manifest: &ShardManifest) -> Result<String, DistError> {
                self.run_shard_streaming(manifest, &|_| {})
            }
            fn run_shard_streaming(
                &self,
                manifest: &ShardManifest,
                on_progress: &(dyn Fn(crate::progress::ProgressEvent) + Sync),
            ) -> Result<String, DistError> {
                for (done, entry) in manifest.entries.iter().enumerate() {
                    on_progress(crate::progress::ProgressEvent {
                        shard: manifest.shard,
                        shards: manifest.shards,
                        done: done + 1,
                        total: manifest.entries.len(),
                        index: entry.index,
                        messages: 12,
                        rounds: 2,
                        ok: true,
                        elapsed_nanos: (done as u64 + 1) * 1_000_000,
                    });
                }
                echo_runner(manifest)
            }
        }

        let live = std::sync::Arc::new(Mutex::new(crate::progress::LiveAggregates::new()));
        let points = std::sync::Arc::new(AtomicUsize::new(0));
        let (live_in, points_in) = (live.clone(), points.clone());
        let result = Coordinator::new(Streaming, 3)
            .on_event(move |e| {
                if matches!(e, CoordEvent::Point(_)) {
                    points_in.fetch_add(1, Ordering::SeqCst);
                }
                live_in.lock().unwrap().ingest_coord(e);
            })
            .run::<Tok>(&spec(9));
        assert!(result.is_ok(), "{result:?}");
        assert_eq!(points.load(Ordering::SeqCst), 9);
        let live = live.lock().unwrap();
        assert_eq!(live.total_done(), 9);
        assert!(live.is_complete());
    }

    #[test]
    fn worker_command_reports_spawn_failures() {
        let cmd = WorkerCommand::new("/nonexistent/definitely-not-a-worker");
        let manifest = plan_shards(&spec(1), 1).remove(0);
        match cmd.run_shard(&manifest) {
            Err(DistError::Spawn { shard: 0, .. }) => {}
            other => panic!("expected Spawn error, got {other:?}"),
        }
    }

    #[test]
    fn stderr_truncation_respects_char_boundaries() {
        // 600 bytes of 2-byte chars: a blunt truncate(512) would split a
        // char and panic.
        let text = "é".repeat(300);
        let cut = truncate_lossy(&text, 512);
        assert!(cut.len() <= 512);
        assert!(text.starts_with(&cut));
        assert_eq!(truncate_lossy("short", 512), "short");
        assert_eq!(truncate_lossy("", 512), "");
    }

    #[test]
    fn errors_display_informatively() {
        for err in [
            DistError::Spawn {
                shard: 1,
                detail: "x".into(),
            },
            DistError::WorkerFailed {
                shard: 2,
                code: Some(3),
                stderr: "bad".into(),
            },
            DistError::ShardMismatch {
                expected: 0,
                got: 1,
            },
            DistError::MissingPoint { index: 4 },
            DistError::DuplicatePoint { index: 5 },
            DistError::StrayPoint { index: 6 },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
