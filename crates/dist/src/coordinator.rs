//! The fault-tolerant merging coordinator: dispatches shards over a
//! [`ShardTransport`], recovers at **point** granularity, and reassembles
//! the global result.
//!
//! The recovery fabric replaces whole-shard retry with three cooperating
//! mechanisms:
//!
//! * **streamed harvest** — workers in `--stream` mode emit one checksummed
//!   [`PointOutcome`](crate::shard::PointOutcome) line per completed point;
//!   the coordinator banks them as they arrive, so a worker that dies after
//!   k points only forfeits the points it had not yet finished. (Workers
//!   without streaming still work: their final [`ShardReport`] is harvested
//!   wholesale.)
//! * **no-progress watchdog** — with [`Coordinator::watchdog`] set, an
//!   attempt that produces no output lines for the given duration is
//!   declared dead: its [`AbortHandle`](crate::transport::AbortHandle)
//!   fires (killing the worker / closing the connection) and the attempt
//!   fails with [`DistError::Stalled`]. Liveness is driven by the
//!   `--progress` JSONL stream, not wall-clock totals — a slow shard that
//!   keeps finishing points is never killed.
//! * **work-stealing re-plan** — a failed attempt's *unfinished* points are
//!   requeued (after a deterministic exponential backoff with seeded
//!   jitter, [`Backoff`]) and picked up by whichever fabric thread frees up
//!   first. [`point_seed`](crate::shard::point_seed) makes the points'
//!   seeds position-independent, so the re-planned manifest reproduces
//!   identical results on any worker — the idempotency key behind
//!   dedup-on-merge: the first harvested outcome per grid index wins, and
//!   `merge(k) == run(1)` stays bit-for-bit under any chaos schedule that
//!   eventually lets work finish.
//!
//! When a shard exhausts its retry budget the strict entry points
//! ([`Coordinator::run`], [`Coordinator::run_campaign`]) fail with
//! [`DistError::Exhausted`]; the graceful ones
//! ([`Coordinator::run_partial`], [`Coordinator::run_campaign_partial`])
//! degrade to a typed [`PartialSweep`] / [`PartialReport`] carrying
//! everything that finished plus a coverage map of what did not.
//!
//! Retries are always visible — they are logged to stderr (shard, attempt,
//! cause) whether or not an observer is installed, so flaky workers can't
//! hide behind silent re-dispatch.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use ba_sim::{Bit, CampaignReport, ScenarioStats, SimError, SimRng};

use crate::progress::{CoordEvent, ProgressEvent};
use crate::shard::{
    assemble_campaign_report, plan_shards, PartialReport, PartialSweep, PointOutcome, ShardEntry,
    ShardFailure, ShardManifest, ShardReport, SweepSpec,
};
use crate::transport::{truncate_lossy, ShardTransport};
use crate::wire::{fnv64, Decode, WireError, WireReader};

/// A distributed-sweep failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DistError {
    /// A worker could not be spawned or its pipes broke.
    Spawn {
        /// The shard being attempted.
        shard: usize,
        /// The OS error text.
        detail: String,
    },
    /// A worker exited unsuccessfully.
    WorkerFailed {
        /// The shard being attempted.
        shard: usize,
        /// The worker's exit code, if any.
        code: Option<i32>,
        /// Captured (truncated) stderr.
        stderr: String,
    },
    /// A worker's output did not decode as a shard report.
    Wire {
        /// The shard being attempted.
        shard: usize,
        /// The decode failure.
        error: WireError,
    },
    /// A report claimed a different shard index than the manifest it was
    /// produced from.
    ShardMismatch {
        /// The shard the coordinator dispatched.
        expected: usize,
        /// The shard index the report claimed.
        got: usize,
    },
    /// The no-progress watchdog declared an attempt dead.
    Stalled {
        /// The shard being attempted.
        shard: usize,
    },
    /// An attempt ended cleanly but left manifest points uncovered.
    Incomplete {
        /// The shard being attempted.
        shard: usize,
        /// How many of the attempt's points never arrived.
        missing: usize,
    },
    /// The stock worker binary could not be located.
    WorkerNotFound {
        /// Every path that was searched, in order.
        searched: Vec<String>,
    },
    /// A shard kept failing after all retries.
    Exhausted {
        /// The failing shard.
        shard: usize,
        /// Number of attempts made.
        attempts: usize,
        /// The final attempt's failure, rendered.
        last: String,
    },
    /// The merged reports left a grid index uncovered.
    MissingPoint {
        /// The first uncovered global index.
        index: usize,
    },
    /// Two reports covered the same grid index.
    DuplicatePoint {
        /// The doubly-covered global index.
        index: usize,
    },
    /// A report covered an index outside the grid.
    StrayPoint {
        /// The out-of-range global index.
        index: usize,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Spawn { shard, detail } => {
                write!(f, "shard {shard}: failed to spawn worker: {detail}")
            }
            DistError::WorkerFailed {
                shard,
                code,
                stderr,
            } => {
                write!(f, "shard {shard}: worker exited with status {code:?}")?;
                if !stderr.is_empty() {
                    write!(f, "; stderr: {stderr}")?;
                }
                Ok(())
            }
            DistError::Wire { shard, error } => {
                write!(f, "shard {shard}: undecodable report: {error}")
            }
            DistError::ShardMismatch { expected, got } => {
                write!(f, "dispatched shard {expected} but report claims {got}")
            }
            DistError::Stalled { shard } => {
                write!(f, "shard {shard}: no progress within the watchdog window")
            }
            DistError::Incomplete { shard, missing } => {
                write!(
                    f,
                    "shard {shard}: attempt ended cleanly but left {missing} point(s) uncovered"
                )
            }
            DistError::WorkerNotFound { searched } => {
                write!(
                    f,
                    "campaign_worker binary not found; searched: {}",
                    searched.join(", ")
                )
            }
            DistError::Exhausted {
                shard,
                attempts,
                last,
            } => write!(
                f,
                "shard {shard} failed all {attempts} attempts; last: {last}"
            ),
            DistError::MissingPoint { index } => {
                write!(f, "merged reports leave grid point {index} uncovered")
            }
            DistError::DuplicatePoint { index } => {
                write!(f, "grid point {index} covered by more than one report")
            }
            DistError::StrayPoint { index } => {
                write!(f, "report covers index {index} outside the grid")
            }
        }
    }
}

impl Error for DistError {}

/// Deterministic exponential backoff with seeded jitter, governing when a
/// failed shard's unfinished points are re-planned.
///
/// The delay before re-attempting after `attempt` failures is
/// `base · 2^(attempt−1)` capped at `max`, plus a jitter fraction in
/// `[0, jitter]` of the delay drawn from a [`SimRng`] seeded by
/// `(seed, shard, attempt)` — a pure function, so a chaos run's entire
/// retry timeline is reproducible from its seeds.
#[derive(Clone, PartialEq, Debug)]
pub struct Backoff {
    /// First-retry delay.
    pub base: Duration,
    /// Cap on the exponential part.
    pub max: Duration,
    /// Maximum extra delay, as a fraction of the exponential part.
    pub jitter: f64,
    /// Seed of the jitter draws.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base: Duration::from_millis(50),
            max: Duration::from_secs(2),
            jitter: 0.5,
            seed: 0xBAC0FF,
        }
    }
}

impl Backoff {
    /// No delay at all (for tests and in-process transports).
    pub fn none() -> Self {
        Backoff {
            base: Duration::ZERO,
            max: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// The delay before re-planning `shard` after its `attempt`-th failure
    /// (1-based). Pure: identical inputs give identical delays.
    pub fn delay(&self, shard: usize, attempt: usize) -> Duration {
        let exp = attempt.saturating_sub(1).min(20) as u32;
        let nanos = u64::try_from(self.base.as_nanos())
            .unwrap_or(u64::MAX)
            .saturating_mul(1u64 << exp)
            .min(u64::try_from(self.max.as_nanos()).unwrap_or(u64::MAX));
        let mut key = Vec::with_capacity(16);
        key.extend_from_slice(&(shard as u64).to_le_bytes());
        key.extend_from_slice(&(attempt as u64).to_le_bytes());
        let mut rng = SimRng::seed_from_u64(self.seed ^ fnv64(&key));
        let jitter = (nanos as f64 * self.jitter * rng.gen_f64(0.0, 1.0)) as u64;
        Duration::from_nanos(nanos.saturating_add(jitter))
    }
}

/// The coordinator's progress observer: called from fabric threads as
/// events arrive, so it must be both `Send` and `Sync`.
type Observer = Box<dyn Fn(&CoordEvent) + Send + Sync>;

/// The merging coordinator: plans shards, dispatches them concurrently over
/// a [`ShardTransport`], recovers failures at point granularity, and merges
/// the results (see the module docs for the recovery fabric).
pub struct Coordinator<R> {
    transport: R,
    shards: usize,
    retries: usize,
    observer: Option<Observer>,
    backoff: Backoff,
    stall_timeout: Option<Duration>,
}

/// One unit of fabric work: an original shard's not-yet-finished points,
/// eligible to run from `not_before` on.
struct WorkItem {
    shard: usize,
    attempt: usize,
    entries: Vec<ShardEntry>,
    not_before: Instant,
}

/// Shared fabric state behind one mutex: the bank of finished points, the
/// pending work queue, and termination accounting.
struct Fabric<T> {
    completed: BTreeMap<usize, Result<T, SimError>>,
    queue: Vec<WorkItem>,
    open_shards: usize,
    failures: Vec<ShardFailure>,
}

/// What one streamed attempt produced: every point harvested (from
/// `outcome` lines and/or the final report), plus how the attempt ended.
struct AttemptOutput<T> {
    harvested: Vec<(usize, Result<T, SimError>)>,
    result: Result<(), DistError>,
}

enum Pulse {
    Line(Vec<u8>),
    End(Result<(), DistError>),
}

impl<R: ShardTransport> Coordinator<R> {
    /// A coordinator splitting sweeps into `shards` shards (clamped to at
    /// least 1), with one retry per shard by default.
    pub fn new(transport: R, shards: usize) -> Self {
        Coordinator {
            transport,
            shards: shards.max(1),
            retries: 1,
            observer: None,
            backoff: Backoff::default(),
            stall_timeout: None,
        }
    }

    /// Sets how many times a failed shard's remaining points are
    /// re-dispatched (0 = fail fast).
    pub fn retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the re-plan backoff policy.
    pub fn backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Arms the no-progress watchdog: an attempt producing no output lines
    /// for `timeout` is aborted and counted as failed ([`DistError::Stalled`]).
    /// Any line — progress JSONL, streamed outcome, report — resets the
    /// clock, so slow-but-alive workers are never killed. Off by default
    /// (transports that buffer a whole report produce no interim lines).
    pub fn watchdog(mut self, timeout: Duration) -> Self {
        self.stall_timeout = Some(timeout);
        self
    }

    /// Installs a progress observer receiving every [`CoordEvent`] while a
    /// sweep runs: per-point progress, shard completions, retries, and
    /// partial-coverage degradation. Called concurrently from fabric
    /// threads.
    pub fn on_event(mut self, observer: impl Fn(&CoordEvent) + Send + Sync + 'static) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    fn emit(&self, event: CoordEvent) {
        // Retries are operationally significant: always log them, so flaky
        // workers stay visible even without an observer.
        if matches!(event, CoordEvent::Retry { .. }) {
            eprintln!("coordinator: {event}");
        }
        if let Some(observer) = &self.observer {
            observer(&event);
        }
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Runs the sweep and returns per-point outcomes in global grid order.
    ///
    /// Fabric threads (one per planned shard) stream attempts concurrently;
    /// each shard's remaining points are attempted up to `1 + retries`
    /// times; finished points are banked and deduplicated by global index,
    /// so the result is identical to a single-process sweep of the same
    /// grid — bit-for-bit, under any fault schedule that eventually lets
    /// every point finish.
    ///
    /// # Errors
    ///
    /// [`DistError::Exhausted`] (for the first shard that ran out of
    /// attempts) if any point never finished. Use
    /// [`run_partial`](Coordinator::run_partial) to degrade gracefully
    /// instead.
    pub fn run<T: Decode + Send>(
        &self,
        spec: &SweepSpec,
    ) -> Result<Vec<Result<T, SimError>>, DistError> {
        match self.run_partial::<T>(spec).into_complete() {
            Ok(merged) => Ok(merged),
            Err(partial) => {
                let first = partial
                    .failures
                    .first()
                    .expect("an incomplete sweep records at least one shard failure");
                Err(DistError::Exhausted {
                    shard: first.shard,
                    attempts: first.attempts,
                    last: first.last.clone(),
                })
            }
        }
    }

    /// Runs the sweep with graceful degradation: exhausted shards forfeit
    /// their unfinished points, and the result is a [`PartialSweep`]
    /// carrying everything that finished plus the coverage map of what did
    /// not. `outcomes` and `missing` always partition the planned grid; a
    /// fully-recovered run comes back complete (and bit-identical to
    /// [`run`](Coordinator::run)).
    pub fn run_partial<T: Decode + Send>(&self, spec: &SweepSpec) -> PartialSweep<T> {
        let sweep = self.run_fabric::<T>(spec);
        if !sweep.is_complete() {
            self.emit(CoordEvent::Partial {
                covered: sweep.outcomes.len(),
                missing: sweep.missing.len(),
                grid: sweep.grid_len,
            });
        }
        sweep
    }

    /// Runs a [`ShardMode::Scenarios`] sweep and reassembles the exact
    /// `CampaignReport` a single-process
    /// [`ba_sim::Campaign::run_scenarios`] over the same grid produces.
    ///
    /// # Errors
    ///
    /// As [`Coordinator::run`].
    pub fn run_campaign(&self, spec: &SweepSpec) -> Result<CampaignReport<Bit>, DistError> {
        let merged = self.run::<ScenarioStats<Bit>>(spec)?;
        Ok(assemble_campaign_report(&spec.points, merged))
    }

    /// The graceful counterpart of [`run_campaign`](Coordinator::run_campaign):
    /// a typed [`PartialReport`] with the covered points assembled into a
    /// campaign report and the missing points listed with their grid
    /// indices.
    pub fn run_campaign_partial(&self, spec: &SweepSpec) -> PartialReport<Bit> {
        self.run_partial::<ScenarioStats<Bit>>(spec)
            .into_campaign(&spec.points)
    }

    fn run_fabric<T: Decode + Send>(&self, spec: &SweepSpec) -> PartialSweep<T> {
        let manifests = plan_shards(spec, self.shards);
        let grid_len = spec.points.len();
        let planned = manifests.len();
        let shards_total = manifests.first().map_or(0, |m| m.shards);
        let now = Instant::now();
        let state = Mutex::new(Fabric::<T> {
            completed: BTreeMap::new(),
            queue: manifests
                .into_iter()
                .map(|m| WorkItem {
                    shard: m.shard,
                    attempt: 1,
                    entries: m.entries,
                    not_before: now,
                })
                .collect(),
            open_shards: planned,
            failures: Vec::new(),
        });
        let ready = Condvar::new();
        std::thread::scope(|scope| {
            for _ in 0..planned {
                scope.spawn(|| self.fabric_worker(&state, &ready, spec, shards_total, grid_len));
            }
        });
        let fabric = state.into_inner().unwrap_or_else(|p| p.into_inner());
        let missing: Vec<usize> = (0..grid_len)
            .filter(|i| !fabric.completed.contains_key(i))
            .collect();
        PartialSweep {
            grid_len,
            outcomes: fabric.completed.into_iter().collect(),
            missing,
            failures: fabric.failures,
        }
    }

    /// One fabric thread: pops ready work items (any shard's — this is
    /// where stealing happens), streams an attempt, banks its harvest, and
    /// either settles the shard or requeues its remainder with backoff.
    fn fabric_worker<T: Decode + Send>(
        &self,
        state: &Mutex<Fabric<T>>,
        ready: &Condvar,
        spec: &SweepSpec,
        shards_total: usize,
        grid_len: usize,
    ) {
        loop {
            // Pop the next eligible work item, or wait for one (a backoff
            // deadline passing, or another thread settling the last shard).
            let item = {
                let mut fabric = state.lock().unwrap_or_else(|p| p.into_inner());
                loop {
                    if fabric.open_shards == 0 {
                        return;
                    }
                    let now = Instant::now();
                    if let Some(pos) = fabric.queue.iter().position(|w| w.not_before <= now) {
                        break fabric.queue.swap_remove(pos);
                    }
                    let wait = fabric
                        .queue
                        .iter()
                        .map(|w| w.not_before.saturating_duration_since(now))
                        .min();
                    fabric = match wait {
                        Some(wait) => {
                            let (guard, _) = ready
                                .wait_timeout(fabric, wait.max(Duration::from_millis(1)))
                                .unwrap_or_else(|p| p.into_inner());
                            guard
                        }
                        None => ready.wait(fabric).unwrap_or_else(|p| p.into_inner()),
                    };
                }
            };

            // Re-plan against the bank: points finished elsewhere (a
            // straggler's late harvest, a stolen duplicate) drop out here —
            // point_seed keeps the survivors' seeds identical.
            let entries: Vec<ShardEntry> = {
                let fabric = state.lock().unwrap_or_else(|p| p.into_inner());
                item.entries
                    .iter()
                    .filter(|e| !fabric.completed.contains_key(&e.index))
                    .cloned()
                    .collect()
            };
            if entries.is_empty() {
                self.settle_done(state, ready, item.shard);
                continue;
            }
            let manifest = ShardManifest {
                shard: item.shard,
                shards: shards_total,
                mode: spec.mode,
                protocol: spec.protocol.clone(),
                threads: spec.worker_threads,
                entries,
            };
            let output = self.attempt_stream::<T>(&manifest, grid_len);

            let event = {
                let mut fabric = state.lock().unwrap_or_else(|p| p.into_inner());
                for (index, result) in output.harvested {
                    // Dedup-on-merge: the first outcome per grid index
                    // wins. Duplicates are byte-identical by determinism,
                    // so which one lands is immaterial.
                    fabric.completed.entry(index).or_insert(result);
                }
                let remaining: Vec<ShardEntry> = manifest
                    .entries
                    .iter()
                    .filter(|e| !fabric.completed.contains_key(&e.index))
                    .cloned()
                    .collect();
                if remaining.is_empty() {
                    // Salvage: the shard is covered — even if this attempt
                    // ended in an error, every point landed somewhere.
                    fabric.open_shards -= 1;
                    Some(CoordEvent::ShardDone { shard: item.shard })
                } else {
                    let cause = match output.result {
                        Ok(()) => DistError::Incomplete {
                            shard: item.shard,
                            missing: remaining.len(),
                        }
                        .to_string(),
                        Err(ref e) => e.to_string(),
                    };
                    let attempts = 1 + self.retries;
                    if item.attempt < attempts {
                        let delay = self.backoff.delay(item.shard, item.attempt);
                        fabric.queue.push(WorkItem {
                            shard: item.shard,
                            attempt: item.attempt + 1,
                            entries: remaining,
                            not_before: Instant::now() + delay,
                        });
                        Some(CoordEvent::Retry {
                            shard: item.shard,
                            attempt: item.attempt,
                            attempts,
                            cause,
                        })
                    } else {
                        fabric.failures.push(ShardFailure {
                            shard: item.shard,
                            attempts,
                            last: cause,
                        });
                        fabric.open_shards -= 1;
                        None
                    }
                }
            };
            ready.notify_all();
            if let Some(event) = event {
                self.emit(event);
            }
        }
    }

    fn settle_done<T>(&self, state: &Mutex<Fabric<T>>, ready: &Condvar, shard: usize) {
        {
            let mut fabric = state.lock().unwrap_or_else(|p| p.into_inner());
            fabric.open_shards -= 1;
        }
        ready.notify_all();
        self.emit(CoordEvent::ShardDone { shard });
    }

    /// Streams one attempt: a reader thread pumps the link's lines into a
    /// channel; this thread classifies them (progress JSONL / streamed
    /// outcomes / in-band worker errors / report text) under the watchdog
    /// clock, then settles the attempt from its end state.
    fn attempt_stream<T: Decode + Send>(
        &self,
        manifest: &ShardManifest,
        grid_len: usize,
    ) -> AttemptOutput<T> {
        let shard = manifest.shard;
        let mut link = match self.transport.open(manifest) {
            Ok(link) => link,
            Err(e) => {
                return AttemptOutput {
                    harvested: Vec::new(),
                    result: Err(e),
                }
            }
        };
        let abort = link.abort_handle();
        let (tx, rx) = mpsc::channel::<Pulse>();
        let reader = std::thread::spawn(move || loop {
            match link.next_line() {
                Ok(Some(line)) => {
                    if tx.send(Pulse::Line(line)).is_err() {
                        let _ = link.finish();
                        break;
                    }
                }
                Ok(None) => {
                    let _ = tx.send(Pulse::End(link.finish()));
                    break;
                }
                Err(e) => {
                    let _ = tx.send(Pulse::End(Err(e)));
                    break;
                }
            }
        });

        let mut harvested: Vec<(usize, Result<T, SimError>)> = Vec::new();
        let mut report = String::new();
        let mut worker_error: Option<String> = None;
        let mut fatal: Option<DistError> = None;
        let mut stalled = false;
        let mut got_end = false;
        let end: Result<(), DistError> = loop {
            let pulse = match self.stall_timeout {
                Some(timeout) => match rx.recv_timeout(timeout) {
                    Ok(pulse) => pulse,
                    Err(RecvTimeoutError::Timeout) if !stalled => {
                        // Watchdog: declare the attempt dead and abort it;
                        // keep draining so the reader can wind down (one
                        // more window, then give up and detach it).
                        stalled = true;
                        abort();
                        continue;
                    }
                    Err(_) => break Err(DistError::Stalled { shard }),
                },
                None => match rx.recv() {
                    Ok(pulse) => pulse,
                    Err(_) => {
                        break Err(DistError::Spawn {
                            shard,
                            detail: "link reader ended without a final status".to_string(),
                        })
                    }
                },
            };
            match pulse {
                Pulse::Line(bytes) => self.classify_line(
                    &bytes,
                    grid_len,
                    &mut harvested,
                    &mut report,
                    &mut worker_error,
                    &mut fatal,
                ),
                Pulse::End(result) => {
                    got_end = true;
                    break result;
                }
            }
        };
        if got_end {
            let _ = reader.join();
        }

        let mut result = if stalled {
            Err(DistError::Stalled { shard })
        } else {
            end
        };
        if result.is_ok() {
            if let Some(detail) = worker_error {
                result = Err(DistError::WorkerFailed {
                    shard,
                    code: None,
                    stderr: truncate_lossy(&detail, 512),
                });
            }
        }
        if let Some(f) = fatal {
            result = result.and(Err(f));
        }
        // Harvest the trailing report too (if any arrived) — even after a
        // failure: a truncated stream's decodable prefix still banks
        // nothing here (reports decode atomically), but a complete report
        // from a worker that then crashed salvages everything.
        if !report.is_empty() {
            match ShardReport::<T>::from_wire(&report) {
                Ok(rep) if rep.shard != shard => {
                    // Misattributed data is untrusted: discard it.
                    result = result.and(Err(DistError::ShardMismatch {
                        expected: shard,
                        got: rep.shard,
                    }));
                }
                Ok(rep) => {
                    for (index, outcome) in rep.outcomes {
                        if index >= grid_len {
                            result = result.and(Err(DistError::StrayPoint { index }));
                        } else {
                            harvested.push((index, outcome));
                        }
                    }
                }
                Err(error) => {
                    result = result.and(Err(DistError::Wire { shard, error }));
                }
            }
        }
        AttemptOutput { harvested, result }
    }

    /// Classifies one output line: progress JSONL (starts with `{`; wire
    /// records never do), a streamed checksummed outcome, an in-band
    /// `worker-error`, or report text. Non-UTF8 or checksum-failing lines
    /// are dropped — their points simply aren't harvested, which the
    /// coverage check catches.
    fn classify_line<T: Decode>(
        &self,
        bytes: &[u8],
        grid_len: usize,
        harvested: &mut Vec<(usize, Result<T, SimError>)>,
        report: &mut String,
        worker_error: &mut Option<String>,
        fatal: &mut Option<DistError>,
    ) {
        let Ok(text) = std::str::from_utf8(bytes) else {
            return;
        };
        let text = text.trim_end_matches('\r');
        if text.is_empty() {
            return;
        }
        if text.starts_with('{') {
            if let Some(event) = ProgressEvent::parse(text) {
                self.emit(CoordEvent::Point(event));
            }
            // Non-point JSON (foreign telemetry) is dropped: it is never
            // part of the wire report.
            return;
        }
        if text.starts_with("outcome ") {
            match PointOutcome::<T>::from_wire(text) {
                Ok(outcome) if outcome.index >= grid_len => {
                    fatal.get_or_insert(DistError::StrayPoint {
                        index: outcome.index,
                    });
                }
                Ok(outcome) => harvested.push((outcome.index, outcome.result)),
                // A corrupted outcome line (bad checksum, bad escape) is
                // dropped; its point is re-planned if it never arrives
                // another way.
                Err(_) => {}
            }
            return;
        }
        if text.starts_with("worker-error") {
            let detail = WireReader::new(text)
                .record("worker-error")
                .and_then(|rec| rec.text("detail"))
                .unwrap_or_else(|_| text.to_string());
            worker_error.get_or_insert(detail);
            return;
        }
        report.push_str(text);
        report.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{ShardEntry, ShardReport};
    use crate::wire::{Encode, WireReader};
    use ba_sim::CampaignPoint;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A minimal wire type for transport-level tests.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    struct Tok(u64);

    impl Encode for Tok {
        fn encode(&self, out: &mut String) {
            out.push_str(&format!("tok v={}\n", self.0));
        }
    }

    impl Decode for Tok {
        fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
            Ok(Tok(reader.record("tok")?.parse_field("v")?))
        }
    }

    fn spec(len: usize) -> SweepSpec {
        SweepSpec::scenarios((0..len).map(|i| CampaignPoint::new(4 + i, 1)), "test")
    }

    /// An in-process runner computing `Tok(seed ^ index)` per entry.
    fn echo_runner(manifest: &ShardManifest) -> Result<String, DistError> {
        let report = ShardReport {
            shard: manifest.shard,
            outcomes: manifest
                .entries
                .iter()
                .map(|e: &ShardEntry| (e.index, Ok(Tok(e.seed ^ e.index as u64))))
                .collect(),
        };
        Ok(report.to_wire())
    }

    #[test]
    fn coordinator_merges_shards_into_grid_order() {
        let spec = spec(11);
        let one = Coordinator::new(echo_runner, 1).run::<Tok>(&spec).unwrap();
        let four = Coordinator::new(echo_runner, 4).run::<Tok>(&spec).unwrap();
        let many = Coordinator::new(echo_runner, 64).run::<Tok>(&spec).unwrap();
        assert_eq!(one.len(), 11);
        assert_eq!(one, four);
        assert_eq!(one, many);
    }

    #[test]
    fn coordinator_retries_flaky_shards() {
        // Every shard's *first* attempt fails; the retry succeeds.
        let attempts: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        let flaky = |manifest: &ShardManifest| -> Result<String, DistError> {
            if attempts[manifest.shard].fetch_add(1, Ordering::SeqCst) == 0 {
                return Err(DistError::Spawn {
                    shard: manifest.shard,
                    detail: "injected".into(),
                });
            }
            echo_runner(manifest)
        };
        let spec = spec(6);
        let result = Coordinator::new(&flaky, 3)
            .retries(1)
            .backoff(Backoff::none())
            .run::<Tok>(&spec);
        assert!(result.is_ok(), "{result:?}");
        for a in &attempts {
            assert_eq!(a.load(Ordering::SeqCst), 2);
        }
    }

    #[test]
    fn coordinator_reports_exhaustion_with_the_last_error() {
        let always_fail = |manifest: &ShardManifest| -> Result<String, DistError> {
            Err(DistError::Spawn {
                shard: manifest.shard,
                detail: "boom".into(),
            })
        };
        let err = Coordinator::new(always_fail, 2)
            .retries(1)
            .backoff(Backoff::none())
            .run::<Tok>(&spec(4))
            .unwrap_err();
        match err {
            DistError::Exhausted { attempts, last, .. } => {
                assert_eq!(attempts, 2);
                assert!(last.contains("boom"), "{last}");
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn coordinator_rejects_misattributed_reports() {
        let wrong_shard = |manifest: &ShardManifest| -> Result<String, DistError> {
            let mut report_wire = echo_runner(manifest)?;
            report_wire = report_wire.replacen(
                &format!("shard-report shard={}", manifest.shard),
                "shard-report shard=93",
                1,
            );
            Ok(report_wire)
        };
        let err = Coordinator::new(wrong_shard, 1)
            .retries(0)
            .run::<Tok>(&spec(3))
            .unwrap_err();
        match err {
            DistError::Exhausted { last, .. } => assert!(last.contains("93"), "{last}"),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn coordinator_surfaces_undecodable_output() {
        let garbage =
            |_: &ShardManifest| -> Result<String, DistError> { Ok("not a shard report\n".into()) };
        let err = Coordinator::new(garbage, 1)
            .retries(0)
            .run::<Tok>(&spec(2))
            .unwrap_err();
        assert!(err.to_string().contains("shard 0"), "{err}");
    }

    #[test]
    fn observer_sees_retries_and_shard_completions() {
        use std::sync::Mutex;
        let attempts: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        let flaky = |manifest: &ShardManifest| -> Result<String, DistError> {
            if manifest.shard == 1 && attempts[1].fetch_add(1, Ordering::SeqCst) == 0 {
                return Err(DistError::Spawn {
                    shard: 1,
                    detail: "injected".into(),
                });
            }
            echo_runner(manifest)
        };
        let events = std::sync::Arc::new(Mutex::new(Vec::<CoordEvent>::new()));
        let seen = events.clone();
        let result = Coordinator::new(&flaky, 2)
            .retries(1)
            .backoff(Backoff::none())
            .on_event(move |e| seen.lock().unwrap().push(e.clone()))
            .run::<Tok>(&spec(6));
        assert!(result.is_ok(), "{result:?}");
        let events = events.lock().unwrap().clone();
        let retries: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, CoordEvent::Retry { .. }))
            .collect();
        assert_eq!(retries.len(), 1);
        match retries[0] {
            CoordEvent::Retry {
                shard,
                attempt,
                attempts,
                cause,
            } => {
                assert_eq!((*shard, *attempt, *attempts), (1, 1, 2));
                assert!(cause.contains("injected"), "{cause}");
            }
            _ => unreachable!(),
        }
        let done = events
            .iter()
            .filter(|e| matches!(e, CoordEvent::ShardDone { .. }))
            .count();
        assert_eq!(done, 2);
    }

    #[test]
    fn streaming_transports_feed_point_events_to_the_observer() {
        use std::sync::Mutex;

        // A transport that interleaves one progress record per entry with
        // the report lines, like a worker in `--progress` mode.
        let streaming = |manifest: &ShardManifest| -> Result<String, DistError> {
            let mut out = String::new();
            for (done, entry) in manifest.entries.iter().enumerate() {
                out.push_str(
                    &crate::progress::ProgressEvent {
                        shard: manifest.shard,
                        shards: manifest.shards,
                        done: done + 1,
                        total: manifest.entries.len(),
                        index: entry.index,
                        messages: 12,
                        rounds: 2,
                        ok: true,
                        elapsed_nanos: (done as u64 + 1) * 1_000_000,
                    }
                    .to_json_line(),
                );
                out.push('\n');
            }
            out.push_str(&echo_runner(manifest)?);
            Ok(out)
        };

        let live = std::sync::Arc::new(Mutex::new(crate::progress::LiveAggregates::new()));
        let points = std::sync::Arc::new(AtomicUsize::new(0));
        let (live_in, points_in) = (live.clone(), points.clone());
        let result = Coordinator::new(streaming, 3)
            .on_event(move |e| {
                if matches!(e, CoordEvent::Point(_)) {
                    points_in.fetch_add(1, Ordering::SeqCst);
                }
                live_in.lock().unwrap().ingest_coord(e);
            })
            .run::<Tok>(&spec(9));
        assert!(result.is_ok(), "{result:?}");
        assert_eq!(points.load(Ordering::SeqCst), 9);
        let live = live.lock().unwrap();
        assert_eq!(live.total_done(), 9);
        assert!(live.is_complete());
    }

    #[test]
    fn streamed_outcomes_survive_a_crashed_attempt() {
        // First attempt per shard streams outcome lines for all its points
        // and then "crashes" (spawn error, no report). The bank keeps the
        // streamed points, so the retry's re-planned manifest is empty and
        // the shard settles without recomputation.
        let attempts = AtomicUsize::new(0);
        let opened = std::sync::Arc::new(std::sync::Mutex::new(Vec::<usize>::new()));
        let opened_in = opened.clone();
        let streams_then_dies = move |manifest: &ShardManifest| -> Result<String, DistError> {
            opened_in.lock().unwrap().push(manifest.entries.len());
            if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                let mut out = String::new();
                for e in &manifest.entries {
                    PointOutcome {
                        index: e.index,
                        result: Ok::<_, SimError>(Tok(e.seed ^ e.index as u64)),
                    }
                    .encode(&mut out);
                }
                out.push_str("worker-error detail=simulated%20crash\n");
                return Ok(out);
            }
            echo_runner(manifest)
        };
        let spec = spec(5);
        let merged = Coordinator::new(streams_then_dies, 1)
            .retries(1)
            .backoff(Backoff::none())
            .run::<Tok>(&spec)
            .unwrap();
        let reference = Coordinator::new(echo_runner, 1).run::<Tok>(&spec).unwrap();
        assert_eq!(merged, reference);
        // The retry attempt (if opened at all) saw zero entries re-planned.
        let sizes = opened.lock().unwrap().clone();
        assert_eq!(sizes[0], 5);
        assert!(sizes.len() <= 2);
        if let Some(&second) = sizes.get(1) {
            assert_eq!(second, 0);
        }
    }

    #[test]
    fn partial_mode_partitions_grid_between_covered_and_missing() {
        // Shard 1 always fails; everything else succeeds. Partial mode
        // must keep shard 0/2's points and map exactly shard 1's points as
        // missing.
        let half_dead = |manifest: &ShardManifest| -> Result<String, DistError> {
            if manifest.shard == 1 {
                return Err(DistError::Spawn {
                    shard: 1,
                    detail: "dead rack".into(),
                });
            }
            echo_runner(manifest)
        };
        let spec = spec(9);
        let coordinator = Coordinator::new(half_dead, 3)
            .retries(2)
            .backoff(Backoff::none());
        let partial = coordinator.run_partial::<Tok>(&spec);
        assert!(!partial.is_complete());
        assert_eq!(partial.grid_len, 9);
        let covered: Vec<usize> = partial.outcomes.iter().map(|(i, _)| *i).collect();
        let mut all: Vec<usize> = covered.clone();
        all.extend(&partial.missing);
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>(), "not a partition");
        assert_eq!(partial.missing, vec![3, 4, 5]);
        assert_eq!(partial.failures.len(), 1);
        assert_eq!(partial.failures[0].shard, 1);
        assert_eq!(partial.failures[0].attempts, 3);
        assert!(partial.failures[0].last.contains("dead rack"));
        // The strict path reports the same failure as Exhausted.
        let err = coordinator.run::<Tok>(&spec).unwrap_err();
        assert!(matches!(err, DistError::Exhausted { shard: 1, .. }));
    }

    #[test]
    fn partial_event_reaches_the_observer() {
        use std::sync::Mutex;
        let dead = |manifest: &ShardManifest| -> Result<String, DistError> {
            Err(DistError::Spawn {
                shard: manifest.shard,
                detail: "down".into(),
            })
        };
        let events = std::sync::Arc::new(Mutex::new(Vec::<CoordEvent>::new()));
        let seen = events.clone();
        let partial = Coordinator::new(dead, 2)
            .retries(0)
            .backoff(Backoff::none())
            .on_event(move |e| seen.lock().unwrap().push(e.clone()))
            .run_partial::<Tok>(&spec(4));
        assert_eq!(partial.outcomes.len(), 0);
        let events = events.lock().unwrap();
        let partials: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                CoordEvent::Partial {
                    covered,
                    missing,
                    grid,
                } => Some((*covered, *missing, *grid)),
                _ => None,
            })
            .collect();
        assert_eq!(partials, vec![(0, 4, 4)]);
    }

    #[test]
    fn watchdog_kills_stalled_attempts_and_work_is_stolen() {
        use crate::transport::{BufferedLink, WorkerLink};
        use std::sync::{Arc, Condvar as SyncCondvar, Mutex as SyncMutex};

        /// First attempt at shard 0 stalls forever (until aborted); all
        /// other attempts echo.
        struct StallOnce {
            stalled_once: AtomicUsize,
        }
        struct StallingLink {
            aborted: Arc<(SyncMutex<bool>, SyncCondvar)>,
        }
        impl WorkerLink for StallingLink {
            fn next_line(&mut self) -> Result<Option<Vec<u8>>, DistError> {
                let (lock, cond) = &*self.aborted;
                let mut aborted = lock.lock().unwrap();
                while !*aborted {
                    aborted = cond.wait(aborted).unwrap();
                }
                Err(DistError::Stalled { shard: 0 })
            }
            fn finish(&mut self) -> Result<(), DistError> {
                Ok(())
            }
            fn abort_handle(&self) -> crate::transport::AbortHandle {
                let pair = self.aborted.clone();
                Arc::new(move || {
                    let (lock, cond) = &*pair;
                    *lock.lock().unwrap() = true;
                    cond.notify_all();
                })
            }
        }
        impl ShardTransport for StallOnce {
            fn open(&self, manifest: &ShardManifest) -> Result<Box<dyn WorkerLink>, DistError> {
                if manifest.shard == 0 && self.stalled_once.fetch_add(1, Ordering::SeqCst) == 0 {
                    return Ok(Box::new(StallingLink {
                        aborted: Arc::new((SyncMutex::new(false), SyncCondvar::new())),
                    }));
                }
                Ok(Box::new(BufferedLink::from_text(&echo_runner(manifest)?)))
            }
        }

        let spec = spec(6);
        let merged = Coordinator::new(
            StallOnce {
                stalled_once: AtomicUsize::new(0),
            },
            2,
        )
        .retries(1)
        .backoff(Backoff::none())
        .watchdog(Duration::from_millis(50))
        .run::<Tok>(&spec)
        .unwrap();
        let reference = Coordinator::new(echo_runner, 1).run::<Tok>(&spec).unwrap();
        assert_eq!(merged, reference);
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_jittered() {
        let backoff = Backoff::default();
        for shard in 0..4 {
            for attempt in 1..=6 {
                assert_eq!(
                    backoff.delay(shard, attempt),
                    backoff.delay(shard, attempt),
                    "delay must be pure"
                );
            }
        }
        // Exponential growth up to the cap: the un-jittered part doubles.
        let base = Duration::from_millis(50);
        for attempt in 1..=4 {
            let d = backoff.delay(0, attempt);
            let floor = base * (1 << (attempt - 1));
            assert!(d >= floor, "attempt {attempt}: {d:?} < {floor:?}");
            assert!(
                d <= floor + floor.mul_f64(backoff.jitter),
                "attempt {attempt}: {d:?} above jitter ceiling"
            );
        }
        // The cap binds eventually.
        assert!(backoff.delay(0, 30) <= backoff.max.mul_f64(1.0 + backoff.jitter));
        // Jitter differs across shards somewhere (seeded per shard).
        let differs = (1..16).any(|s| backoff.delay(s, 2) != backoff.delay(0, 2));
        assert!(differs, "jitter never varied across shards");
        assert_eq!(Backoff::none().delay(3, 5), Duration::ZERO);
    }

    #[test]
    fn worker_command_reports_spawn_failures() {
        use crate::transport::WorkerCommand;
        let cmd = WorkerCommand::new("/nonexistent/definitely-not-a-worker");
        let manifest = plan_shards(&spec(1), 1).remove(0);
        match cmd.open(&manifest) {
            Err(DistError::Spawn { shard: 0, .. }) => {}
            Ok(_) => panic!("expected Spawn error, got a link"),
            Err(other) => panic!("expected Spawn error, got {other:?}"),
        }
    }

    #[test]
    fn errors_display_informatively() {
        for err in [
            DistError::Spawn {
                shard: 1,
                detail: "x".into(),
            },
            DistError::WorkerFailed {
                shard: 2,
                code: Some(3),
                stderr: "bad".into(),
            },
            DistError::ShardMismatch {
                expected: 0,
                got: 1,
            },
            DistError::Stalled { shard: 3 },
            DistError::Incomplete {
                shard: 4,
                missing: 2,
            },
            DistError::WorkerNotFound {
                searched: vec!["$CAMPAIGN_WORKER (unset)".into(), "/tmp/x".into()],
            },
            DistError::MissingPoint { index: 4 },
            DistError::DuplicatePoint { index: 5 },
            DistError::StrayPoint { index: 6 },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
