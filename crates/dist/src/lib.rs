//! # ba-dist — distributed campaign sharding
//!
//! `ba_sim::Campaign` parallelizes a sweep across grid points *within one
//! process*. This crate is the next scale step toward the large `(n, t)`
//! sweeps the paper's Θ(nt) bound demands (and the King–Saia sub-quadratic
//! regimes beyond them): it shards a campaign across *processes* — and,
//! because the transport is plain stdin/stdout over a spawned command,
//! eventually across machines.
//!
//! Three pieces, all dependency-free:
//!
//! * [`wire`] — a hand-rolled line-oriented codec ([`Encode`] / [`Decode`])
//!   for campaign points, shard manifests, scenario stats, simulator
//!   errors, and whole campaign reports. Round-trip (`decode(encode(x)) ==
//!   x`) is property-tested for every wire type.
//! * [`shard`] — a deterministic planner ([`plan_shards`]) whose per-point
//!   seeds are a pure function of the base seed and the point
//!   ([`point_seed`]), so they are identical regardless of the shard
//!   count, and an ordering-stable merger ([`merge_reports`],
//!   BTreeMap-keyed) so `merge(k shards) == run(1 process)` bit-for-bit.
//! * [`transport`] — the [`ShardTransport`] abstraction over how a shard
//!   manifest reaches a worker and its output streams back: spawned
//!   processes ([`WorkerCommand`]), hand-rolled TCP ([`TcpTransport`] /
//!   [`serve_shards`]), in-process closures (tests), and a deterministic
//!   chaos wrapper ([`ChaosTransport`]) injecting seeded crashes, stalls,
//!   truncations, corrupted lines, and connection drops.
//! * [`coordinator`] — a [`Coordinator`] that dispatches shards
//!   concurrently over a [`ShardTransport`] and recovers failures at
//!   *point* granularity: streamed outcomes are banked as they arrive, a
//!   no-progress watchdog kills stalled attempts, a seeded exponential
//!   [`Backoff`] paces re-plans, and unfinished points are work-stolen by
//!   idle fabric threads (retries stay visible: logged and surfaced as
//!   [`CoordEvent`]s). On budget exhaustion the partial entry points
//!   degrade to typed [`PartialSweep`] / [`PartialReport`] values.
//! * [`progress`] — streaming per-point progress: the JSONL records
//!   workers emit in `--progress` mode ([`ProgressEvent`]), the
//!   coordinator's observer stream ([`CoordEvent`]), and the rolling
//!   per-shard aggregates ([`LiveAggregates`]: points/sec, ETA, straggler
//!   flagging, malformed-line gauge, partial coverage) behind the
//!   `campaign_watch` dashboard.
//!
//! The worker side lives in `ba-bench` (`campaign_worker` binary + protocol
//! registry), because resolving protocol labels needs the protocol crates.
//!
//! ## Example
//!
//! ```no_run
//! use ba_dist::{Coordinator, SweepSpec, WorkerCommand};
//! use ba_sim::Campaign;
//!
//! let grid = Campaign::grid([(8, 2), (16, 4)], &["none", "isolation"], &["ones"]);
//! let spec = SweepSpec::scenarios(grid.points().to_vec(), "flood-set").base_seed(7);
//! let worker = WorkerCommand::locate().expect("campaign_worker binary built");
//! let report = Coordinator::new(worker, 4).run_campaign(&spec).unwrap();
//! println!("{}", report.summary());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod progress;
pub mod shard;
pub mod transport;
pub mod wire;

pub use coordinator::{Backoff, Coordinator, DistError};
pub use progress::{CoordEvent, LiveAggregates, ProgressEvent, ShardProgress, STRAGGLER_FACTOR};
pub use shard::{
    assemble_campaign_report, merge_campaign_report, merge_reports, plan_resume, plan_shards,
    point_seed, PartialReport, PartialSweep, PointOutcome, ShardEntry, ShardFailure, ShardManifest,
    ShardMode, ShardReport, SweepSpec,
};
pub use transport::{
    serve_connection, serve_shards, AbortHandle, BufferedLink, ChaosFault, ChaosFaultKind,
    ChaosPlan, ChaosTransport, ShardTransport, TcpTransport, WorkerCommand, WorkerLink,
    ALL_CHAOS_KINDS,
};
pub use wire::{fnv64, Decode, Encode, WireError, WireReader};
