//! Streaming per-point campaign progress.
//!
//! Workers in `--progress` mode interleave one JSONL record per completed
//! point with their wire-format report on stdout. JSON lines start with
//! `{`, wire records never do, so the coordinator can split the stream
//! line-by-line without framing. This module defines the record
//! ([`ProgressEvent`]), the coordinator-side observer stream
//! ([`CoordEvent`]), and the rolling per-shard aggregates a dashboard
//! renders ([`LiveAggregates`]): points/sec per shard, ETA, and straggler
//! flagging for shards running more than 2× slower than the median.
//!
//! Rates are derived from worker-reported wall-clock (`elapsed_nanos`), so
//! everything here lives in the **wall-clock channel** — it is never
//! compared across runs and never influences execution.

use std::collections::BTreeMap;
use std::fmt;

use ba_obs::{json_escape, parse_json_line};

/// One per-point progress record, as emitted by a worker in `--progress`
/// mode: `{"type":"point","shard":0,"shards":2,"done":3,"total":9,...}`.
#[derive(Clone, PartialEq, Debug)]
pub struct ProgressEvent {
    /// The shard that completed the point.
    pub shard: usize,
    /// Total shards in the sweep (so a dashboard knows the full row set).
    pub shards: usize,
    /// Points this shard has completed so far (including this one).
    pub done: usize,
    /// Total points assigned to this shard.
    pub total: usize,
    /// The completed point's global grid index.
    pub index: usize,
    /// The point's message complexity (0 if the point errored).
    pub messages: u64,
    /// Rounds the point executed (0 if the point errored).
    pub rounds: u64,
    /// Whether the point ran without a simulator error.
    pub ok: bool,
    /// Worker wall-clock since shard start, in nanoseconds (wall-clock
    /// channel: never compared across runs).
    pub elapsed_nanos: u64,
}

impl ProgressEvent {
    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"type\":\"point\",\"shard\":{},\"shards\":{},\"done\":{},\"total\":{},\
             \"index\":{},\"messages\":{},\"rounds\":{},\"ok\":{},\"elapsed_nanos\":{}}}",
            self.shard,
            self.shards,
            self.done,
            self.total,
            self.index,
            self.messages,
            self.rounds,
            self.ok,
            self.elapsed_nanos
        )
    }

    /// Parses a `{"type":"point",...}` JSONL line. Returns `None` for
    /// non-JSON lines (wire records), JSON of a different `type`, or
    /// records missing required fields — callers route those elsewhere.
    pub fn parse(line: &str) -> Option<Self> {
        let json = parse_json_line(line)?;
        if json.get("type")?.as_str()? != "point" {
            return None;
        }
        let usize_field = |key: &str| json.get(key)?.as_u64().map(|v| v as usize);
        Some(ProgressEvent {
            shard: usize_field("shard")?,
            shards: usize_field("shards")?,
            done: usize_field("done")?,
            total: usize_field("total")?,
            index: usize_field("index")?,
            messages: json.get("messages")?.as_u64()?,
            rounds: json.get("rounds")?.as_u64()?,
            ok: json.get("ok")?.as_bool()?,
            elapsed_nanos: json.get("elapsed_nanos")?.as_u64()?,
        })
    }
}

/// What the coordinator reports to its observer while a sweep runs.
#[derive(Clone, PartialEq, Debug)]
pub enum CoordEvent {
    /// A worker completed one grid point.
    Point(ProgressEvent),
    /// A shard attempt failed and is being re-dispatched.
    Retry {
        /// The failing shard.
        shard: usize,
        /// The attempt that failed (1-based).
        attempt: usize,
        /// Total attempts the coordinator will make.
        attempts: usize,
        /// The failure, rendered.
        cause: String,
    },
    /// A shard's report was received and decoded.
    ShardDone {
        /// The finished shard.
        shard: usize,
    },
    /// A model-check shard reported a cumulative exploration snapshot
    /// (streamed once per state batch, so a dashboard can show live
    /// states/s and frontier depth while the check runs).
    Check {
        /// The shard running the check slice.
        shard: usize,
        /// Total shards in the sweep.
        shards: usize,
        /// Distinct states (canonical fingerprints) seen so far.
        states: u64,
        /// Executions explored so far (≥ `states`; the gap is dedup).
        executions: u64,
        /// Deepest decision-tape explored so far.
        depth: usize,
        /// Worker wall-clock since shard start, in nanoseconds
        /// (wall-clock channel: never compared across runs).
        elapsed_nanos: u64,
    },
    /// The sweep degraded to partial coverage: some points never finished
    /// within the retry budget.
    Partial {
        /// Points that did finish.
        covered: usize,
        /// Points forfeited.
        missing: usize,
        /// The planned grid size (`covered + missing`).
        grid: usize,
    },
}

impl CoordEvent {
    /// Renders the event as one JSONL line (no trailing newline), the same
    /// framing workers use, so coordinator streams can be piped into
    /// `campaign_watch` too.
    pub fn to_json_line(&self) -> String {
        match self {
            CoordEvent::Point(event) => event.to_json_line(),
            CoordEvent::Retry {
                shard,
                attempt,
                attempts,
                cause,
            } => format!(
                "{{\"type\":\"retry\",\"shard\":{shard},\"attempt\":{attempt},\
                 \"attempts\":{attempts},\"cause\":\"{}\"}}",
                json_escape(cause)
            ),
            CoordEvent::ShardDone { shard } => {
                format!("{{\"type\":\"shard_done\",\"shard\":{shard}}}")
            }
            CoordEvent::Check {
                shard,
                shards,
                states,
                executions,
                depth,
                elapsed_nanos,
            } => format!(
                "{{\"type\":\"check\",\"shard\":{shard},\"shards\":{shards},\
                 \"states\":{states},\"executions\":{executions},\"depth\":{depth},\
                 \"elapsed_nanos\":{elapsed_nanos}}}"
            ),
            CoordEvent::Partial {
                covered,
                missing,
                grid,
            } => format!(
                "{{\"type\":\"partial\",\"covered\":{covered},\"missing\":{missing},\
                 \"grid\":{grid}}}"
            ),
        }
    }
}

impl CoordEvent {
    /// Parses any coordinator-stream JSONL line (`point`, `retry`,
    /// `shard_done`). Returns `None` for non-JSON lines or foreign types.
    pub fn parse(line: &str) -> Option<Self> {
        let json = parse_json_line(line)?;
        match json.get("type")?.as_str()? {
            "point" => ProgressEvent::parse(line).map(CoordEvent::Point),
            "retry" => Some(CoordEvent::Retry {
                shard: json.get("shard")?.as_u64()? as usize,
                attempt: json.get("attempt")?.as_u64()? as usize,
                attempts: json.get("attempts")?.as_u64()? as usize,
                cause: json.get("cause")?.as_str()?.to_string(),
            }),
            "shard_done" => Some(CoordEvent::ShardDone {
                shard: json.get("shard")?.as_u64()? as usize,
            }),
            "check" => Some(CoordEvent::Check {
                shard: json.get("shard")?.as_u64()? as usize,
                shards: json.get("shards")?.as_u64()? as usize,
                states: json.get("states")?.as_u64()?,
                executions: json.get("executions")?.as_u64()?,
                depth: json.get("depth")?.as_u64()? as usize,
                elapsed_nanos: json.get("elapsed_nanos")?.as_u64()?,
            }),
            "partial" => Some(CoordEvent::Partial {
                covered: json.get("covered")?.as_u64()? as usize,
                missing: json.get("missing")?.as_u64()? as usize,
                grid: json.get("grid")?.as_u64()? as usize,
            }),
            _ => None,
        }
    }
}

impl fmt::Display for CoordEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordEvent::Point(e) => write!(
                f,
                "shard {}: point {} done ({}/{})",
                e.shard, e.index, e.done, e.total
            ),
            CoordEvent::Retry {
                shard,
                attempt,
                attempts,
                cause,
            } => write!(
                f,
                "shard {shard}: attempt {attempt}/{attempts} failed, retrying: {cause}"
            ),
            CoordEvent::ShardDone { shard } => write!(f, "shard {shard}: report merged"),
            CoordEvent::Check {
                shard,
                states,
                executions,
                depth,
                ..
            } => write!(
                f,
                "shard {shard}: {states} states / {executions} executions, frontier depth {depth}"
            ),
            CoordEvent::Partial {
                covered,
                missing,
                grid,
            } => write!(
                f,
                "partial coverage: {covered}/{grid} points merged, {missing} missing"
            ),
        }
    }
}

/// A shard's rolling progress, as seen by [`LiveAggregates`].
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ShardProgress {
    /// Points completed.
    pub done: usize,
    /// Points assigned.
    pub total: usize,
    /// Worker wall-clock at the latest event, nanoseconds.
    pub elapsed_nanos: u64,
    /// Total messages across completed points.
    pub messages: u64,
    /// Points that ended in a simulator error.
    pub errors: usize,
    /// Retry attempts observed for this shard.
    pub retries: usize,
    /// Model-check states seen (distinct fingerprints), if the shard runs
    /// a check slice.
    pub check_states: u64,
    /// Model-check executions explored, if the shard runs a check slice.
    pub check_executions: u64,
    /// Deepest model-check decision tape explored.
    pub check_depth: usize,
}

impl ShardProgress {
    /// Completed points per second of worker wall-clock, if measurable.
    pub fn points_per_sec(&self) -> Option<f64> {
        if self.done == 0 || self.elapsed_nanos == 0 {
            return None;
        }
        Some(self.done as f64 * 1e9 / self.elapsed_nanos as f64)
    }

    /// Distinct model-check states per second of worker wall-clock, if the
    /// shard has reported check snapshots.
    pub fn states_per_sec(&self) -> Option<f64> {
        if self.check_states == 0 || self.elapsed_nanos == 0 {
            return None;
        }
        Some(self.check_states as f64 * 1e9 / self.elapsed_nanos as f64)
    }
}

/// Rolling aggregates over a stream of progress events: per-shard rates,
/// sweep ETA, and straggler flagging. This is the model behind the
/// `campaign_watch` dashboard and the coordinator's end-of-run summary.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct LiveAggregates {
    shards: BTreeMap<usize, ShardProgress>,
    expected_shards: usize,
    malformed_lines: u64,
    partial: Option<(usize, usize, usize)>,
}

/// A shard is a straggler when its observed rate is more than `2×` slower
/// than the median shard rate.
pub const STRAGGLER_FACTOR: f64 = 2.0;

impl LiveAggregates {
    /// An empty aggregate; shards appear as their events arrive.
    pub fn new() -> Self {
        LiveAggregates::default()
    }

    /// Folds one per-point event into the aggregates.
    pub fn ingest(&mut self, event: &ProgressEvent) {
        self.expected_shards = self.expected_shards.max(event.shards);
        let shard = self.shards.entry(event.shard).or_default();
        shard.done = shard.done.max(event.done);
        shard.total = event.total;
        shard.elapsed_nanos = shard.elapsed_nanos.max(event.elapsed_nanos);
        shard.messages += event.messages;
        if !event.ok {
            shard.errors += 1;
        }
    }

    /// Folds a coordinator event: points are ingested, retries counted.
    pub fn ingest_coord(&mut self, event: &CoordEvent) {
        match event {
            CoordEvent::Point(e) => self.ingest(e),
            CoordEvent::Retry { shard, .. } => {
                self.shards.entry(*shard).or_default().retries += 1;
            }
            CoordEvent::ShardDone { .. } => {}
            CoordEvent::Check {
                shard,
                shards,
                states,
                executions,
                depth,
                elapsed_nanos,
            } => {
                self.expected_shards = self.expected_shards.max(*shards);
                let entry = self.shards.entry(*shard).or_default();
                // Snapshots are cumulative per shard; folding by max keeps
                // ingestion idempotent under replayed lines.
                entry.check_states = entry.check_states.max(*states);
                entry.check_executions = entry.check_executions.max(*executions);
                entry.check_depth = entry.check_depth.max(*depth);
                entry.elapsed_nanos = entry.elapsed_nanos.max(*elapsed_nanos);
            }
            CoordEvent::Partial {
                covered,
                missing,
                grid,
            } => self.partial = Some((*covered, *missing, *grid)),
        }
    }

    /// Notes one malformed (non-UTF8, garbled, or unparseable) stream line.
    /// Dashboards pass such lines through opaquely; this gauge keeps the
    /// corruption visible.
    pub fn note_malformed(&mut self) {
        self.malformed_lines += 1;
    }

    /// Malformed stream lines observed so far.
    pub fn malformed_lines(&self) -> u64 {
        self.malformed_lines
    }

    /// The partial-coverage outcome, if the coordinator degraded:
    /// `(covered, missing, grid)`.
    pub fn partial_coverage(&self) -> Option<(usize, usize, usize)> {
        self.partial
    }

    /// Per-shard progress, keyed by shard index.
    pub fn shards(&self) -> &BTreeMap<usize, ShardProgress> {
        &self.shards
    }

    /// Points completed across all shards.
    pub fn total_done(&self) -> usize {
        self.shards.values().map(|s| s.done).sum()
    }

    /// Points assigned across all shards seen so far.
    pub fn total_points(&self) -> usize {
        self.shards.values().map(|s| s.total).sum()
    }

    /// Every shard seen has completed its assignment (and at least one
    /// shard was seen).
    pub fn is_complete(&self) -> bool {
        !self.shards.is_empty() && self.shards.values().all(|s| s.done >= s.total)
    }

    /// Aggregate completion rate: the sum of per-shard rates, if any shard
    /// has a measurable rate.
    pub fn points_per_sec(&self) -> Option<f64> {
        let rates: Vec<f64> = self
            .shards
            .values()
            .filter_map(ShardProgress::points_per_sec)
            .collect();
        if rates.is_empty() {
            None
        } else {
            Some(rates.iter().sum())
        }
    }

    /// Estimated seconds until all seen shards finish, from the aggregate
    /// rate over the remaining points.
    pub fn eta_secs(&self) -> Option<f64> {
        let remaining = self.total_points().saturating_sub(self.total_done());
        if remaining == 0 {
            return Some(0.0);
        }
        Some(remaining as f64 / self.points_per_sec()?)
    }

    /// The median of the measurable per-shard rates.
    pub fn median_rate(&self) -> Option<f64> {
        let mut rates: Vec<f64> = self
            .shards
            .values()
            .filter_map(ShardProgress::points_per_sec)
            .collect();
        if rates.is_empty() {
            return None;
        }
        rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        let mid = rates.len() / 2;
        Some(if rates.len() % 2 == 1 {
            rates[mid]
        } else {
            (rates[mid - 1] + rates[mid]) / 2.0
        })
    }

    /// Shards running more than [`STRAGGLER_FACTOR`]× slower than the
    /// median rate, in shard order — live, the shards holding the sweep
    /// back; at end of run, the shards that were its bottleneck. Needs at
    /// least two measurable shards to be meaningful.
    pub fn stragglers(&self) -> Vec<usize> {
        let Some(median) = self.median_rate() else {
            return Vec::new();
        };
        let measurable = self
            .shards
            .values()
            .filter(|s| s.points_per_sec().is_some())
            .count();
        if measurable < 2 {
            return Vec::new();
        }
        self.shards
            .iter()
            .filter(|(_, s)| {
                s.points_per_sec()
                    .is_some_and(|rate| rate * STRAGGLER_FACTOR < median)
            })
            .map(|(&shard, _)| shard)
            .collect()
    }

    /// Renders the dashboard: one row per shard (points, rate, errors,
    /// retries, straggler flag) and a totals line with ETA.
    pub fn render(&self) -> String {
        let stragglers = self.stragglers();
        let mut out = String::from("shard    done/total      pts/s   errors  retries\n");
        for (&shard, s) in &self.shards {
            let rate = s
                .points_per_sec()
                .map_or_else(|| "      -".into(), |r| format!("{r:>7.1}"));
            let flag = if stragglers.contains(&shard) {
                "  STRAGGLER"
            } else {
                ""
            };
            out.push_str(&format!(
                "{shard:>5}  {:>5}/{:<5}  {rate}  {:>6}  {:>7}{flag}\n",
                s.done, s.total, s.errors, s.retries
            ));
        }
        for shard in 0..self.expected_shards {
            if !self.shards.contains_key(&shard) {
                out.push_str(&format!(
                    "{shard:>5}      -/-            -       -        -\n"
                ));
            }
        }
        let rate = self
            .points_per_sec()
            .map_or_else(|| "-".into(), |r| format!("{r:.1}"));
        let eta = self
            .eta_secs()
            .map_or_else(|| "-".into(), |e| format!("{e:.1}s"));
        out.push_str(&format!(
            "total  {:>5}/{:<5}  rate {rate} pts/s  eta {eta}\n",
            self.total_done(),
            self.total_points()
        ));
        let check_states: u64 = self.shards.values().map(|s| s.check_states).sum();
        if check_states > 0 {
            let executions: u64 = self.shards.values().map(|s| s.check_executions).sum();
            let depth = self
                .shards
                .values()
                .map(|s| s.check_depth)
                .max()
                .unwrap_or(0);
            let rate: f64 = self
                .shards
                .values()
                .filter_map(ShardProgress::states_per_sec)
                .sum();
            out.push_str(&format!(
                "check  {check_states} states / {executions} executions  \
                 {rate:.1} states/s  frontier depth {depth}\n"
            ));
        }
        if self.malformed_lines > 0 {
            out.push_str(&format!("malformed lines: {}\n", self.malformed_lines));
        }
        if let Some((covered, missing, grid)) = self.partial {
            out.push_str(&format!(
                "PARTIAL: {covered}/{grid} points covered, {missing} missing\n"
            ));
        }
        out
    }

    /// Renders an end-of-run summary as one JSON object (for artifacts and
    /// machine consumers).
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{\"type\":\"summary\",\"shards\":[");
        for (i, (&shard, s)) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{shard},\"done\":{},\"total\":{},\"errors\":{},\"retries\":{},\
                 \"elapsed_nanos\":{},\"straggler\":{}",
                s.done,
                s.total,
                s.errors,
                s.retries,
                s.elapsed_nanos,
                self.stragglers().contains(&shard)
            ));
            if s.check_executions > 0 {
                out.push_str(&format!(
                    ",\"check\":{{\"states\":{},\"executions\":{},\"depth\":{}}}",
                    s.check_states, s.check_executions, s.check_depth
                ));
            }
            out.push('}');
        }
        out.push_str(&format!(
            "],\"done\":{},\"points\":{},\"complete\":{},\"malformed_lines\":{}",
            self.total_done(),
            self.total_points(),
            self.is_complete(),
            self.malformed_lines
        ));
        if let Some((covered, missing, grid)) = self.partial {
            out.push_str(&format!(
                ",\"partial\":{{\"covered\":{covered},\"missing\":{missing},\"grid\":{grid}}}"
            ));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(shard: usize, done: usize, total: usize, elapsed_nanos: u64) -> ProgressEvent {
        ProgressEvent {
            shard,
            shards: 2,
            done,
            total,
            index: done.saturating_sub(1),
            messages: 10,
            rounds: 3,
            ok: true,
            elapsed_nanos,
        }
    }

    #[test]
    fn progress_event_round_trips_through_jsonl() {
        let e = event(1, 4, 9, 2_000_000_000);
        let line = e.to_json_line();
        assert!(line.starts_with('{'));
        assert_eq!(ProgressEvent::parse(&line), Some(e));
    }

    #[test]
    fn wire_lines_and_foreign_json_are_rejected() {
        assert_eq!(ProgressEvent::parse("shard-report shard=0 count=2"), None);
        assert_eq!(ProgressEvent::parse("{\"type\":\"summary\"}"), None);
        assert_eq!(ProgressEvent::parse("{\"type\":\"point\"}"), None);
    }

    #[test]
    fn aggregates_track_rates_eta_and_completion() {
        let mut live = LiveAggregates::new();
        // Shard 0: 4 of 8 points in 2s → 2 pts/s. Shard 1: 4 of 8 in 2s.
        for d in 1..=4 {
            live.ingest(&event(0, d, 8, d as u64 * 500_000_000));
            live.ingest(&event(1, d, 8, d as u64 * 500_000_000));
        }
        assert_eq!(live.total_done(), 8);
        assert_eq!(live.total_points(), 16);
        assert!(!live.is_complete());
        let rate = live.points_per_sec().unwrap();
        assert!((rate - 4.0).abs() < 1e-9, "{rate}");
        let eta = live.eta_secs().unwrap();
        assert!((eta - 2.0).abs() < 1e-9, "{eta}");
        assert!(live.stragglers().is_empty());

        for d in 5..=8 {
            live.ingest(&event(0, d, 8, d as u64 * 500_000_000));
            live.ingest(&event(1, d, 8, d as u64 * 500_000_000));
        }
        assert!(live.is_complete());
        assert_eq!(live.eta_secs(), Some(0.0));
    }

    #[test]
    fn slow_shards_are_flagged_as_stragglers() {
        let mut live = LiveAggregates::new();
        // Shard 0 runs 2 pts/s; shard 1 has managed the same points in 10×
        // the time → 0.2 pts/s, more than 2× behind the median.
        live.ingest(&event(0, 4, 8, 2_000_000_000));
        live.ingest(&event(1, 4, 8, 20_000_000_000));
        assert_eq!(live.stragglers(), vec![1]);
        // Still flagged at end of run: it was the sweep's bottleneck.
        live.ingest(&event(1, 8, 8, 80_000_000_000));
        assert_eq!(live.stragglers(), vec![1]);
        let rendered = live.render();
        assert!(rendered.contains("STRAGGLER"), "{rendered}");
        assert!(rendered.contains("total"), "{rendered}");
    }

    #[test]
    fn single_shard_is_never_a_straggler() {
        let mut live = LiveAggregates::new();
        live.ingest(&event(0, 1, 8, 4_000_000_000));
        assert!(live.stragglers().is_empty());
    }

    #[test]
    fn retries_are_counted_per_shard() {
        let mut live = LiveAggregates::new();
        live.ingest_coord(&CoordEvent::Retry {
            shard: 3,
            attempt: 1,
            attempts: 2,
            cause: "spawn failed".into(),
        });
        assert_eq!(live.shards()[&3].retries, 1);
        let line = CoordEvent::Retry {
            shard: 3,
            attempt: 1,
            attempts: 2,
            cause: "spawn \"failed\"".into(),
        }
        .to_json_line();
        assert!(parse_json_line(&line).is_some(), "{line}");
    }

    #[test]
    fn partial_events_round_trip_and_surface_in_aggregates() {
        let e = CoordEvent::Partial {
            covered: 7,
            missing: 2,
            grid: 9,
        };
        let line = e.to_json_line();
        assert_eq!(CoordEvent::parse(&line), Some(e.clone()));
        assert!(e.to_string().contains("7/9"), "{e}");

        let mut live = LiveAggregates::new();
        live.ingest_coord(&e);
        assert_eq!(live.partial_coverage(), Some((7, 2, 9)));
        assert!(live.render().contains("PARTIAL: 7/9"), "{}", live.render());
        let json = live.summary_json();
        let parsed = parse_json_line(&json).expect("summary parses");
        assert!(parsed.get("partial").is_some(), "{json}");
    }

    #[test]
    fn malformed_lines_gauge_shows_in_render_and_summary() {
        let mut live = LiveAggregates::new();
        assert_eq!(live.malformed_lines(), 0);
        assert!(!live.render().contains("malformed"));
        live.note_malformed();
        live.note_malformed();
        assert_eq!(live.malformed_lines(), 2);
        assert!(live.render().contains("malformed lines: 2"));
        let parsed = parse_json_line(&live.summary_json()).expect("summary parses");
        assert_eq!(parsed.get("malformed_lines").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn check_events_round_trip_and_drive_the_dashboard() {
        let e = CoordEvent::Check {
            shard: 1,
            shards: 3,
            states: 120,
            executions: 200,
            depth: 5,
            elapsed_nanos: 2_000_000_000,
        };
        let line = e.to_json_line();
        assert!(line.starts_with("{\"type\":\"check\""), "{line}");
        assert_eq!(CoordEvent::parse(&line), Some(e.clone()));
        assert!(e.to_string().contains("frontier depth 5"), "{e}");

        let mut live = LiveAggregates::new();
        live.ingest_coord(&e);
        // Replaying the same snapshot is idempotent (cumulative folding).
        live.ingest_coord(&e);
        let shard = &live.shards()[&1];
        assert_eq!(shard.check_states, 120);
        assert_eq!(shard.check_executions, 200);
        assert_eq!(shard.check_depth, 5);
        let rate = shard.states_per_sec().unwrap();
        assert!((rate - 60.0).abs() < 1e-9, "{rate}");

        let rendered = live.render();
        assert!(
            rendered.contains("120 states / 200 executions"),
            "{rendered}"
        );
        assert!(rendered.contains("frontier depth 5"), "{rendered}");
        let json = live.summary_json();
        let parsed = parse_json_line(&json).expect("summary parses");
        assert!(parsed.get("shards").is_some(), "{json}");
        assert!(json.contains("\"check\":{\"states\":120"), "{json}");
    }

    #[test]
    fn summary_json_is_parseable_and_flags_stragglers() {
        let mut live = LiveAggregates::new();
        live.ingest(&event(0, 4, 8, 2_000_000_000));
        live.ingest(&event(1, 4, 8, 20_000_000_000));
        let json = live.summary_json();
        let parsed = parse_json_line(&json).expect("summary parses");
        assert_eq!(parsed.get("done").unwrap().as_u64(), Some(8));
        assert!(json.contains("\"straggler\":true"), "{json}");
    }
}
