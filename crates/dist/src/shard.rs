//! Deterministic shard planning and ordering-stable report merging.
//!
//! A campaign grid of [`CampaignPoint`]s is split into `k` **shards**, each
//! a [`ShardManifest`] naming the points (with their global grid indices),
//! the protocol/adversary labels, and one [`SimRng`] seed per point. Two
//! invariants make distributed sweeps reproduce single-process sweeps
//! bit-for-bit:
//!
//! * **seed invariance** — a point's seed is a pure function of the base
//!   seed and the point itself ([`point_seed`]), so the seeds are identical
//!   no matter how many shards the grid is cut into (and identical for
//!   duplicate points, which makes per-point seed lookup unambiguous);
//! * **merge stability** — [`merge_reports`] reassembles shard outcomes
//!   into global grid order through a `BTreeMap` keyed by global index, so
//!   `merge(k shards) == run(1 process)` regardless of worker completion
//!   order.

use std::collections::BTreeMap;
use std::fmt;

use ba_sim::{CampaignPoint, CampaignReport, ScenarioOutcome, SimError, SimRng};

use crate::coordinator::DistError;

/// How a worker interprets a shard's points.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShardMode {
    /// Each point builds and runs one scenario; outcomes are
    /// `ScenarioStats`.
    Scenarios,
    /// Each point runs the Theorem 2 falsifier; outcomes are falsifier
    /// sweep points.
    Falsifier,
    /// Each point evaluates one adversary-search genome (carried in the
    /// point's adversary label); outcomes are `ScenarioStats`, exactly as
    /// in [`ShardMode::Scenarios`].
    Search,
    /// Each point runs one slice of an exhaustive model check (the check
    /// spec and slice are encoded in the point's adversary label);
    /// outcomes are check sweep points whose merge reproduces the
    /// unsharded check exactly.
    Check,
}

impl fmt::Display for ShardMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardMode::Scenarios => write!(f, "scenarios"),
            ShardMode::Falsifier => write!(f, "falsifier"),
            ShardMode::Search => write!(f, "search"),
            ShardMode::Check => write!(f, "check"),
        }
    }
}

/// One grid point inside a shard: its global index, its deterministic seed,
/// and the point itself.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardEntry {
    /// The point's index in the full (unsharded) grid.
    pub index: usize,
    /// The point's seed, per [`point_seed`].
    pub seed: u64,
    /// The grid point.
    pub point: CampaignPoint,
}

/// The unit of work handed to one worker process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardManifest {
    /// This shard's index in `0..shards`.
    pub shard: usize,
    /// Total number of shards the grid was split into.
    pub shards: usize,
    /// How the worker interprets the points.
    pub mode: ShardMode,
    /// Protocol label, resolved by the worker's registry.
    pub protocol: String,
    /// Worker thread-pool width (`0` = the worker machine's parallelism).
    pub threads: usize,
    /// The shard's points, in ascending global-index order.
    pub entries: Vec<ShardEntry>,
}

/// A worker's results for one shard: per-point outcomes keyed by global
/// grid index.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardReport<T> {
    /// The shard these outcomes belong to.
    pub shard: usize,
    /// `(global index, outcome)` per entry of the shard's manifest.
    pub outcomes: Vec<(usize, Result<T, SimError>)>,
}

/// One finished grid point streamed back mid-shard, before the final
/// [`ShardReport`].
///
/// In `--stream` mode workers emit one of these per completed point, which
/// is what makes point-level recovery possible: the coordinator harvests
/// them as they arrive, so a worker that crashes after k points only
/// forfeits the points it had not yet finished. The global grid `index`
/// (whose seed is the pure function [`point_seed`]) is the idempotency key:
/// re-running a point on another worker reproduces the identical result, so
/// duplicates arriving from work-stealing are deduplicated on merge.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PointOutcome<T> {
    /// The point's index in the full (unsharded) grid.
    pub index: usize,
    /// The point's outcome.
    pub result: Result<T, SimError>,
}

/// One shard that exhausted its retry budget, recorded in a
/// [`PartialSweep`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardFailure {
    /// The shard (in the original plan) that failed.
    pub shard: usize,
    /// How many attempts were made before giving up.
    pub attempts: usize,
    /// The last attempt's error, as text.
    pub last: String,
}

/// The graceful-degradation result of a sweep that exhausted its retry
/// budget: everything that finished, plus a coverage map of what did not.
///
/// The invariant (property-tested): `outcomes` indices and `missing`
/// together exactly partition `0..grid_len`. A complete sweep is the
/// special case `missing.is_empty()`, in which case the outcomes are
/// bit-identical to a fully successful run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PartialSweep<T> {
    /// The full grid's length.
    pub grid_len: usize,
    /// `(global index, outcome)` for every point that finished, in
    /// ascending index order.
    pub outcomes: Vec<(usize, Result<T, SimError>)>,
    /// Global indices of points that never finished, in ascending order.
    pub missing: Vec<usize>,
    /// The shards that exhausted their retry budget.
    pub failures: Vec<ShardFailure>,
}

impl<T> PartialSweep<T> {
    /// Whether every grid point finished (no degradation happened).
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }

    /// `(finished, planned)` point counts.
    pub fn coverage(&self) -> (usize, usize) {
        (self.outcomes.len(), self.grid_len)
    }

    /// Extracts the merged in-order outcomes if the sweep is complete;
    /// otherwise hands the partial sweep back.
    ///
    /// # Errors
    ///
    /// Returns `self` unchanged when points are missing.
    pub fn into_complete(self) -> Result<Vec<Result<T, SimError>>, Box<PartialSweep<T>>> {
        if self.is_complete() {
            Ok(self.outcomes.into_iter().map(|(_, r)| r).collect())
        } else {
            Err(Box::new(self))
        }
    }
}

impl<O> PartialSweep<ba_sim::ScenarioStats<O>> {
    /// Zips a partial scenario sweep back with its grid into a
    /// [`PartialReport`].
    pub fn into_campaign(self, points: &[CampaignPoint]) -> PartialReport<O> {
        let covered = CampaignReport {
            outcomes: self
                .outcomes
                .into_iter()
                .map(|(index, result)| ScenarioOutcome {
                    point: points[index].clone(),
                    result,
                })
                .collect(),
        };
        PartialReport {
            grid_len: self.grid_len,
            covered,
            missing: self
                .missing
                .into_iter()
                .map(|index| (index, points[index].clone()))
                .collect(),
            failures: self.failures,
        }
    }
}

/// A campaign-level [`PartialSweep`]: the covered points assembled into a
/// [`CampaignReport`], plus the coverage map of missing points.
#[derive(Clone, PartialEq, Debug)]
pub struct PartialReport<O> {
    /// The planned grid's length.
    pub grid_len: usize,
    /// The outcomes that finished, zipped with their points — a valid
    /// [`CampaignReport`] over the covered subset of the grid.
    pub covered: CampaignReport<O>,
    /// The points that never finished, with their global grid indices.
    pub missing: Vec<(usize, CampaignPoint)>,
    /// The shards that exhausted their retry budget.
    pub failures: Vec<ShardFailure>,
}

impl<O> PartialReport<O> {
    /// Whether every grid point finished.
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }

    /// One-line human summary of the coverage.
    pub fn coverage_summary(&self) -> String {
        format!(
            "{}/{} points covered, {} missing, {} shard(s) exhausted",
            self.covered.outcomes.len(),
            self.grid_len,
            self.missing.len(),
            self.failures.len()
        )
    }

    /// Renders the report's coverage map as a JSON object (for artifacts
    /// and dashboards): grid size, covered/missing indices, and per-shard
    /// failure diagnostics.
    pub fn coverage_json(&self) -> String {
        let missing: Vec<String> = self.missing.iter().map(|(i, _)| i.to_string()).collect();
        let failures: Vec<String> = self
            .failures
            .iter()
            .map(|f| {
                format!(
                    "{{\"shard\":{},\"attempts\":{},\"last\":\"{}\"}}",
                    f.shard,
                    f.attempts,
                    ba_obs::json_escape(&f.last)
                )
            })
            .collect();
        format!(
            "{{\"type\":\"partial_report\",\"grid\":{},\"covered\":{},\"missing\":[{}],\"failures\":[{}]}}",
            self.grid_len,
            self.covered.outcomes.len(),
            missing.join(","),
            failures.join(",")
        )
    }
}

/// A full sweep, ready to be sharded: the grid plus everything a worker
/// needs to reproduce each point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SweepSpec {
    /// The full campaign grid, in sweep order.
    pub points: Vec<CampaignPoint>,
    /// How workers interpret the points.
    pub mode: ShardMode,
    /// Protocol label, resolved by the worker's registry.
    pub protocol: String,
    /// Base seed mixed into every per-point seed.
    pub base_seed: u64,
    /// Worker thread-pool width (`0` = auto).
    pub worker_threads: usize,
}

impl SweepSpec {
    /// A scenario sweep over `points` with the given protocol label.
    pub fn scenarios(points: impl IntoIterator<Item = CampaignPoint>, protocol: &str) -> Self {
        SweepSpec {
            points: points.into_iter().collect(),
            mode: ShardMode::Scenarios,
            protocol: protocol.to_string(),
            base_seed: 0,
            worker_threads: 0,
        }
    }

    /// A falsifier sweep over `points` with the given protocol label.
    pub fn falsifier(points: impl IntoIterator<Item = CampaignPoint>, protocol: &str) -> Self {
        SweepSpec {
            mode: ShardMode::Falsifier,
            ..SweepSpec::scenarios(points, protocol)
        }
    }

    /// An adversary-search population evaluation over `points` (each
    /// carrying an encoded genome as its adversary label).
    pub fn search(points: impl IntoIterator<Item = CampaignPoint>, protocol: &str) -> Self {
        SweepSpec {
            mode: ShardMode::Search,
            ..SweepSpec::scenarios(points, protocol)
        }
    }

    /// An exhaustive model-check sweep over `points` (each carrying an
    /// encoded check spec and slice assignment as its adversary label).
    pub fn check(points: impl IntoIterator<Item = CampaignPoint>, protocol: &str) -> Self {
        SweepSpec {
            mode: ShardMode::Check,
            ..SweepSpec::scenarios(points, protocol)
        }
    }

    /// Sets the base seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the worker thread-pool width.
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = threads;
        self
    }
}

/// The deterministic seed of one grid point.
///
/// A pure function of `(base_seed, point)` — **not** of the point's position
/// or the shard count — so re-sharding a grid never changes any point's
/// seed. The point is folded FNV-1a-style into the base seed, then whitened
/// through one [`SimRng`] step.
pub fn point_seed(base_seed: u64, point: &CampaignPoint) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut fold = |bytes: &[u8]| {
        for &b in bytes {
            hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        // Field separator, so ("ab", "c") and ("a", "bc") differ.
        hash = (hash ^ 0xFF).wrapping_mul(FNV_PRIME);
    };
    fold(&(point.n as u64).to_le_bytes());
    fold(&(point.t as u64).to_le_bytes());
    fold(point.adversary.as_bytes());
    fold(point.inputs.as_bytes());
    SimRng::seed_from_u64(base_seed ^ hash).next_u64()
}

/// Splits a sweep into `shards` manifests of near-equal size (contiguous
/// chunks; the first `len % shards` chunks get one extra point). Empty
/// shards are not emitted, so the result has `min(shards, len)` manifests
/// (none for an empty grid).
pub fn plan_shards(spec: &SweepSpec, shards: usize) -> Vec<ShardManifest> {
    let len = spec.points.len();
    let shards = shards.clamp(1, len.max(1));
    let base = len / shards;
    let extra = len % shards;
    let mut manifests = Vec::with_capacity(shards);
    let mut next = 0usize;
    for shard in 0..shards {
        let size = base + usize::from(shard < extra);
        let entries: Vec<ShardEntry> = (next..next + size)
            .map(|index| ShardEntry {
                index,
                seed: point_seed(spec.base_seed, &spec.points[index]),
                point: spec.points[index].clone(),
            })
            .collect();
        next += size;
        if entries.is_empty() {
            continue;
        }
        manifests.push(ShardManifest {
            shard,
            shards,
            mode: spec.mode,
            protocol: spec.protocol.clone(),
            threads: spec.worker_threads,
            entries,
        });
    }
    manifests
}

/// Plans manifests covering only the given grid indices — the resume step
/// after a [`PartialSweep`]: feed it the sweep's `missing` list and the
/// resulting manifests re-run exactly the unfinished points, with the same
/// per-point seeds ([`point_seed`] is position-independent), so
/// `merge(partial ∪ resume) == run(1 process)` bit-for-bit.
///
/// Indices outside the grid are ignored; duplicates are collapsed. Shard
/// ids restart at 0 over `min(shards, missing points)` manifests.
pub fn plan_resume(spec: &SweepSpec, missing: &[usize], shards: usize) -> Vec<ShardManifest> {
    let picked: Vec<usize> = {
        let uniq: BTreeMap<usize, ()> = missing
            .iter()
            .copied()
            .filter(|&i| i < spec.points.len())
            .map(|i| (i, ()))
            .collect();
        uniq.into_keys().collect()
    };
    let len = picked.len();
    let shards = shards.clamp(1, len.max(1));
    let base = len / shards;
    let extra = len % shards;
    let mut manifests = Vec::with_capacity(shards);
    let mut next = 0usize;
    for shard in 0..shards {
        let size = base + usize::from(shard < extra);
        let entries: Vec<ShardEntry> = picked[next..next + size]
            .iter()
            .map(|&index| ShardEntry {
                index,
                seed: point_seed(spec.base_seed, &spec.points[index]),
                point: spec.points[index].clone(),
            })
            .collect();
        next += size;
        if entries.is_empty() {
            continue;
        }
        manifests.push(ShardManifest {
            shard,
            shards,
            mode: spec.mode,
            protocol: spec.protocol.clone(),
            threads: spec.worker_threads,
            entries,
        });
    }
    manifests
}

/// Merges shard reports back into global grid order.
///
/// Keyed by a `BTreeMap` over global indices, so the result is independent
/// of shard completion order; every grid index must be covered exactly once.
///
/// # Errors
///
/// Returns [`DistError::MissingPoint`] / [`DistError::DuplicatePoint`] /
/// [`DistError::StrayPoint`] if the reports do not cover `grid_len` indices
/// exactly.
pub fn merge_reports<T>(
    grid_len: usize,
    reports: Vec<ShardReport<T>>,
) -> Result<Vec<Result<T, SimError>>, DistError> {
    let mut by_index: BTreeMap<usize, Result<T, SimError>> = BTreeMap::new();
    for report in reports {
        for (index, outcome) in report.outcomes {
            if index >= grid_len {
                return Err(DistError::StrayPoint { index });
            }
            if by_index.insert(index, outcome).is_some() {
                return Err(DistError::DuplicatePoint { index });
            }
        }
    }
    if by_index.len() != grid_len {
        let missing = (0..grid_len)
            .find(|i| !by_index.contains_key(i))
            .unwrap_or(grid_len);
        return Err(DistError::MissingPoint { index: missing });
    }
    Ok(by_index.into_values().collect())
}

/// Reassembles a merged scenario sweep into the exact [`CampaignReport`] a
/// single-process [`ba_sim::Campaign::run_scenarios`] over the same grid
/// produces.
///
/// # Errors
///
/// As [`merge_reports`].
pub fn merge_campaign_report<O>(
    points: &[CampaignPoint],
    reports: Vec<ShardReport<ba_sim::ScenarioStats<O>>>,
) -> Result<CampaignReport<O>, DistError> {
    let merged = merge_reports(points.len(), reports)?;
    Ok(assemble_campaign_report(points, merged))
}

/// Zips already-merged per-point results (in grid order) back with their
/// points into a [`CampaignReport`].
pub fn assemble_campaign_report<O>(
    points: &[CampaignPoint],
    merged: Vec<Result<ba_sim::ScenarioStats<O>, SimError>>,
) -> CampaignReport<O> {
    CampaignReport {
        outcomes: points
            .iter()
            .zip(merged)
            .map(|(point, result)| ScenarioOutcome {
                point: point.clone(),
                result,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::Campaign;

    fn grid() -> Vec<CampaignPoint> {
        Campaign::grid(
            [(4, 1), (5, 1), (6, 2), (7, 2), (8, 2)],
            &["none", "isolation"],
            &["zeros", "ones"],
        )
        .points()
        .to_vec()
    }

    #[test]
    fn seeds_are_invariant_under_shard_count() {
        let spec = SweepSpec::scenarios(grid(), "flood-set").base_seed(0xBA5E);
        let seeds_of = |k: usize| -> BTreeMap<usize, u64> {
            plan_shards(&spec, k)
                .into_iter()
                .flat_map(|m| m.entries.into_iter().map(|e| (e.index, e.seed)))
                .collect()
        };
        let one = seeds_of(1);
        assert_eq!(one.len(), spec.points.len());
        for k in [2usize, 3, 4, 7, 100] {
            assert_eq!(seeds_of(k), one, "seeds changed at k = {k}");
        }
    }

    #[test]
    fn seeds_depend_on_base_seed_and_point() {
        let p = CampaignPoint::new(8, 2);
        let q = CampaignPoint::new(8, 2).with_adversary("isolation");
        assert_ne!(point_seed(1, &p), point_seed(2, &p));
        assert_ne!(point_seed(1, &p), point_seed(1, &q));
        // Pure function: duplicates of a point agree.
        assert_eq!(point_seed(7, &p), point_seed(7, &p.clone()));
    }

    #[test]
    fn shards_partition_the_grid_in_order() {
        let spec = SweepSpec::scenarios(grid(), "flood-set");
        for k in 1..=spec.points.len() + 3 {
            let manifests = plan_shards(&spec, k);
            assert_eq!(manifests.len(), k.min(spec.points.len()));
            let covered: Vec<usize> = manifests
                .iter()
                .flat_map(|m| m.entries.iter().map(|e| e.index))
                .collect();
            assert_eq!(covered, (0..spec.points.len()).collect::<Vec<_>>());
            // Near-equal sizes: max - min ≤ 1.
            let sizes: Vec<usize> = manifests.iter().map(|m| m.entries.len()).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "unbalanced shards at k = {k}: {sizes:?}");
            for m in &manifests {
                assert_eq!(m.shards, k.clamp(1, spec.points.len()));
                for e in &m.entries {
                    assert_eq!(e.point, spec.points[e.index]);
                }
            }
        }
    }

    #[test]
    fn empty_grid_plans_no_shards() {
        let spec = SweepSpec::scenarios([], "flood-set");
        assert!(plan_shards(&spec, 4).is_empty());
        let merged: Vec<Result<u32, SimError>> = merge_reports(0, Vec::new()).unwrap();
        assert!(merged.is_empty());
    }

    #[test]
    fn merge_is_independent_of_shard_arrival_order() {
        let reports = vec![
            ShardReport {
                shard: 1,
                outcomes: vec![(2usize, Ok(20u32)), (3, Ok(30))],
            },
            ShardReport {
                shard: 0,
                outcomes: vec![
                    (0, Ok(0)),
                    (1, Err(SimError::TooManyFaulty { got: 2, t: 1 })),
                ],
            },
        ];
        let mut reversed = reports.clone();
        reversed.reverse();
        let a = merge_reports(4, reports).unwrap();
        let b = merge_reports(4, reversed).unwrap();
        assert_eq!(a, b);
        assert_eq!(a[2], Ok(20));
        assert_eq!(a[1], Err(SimError::TooManyFaulty { got: 2, t: 1 }));
    }

    #[test]
    fn merge_rejects_gaps_and_duplicates() {
        let gap: Result<Vec<Result<u32, _>>, _> = merge_reports(
            3,
            vec![ShardReport {
                shard: 0,
                outcomes: vec![(0, Ok(1u32)), (2, Ok(2))],
            }],
        );
        assert_eq!(gap.unwrap_err(), DistError::MissingPoint { index: 1 });
        let dup: Result<Vec<Result<u32, _>>, _> = merge_reports(
            2,
            vec![
                ShardReport {
                    shard: 0,
                    outcomes: vec![(0, Ok(1u32)), (1, Ok(2))],
                },
                ShardReport {
                    shard: 1,
                    outcomes: vec![(1, Ok(3))],
                },
            ],
        );
        assert_eq!(dup.unwrap_err(), DistError::DuplicatePoint { index: 1 });
    }
}
