//! Shard transports: how a [`ShardManifest`] reaches a worker and how its
//! output streams back.
//!
//! The coordinator is transport-agnostic behind two small traits:
//!
//! * [`ShardTransport`] — opens one worker attempt for a manifest and hands
//!   back a [`WorkerLink`];
//! * [`WorkerLink`] — a line-oriented byte stream (progress JSONL, streamed
//!   [`PointOutcome`](crate::shard::PointOutcome) records, and the final
//!   wire report all travel as lines), plus an [`AbortHandle`] the
//!   coordinator's watchdog can fire from another thread to kill a stalled
//!   attempt.
//!
//! Three production transports and one adversarial one:
//!
//! * closures `Fn(&ShardManifest) -> Result<String, DistError>` — the
//!   in-process test transport (a blanket impl, so every existing closure
//!   runner keeps working);
//! * [`WorkerCommand`] — the process transport: spawn a worker binary,
//!   manifest on stdin, lines from stdout;
//! * [`TcpTransport`] — the cross-machine transport: connect to a
//!   [`serve_shards`] listener, write the manifest, half-close, stream
//!   lines back — hand-rolled on `std::net`, no dependencies;
//! * [`ChaosTransport`] — a deterministic fault injector wrapping any other
//!   transport: seeded worker crashes, stalled streams, truncated reports,
//!   corrupted lines, and dropped connections, for property-testing the
//!   recovery fabric.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use ba_sim::SimRng;

use crate::coordinator::DistError;
use crate::shard::ShardManifest;
use crate::wire::{escape, fnv64, Decode, Encode};

/// Fired (possibly from another thread) to abort an in-flight attempt; the
/// link's pending [`WorkerLink::next_line`] must then return promptly.
pub type AbortHandle = Arc<dyn Fn() + Send + Sync>;

/// One worker attempt's output stream.
///
/// Lines are raw bytes (not `String`) because transports can deliver
/// non-UTF8 garbage — a corrupted line must surface to the coordinator as
/// data, not kill the stream.
pub trait WorkerLink: Send {
    /// The next output line, without its trailing newline; `None` at end of
    /// stream.
    ///
    /// # Errors
    ///
    /// A [`DistError`] if the stream breaks mid-read.
    fn next_line(&mut self) -> Result<Option<Vec<u8>>, DistError>;

    /// Completes the attempt after the stream ends: reaps the worker and
    /// reports how it exited.
    ///
    /// # Errors
    ///
    /// A [`DistError`] if the worker failed (non-zero exit, injected crash).
    fn finish(&mut self) -> Result<(), DistError>;

    /// A handle that aborts this attempt from any thread. After it fires,
    /// a blocked [`next_line`](WorkerLink::next_line) must return.
    fn abort_handle(&self) -> AbortHandle;
}

/// Opens worker attempts for shard manifests.
pub trait ShardTransport: Sync {
    /// Starts one attempt at `manifest` and returns its output link.
    ///
    /// # Errors
    ///
    /// A [`DistError`] if the worker cannot be reached at all; the
    /// coordinator counts this as a failed attempt and retries.
    fn open(&self, manifest: &ShardManifest) -> Result<Box<dyn WorkerLink>, DistError>;
}

/// An already-complete output stream, replayed line by line. The link
/// behind the closure transport, and a convenient building block for test
/// transports.
pub struct BufferedLink {
    lines: VecDeque<Vec<u8>>,
}

impl BufferedLink {
    /// A link replaying `text` split into lines.
    pub fn from_text(text: &str) -> Self {
        BufferedLink {
            lines: text.lines().map(|l| l.as_bytes().to_vec()).collect(),
        }
    }

    /// A link replaying raw byte lines (newlines already stripped).
    pub fn from_lines(lines: impl IntoIterator<Item = Vec<u8>>) -> Self {
        BufferedLink {
            lines: lines.into_iter().collect(),
        }
    }
}

impl WorkerLink for BufferedLink {
    fn next_line(&mut self) -> Result<Option<Vec<u8>>, DistError> {
        Ok(self.lines.pop_front())
    }

    fn finish(&mut self) -> Result<(), DistError> {
        Ok(())
    }

    fn abort_handle(&self) -> AbortHandle {
        Arc::new(|| {})
    }
}

/// The in-process transport: any closure producing a worker's full output.
/// Runs eagerly in [`open`](ShardTransport::open) and replays the result,
/// so existing closure-based tests exercise the same streaming path as real
/// transports.
impl<F> ShardTransport for F
where
    F: Fn(&ShardManifest) -> Result<String, DistError> + Sync,
{
    fn open(&self, manifest: &ShardManifest) -> Result<Box<dyn WorkerLink>, DistError> {
        Ok(Box::new(BufferedLink::from_text(&self(manifest)?)))
    }
}

// ---------------------------------------------------------------------------
// Process transport
// ---------------------------------------------------------------------------

/// The process transport: one worker binary invocation per shard attempt,
/// manifest on stdin, lines from stdout.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WorkerCommand {
    program: PathBuf,
    args: Vec<String>,
    progress: bool,
    stream: bool,
}

impl WorkerCommand {
    /// A worker launched as `program [args…]`.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        WorkerCommand {
            program: program.into(),
            args: Vec::new(),
            progress: false,
            stream: false,
        }
    }

    /// Appends a fixed argument to every invocation.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Passes `--progress` to the worker, asking it to interleave one JSONL
    /// progress record per completed point with the wire report. Progress
    /// doubles as the liveness signal for the coordinator's no-progress
    /// watchdog.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Passes `--stream` to the worker, asking it to emit one checksummed
    /// `outcome` record per completed point. Streamed outcomes are what
    /// make point-level recovery possible: a crashed worker only forfeits
    /// the points it had not yet finished.
    pub fn with_stream(mut self, stream: bool) -> Self {
        self.stream = stream;
        self
    }

    /// The worker program path.
    pub fn program(&self) -> &Path {
        &self.program
    }

    /// Locates the stock `campaign_worker` binary: `$CAMPAIGN_WORKER` if
    /// set, else a `campaign_worker` executable next to the current
    /// executable or in its parent directory (where cargo places workspace
    /// binaries relative to test and example executables).
    ///
    /// # Errors
    ///
    /// [`DistError::WorkerNotFound`] naming every path that was searched,
    /// so a missing build artefact fails loudly instead of surfacing later
    /// as a cryptic spawn error.
    pub fn locate_checked() -> Result<Self, DistError> {
        Self::locate_impl(
            std::env::var_os("CAMPAIGN_WORKER"),
            std::env::current_exe().ok(),
        )
    }

    /// As [`locate_checked`](WorkerCommand::locate_checked), discarding the
    /// diagnostic.
    pub fn locate() -> Option<Self> {
        Self::locate_checked().ok()
    }

    fn locate_impl(
        env_override: Option<std::ffi::OsString>,
        exe: Option<PathBuf>,
    ) -> Result<Self, DistError> {
        if let Some(path) = env_override {
            return Ok(WorkerCommand::new(PathBuf::from(path)));
        }
        let mut searched = vec!["$CAMPAIGN_WORKER (unset)".to_string()];
        let name = format!("campaign_worker{}", std::env::consts::EXE_SUFFIX);
        match exe {
            Some(exe) => {
                let mut dir = exe.parent();
                while let Some(d) = dir {
                    let candidate = d.join(&name);
                    if candidate.is_file() {
                        return Ok(WorkerCommand::new(candidate));
                    }
                    searched.push(candidate.display().to_string());
                    // `target/<profile>/{deps,examples}/…` → `target/<profile>/`.
                    if d.file_name().is_some_and(|n| n == "target") {
                        break;
                    }
                    dir = d.parent();
                }
            }
            None => searched.push("<current executable unresolvable>".to_string()),
        }
        Err(DistError::WorkerNotFound { searched })
    }
}

/// Truncates to at most `max_len` bytes, backing off to the nearest char
/// boundary (a blunt `String::truncate` panics mid-char).
pub(crate) fn truncate_lossy(text: &str, max_len: usize) -> String {
    let mut cut = max_len.min(text.len());
    while !text.is_char_boundary(cut) {
        cut -= 1;
    }
    text[..cut].to_string()
}

struct ProcessLink {
    shard: usize,
    child: Arc<Mutex<Child>>,
    stdout: BufReader<std::process::ChildStdout>,
    stderr_thread: Option<std::thread::JoinHandle<String>>,
    aborted: Arc<AtomicBool>,
}

impl WorkerLink for ProcessLink {
    fn next_line(&mut self) -> Result<Option<Vec<u8>>, DistError> {
        let mut buf = Vec::new();
        match self.stdout.read_until(b'\n', &mut buf) {
            Ok(0) => Ok(None),
            Ok(_) => {
                while buf.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
                    buf.pop();
                }
                Ok(Some(buf))
            }
            Err(e) => Err(DistError::Spawn {
                shard: self.shard,
                detail: e.to_string(),
            }),
        }
    }

    fn finish(&mut self) -> Result<(), DistError> {
        let status = {
            let mut child = self.child.lock().unwrap_or_else(|p| p.into_inner());
            child.wait().map_err(|e| DistError::Spawn {
                shard: self.shard,
                detail: e.to_string(),
            })?
        };
        let stderr = self
            .stderr_thread
            .take()
            .and_then(|t| t.join().ok())
            .unwrap_or_default();
        if !status.success() {
            let mut stderr = truncate_lossy(stderr.trim(), 512);
            if self.aborted.load(Ordering::SeqCst) && stderr.is_empty() {
                stderr = "killed by coordinator watchdog".to_string();
            }
            return Err(DistError::WorkerFailed {
                shard: self.shard,
                code: status.code(),
                stderr,
            });
        }
        Ok(())
    }

    fn abort_handle(&self) -> AbortHandle {
        let child = self.child.clone();
        let aborted = self.aborted.clone();
        Arc::new(move || {
            aborted.store(true, Ordering::SeqCst);
            let mut child = child.lock().unwrap_or_else(|p| p.into_inner());
            let _ = child.kill();
        })
    }
}

impl ShardTransport for WorkerCommand {
    fn open(&self, manifest: &ShardManifest) -> Result<Box<dyn WorkerLink>, DistError> {
        let shard = manifest.shard;
        let spawn_err = |e: std::io::Error| DistError::Spawn {
            shard,
            detail: e.to_string(),
        };
        let mut command = Command::new(&self.program);
        command.args(&self.args);
        if self.progress {
            command.arg("--progress");
        }
        if self.stream {
            command.arg("--stream");
        }
        let mut child = command
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(spawn_err)?;

        // Feed the manifest and close stdin so the worker sees EOF.
        let wire = manifest.to_wire();
        if let Err(e) = child
            .stdin
            .take()
            .expect("stdin was piped")
            .write_all(wire.as_bytes())
        {
            let _ = child.kill();
            let _ = child.wait();
            return Err(spawn_err(e));
        }

        // Drain stderr on a helper thread so neither pipe can deadlock
        // while stdout is streamed line by line through the link.
        let mut stderr_pipe = child.stderr.take().expect("stderr was piped");
        let stderr_thread = std::thread::spawn(move || {
            let mut buf = String::new();
            let _ = stderr_pipe.read_to_string(&mut buf);
            buf
        });
        let stdout_pipe = child.stdout.take().expect("stdout was piped");
        Ok(Box::new(ProcessLink {
            shard,
            child: Arc::new(Mutex::new(child)),
            stdout: BufReader::new(stdout_pipe),
            stderr_thread: Some(stderr_thread),
            aborted: Arc::new(AtomicBool::new(false)),
        }))
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// The cross-machine transport: each attempt connects to a worker serving
/// shards over TCP (see [`serve_shards`]), writes the manifest, half-closes
/// the write side (the EOF the stdin convention uses), and streams lines
/// back until the worker closes the connection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TcpTransport {
    addr: String,
}

impl TcpTransport {
    /// A transport connecting to `addr` (e.g. `"10.0.0.7:9123"`).
    pub fn new(addr: impl Into<String>) -> Self {
        TcpTransport { addr: addr.into() }
    }

    /// The address this transport connects to.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

struct TcpLink {
    shard: usize,
    reader: BufReader<TcpStream>,
    aborter: Arc<TcpStream>,
}

impl WorkerLink for TcpLink {
    fn next_line(&mut self) -> Result<Option<Vec<u8>>, DistError> {
        let mut buf = Vec::new();
        match self.reader.read_until(b'\n', &mut buf) {
            Ok(0) => Ok(None),
            Ok(_) => {
                while buf.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
                    buf.pop();
                }
                Ok(Some(buf))
            }
            Err(e) => Err(DistError::Spawn {
                shard: self.shard,
                detail: format!("tcp read: {e}"),
            }),
        }
    }

    fn finish(&mut self) -> Result<(), DistError> {
        // Worker-side failures travel in-band as `worker-error` lines; a
        // clean close is all a healthy connection signals.
        Ok(())
    }

    fn abort_handle(&self) -> AbortHandle {
        let stream = self.aborter.clone();
        Arc::new(move || {
            let _ = stream.shutdown(Shutdown::Both);
        })
    }
}

impl ShardTransport for TcpTransport {
    fn open(&self, manifest: &ShardManifest) -> Result<Box<dyn WorkerLink>, DistError> {
        let shard = manifest.shard;
        let conn_err = |e: std::io::Error| DistError::Spawn {
            shard,
            detail: format!("connect {}: {e}", self.addr),
        };
        let mut stream = TcpStream::connect(&self.addr).map_err(conn_err)?;
        stream
            .write_all(manifest.to_wire().as_bytes())
            .map_err(conn_err)?;
        stream.shutdown(Shutdown::Write).map_err(conn_err)?;
        let aborter = Arc::new(stream.try_clone().map_err(conn_err)?);
        Ok(Box::new(TcpLink {
            shard,
            reader: BufReader::new(stream),
            aborter,
        }))
    }
}

/// Serves shard manifests over TCP: per connection, reads one manifest (to
/// EOF on the client's write side), runs `handler`, and streams the lines
/// it emits back. Handler failures are reported in-band as a
/// `worker-error detail=…` line, which the coordinator turns into a failed
/// attempt.
///
/// Serves `max_conns` connections (`None` = until the listener errors).
///
/// # Errors
///
/// Propagates listener `accept` errors; per-connection I/O errors only end
/// that connection.
pub fn serve_shards<H>(
    listener: TcpListener,
    max_conns: Option<usize>,
    handler: H,
) -> std::io::Result<()>
where
    H: Fn(&ShardManifest, &mut (dyn FnMut(&str) + Send)) -> Result<(), String>,
{
    for (served, conn) in listener.incoming().enumerate() {
        let stream = conn?;
        let _ = serve_connection(stream, &handler);
        if max_conns.is_some_and(|m| served + 1 >= m) {
            break;
        }
    }
    Ok(())
}

/// Serves one already-accepted connection; see [`serve_shards`].
///
/// # Errors
///
/// Returns the connection's I/O error, if any.
pub fn serve_connection<H>(mut stream: TcpStream, handler: &H) -> std::io::Result<()>
where
    H: Fn(&ShardManifest, &mut (dyn FnMut(&str) + Send)) -> Result<(), String>,
{
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let fail = |stream: &mut TcpStream, detail: &str| {
        let line = format!("worker-error detail={}\n", escape(detail));
        stream.write_all(line.as_bytes())
    };
    let input = match String::from_utf8(raw) {
        Ok(text) => text,
        Err(_) => return fail(&mut stream, "manifest is not valid UTF-8"),
    };
    let manifest = match ShardManifest::from_wire(&input) {
        Ok(manifest) => manifest,
        Err(e) => return fail(&mut stream, &format!("undecodable manifest: {e}")),
    };
    let mut io_result = Ok(());
    {
        let mut emit = |chunk: &str| {
            if io_result.is_ok() {
                io_result = stream.write_all(chunk.as_bytes());
            }
        };
        if let Err(detail) = handler(&manifest, &mut emit) {
            io_result = io_result.and(fail(&mut stream, &detail));
        }
    }
    io_result
}

// ---------------------------------------------------------------------------
// Chaos transport
// ---------------------------------------------------------------------------

/// The fault families [`ChaosTransport`] can inject.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaosFaultKind {
    /// Worker crash after k delivered lines: early EOF plus a failed exit.
    Crash,
    /// Stalled stream: delivery stops mid-shard until the watchdog aborts.
    Stall,
    /// Truncated report: early EOF but a clean exit.
    Truncate,
    /// One line's bytes are garbled (possibly into non-UTF8).
    Corrupt,
    /// The connection drops before the worker is reached.
    Drop,
}

/// All fault kinds, in the order [`ChaosPlan::fault_for`] draws from.
pub const ALL_CHAOS_KINDS: [ChaosFaultKind; 5] = [
    ChaosFaultKind::Crash,
    ChaosFaultKind::Stall,
    ChaosFaultKind::Truncate,
    ChaosFaultKind::Corrupt,
    ChaosFaultKind::Drop,
];

/// The concrete fault injected into one `(shard, attempt)`, drawn
/// deterministically by [`ChaosPlan::fault_for`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaosFault {
    /// The attempt runs clean.
    None,
    /// EOF after `after_lines` delivered lines, then a failed exit.
    Crash {
        /// Lines delivered before the crash.
        after_lines: usize,
    },
    /// Delivery blocks after `after_lines` lines until aborted.
    Stall {
        /// Lines delivered before the stall.
        after_lines: usize,
    },
    /// Clean EOF after `after_lines` delivered lines.
    Truncate {
        /// Lines delivered before the truncation.
        after_lines: usize,
    },
    /// The `line`-th delivered line is garbled.
    Corrupt {
        /// Zero-based index of the garbled line.
        line: usize,
    },
    /// [`ShardTransport::open`] fails outright.
    Drop,
}

/// A deterministic chaos schedule: which fault (if any) hits each
/// `(shard, attempt)` pair is a pure function of the plan, so a chaos run
/// is exactly reproducible from its seed and tests can compute the
/// expected retry accounting up front.
#[derive(Clone, PartialEq, Debug)]
pub struct ChaosPlan {
    /// Seed of the fault schedule.
    pub seed: u64,
    /// Probability that any given attempt is faulted.
    pub rate: f64,
    /// After this many attempts at a shard, further attempts run clean
    /// (`None` = never relent). `Some(k)` with enough retries makes every
    /// schedule recoverable; `None` with `rate = 1.0` makes none of them.
    pub relent_after: Option<usize>,
    /// The fault kinds to draw from (empty = all of [`ALL_CHAOS_KINDS`]).
    pub kinds: Vec<ChaosFaultKind>,
}

impl ChaosPlan {
    /// A recoverable plan: 70% fault rate, relenting after 2 attempts per
    /// shard, all fault kinds.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            rate: 0.7,
            relent_after: Some(2),
            kinds: Vec::new(),
        }
    }

    /// An unrecoverable plan: every attempt is faulted, forever — the
    /// schedule that exercises [`PartialSweep`](crate::shard::PartialSweep)
    /// degradation.
    pub fn unrecoverable(seed: u64) -> Self {
        ChaosPlan {
            seed,
            rate: 1.0,
            relent_after: None,
            kinds: Vec::new(),
        }
    }

    /// Sets the per-attempt fault probability.
    pub fn rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// Sets when (if ever) a shard's attempts start running clean.
    pub fn relent_after(mut self, attempts: Option<usize>) -> Self {
        self.relent_after = attempts;
        self
    }

    /// Restricts the fault kinds drawn.
    pub fn kinds(mut self, kinds: &[ChaosFaultKind]) -> Self {
        self.kinds = kinds.to_vec();
        self
    }

    /// The fault injected into `attempt` (1-based) at `shard` — a pure
    /// function, so tests can predict the whole schedule.
    pub fn fault_for(&self, shard: usize, attempt: usize) -> ChaosFault {
        if self.relent_after.is_some_and(|k| attempt > k) {
            return ChaosFault::None;
        }
        let mut key = Vec::with_capacity(16);
        key.extend_from_slice(&(shard as u64).to_le_bytes());
        key.extend_from_slice(&(attempt as u64).to_le_bytes());
        let mut rng = SimRng::seed_from_u64(self.seed ^ fnv64(&key));
        if !rng.gen_bool(self.rate) {
            return ChaosFault::None;
        }
        let kinds: &[ChaosFaultKind] = if self.kinds.is_empty() {
            &ALL_CHAOS_KINDS
        } else {
            &self.kinds
        };
        match kinds[rng.gen_index(0, kinds.len())] {
            ChaosFaultKind::Crash => ChaosFault::Crash {
                after_lines: rng.gen_index(0, 6),
            },
            ChaosFaultKind::Stall => ChaosFault::Stall {
                after_lines: rng.gen_index(0, 4),
            },
            ChaosFaultKind::Truncate => ChaosFault::Truncate {
                after_lines: rng.gen_index(0, 4),
            },
            ChaosFaultKind::Corrupt => ChaosFault::Corrupt {
                line: rng.gen_index(0, 6),
            },
            ChaosFaultKind::Drop => ChaosFault::Drop,
        }
    }
}

/// Deterministic fault injection around any inner transport.
///
/// Attempts are numbered per shard in `open` order; the fault for each
/// `(shard, attempt)` comes from [`ChaosPlan::fault_for`]. Faults are
/// injected at the link level, so they exercise exactly the paths real
/// failures take: early EOF + failed exit (crash), a blocked `next_line`
/// until the watchdog aborts (stall), early EOF + clean exit (truncate),
/// garbled possibly-non-UTF8 line bytes (corrupt), and failed `open`
/// (drop).
pub struct ChaosTransport<T> {
    inner: T,
    plan: ChaosPlan,
    attempts: Mutex<BTreeMap<usize, usize>>,
}

impl<T> ChaosTransport<T> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: T, plan: ChaosPlan) -> Self {
        ChaosTransport {
            inner,
            plan,
            attempts: Mutex::new(BTreeMap::new()),
        }
    }

    /// The fault schedule.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// How many attempts have been opened at `shard` so far.
    pub fn attempts_at(&self, shard: usize) -> usize {
        self.attempts
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&shard)
            .copied()
            .unwrap_or(0)
    }
}

/// Garbles a line's bytes deterministically into something that is neither
/// valid UTF-8 nor a decodable wire record, without introducing newlines.
fn garble(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() + 2);
    out.push(0xFF);
    for &b in bytes {
        let g = b ^ 0x5A;
        out.push(if g == b'\n' || g == b'\r' { 0xFE } else { g });
    }
    out.push(0xFF);
    out
}

struct ChaosLink {
    inner: Box<dyn WorkerLink>,
    shard: usize,
    fault: ChaosFault,
    delivered: usize,
    stall: Arc<(Mutex<bool>, Condvar)>,
}

impl ChaosLink {
    fn cut(&mut self) {
        // Stop the real worker behind a simulated crash/truncation so it
        // does not linger writing into a dead pipe.
        (self.inner.abort_handle())();
    }
}

impl WorkerLink for ChaosLink {
    fn next_line(&mut self) -> Result<Option<Vec<u8>>, DistError> {
        match self.fault {
            ChaosFault::Crash { after_lines } | ChaosFault::Truncate { after_lines }
                if self.delivered >= after_lines =>
            {
                self.cut();
                return Ok(None);
            }
            ChaosFault::Stall { after_lines } if self.delivered >= after_lines => {
                let (lock, cond) = &*self.stall;
                let mut aborted = lock.lock().unwrap_or_else(|p| p.into_inner());
                while !*aborted {
                    aborted = cond.wait(aborted).unwrap_or_else(|p| p.into_inner());
                }
                return Err(DistError::Stalled { shard: self.shard });
            }
            _ => {}
        }
        let line = self.inner.next_line()?;
        let line = match (line, self.fault) {
            (Some(bytes), ChaosFault::Corrupt { line }) if self.delivered == line => {
                Some(garble(&bytes))
            }
            (line, _) => line,
        };
        if line.is_some() {
            self.delivered += 1;
        }
        Ok(line)
    }

    fn finish(&mut self) -> Result<(), DistError> {
        match self.fault {
            ChaosFault::Crash { after_lines } if self.delivered >= after_lines => {
                let _ = self.inner.finish();
                Err(DistError::WorkerFailed {
                    shard: self.shard,
                    code: None,
                    stderr: "chaos: injected worker crash".to_string(),
                })
            }
            ChaosFault::Truncate { after_lines } if self.delivered >= after_lines => {
                let _ = self.inner.finish();
                Ok(())
            }
            _ => self.inner.finish(),
        }
    }

    fn abort_handle(&self) -> AbortHandle {
        let stall = self.stall.clone();
        let inner = self.inner.abort_handle();
        Arc::new(move || {
            {
                let (lock, cond) = &*stall;
                let mut aborted = lock.lock().unwrap_or_else(|p| p.into_inner());
                *aborted = true;
                cond.notify_all();
            }
            inner();
        })
    }
}

impl<T: ShardTransport> ShardTransport for ChaosTransport<T> {
    fn open(&self, manifest: &ShardManifest) -> Result<Box<dyn WorkerLink>, DistError> {
        let attempt = {
            let mut attempts = self.attempts.lock().unwrap_or_else(|p| p.into_inner());
            let count = attempts.entry(manifest.shard).or_insert(0);
            *count += 1;
            *count
        };
        let fault = self.plan.fault_for(manifest.shard, attempt);
        if fault == ChaosFault::Drop {
            return Err(DistError::Spawn {
                shard: manifest.shard,
                detail: format!("chaos: connection dropped (attempt {attempt})"),
            });
        }
        let inner = self.inner.open(manifest)?;
        Ok(Box::new(ChaosLink {
            inner,
            shard: manifest.shard,
            fault,
            delivered: 0,
            stall: Arc::new((Mutex::new(false), Condvar::new())),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{plan_shards, SweepSpec};
    use ba_sim::CampaignPoint;

    fn manifest() -> ShardManifest {
        let spec = SweepSpec::scenarios((0..3).map(|i| CampaignPoint::new(4 + i, 1)), "test");
        plan_shards(&spec, 1).remove(0)
    }

    #[test]
    fn closure_transport_replays_output_lines() {
        let transport =
            |_: &ShardManifest| -> Result<String, DistError> { Ok("a b=1\nc d=2\n".into()) };
        let mut link = transport.open(&manifest()).unwrap();
        assert_eq!(link.next_line().unwrap(), Some(b"a b=1".to_vec()));
        assert_eq!(link.next_line().unwrap(), Some(b"c d=2".to_vec()));
        assert_eq!(link.next_line().unwrap(), None);
        link.finish().unwrap();
    }

    #[test]
    fn worker_command_locate_failure_names_searched_paths() {
        let err = WorkerCommand::locate_impl(None, Some(PathBuf::from("/nonexistent/deps/t")))
            .unwrap_err();
        match err {
            DistError::WorkerNotFound { ref searched } => {
                assert!(searched[0].contains("CAMPAIGN_WORKER"), "{searched:?}");
                assert!(
                    searched.iter().any(|p| p.contains("/nonexistent/deps")),
                    "{searched:?}"
                );
                assert!(err.to_string().contains("/nonexistent/deps"), "{err}");
            }
            other => panic!("expected WorkerNotFound, got {other:?}"),
        }
    }

    #[test]
    fn worker_command_locate_env_override_wins() {
        let cmd =
            WorkerCommand::locate_impl(Some("custom_worker".into()), None).expect("env override");
        assert_eq!(cmd.program(), Path::new("custom_worker"));
    }

    #[test]
    fn chaos_plan_is_deterministic_and_relents() {
        let plan = ChaosPlan::new(42);
        for shard in 0..4 {
            for attempt in 1..=4 {
                assert_eq!(
                    plan.fault_for(shard, attempt),
                    plan.fault_for(shard, attempt)
                );
            }
            assert_eq!(plan.fault_for(shard, 3), ChaosFault::None);
            assert_eq!(plan.fault_for(shard, 99), ChaosFault::None);
        }
        // Unrecoverable plans never relent and always fault.
        let hostile = ChaosPlan::unrecoverable(7);
        for attempt in 1..=8 {
            assert_ne!(hostile.fault_for(0, attempt), ChaosFault::None);
        }
        // Different seeds disagree somewhere on a modest grid.
        let other = ChaosPlan::new(43);
        let differs = (0..16).any(|s| plan.fault_for(s, 1) != other.fault_for(s, 1));
        assert!(differs, "seeds 42 and 43 produced identical schedules");
    }

    #[test]
    fn chaos_kind_restriction_is_respected() {
        let plan = ChaosPlan::unrecoverable(5).kinds(&[ChaosFaultKind::Drop]);
        for shard in 0..8 {
            for attempt in 1..=4 {
                assert_eq!(plan.fault_for(shard, attempt), ChaosFault::Drop);
            }
        }
    }

    #[test]
    fn chaos_drop_fails_open_and_counts_attempts() {
        let inner = |_: &ShardManifest| -> Result<String, DistError> { Ok(String::new()) };
        let chaos = ChaosTransport::new(
            inner,
            ChaosPlan::unrecoverable(5).kinds(&[ChaosFaultKind::Drop]),
        );
        assert_eq!(chaos.attempts_at(0), 0);
        assert!(chaos.open(&manifest()).is_err());
        assert!(chaos.open(&manifest()).is_err());
        assert_eq!(chaos.attempts_at(0), 2);
    }

    #[test]
    fn chaos_crash_truncates_stream_and_fails_finish() {
        let inner = |_: &ShardManifest| -> Result<String, DistError> {
            Ok("l one=1\nl two=2\nl three=3\n".into())
        };
        let plan = ChaosPlan {
            seed: 0,
            rate: 1.0,
            relent_after: None,
            kinds: vec![ChaosFaultKind::Crash],
        };
        let chaos = ChaosTransport::new(inner, plan);
        let fault = chaos.plan().fault_for(0, 1);
        let ChaosFault::Crash { after_lines } = fault else {
            panic!("expected a crash, got {fault:?}");
        };
        let mut link = chaos.open(&manifest()).unwrap();
        let mut delivered = 0;
        while let Some(_line) = link.next_line().unwrap() {
            delivered += 1;
        }
        assert_eq!(delivered, after_lines.min(3));
        if after_lines <= 3 {
            assert!(matches!(link.finish(), Err(DistError::WorkerFailed { .. })));
        } else {
            link.finish().unwrap();
        }
    }

    #[test]
    fn chaos_corrupt_garbles_exactly_one_line_into_non_utf8() {
        let inner = |_: &ShardManifest| -> Result<String, DistError> {
            Ok("l a=0\nl a=1\nl a=2\nl a=3\nl a=4\nl a=5\n".into())
        };
        let plan = ChaosPlan {
            seed: 3,
            rate: 1.0,
            relent_after: None,
            kinds: vec![ChaosFaultKind::Corrupt],
        };
        let ChaosFault::Corrupt { line } = plan.fault_for(0, 1) else {
            panic!("expected corrupt");
        };
        let chaos = ChaosTransport::new(inner, plan);
        let mut link = chaos.open(&manifest()).unwrap();
        let mut garbled = Vec::new();
        let mut index = 0;
        while let Some(bytes) = link.next_line().unwrap() {
            if std::str::from_utf8(&bytes).is_err() {
                garbled.push(index);
            }
            index += 1;
        }
        assert_eq!(garbled, vec![line]);
        link.finish().unwrap();
    }

    #[test]
    fn chaos_stall_blocks_until_aborted() {
        // Five lines: more than the largest possible stall threshold
        // (after_lines < 4), so the stall always fires before EOF.
        let inner = |_: &ShardManifest| -> Result<String, DistError> {
            Ok("l a=0\nl a=1\nl a=2\nl a=3\nl a=4\n".into())
        };
        let plan = ChaosPlan {
            seed: 1,
            rate: 1.0,
            relent_after: None,
            kinds: vec![ChaosFaultKind::Stall],
        };
        let chaos = ChaosTransport::new(inner, plan);
        let mut link = chaos.open(&manifest()).unwrap();
        let abort = link.abort_handle();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            abort();
        });
        // Drain until the stall point, then the blocked read must return
        // Stalled once the abort fires.
        let err = loop {
            match link.next_line() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("stream ended instead of stalling"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, DistError::Stalled { shard: 0 }));
        t.join().unwrap();
    }

    #[test]
    fn garble_output_is_newline_free_and_marked() {
        let g = garble(b"outcome index=3 sum=aa data=bb");
        assert!(!g.contains(&b'\n'));
        assert!(std::str::from_utf8(&g).is_err());
        assert_ne!(g, b"outcome index=3 sum=aa data=bb".to_vec());
    }

    #[test]
    fn stderr_truncation_respects_char_boundaries() {
        // 600 bytes of 2-byte chars: a blunt truncate(512) would split a
        // char and panic.
        let text = "é".repeat(300);
        let cut = truncate_lossy(&text, 512);
        assert!(cut.len() <= 512);
        assert!(text.starts_with(&cut));
        assert_eq!(truncate_lossy("short", 512), "short");
        assert_eq!(truncate_lossy("", 512), "");
    }
}
