//! The dependency-free wire format of the distributed campaign engine.
//!
//! The workspace has no serde, so shard manifests and shard reports cross
//! process boundaries as a small hand-rolled **line-oriented** codec: every
//! record is one line of the form
//!
//! ```text
//! tag key=value key=value …
//! ```
//!
//! with values percent-escaped so they never contain spaces, `=`, or
//! newlines. Compound values ([`CampaignReport`], [`ShardManifest`]) encode
//! as a header record carrying a `count` followed by that many child
//! records, so decoding never needs lookahead beyond one line.
//!
//! Two properties are load-bearing and tested:
//!
//! * **round-trip** — `decode(encode(x)) == x` for every wire type;
//! * **order stability** — maps encode in `BTreeMap` order, so equal values
//!   encode to byte-identical strings and merged reports compare bit-for-bit
//!   against single-process runs.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

use ba_sim::{
    Bit, CampaignPoint, CampaignReport, ProcessId, Round, ScenarioOutcome, ScenarioStats, SimError,
};

use crate::shard::{
    PartialSweep, PointOutcome, ShardEntry, ShardFailure, ShardManifest, ShardMode, ShardReport,
};

/// FNV-1a over raw bytes — the checksum used by streamed [`PointOutcome`]
/// records so a corrupted line fails decoding with a typed error instead of
/// yielding a plausible-but-wrong value.
pub fn fnv64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A value that can be serialized onto the wire.
pub trait Encode {
    /// Appends this value's records to `out` (each record is a full line).
    fn encode(&self, out: &mut String);

    /// Encodes this value into a fresh string.
    fn to_wire(&self) -> String {
        let mut out = String::new();
        self.encode(&mut out);
        out
    }
}

/// A value that can be parsed back off the wire.
pub trait Decode: Sized {
    /// Reads this value's records from the reader.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed, truncated, or mistagged input.
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Decodes a complete value from `input`, rejecting trailing records.
    ///
    /// # Errors
    ///
    /// As [`Decode::decode`], plus [`WireError::Trailing`] if input remains.
    fn from_wire(input: &str) -> Result<Self, WireError> {
        let mut reader = WireReader::new(input);
        let value = Self::decode(&mut reader)?;
        reader.finish()?;
        Ok(value)
    }
}

/// A decoding failure, with enough context to locate the bad record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The input ended where another record was required.
    Eof {
        /// The record tag that was expected.
        expected: String,
    },
    /// A record carried an unexpected tag.
    Tag {
        /// The record tag that was expected.
        expected: String,
        /// The tag actually read.
        got: String,
    },
    /// A record is missing a required field or carries an unparsable value.
    Field {
        /// The tag of the offending record.
        tag: String,
        /// The field key.
        key: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A percent-escape was malformed.
    Escape {
        /// The offending escaped text.
        text: String,
    },
    /// Decoding succeeded but unconsumed records remain.
    Trailing {
        /// The first unconsumed line.
        line: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof { expected } => {
                write!(f, "unexpected end of input: expected a `{expected}` record")
            }
            WireError::Tag { expected, got } => {
                write!(f, "expected a `{expected}` record, got `{got}`")
            }
            WireError::Field { tag, key, detail } => {
                write!(f, "bad field `{key}` in `{tag}` record: {detail}")
            }
            WireError::Escape { text } => write!(f, "malformed percent-escape in {text:?}"),
            WireError::Trailing { line } => {
                write!(f, "trailing input after a complete value: {line:?}")
            }
        }
    }
}

impl Error for WireError {}

/// Percent-escapes `raw` so the result contains no whitespace, `=`, `%`
/// (other than as escape introducers), or the list separators `,` `|` `:`
/// used by compound fields. Alphanumerics and `-._()` pass through;
/// everything else is escaped byte-wise as `%XX`.
pub fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for byte in raw.bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' => out.push(byte as char),
            b'-' | b'.' | b'_' | b'(' | b')' => out.push(byte as char),
            _ => {
                out.push('%');
                out.push(char::from_digit((byte >> 4) as u32, 16).unwrap());
                out.push(char::from_digit((byte & 0xF) as u32, 16).unwrap());
            }
        }
    }
    out
}

/// Reverses [`escape`].
///
/// # Errors
///
/// Returns [`WireError::Escape`] on truncated or non-hex escapes, or if the
/// escaped bytes are not valid UTF-8.
pub fn unescape(escaped: &str) -> Result<String, WireError> {
    let err = || WireError::Escape {
        text: escaped.to_string(),
    };
    let mut bytes = Vec::with_capacity(escaped.len());
    let mut chars = escaped.bytes();
    while let Some(b) = chars.next() {
        if b == b'%' {
            let hi = chars.next().ok_or_else(err)?;
            let lo = chars.next().ok_or_else(err)?;
            let hex = |c: u8| (c as char).to_digit(16).ok_or_else(err);
            bytes.push((hex(hi)? as u8) << 4 | hex(lo)? as u8);
        } else {
            bytes.push(b);
        }
    }
    String::from_utf8(bytes).map_err(|_| err())
}

/// One parsed record: a tag plus `key=value` fields (values still escaped).
pub struct Record<'a> {
    tag: &'a str,
    fields: Vec<(&'a str, &'a str)>,
}

impl<'a> Record<'a> {
    fn parse(line: &'a str) -> Result<Self, WireError> {
        let mut parts = line.split(' ').filter(|p| !p.is_empty());
        let tag = parts.next().ok_or(WireError::Eof {
            expected: "any".into(),
        })?;
        let mut fields = Vec::new();
        for part in parts {
            let (key, value) = part.split_once('=').ok_or_else(|| WireError::Field {
                tag: tag.to_string(),
                key: part.to_string(),
                detail: "missing `=`".into(),
            })?;
            fields.push((key, value));
        }
        Ok(Record { tag, fields })
    }

    /// The record's tag.
    pub fn tag(&self) -> &str {
        self.tag
    }

    fn field_error(&self, key: &str, detail: impl Into<String>) -> WireError {
        WireError::Field {
            tag: self.tag.to_string(),
            key: key.to_string(),
            detail: detail.into(),
        }
    }

    /// The raw (still-escaped) value of a required field.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Field`] if the field is absent.
    pub fn raw(&self, key: &str) -> Result<&'a str, WireError> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| self.field_error(key, "missing"))
    }

    /// The unescaped string value of a required field.
    ///
    /// # Errors
    ///
    /// As [`Record::raw`], plus escape errors.
    pub fn text(&self, key: &str) -> Result<String, WireError> {
        unescape(self.raw(key)?)
    }

    /// Parses a required field with `FromStr`.
    ///
    /// # Errors
    ///
    /// As [`Record::raw`], plus a [`WireError::Field`] on parse failure.
    pub fn parse_field<T: FromStr>(&self, key: &str) -> Result<T, WireError> {
        let raw = self.raw(key)?;
        raw.parse()
            .map_err(|_| self.field_error(key, format!("unparsable value {raw:?}")))
    }

    /// Parses a required boolean field (`true` / `false`).
    ///
    /// # Errors
    ///
    /// As [`Record::parse_field`].
    pub fn flag(&self, key: &str) -> Result<bool, WireError> {
        self.parse_field(key)
    }
}

/// A cursor over the lines of an encoded value.
pub struct WireReader<'a> {
    lines: std::iter::Peekable<std::str::Lines<'a>>,
}

impl<'a> WireReader<'a> {
    /// Starts reading from `input`.
    pub fn new(input: &'a str) -> Self {
        WireReader {
            lines: input.lines().peekable(),
        }
    }

    /// The tag of the next record, without consuming it.
    pub fn peek_tag(&mut self) -> Option<&'a str> {
        self.lines
            .peek()
            .and_then(|line| line.split(' ').find(|p| !p.is_empty()))
    }

    /// Consumes the next record, requiring the given tag.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Eof`] at end of input and [`WireError::Tag`] on
    /// a tag mismatch.
    pub fn record(&mut self, tag: &str) -> Result<Record<'a>, WireError> {
        let line = self.lines.next().ok_or_else(|| WireError::Eof {
            expected: tag.to_string(),
        })?;
        let record = Record::parse(line)?;
        if record.tag != tag {
            return Err(WireError::Tag {
                expected: tag.to_string(),
                got: record.tag.to_string(),
            });
        }
        Ok(record)
    }

    /// Asserts that all input has been consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Trailing`] naming the first leftover line.
    pub fn finish(&mut self) -> Result<(), WireError> {
        match self.lines.next() {
            None => Ok(()),
            Some(line) => Err(WireError::Trailing {
                line: line.to_string(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire impls: ba-sim types
// ---------------------------------------------------------------------------

impl Encode for CampaignPoint {
    fn encode(&self, out: &mut String) {
        out.push_str(&format!(
            "point n={} t={} adv={} inputs={}\n",
            self.n,
            self.t,
            escape(&self.adversary),
            escape(&self.inputs)
        ));
    }
}

impl Decode for CampaignPoint {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rec = reader.record("point")?;
        Ok(CampaignPoint {
            n: rec.parse_field("n")?,
            t: rec.parse_field("t")?,
            adversary: rec.text("adv")?,
            inputs: rec.text("inputs")?,
        })
    }
}

impl Encode for SimError {
    fn encode(&self, out: &mut String) {
        let line = match self {
            SimError::InvalidResilience { n, t } => {
                format!("error kind=invalid-resilience n={n} t={t}")
            }
            SimError::SelfSend { process, round } => {
                format!(
                    "error kind=self-send process={} round={}",
                    process.0, round.0
                )
            }
            SimError::InvalidReceiver {
                process,
                receiver,
                n,
            } => format!(
                "error kind=invalid-receiver process={} receiver={} n={n}",
                process.0, receiver.0
            ),
            SimError::OmissionByCorrect { process, round } => format!(
                "error kind=omission-by-correct process={} round={}",
                process.0, round.0
            ),
            SimError::ForgeByCorrect { process, round } => format!(
                "error kind=forge-by-correct process={} round={}",
                process.0, round.0
            ),
            SimError::DecisionChanged { process, round } => format!(
                "error kind=decision-changed process={} round={}",
                process.0, round.0
            ),
            SimError::ProposalCount { got, expected } => {
                format!("error kind=proposal-count got={got} expected={expected}")
            }
            SimError::TooManyFaulty { got, t } => {
                format!("error kind=too-many-faulty got={got} t={t}")
            }
            SimError::BehaviorMismatch { process } => {
                format!("error kind=behavior-mismatch process={}", process.0)
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
}

impl Decode for SimError {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rec = reader.record("error")?;
        let process =
            |key: &str| -> Result<ProcessId, WireError> { Ok(ProcessId(rec.parse_field(key)?)) };
        let round = |key: &str| -> Result<Round, WireError> { Ok(Round(rec.parse_field(key)?)) };
        match rec.raw("kind")? {
            "invalid-resilience" => Ok(SimError::InvalidResilience {
                n: rec.parse_field("n")?,
                t: rec.parse_field("t")?,
            }),
            "self-send" => Ok(SimError::SelfSend {
                process: process("process")?,
                round: round("round")?,
            }),
            "invalid-receiver" => Ok(SimError::InvalidReceiver {
                process: process("process")?,
                receiver: process("receiver")?,
                n: rec.parse_field("n")?,
            }),
            "omission-by-correct" => Ok(SimError::OmissionByCorrect {
                process: process("process")?,
                round: round("round")?,
            }),
            "forge-by-correct" => Ok(SimError::ForgeByCorrect {
                process: process("process")?,
                round: round("round")?,
            }),
            "decision-changed" => Ok(SimError::DecisionChanged {
                process: process("process")?,
                round: round("round")?,
            }),
            "proposal-count" => Ok(SimError::ProposalCount {
                got: rec.parse_field("got")?,
                expected: rec.parse_field("expected")?,
            }),
            "too-many-faulty" => Ok(SimError::TooManyFaulty {
                got: rec.parse_field("got")?,
                t: rec.parse_field("t")?,
            }),
            "behavior-mismatch" => Ok(SimError::BehaviorMismatch {
                process: process("process")?,
            }),
            other => Err(rec.field_error("kind", format!("unknown error kind {other:?}"))),
        }
    }
}

fn encode_bit(bit: Bit) -> char {
    match bit {
        Bit::Zero => '0',
        Bit::One => '1',
    }
}

fn decode_bit(rec: &Record<'_>, key: &str, text: &str) -> Result<Bit, WireError> {
    match text {
        "0" => Ok(Bit::Zero),
        "1" => Ok(Bit::One),
        other => Err(rec.field_error(key, format!("expected a bit, got {other:?}"))),
    }
}

impl Encode for ScenarioStats<Bit> {
    fn encode(&self, out: &mut String) {
        let decided_by = self
            .decided_by
            .map_or("none".to_string(), |r| r.0.to_string());
        let decisions: Vec<String> = self
            .decisions
            .iter()
            .map(|(pid, d)| match d {
                Some(bit) => format!("{}:{}", pid.0, encode_bit(*bit)),
                None => format!("{}:-", pid.0),
            })
            .collect();
        // Each violation is prefixed with `v` so the empty string survives
        // the `|`-join (an empty field is the empty *list*).
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("v{}", escape(v)))
            .collect();
        out.push_str(&format!(
            "stats mc={} total={} rounds={} quiescent={} decided_by={} decisions={} violations={}\n",
            self.message_complexity,
            self.total_messages,
            self.rounds,
            self.quiescent,
            decided_by,
            decisions.join(","),
            violations.join("|"),
        ));
    }
}

impl Decode for ScenarioStats<Bit> {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rec = reader.record("stats")?;
        let decided_by = match rec.raw("decided_by")? {
            "none" => None,
            raw => Some(Round(raw.parse().map_err(|_| {
                rec.field_error("decided_by", format!("unparsable round {raw:?}"))
            })?)),
        };
        let mut decisions = BTreeMap::new();
        for chunk in rec.raw("decisions")?.split(',').filter(|c| !c.is_empty()) {
            let (pid, d) = chunk
                .split_once(':')
                .ok_or_else(|| rec.field_error("decisions", format!("missing `:` in {chunk:?}")))?;
            let pid = ProcessId(pid.parse().map_err(|_| {
                rec.field_error("decisions", format!("unparsable process id {pid:?}"))
            })?);
            let decision = match d {
                "-" => None,
                bit => Some(decode_bit(&rec, "decisions", bit)?),
            };
            decisions.insert(pid, decision);
        }
        let mut violations = Vec::new();
        for part in rec.raw("violations")?.split('|').filter(|p| !p.is_empty()) {
            let item = part.strip_prefix('v').ok_or_else(|| {
                rec.field_error("violations", format!("missing `v` prefix in {part:?}"))
            })?;
            violations.push(unescape(item)?);
        }
        Ok(ScenarioStats {
            message_complexity: rec.parse_field("mc")?,
            total_messages: rec.parse_field("total")?,
            rounds: rec.parse_field("rounds")?,
            quiescent: rec.flag("quiescent")?,
            decided_by,
            decisions,
            violations,
        })
    }
}

/// Shared encoding of a `Result<T, SimError>`: an `ok` marker record
/// followed by the payload or the error.
fn encode_result<T: Encode>(result: &Result<T, SimError>, out: &mut String) {
    match result {
        Ok(value) => {
            out.push_str("result ok=true\n");
            value.encode(out);
        }
        Err(err) => {
            out.push_str("result ok=false\n");
            err.encode(out);
        }
    }
}

fn decode_result<T: Decode>(reader: &mut WireReader<'_>) -> Result<Result<T, SimError>, WireError> {
    let rec = reader.record("result")?;
    if rec.flag("ok")? {
        Ok(Ok(T::decode(reader)?))
    } else {
        Ok(Err(SimError::decode(reader)?))
    }
}

impl Encode for ScenarioOutcome<Bit> {
    fn encode(&self, out: &mut String) {
        self.point.encode(out);
        encode_result(&self.result, out);
    }
}

impl Decode for ScenarioOutcome<Bit> {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let point = CampaignPoint::decode(reader)?;
        let result = decode_result(reader)?;
        Ok(ScenarioOutcome { point, result })
    }
}

impl Encode for CampaignReport<Bit> {
    fn encode(&self, out: &mut String) {
        out.push_str(&format!("report count={}\n", self.outcomes.len()));
        for outcome in &self.outcomes {
            outcome.encode(out);
        }
    }
}

impl Decode for CampaignReport<Bit> {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rec = reader.record("report")?;
        let count: usize = rec.parse_field("count")?;
        let mut outcomes = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            outcomes.push(ScenarioOutcome::decode(reader)?);
        }
        Ok(CampaignReport { outcomes })
    }
}

// ---------------------------------------------------------------------------
// Wire impls: shard types
// ---------------------------------------------------------------------------

impl Encode for ShardEntry {
    fn encode(&self, out: &mut String) {
        out.push_str(&format!("entry index={} seed={}\n", self.index, self.seed));
        self.point.encode(out);
    }
}

impl Decode for ShardEntry {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rec = reader.record("entry")?;
        let index = rec.parse_field("index")?;
        let seed = rec.parse_field("seed")?;
        let point = CampaignPoint::decode(reader)?;
        Ok(ShardEntry { index, seed, point })
    }
}

impl Encode for ShardManifest {
    fn encode(&self, out: &mut String) {
        out.push_str(&format!(
            "manifest shard={} shards={} mode={} protocol={} threads={} count={}\n",
            self.shard,
            self.shards,
            self.mode,
            escape(&self.protocol),
            self.threads,
            self.entries.len(),
        ));
        for entry in &self.entries {
            entry.encode(out);
        }
    }
}

impl Decode for ShardManifest {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rec = reader.record("manifest")?;
        let mode = match rec.raw("mode")? {
            "scenarios" => ShardMode::Scenarios,
            "falsifier" => ShardMode::Falsifier,
            "search" => ShardMode::Search,
            "check" => ShardMode::Check,
            other => return Err(rec.field_error("mode", format!("unknown mode {other:?}"))),
        };
        let shard = rec.parse_field("shard")?;
        let shards = rec.parse_field("shards")?;
        let protocol = rec.text("protocol")?;
        let threads = rec.parse_field("threads")?;
        let count: usize = rec.parse_field("count")?;
        let mut entries = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            entries.push(ShardEntry::decode(reader)?);
        }
        Ok(ShardManifest {
            shard,
            shards,
            mode,
            protocol,
            threads,
            entries,
        })
    }
}

impl<T: Encode> Encode for ShardReport<T> {
    fn encode(&self, out: &mut String) {
        out.push_str(&format!(
            "shard-report shard={} count={}\n",
            self.shard,
            self.outcomes.len()
        ));
        for (index, result) in &self.outcomes {
            out.push_str(&format!("item index={index}\n"));
            encode_result(result, out);
        }
    }
}

impl<T: Decode> Decode for ShardReport<T> {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rec = reader.record("shard-report")?;
        let shard = rec.parse_field("shard")?;
        let count: usize = rec.parse_field("count")?;
        let mut outcomes = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let item = reader.record("item")?;
            let index = item.parse_field("index")?;
            outcomes.push((index, decode_result(reader)?));
        }
        Ok(ShardReport { shard, outcomes })
    }
}

impl<T: Encode> Encode for PointOutcome<T> {
    /// Encodes as exactly **one line**, whatever the payload: the payload's
    /// (multi-line) encoding is percent-escaped into the `data` field and
    /// guarded by an FNV-1a checksum. Streamed mid-shard records therefore
    /// never interleave partially with other output, and any single-line
    /// corruption is detected rather than decoded into a wrong value.
    fn encode(&self, out: &mut String) {
        let mut inner = String::new();
        encode_result(&self.result, &mut inner);
        let data = escape(&inner);
        out.push_str(&format!(
            "outcome index={} sum={:016x} data={}\n",
            self.index,
            fnv64(data.as_bytes()),
            data
        ));
    }
}

impl<T: Decode> Decode for PointOutcome<T> {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rec = reader.record("outcome")?;
        let index = rec.parse_field("index")?;
        let raw = rec.raw("data")?;
        let sum_text = rec.raw("sum")?;
        let sum = u64::from_str_radix(sum_text, 16)
            .map_err(|_| rec.field_error("sum", format!("unparsable checksum {sum_text:?}")))?;
        if fnv64(raw.as_bytes()) != sum {
            return Err(rec.field_error("data", "checksum mismatch"));
        }
        let inner = unescape(raw)?;
        let mut inner_reader = WireReader::new(&inner);
        let result = decode_result(&mut inner_reader)?;
        inner_reader.finish()?;
        Ok(PointOutcome { index, result })
    }
}

impl Encode for ShardFailure {
    fn encode(&self, out: &mut String) {
        out.push_str(&format!(
            "failure shard={} attempts={} last={}\n",
            self.shard,
            self.attempts,
            escape(&self.last)
        ));
    }
}

impl Decode for ShardFailure {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rec = reader.record("failure")?;
        Ok(ShardFailure {
            shard: rec.parse_field("shard")?,
            attempts: rec.parse_field("attempts")?,
            last: rec.text("last")?,
        })
    }
}

impl<T: Encode> Encode for PartialSweep<T> {
    fn encode(&self, out: &mut String) {
        let missing: Vec<String> = self.missing.iter().map(|i| i.to_string()).collect();
        out.push_str(&format!(
            "partial-report grid={} count={} failures={} missing={}\n",
            self.grid_len,
            self.outcomes.len(),
            self.failures.len(),
            missing.join(",")
        ));
        for (index, result) in &self.outcomes {
            out.push_str(&format!("item index={index}\n"));
            encode_result(result, out);
        }
        for failure in &self.failures {
            failure.encode(out);
        }
    }
}

impl<T: Decode> Decode for PartialSweep<T> {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rec = reader.record("partial-report")?;
        let grid_len = rec.parse_field("grid")?;
        let count: usize = rec.parse_field("count")?;
        let failure_count: usize = rec.parse_field("failures")?;
        let missing_raw = rec.raw("missing")?;
        let mut missing = Vec::new();
        for part in missing_raw.split(',').filter(|p| !p.is_empty()) {
            missing.push(
                part.parse().map_err(|_| {
                    rec.field_error("missing", format!("unparsable index {part:?}"))
                })?,
            );
        }
        let mut outcomes = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let item = reader.record("item")?;
            let index = item.parse_field("index")?;
            outcomes.push((index, decode_result(reader)?));
        }
        let mut failures = Vec::with_capacity(failure_count.min(1 << 16));
        for _ in 0..failure_count {
            failures.push(ShardFailure::decode(reader)?);
        }
        Ok(PartialSweep {
            grid_len,
            outcomes,
            missing,
            failures,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::SimRng;

    fn round_trip<T: Encode + Decode + PartialEq + fmt::Debug>(value: &T) {
        let encoded = value.to_wire();
        let decoded = T::from_wire(&encoded)
            .unwrap_or_else(|e| panic!("decode failed: {e}\nwire:\n{encoded}"));
        assert_eq!(&decoded, value, "round-trip mismatch for wire:\n{encoded}");
        // Re-encoding the decoded value must be byte-identical (order
        // stability).
        assert_eq!(decoded.to_wire(), encoded);
    }

    /// A deterministic sample of nasty label strings: empty, spaces,
    /// separators, unicode, escape introducers.
    fn label(rng: &mut SimRng) -> String {
        const POOL: &[&str] = &[
            "",
            "none",
            "random-omission",
            "adaptive-worst-case",
            "mobile",
            "scheduler",
            "has space",
            "eq=sign",
            "pipe|comma,colon:",
            "percent%20literal",
            "θ(nt)-sweep",
            "newline\nline2",
            "tab\tchar",
        ];
        POOL[rng.gen_index(0, POOL.len())].to_string()
    }

    fn point(rng: &mut SimRng) -> CampaignPoint {
        CampaignPoint {
            n: rng.gen_index(1, 64),
            t: rng.gen_index(0, 32),
            adversary: label(rng),
            inputs: label(rng),
        }
    }

    fn sim_error(rng: &mut SimRng) -> SimError {
        let p = ProcessId(rng.gen_index(0, 9));
        let r = Round(rng.gen_range(1, 9));
        match rng.gen_index(0, 9) {
            0 => SimError::InvalidResilience {
                n: rng.gen_index(0, 9),
                t: rng.gen_index(0, 9),
            },
            1 => SimError::SelfSend {
                process: p,
                round: r,
            },
            2 => SimError::InvalidReceiver {
                process: p,
                receiver: ProcessId(rng.gen_index(0, 99)),
                n: rng.gen_index(0, 9),
            },
            3 => SimError::OmissionByCorrect {
                process: p,
                round: r,
            },
            4 => SimError::DecisionChanged {
                process: p,
                round: r,
            },
            5 => SimError::ProposalCount {
                got: rng.gen_index(0, 9),
                expected: rng.gen_index(0, 9),
            },
            6 => SimError::TooManyFaulty {
                got: rng.gen_index(0, 9),
                t: rng.gen_index(0, 9),
            },
            7 => SimError::ForgeByCorrect {
                process: p,
                round: r,
            },
            _ => SimError::BehaviorMismatch { process: p },
        }
    }

    fn stats(rng: &mut SimRng) -> ScenarioStats<Bit> {
        let n = rng.gen_index(0, 8);
        let decisions: BTreeMap<ProcessId, Option<Bit>> = (0..n)
            .map(|i| {
                let d = match rng.gen_index(0, 3) {
                    0 => None,
                    1 => Some(Bit::Zero),
                    _ => Some(Bit::One),
                };
                (ProcessId(i), d)
            })
            .collect();
        let violations = (0..rng.gen_index(0, 4)).map(|_| label(rng)).collect();
        ScenarioStats {
            message_complexity: rng.next_u64() >> 32,
            total_messages: rng.next_u64() >> 32,
            rounds: rng.gen_range(1, 40),
            quiescent: rng.gen_bool(0.5),
            decided_by: rng.gen_bool(0.7).then(|| Round(rng.gen_range(1, 20))),
            decisions,
            violations,
        }
    }

    fn outcome(rng: &mut SimRng) -> ScenarioOutcome<Bit> {
        let result = if rng.gen_bool(0.75) {
            Ok(stats(rng))
        } else {
            Err(sim_error(rng))
        };
        ScenarioOutcome {
            point: point(rng),
            result,
        }
    }

    #[test]
    fn escape_round_trips_arbitrary_text() {
        let mut rng = SimRng::seed_from_u64(0xE5C);
        for _ in 0..200 {
            let text = label(&mut rng);
            let escaped = escape(&text);
            assert!(!escaped.contains(' ') && !escaped.contains('=') && !escaped.contains('\n'));
            assert_eq!(unescape(&escaped).unwrap(), text);
        }
        // Full byte alphabet.
        let every: String = (0u8..128).map(|b| b as char).collect();
        assert_eq!(unescape(&escape(&every)).unwrap(), every);
    }

    #[test]
    fn unescape_rejects_malformed_escapes() {
        assert!(unescape("%").is_err());
        assert!(unescape("%2").is_err());
        assert!(unescape("%zz").is_err());
        // Escaped bytes that are not UTF-8.
        assert!(unescape("%ff%fe").is_err());
    }

    #[test]
    fn campaign_points_round_trip() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            round_trip(&point(&mut rng));
        }
    }

    #[test]
    fn sim_errors_round_trip() {
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..100 {
            round_trip(&sim_error(&mut rng));
        }
    }

    #[test]
    fn scenario_stats_round_trip() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..100 {
            round_trip(&stats(&mut rng));
        }
    }

    #[test]
    fn campaign_reports_round_trip() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..25 {
            let report = CampaignReport {
                outcomes: (0..rng.gen_index(0, 6))
                    .map(|_| outcome(&mut rng))
                    .collect(),
            };
            round_trip(&report);
        }
    }

    #[test]
    fn shard_manifests_round_trip() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..25 {
            let manifest = ShardManifest {
                shard: rng.gen_index(0, 8),
                shards: rng.gen_index(1, 9),
                mode: match rng.gen_index(0, 4) {
                    0 => ShardMode::Scenarios,
                    1 => ShardMode::Falsifier,
                    2 => ShardMode::Search,
                    _ => ShardMode::Check,
                },
                protocol: label(&mut rng),
                threads: rng.gen_index(0, 9),
                entries: (0..rng.gen_index(0, 5))
                    .map(|i| ShardEntry {
                        index: i * 3,
                        seed: rng.next_u64(),
                        point: point(&mut rng),
                    })
                    .collect(),
            };
            round_trip(&manifest);
        }
    }

    #[test]
    fn shard_reports_round_trip() {
        let mut rng = SimRng::seed_from_u64(6);
        for _ in 0..25 {
            let report: ShardReport<ScenarioStats<Bit>> = ShardReport {
                shard: rng.gen_index(0, 8),
                outcomes: (0..rng.gen_index(0, 5))
                    .map(|i| {
                        let result = if rng.gen_bool(0.8) {
                            Ok(stats(&mut rng))
                        } else {
                            Err(sim_error(&mut rng))
                        };
                        (i * 7, result)
                    })
                    .collect(),
            };
            round_trip(&report);
        }
    }

    #[test]
    fn decode_rejects_trailing_input() {
        let mut wire = CampaignPoint::new(4, 1).to_wire();
        wire.push_str("point n=5 t=1 adv=none inputs=default\n");
        assert!(matches!(
            CampaignPoint::from_wire(&wire),
            Err(WireError::Trailing { .. })
        ));
    }

    #[test]
    fn decode_reports_tag_mismatches_and_eof() {
        assert!(matches!(
            CampaignPoint::from_wire("stats mc=1\n"),
            Err(WireError::Tag { .. })
        ));
        assert!(matches!(
            CampaignPoint::from_wire(""),
            Err(WireError::Eof { .. })
        ));
        assert!(matches!(
            CampaignPoint::from_wire("point n=4\n"),
            Err(WireError::Field { .. })
        ));
    }

    #[test]
    fn errors_display_informatively() {
        let err = CampaignPoint::from_wire("point n=x t=1 adv=a inputs=b\n").unwrap_err();
        assert!(err.to_string().contains('n'), "{err}");
        let err = WireError::Eof {
            expected: "report".into(),
        };
        assert!(err.to_string().contains("report"));
    }

    // -----------------------------------------------------------------------
    // Adversarial-input hardening: every wire type must survive arbitrary
    // mutations of a valid encoding — truncation mid-byte, line surgery,
    // garbage splices, byte flips — with a typed `WireError`, never a panic.
    // If a mutation happens to still decode, the value must be internally
    // consistent (it re-encodes, and its re-encoding round-trips).
    // -----------------------------------------------------------------------

    /// Feeds every mutation of `wire` to the decoder. Success is simply not
    /// panicking; accidental `Ok`s must re-encode stably.
    fn assault<T: Encode + Decode + PartialEq + fmt::Debug>(value: &T, rng: &mut SimRng) {
        let wire = value.to_wire();
        let mut mutations: Vec<String> = Vec::new();
        // Byte truncations, including mid-UTF-8 (lossy repair mimics what a
        // cut TCP stream or killed process delivers after text recovery).
        let bytes = wire.as_bytes();
        for k in 0..bytes.len() {
            if k % 3 == 0 || k + 4 >= bytes.len() {
                mutations.push(String::from_utf8_lossy(&bytes[..k]).into_owned());
            }
        }
        let lines: Vec<&str> = wire.lines().collect();
        if !lines.is_empty() {
            // Remove one line, duplicate one line, swap two lines.
            let mut removed = lines.clone();
            removed.remove(rng.gen_index(0, lines.len()));
            mutations.push(removed.join("\n") + "\n");
            let mut duplicated = lines.clone();
            let dup_at = rng.gen_index(0, lines.len());
            duplicated.insert(dup_at, lines[dup_at]);
            mutations.push(duplicated.join("\n") + "\n");
            let mut swapped = lines.clone();
            swapped.swap(rng.gen_index(0, lines.len()), rng.gen_index(0, lines.len()));
            mutations.push(swapped.join("\n") + "\n");
        }
        // Garbage splices at a random line boundary.
        for garbage in [
            "garbage\n",
            "outcome index=0 sum=dead data=beef\n",
            "point n=1\n",
            "=\n",
            "% %% %%%\n",
        ] {
            let mut spliced = String::new();
            let at = rng.gen_index(0, lines.len() + 1);
            for (i, line) in lines.iter().enumerate() {
                if i == at {
                    spliced.push_str(garbage);
                }
                spliced.push_str(line);
                spliced.push('\n');
            }
            if at == lines.len() {
                spliced.push_str(garbage);
            }
            mutations.push(spliced);
        }
        // Byte flips (lossy-repaired so the input is a `str` again — the
        // raw-bytes case is the transports' job; decoders take `&str`).
        for _ in 0..8 {
            let mut flipped = bytes.to_vec();
            if flipped.is_empty() {
                break;
            }
            let at = rng.gen_index(0, flipped.len());
            flipped[at] = rng.next_u64() as u8;
            mutations.push(String::from_utf8_lossy(&flipped).into_owned());
        }

        for mutated in &mutations {
            match T::from_wire(mutated) {
                Ok(value) => {
                    // An accidental success must be a self-consistent value.
                    let rewire = value.to_wire();
                    let again = T::from_wire(&rewire).unwrap_or_else(|e| {
                        panic!("re-encoding of an accepted mutation failed to decode: {e}")
                    });
                    assert_eq!(again, value);
                }
                Err(e) => {
                    // The typed error must render without panicking.
                    let _ = e.to_string();
                }
            }
        }
    }

    #[test]
    fn decoders_survive_adversarial_mutations_of_every_wire_type() {
        let mut rng = SimRng::seed_from_u64(0xADE5A17);
        for _ in 0..12 {
            assault(&point(&mut rng), &mut rng);
            assault(&sim_error(&mut rng), &mut rng);
            assault(&stats(&mut rng), &mut rng);
            assault(&outcome(&mut rng), &mut rng);
            let report = CampaignReport {
                outcomes: (0..rng.gen_index(1, 4))
                    .map(|_| outcome(&mut rng))
                    .collect(),
            };
            assault(&report, &mut rng);
            let entry = ShardEntry {
                index: rng.gen_index(0, 99),
                seed: rng.next_u64(),
                point: point(&mut rng),
            };
            assault(&entry, &mut rng);
            let manifest = ShardManifest {
                shard: 0,
                shards: 2,
                mode: ShardMode::Scenarios,
                protocol: label(&mut rng),
                threads: 0,
                entries: vec![entry],
            };
            assault(&manifest, &mut rng);
            let shard_report: ShardReport<ScenarioStats<Bit>> = ShardReport {
                shard: rng.gen_index(0, 8),
                outcomes: vec![(0, Ok(stats(&mut rng))), (1, Err(sim_error(&mut rng)))],
            };
            assault(&shard_report, &mut rng);
            let point_outcome: PointOutcome<ScenarioStats<Bit>> = PointOutcome {
                index: rng.gen_index(0, 99),
                result: if rng.gen_bool(0.5) {
                    Ok(stats(&mut rng))
                } else {
                    Err(sim_error(&mut rng))
                },
            };
            assault(&point_outcome, &mut rng);
            let failure = ShardFailure {
                shard: rng.gen_index(0, 8),
                attempts: rng.gen_index(1, 5),
                last: label(&mut rng),
            };
            assault(&failure, &mut rng);
            let partial: PartialSweep<ScenarioStats<Bit>> = PartialSweep {
                grid_len: 4,
                outcomes: vec![(0, Ok(stats(&mut rng))), (2, Err(sim_error(&mut rng)))],
                missing: vec![1, 3],
                failures: vec![failure],
            };
            assault(&partial, &mut rng);
        }
    }

    #[test]
    fn checksummed_outcome_lines_reject_any_single_character_corruption() {
        // The streamed `outcome` line is the one record harvested mid-crash,
        // so its integrity bar is higher: *any* corruption of the data field
        // must be detected by the checksum — a typed error, never a wrong
        // value decoded as if it were good.
        let mut rng = SimRng::seed_from_u64(0xC4EC);
        let original: PointOutcome<ScenarioStats<Bit>> = PointOutcome {
            index: 3,
            result: Ok(stats(&mut rng)),
        };
        let wire = original.to_wire();
        let data_start = wire.find(" data=").expect("data field") + " data=".len();
        for at in data_start..wire.trim_end().len() {
            for replacement in ['0', 'z', '~'] {
                let mut mutated = wire.clone();
                // Replace one character of the escaped payload.
                mutated.replace_range(at..at + 1, &replacement.to_string());
                if mutated == wire {
                    continue;
                }
                match PointOutcome::<ScenarioStats<Bit>>::from_wire(&mutated) {
                    Ok(decoded) => assert_eq!(
                        decoded, original,
                        "a corrupted line decoded to a different value"
                    ),
                    Err(e) => {
                        let _ = e.to_string();
                    }
                }
            }
        }
    }
}
