//! The chaos-invariance property of the campaign fabric, end to end over
//! in-process streaming transports:
//!
//! * **recoverable** chaos schedules (faults that relent within the retry
//!   budget) must merge **bit-identically** to the unfaulted run — for
//!   every fault family (crash, stall, truncate, corrupt, drop) over a
//!   grid of chaos seeds;
//! * **unrecoverable** schedules must degrade to a [`PartialSweep`] whose
//!   merged outcomes + missing-coverage map exactly partition the planned
//!   grid — never a panic, never a silently wrong value;
//! * retry and error counters in [`LiveAggregates`] must match the
//!   injected schedule **exactly**, computed a priori from the pure
//!   [`ChaosPlan::fault_for`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ba_dist::{
    Backoff, ChaosFaultKind, ChaosPlan, ChaosTransport, CoordEvent, Coordinator, Decode, DistError,
    Encode, LiveAggregates, PartialSweep, PointOutcome, ProgressEvent, ShardManifest, ShardReport,
    SweepSpec, WireError, WireReader,
};
use ba_sim::{CampaignPoint, SimError};

/// A minimal wire type whose value binds the point's seed and index, so a
/// wrong re-plan (bad seed, swapped index) shows up as a value mismatch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Tok(u64);

impl Encode for Tok {
    fn encode(&self, out: &mut String) {
        out.push_str(&format!("tok v={}\n", self.0));
    }
}

impl Decode for Tok {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Tok(reader.record("tok")?.parse_field("v")?))
    }
}

fn spec(len: usize) -> SweepSpec {
    SweepSpec::scenarios(
        (0..len).map(|i| CampaignPoint::new(4 + i % 7, 1).with_inputs("ones")),
        "test",
    )
    .base_seed(0x5EED)
}

/// Whether the echo marks a point as a simulator error (exercising the
/// `Err` half of every outcome wire line).
fn is_err_point(index: usize) -> bool {
    index % 5 == 0
}

/// An in-process worker in `--stream --progress` dress: one progress JSONL
/// line + one checksummed outcome line per entry, then the full report —
/// exactly the line shapes the real `campaign_worker` emits, so chaos
/// faults cut/garble the same kind of stream the process transport carries.
fn streaming_echo(manifest: &ShardManifest) -> Result<String, DistError> {
    let mut out = String::new();
    let mut outcomes = Vec::new();
    for (done, entry) in manifest.entries.iter().enumerate() {
        let result: Result<Tok, SimError> = if is_err_point(entry.index) {
            Err(SimError::InvalidResilience { n: 1, t: 1 })
        } else {
            Ok(Tok(entry.seed ^ entry.index as u64))
        };
        out.push_str(
            &ProgressEvent {
                shard: manifest.shard,
                shards: manifest.shards,
                done: done + 1,
                total: manifest.entries.len(),
                index: entry.index,
                messages: 7,
                rounds: 1,
                ok: result.is_ok(),
                elapsed_nanos: (done as u64 + 1) * 1_000,
            }
            .to_json_line(),
        );
        out.push('\n');
        PointOutcome {
            index: entry.index,
            result: result.clone(),
        }
        .encode(&mut out);
        outcomes.push((entry.index, result));
    }
    out.push_str(
        &ShardReport {
            shard: manifest.shard,
            outcomes,
        }
        .to_wire(),
    );
    Ok(out)
}

type EchoFn = fn(&ShardManifest) -> Result<String, DistError>;

fn reference(spec: &SweepSpec) -> Vec<Result<Tok, SimError>> {
    Coordinator::new(streaming_echo as EchoFn, 1)
        .run::<Tok>(spec)
        .expect("unfaulted reference")
}

fn chaos_coordinator(plan: ChaosPlan, shards: usize) -> Coordinator<ChaosTransport<EchoFn>> {
    Coordinator::new(ChaosTransport::new(streaming_echo as EchoFn, plan), shards)
        .backoff(Backoff::none())
        .watchdog(Duration::from_millis(100))
}

#[test]
fn recoverable_chaos_schedules_merge_bit_identically() {
    let spec = spec(23);
    let want = reference(&spec);
    // Twelve seeds × the full fault mix (rate 0.7, relents after 2 faulted
    // attempts per shard): with 4 retries every shard must eventually land
    // every point, and the merge must be bit-for-bit the unfaulted value.
    for seed in 0..12u64 {
        let got = chaos_coordinator(ChaosPlan::new(seed), 4)
            .retries(4)
            .run::<Tok>(&spec)
            .unwrap_or_else(|e| panic!("seed {seed}: recoverable schedule failed: {e}"));
        assert_eq!(got, want, "seed {seed}: merged value diverged");
    }
}

#[test]
fn each_fault_family_is_recoverable_in_isolation() {
    let spec = spec(17);
    let want = reference(&spec);
    for kind in ba_dist::ALL_CHAOS_KINDS {
        for seed in 0..4u64 {
            let plan = ChaosPlan::new(seed ^ 0xFA_u64).kinds(&[kind]).rate(1.0);
            let got = chaos_coordinator(plan, 3)
                .retries(4)
                .run::<Tok>(&spec)
                .unwrap_or_else(|e| panic!("{kind:?} seed {seed}: failed: {e}"));
            assert_eq!(got, want, "{kind:?} seed {seed}: merged value diverged");
        }
    }
}

/// `outcomes` (by index) and `missing` must exactly partition `0..grid_len`.
fn assert_partition(partial: &PartialSweep<Tok>, grid_len: usize) {
    assert_eq!(partial.grid_len, grid_len);
    let mut all: Vec<usize> = partial.outcomes.iter().map(|(i, _)| *i).collect();
    all.extend(&partial.missing);
    all.sort_unstable();
    assert_eq!(
        all,
        (0..grid_len).collect::<Vec<_>>(),
        "outcomes + missing must partition the grid exactly"
    );
}

#[test]
fn unrecoverable_chaos_degrades_to_an_exact_partition() {
    let spec = spec(19);
    let want = reference(&spec);
    for seed in 0..8u64 {
        let coordinator = chaos_coordinator(ChaosPlan::unrecoverable(seed), 4).retries(1);
        let partial = coordinator.run_partial::<Tok>(&spec);
        assert_partition(&partial, 19);
        // Whatever DID survive must carry the correct (reference) value —
        // degradation never substitutes wrong data.
        for (index, result) in &partial.outcomes {
            assert_eq!(result, &want[*index], "seed {seed}: index {index}");
        }
        // An incomplete sweep must record its failures and fail the strict
        // entry point with Exhausted.
        if !partial.is_complete() {
            assert!(!partial.failures.is_empty(), "seed {seed}");
            let err = coordinator.run::<Tok>(&spec).unwrap_err();
            assert!(
                matches!(err, DistError::Exhausted { .. }),
                "seed {seed}: {err}"
            );
        }
    }
}

#[test]
fn total_connection_loss_forfeits_every_point() {
    // Drop-only at rate 1.0, never relenting: no attempt ever opens, so
    // the partial sweep must be the empty cover with every shard failed.
    let spec = spec(9);
    let plan = ChaosPlan::unrecoverable(7).kinds(&[ChaosFaultKind::Drop]);
    let coordinator = chaos_coordinator(plan, 3).retries(2);
    let partial = coordinator.run_partial::<Tok>(&spec);
    assert_partition(&partial, 9);
    assert!(partial.outcomes.is_empty());
    assert_eq!(partial.missing.len(), 9);
    assert_eq!(partial.failures.len(), 3);
    for failure in &partial.failures {
        assert_eq!(failure.attempts, 3, "1 + retries(2)");
        assert!(failure.last.contains("chaos"), "{}", failure.last);
    }
    let (covered, grid) = partial.coverage();
    assert_eq!((covered, grid), (0, 9));
}

#[test]
fn retry_and_error_counters_match_the_injected_schedule_exactly() {
    // Drop-only faults relenting after 2 attempts: the pure fault_for
    // function predicts the entire retry schedule a priori, and the
    // observer's LiveAggregates must land on exactly those numbers.
    let spec = spec(20);
    let shards = 4;
    let plan = ChaosPlan::new(0xACC7)
        .kinds(&[ChaosFaultKind::Drop])
        .rate(1.0)
        .relent_after(Some(2));

    // Expected retries per shard, computed from the plan alone: one Retry
    // event per faulted attempt (the attempt's points survive to a later
    // attempt because Drop delivers nothing and the budget is not yet
    // exhausted).
    let expected_retries: Vec<usize> = (0..shards)
        .map(|shard| {
            (1..=2usize)
                .filter(|attempt| plan.fault_for(shard, *attempt) != ba_dist::ChaosFault::None)
                .count()
        })
        .collect();
    assert_eq!(expected_retries, vec![2; shards], "rate-1.0 sanity");

    // Expected per-shard error counts: the echo marks every index%5==0
    // point as a simulator error, and each such point produces exactly one
    // ok=false progress event on the (single) successful attempt.
    let manifests = ba_dist::plan_shards(&spec, shards);
    let expected_errors: Vec<usize> = manifests
        .iter()
        .map(|m| m.entries.iter().filter(|e| is_err_point(e.index)).count())
        .collect();

    let live = Arc::new(Mutex::new(LiveAggregates::new()));
    let done_events = Arc::new(AtomicUsize::new(0));
    let (live_in, done_in) = (live.clone(), done_events.clone());
    let got = chaos_coordinator(plan, shards)
        .retries(4)
        .on_event(move |event| {
            if matches!(event, CoordEvent::ShardDone { .. }) {
                done_in.fetch_add(1, Ordering::SeqCst);
            }
            live_in.lock().unwrap().ingest_coord(event);
        })
        .run::<Tok>(&spec)
        .expect("relenting schedule recovers");
    assert_eq!(got, reference(&spec));

    let live = live.lock().unwrap();
    for shard in 0..shards {
        let progress = &live.shards()[&shard];
        assert_eq!(
            progress.retries, expected_retries[shard],
            "shard {shard}: retry counter must match the injected schedule"
        );
        assert_eq!(
            progress.errors, expected_errors[shard],
            "shard {shard}: error counter must match the marked points"
        );
        assert_eq!(progress.done, manifests[shard].entries.len());
    }
    assert_eq!(done_events.load(Ordering::SeqCst), shards);
    assert!(live.is_complete());
    assert_eq!(live.partial_coverage(), None);
}

#[test]
fn partial_campaign_reports_partition_the_grid_and_render_json() {
    // The campaign-level (typed PartialReport) face of degradation, over
    // real ScenarioStats outcomes is covered in ba-bench; here the sweep
    // level: coverage summary + JSON must reflect the exact maps.
    let spec = spec(12);
    let plan = ChaosPlan::unrecoverable(3).kinds(&[ChaosFaultKind::Drop]);
    let partial = chaos_coordinator(plan, 3)
        .retries(0)
        .run_partial::<Tok>(&spec);
    assert_partition(&partial, 12);
    assert!(!partial.is_complete());
    match partial.into_complete() {
        Ok(_) => panic!("an empty cover must not report complete"),
        Err(partial) => {
            assert_eq!(partial.missing.len(), 12);
            assert_eq!(partial.failures.len(), 3);
        }
    }
}
