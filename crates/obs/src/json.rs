//! A minimal hand-rolled JSON codec for the telemetry stream.
//!
//! The workspace builds with zero external dependencies, so the JSONL
//! emitter ([`JsonlRecorder`](crate::JsonlRecorder)) and its consumers
//! (the coordinator's progress ingestion, `campaign_watch`) share this
//! small escape/parse pair instead of serde. It follows the same
//! line-oriented discipline as the `ba-dist` wire format: one
//! self-contained record per line, strict parse, no streaming state.

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve key order (telemetry lines are
/// emitted with a fixed key order, so round-trips are byte-stable).
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; telemetry values fit exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one JSON line. Returns `None` on any syntax error or trailing
/// garbage — telemetry consumers skip unparseable lines rather than fail.
pub fn parse_json_line(line: &str) -> Option<Json> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(value)
    } else {
        None
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Option<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Some(value)
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        match self.bytes.get(self.pos)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}').is_some() {
            return Some(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b'}')?;
            return Some(Json::Obj(fields));
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']').is_some() {
            return Some(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b']')?;
            return Some(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 code point from the remainder.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Json::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_and_nested_objects() {
        let line = r#"{"type":"point","shard":1,"done":3,"rate":12.5,"ok":true,"labels":{"adv":"none"},"xs":[1,2]}"#;
        let v = parse_json_line(line).expect("parses");
        assert_eq!(v.get("type").and_then(Json::as_str), Some("point"));
        assert_eq!(v.get("shard").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("rate").and_then(Json::as_f64), Some(12.5));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("labels")
                .and_then(|l| l.get("adv"))
                .and_then(Json::as_str),
            Some("none")
        );
        assert_eq!(
            v.get("xs"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]))
        );
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}π";
        let line = format!("{{\"k\":\"{}\"}}", json_escape(nasty));
        let v = parse_json_line(&line).expect("parses");
        assert_eq!(v.get("k").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn rejects_garbage_and_trailing_content() {
        assert_eq!(parse_json_line("not json"), None);
        assert_eq!(parse_json_line("{\"a\":1} trailing"), None);
        assert_eq!(parse_json_line("{\"a\":}"), None);
        assert_eq!(parse_json_line(""), None);
        // Wire-format lines (the shard report) never parse as JSON.
        assert_eq!(parse_json_line("report count=3"), None);
    }

    #[test]
    fn negative_and_fractional_numbers() {
        let v = parse_json_line("{\"a\":-3,\"b\":2.5e2}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(-3.0));
        assert_eq!(v.get("a").and_then(Json::as_u64), None);
        assert_eq!(v.get("b").and_then(Json::as_u64), Some(250));
    }
}
