//! # ba-obs — metrics + structured-event telemetry
//!
//! The paper's Ω(n·t) lower bounds (Civit–Gilbert–Guerraoui et al., PODC
//! 2024) are *message-count* statements, so the reproduction's first-class
//! observables are counts: messages per round, decision rounds,
//! corruption-budget spend, points per second in a campaign sweep. This
//! crate is the instrument: a dependency-free metrics registry (monotonic
//! counters, gauges, fixed-bucket histograms) plus a structured-event API
//! (spans and events with key–value fields) behind a pluggable [`Recorder`]
//! trait.
//!
//! ## The two channels
//!
//! Telemetry is **observation-only** and split into two channels:
//!
//! * the **deterministic channel** — [`Recorder::counter`],
//!   [`Recorder::histogram`], [`Recorder::event`] — carries *logical*
//!   quantities (messages, rounds, budget spend). Instrumented code must
//!   emit these in a schedule-independent way, so aggregated values are
//!   bit-identical across thread counts and shardings
//!   ([`Snapshot::deterministic`] is `Eq` and mergeable);
//! * the **wall-clock channel** — [`Recorder::timing`],
//!   [`Recorder::gauge`] — carries durations and rates. It is never part
//!   of a determinism comparison.
//!
//! ## Recorders
//!
//! * [`NoopRecorder`] — the zero-cost default: every method is an empty
//!   default body, so uninstrumented runs pay nothing;
//! * [`Aggregator`] — a thread-safe in-memory registry; snapshot it at the
//!   end of a run ([`Aggregator::snapshot`]);
//! * [`JsonlRecorder`] — streams one JSON line per record to any writer
//!   (the format `campaign_worker --progress` and `campaign_watch` speak);
//!   [`parse_json_line`] is the matching hand-rolled parser.
//!
//! ```
//! use ba_obs::{Aggregator, Recorder, Span};
//!
//! let agg = Aggregator::new();
//! agg.counter("exec.messages.sent", 12, &[]);
//! agg.histogram("exec.decision.rounds", 3, &[]);
//! {
//!     let _span = Span::enter(&agg, "sweep.wall"); // wall channel, on drop
//! }
//! let snap = agg.snapshot();
//! assert_eq!(snap.counters["exec.messages.sent"], 12);
//! assert_eq!(snap.deterministic(), agg.snapshot().deterministic());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod metrics;

pub use json::{json_escape, parse_json_line, Json};
pub use metrics::{
    bucket_index, Aggregator, DeterministicSnapshot, HistogramSnapshot, Snapshot, TimingStat,
    BUCKET_BOUNDS,
};

use std::fmt;
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

/// A field value attached to a structured event.
#[derive(Clone, PartialEq, Debug)]
pub enum FieldValue {
    /// An unsigned integer (counts, ids, rounds).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point value.
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// A string label.
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// The pluggable telemetry backend. Every method has an empty default
/// body, so the [`NoopRecorder`] is literally zero code and custom
/// recorders override only the signals they care about.
///
/// Method contract (the deterministic/wall split the whole repo relies
/// on): [`counter`](Recorder::counter), [`histogram`](Recorder::histogram)
/// and [`event`](Recorder::event) must only ever receive *logical*
/// quantities — values derived from the execution model, never from the
/// clock or the scheduler — while [`timing`](Recorder::timing) and
/// [`gauge`](Recorder::gauge) carry wall-clock observations that are
/// reported but never compared.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the monotonic counter `name`. Deterministic channel.
    fn counter(&self, _name: &str, _delta: u64, _labels: &[(&str, &str)]) {}

    /// Sets the gauge `name` to `value`. Wall-clock channel.
    fn gauge(&self, _name: &str, _value: f64, _labels: &[(&str, &str)]) {}

    /// Observes `value` in the fixed-bucket histogram `name` (bucket
    /// bounds: [`BUCKET_BOUNDS`]). Deterministic channel.
    fn histogram(&self, _name: &str, _value: u64, _labels: &[(&str, &str)]) {}

    /// Emits a structured event with key–value fields. Deterministic
    /// channel: fields must be logical values.
    fn event(&self, _name: &str, _fields: &[(&str, FieldValue)]) {}

    /// Observes a wall-clock duration in nanoseconds. Wall-clock channel —
    /// never part of a determinism comparison.
    fn timing(&self, _name: &str, _nanos: u64, _labels: &[(&str, &str)]) {}
}

/// The zero-cost default recorder: discards everything.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Blanket passthrough so `&R` and boxed/arc'd recorders record too.
impl<R: Recorder + ?Sized> Recorder for &R {
    fn counter(&self, name: &str, delta: u64, labels: &[(&str, &str)]) {
        (**self).counter(name, delta, labels)
    }
    fn gauge(&self, name: &str, value: f64, labels: &[(&str, &str)]) {
        (**self).gauge(name, value, labels)
    }
    fn histogram(&self, name: &str, value: u64, labels: &[(&str, &str)]) {
        (**self).histogram(name, value, labels)
    }
    fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        (**self).event(name, fields)
    }
    fn timing(&self, name: &str, nanos: u64, labels: &[(&str, &str)]) {
        (**self).timing(name, nanos, labels)
    }
}

impl<R: Recorder + ?Sized> Recorder for std::sync::Arc<R> {
    fn counter(&self, name: &str, delta: u64, labels: &[(&str, &str)]) {
        (**self).counter(name, delta, labels)
    }
    fn gauge(&self, name: &str, value: f64, labels: &[(&str, &str)]) {
        (**self).gauge(name, value, labels)
    }
    fn histogram(&self, name: &str, value: u64, labels: &[(&str, &str)]) {
        (**self).histogram(name, value, labels)
    }
    fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        (**self).event(name, fields)
    }
    fn timing(&self, name: &str, nanos: u64, labels: &[(&str, &str)]) {
        (**self).timing(name, nanos, labels)
    }
}

/// An RAII wall-clock span: records `timing(name, elapsed)` on the
/// recorder when dropped (or ended explicitly with [`Span::end`]).
///
/// Spans live entirely in the wall-clock channel; entering one emits
/// nothing deterministic.
pub struct Span<'r> {
    recorder: &'r dyn Recorder,
    name: &'r str,
    start: Instant,
}

impl<'r> Span<'r> {
    /// Enters a span named `name` on `recorder`.
    pub fn enter(recorder: &'r dyn Recorder, name: &'r str) -> Self {
        Span {
            recorder,
            name,
            start: Instant::now(),
        }
    }

    /// Ends the span now (otherwise it ends when dropped).
    pub fn end(self) {}

    /// Nanoseconds elapsed since the span was entered.
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.recorder.timing(self.name, self.elapsed_nanos(), &[]);
    }
}

/// A [`Recorder`] that writes one JSON line per record to a writer —
/// the stream format of `campaign_worker --progress` and the
/// `campaign_watch` dashboard, parseable with [`parse_json_line`].
///
/// Line shapes (labels/fields omitted when empty):
///
/// ```json
/// {"type":"counter","name":"exec.messages.sent","value":12}
/// {"type":"gauge","name":"campaign.utilization","value":0.93}
/// {"type":"histogram","name":"exec.decision.rounds","value":3}
/// {"type":"event","name":"fault.corrupt","fields":{"round":2,"process":4}}
/// {"type":"timing","name":"campaign.point.wall","nanos":81235}
/// ```
///
/// Write errors are swallowed: telemetry must never fail a run.
pub struct JsonlRecorder<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonlRecorder<W> {
    /// Wraps a writer. Each record is written and flushed as one line so
    /// downstream consumers (pipes, the coordinator) see it promptly.
    pub fn new(out: W) -> Self {
        JsonlRecorder {
            out: Mutex::new(out),
        }
    }

    /// Unwraps the writer.
    pub fn into_inner(self) -> W {
        self.out.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    fn write_line(&self, line: &str) {
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    }

    fn scalar_line(
        &self,
        kind: &str,
        name: &str,
        value_key: &str,
        value: &str,
        labels: &[(&str, &str)],
    ) {
        let mut line = format!(
            "{{\"type\":\"{kind}\",\"name\":\"{}\",\"{value_key}\":{value}",
            json_escape(name)
        );
        if !labels.is_empty() {
            line.push_str(",\"labels\":{");
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            line.push('}');
        }
        line.push('}');
        self.write_line(&line);
    }
}

impl<W: Write + Send> Recorder for JsonlRecorder<W> {
    fn counter(&self, name: &str, delta: u64, labels: &[(&str, &str)]) {
        self.scalar_line("counter", name, "value", &delta.to_string(), labels);
    }

    fn gauge(&self, name: &str, value: f64, labels: &[(&str, &str)]) {
        self.scalar_line("gauge", name, "value", &format_f64(value), labels);
    }

    fn histogram(&self, name: &str, value: u64, labels: &[(&str, &str)]) {
        self.scalar_line("histogram", name, "value", &value.to_string(), labels);
    }

    fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        let mut line = format!("{{\"type\":\"event\",\"name\":\"{}\"", json_escape(name));
        if !fields.is_empty() {
            line.push_str(",\"fields\":{");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!("\"{}\":", json_escape(k)));
                match v {
                    FieldValue::Str(s) => line.push_str(&format!("\"{}\"", json_escape(s))),
                    FieldValue::F64(f) => line.push_str(&format_f64(*f)),
                    other => line.push_str(&other.to_string()),
                }
            }
            line.push('}');
        }
        line.push('}');
        self.write_line(&line);
    }

    fn timing(&self, name: &str, nanos: u64, labels: &[(&str, &str)]) {
        self.scalar_line("timing", name, "nanos", &nanos.to_string(), labels);
    }
}

/// Formats an `f64` as valid JSON (`NaN`/infinities become `null`).
fn format_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_accepts_everything() {
        let rec = NoopRecorder;
        rec.counter("c", 1, &[]);
        rec.gauge("g", 1.5, &[("a", "b")]);
        rec.histogram("h", 7, &[]);
        rec.event("e", &[("k", FieldValue::from("v"))]);
        rec.timing("t", 42, &[]);
        Span::enter(&rec, "span").end();
    }

    #[test]
    fn jsonl_recorder_emits_parseable_lines() {
        let rec = JsonlRecorder::new(Vec::new());
        rec.counter("exec.messages.sent", 12, &[("shard", "0")]);
        rec.event(
            "fault.corrupt",
            &[("round", 2u64.into()), ("process", "p4".into())],
        );
        rec.timing("point.wall", 81235, &[]);
        let out = String::from_utf8(rec.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);

        let counter = parse_json_line(lines[0]).expect("counter parses");
        assert_eq!(counter.get("type").and_then(Json::as_str), Some("counter"));
        assert_eq!(counter.get("value").and_then(Json::as_u64), Some(12));
        assert_eq!(
            counter
                .get("labels")
                .and_then(|l| l.get("shard"))
                .and_then(Json::as_str),
            Some("0")
        );

        let event = parse_json_line(lines[1]).expect("event parses");
        assert_eq!(
            event.get("name").and_then(Json::as_str),
            Some("fault.corrupt")
        );
        assert_eq!(
            event
                .get("fields")
                .and_then(|f| f.get("round"))
                .and_then(Json::as_u64),
            Some(2)
        );

        let timing = parse_json_line(lines[2]).expect("timing parses");
        assert_eq!(timing.get("nanos").and_then(Json::as_u64), Some(81235));
    }

    #[test]
    fn span_records_a_timing_on_drop() {
        let agg = Aggregator::new();
        Span::enter(&agg, "unit.wall").end();
        let snap = agg.snapshot();
        assert_eq!(snap.timings["unit.wall"].count, 1);
        // Wall-clock values never enter the deterministic snapshot.
        assert!(snap.deterministic().counters.is_empty());
    }

    #[test]
    fn arc_and_ref_recorders_pass_through() {
        let agg = std::sync::Arc::new(Aggregator::new());
        let as_dyn: std::sync::Arc<dyn Recorder> = agg.clone();
        as_dyn.counter("c", 2, &[]);
        let by_ref: &dyn Recorder = &*as_dyn;
        by_ref.counter("c", 3, &[]);
        assert_eq!(agg.snapshot().counters["c"], 5);
    }
}
