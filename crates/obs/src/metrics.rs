//! The in-memory metrics registry: fixed-bucket histograms, timing stats,
//! snapshots with a deterministic/wall-clock split, and the thread-safe
//! [`Aggregator`] recorder.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::{json_escape, FieldValue, Recorder};

/// Upper-inclusive bucket bounds shared by every histogram: powers of two
/// up to 1024, then powers of four. One implicit overflow bucket follows,
/// so [`HistogramSnapshot::counts`] has `BUCKET_BOUNDS.len() + 1` entries.
///
/// A fixed global layout keeps merged snapshots well-defined: histograms
/// from different shards always align bucket-for-bucket.
pub const BUCKET_BOUNDS: [u64; 17] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
];

/// The bucket index a value falls into (the overflow bucket is
/// `BUCKET_BOUNDS.len()`).
pub fn bucket_index(value: u64) -> usize {
    BUCKET_BOUNDS
        .iter()
        .position(|bound| value <= *bound)
        .unwrap_or(BUCKET_BOUNDS.len())
}

/// The state of one fixed-bucket histogram. Sums and counts are exact
/// `u64`s, so snapshots are `Eq` and merging is associative and
/// commutative — the property the `merge(k) == run(1)` telemetry
/// invariant rests on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`BUCKET_BOUNDS.len() + 1` entries,
    /// last = overflow).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram in (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Aggregated wall-clock timings for one span/timing name.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct TimingStat {
    /// Number of observations.
    pub count: u64,
    /// Total observed nanoseconds.
    pub total_nanos: u64,
    /// Largest single observation.
    pub max_nanos: u64,
}

impl TimingStat {
    /// Records one duration.
    pub fn observe(&mut self, nanos: u64) {
        self.count += 1;
        self.total_nanos = self.total_nanos.saturating_add(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Mean nanoseconds per observation (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.count as f64
        }
    }

    /// Folds another stat in.
    pub fn merge(&mut self, other: &TimingStat) {
        self.count += other.count;
        self.total_nanos = self.total_nanos.saturating_add(other.total_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }
}

/// A point-in-time copy of everything an [`Aggregator`] has seen.
///
/// Metric keys are `name` or `name{k=v,...}` when labels were supplied
/// (label order as emitted — instrumented code uses a fixed order).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Snapshot {
    /// Monotonic counters (deterministic channel).
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauges (wall-clock channel).
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms (deterministic channel).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Structured-event occurrence counts, keyed by event name
    /// (deterministic channel).
    pub events: BTreeMap<String, u64>,
    /// Wall-clock timing stats (wall-clock channel).
    pub timings: BTreeMap<String, TimingStat>,
}

/// The deterministic half of a [`Snapshot`]: logical counters, histograms
/// and event counts only. `Eq`, so tests can assert bit-identity across
/// thread counts and shardings; gauges and timings (wall-clock channel)
/// are deliberately absent.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DeterministicSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Event occurrence counts.
    pub events: BTreeMap<String, u64>,
}

impl Snapshot {
    /// The comparable (schedule-independent) part of this snapshot.
    pub fn deterministic(&self) -> DeterministicSnapshot {
        DeterministicSnapshot {
            counters: self.counters.clone(),
            histograms: self.histograms.clone(),
            events: self.events.clone(),
        }
    }

    /// Folds another snapshot in: counters/histograms/events/timings add,
    /// gauges take the other side's value (last write wins).
    ///
    /// Merging per-shard snapshots yields the same deterministic channel
    /// as one unsharded run — addition is associative and commutative.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
        for (k, v) in &other.events {
            *self.events.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.timings {
            self.timings.entry(k.clone()).or_default().merge(v);
        }
    }

    /// `true` iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
            && self.timings.is_empty()
    }

    /// A human-readable multi-line summary (deterministic metrics first,
    /// wall-clock metrics clearly separated).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<44} {v}");
            }
        }
        if !self.events.is_empty() {
            out.push_str("events:\n");
            for (k, v) in &self.events {
                let _ = writeln!(out, "  {k:<44} {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {k:<44} count={} mean={:.1} max={}",
                    h.count,
                    h.mean(),
                    h.max
                );
            }
        }
        if !self.gauges.is_empty() || !self.timings.is_empty() {
            out.push_str("wall-clock (not compared):\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<44} {v:.3}");
            }
            for (k, t) in &self.timings {
                let _ = writeln!(
                    out,
                    "  {k:<44} count={} mean={:.0}ns max={}ns",
                    t.count,
                    t.mean_nanos(),
                    t.max_nanos
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no telemetry recorded)\n");
        }
        out
    }

    /// Serializes the snapshot as JSONL: one line per metric, in the same
    /// shapes the [`JsonlRecorder`](crate::JsonlRecorder) streams, plus
    /// `{"type":"summary",...}` lines for histograms and timings.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
                json_escape(k)
            );
        }
        for (k, v) in &self.events {
            let _ = writeln!(
                out,
                "{{\"type\":\"event-count\",\"name\":\"{}\",\"value\":{v}}}",
                json_escape(k)
            );
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{{\"type\":\"summary\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"max\":{}}}",
                json_escape(k),
                h.count,
                h.sum,
                h.max
            );
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                json_escape(k),
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".into()
                }
            );
        }
        for (k, t) in &self.timings {
            let _ = writeln!(
                out,
                "{{\"type\":\"timing-summary\",\"name\":\"{}\",\"count\":{},\"total_nanos\":{},\"max_nanos\":{}}}",
                json_escape(k),
                t.count,
                t.total_nanos,
                t.max_nanos
            );
        }
        out
    }
}

/// A thread-safe in-memory [`Recorder`]: one mutex around a [`Snapshot`].
///
/// Contention is negligible at the rates instrumented code emits
/// (per-round and per-point, not per-message), and a single plain mutex
/// keeps the aggregation logic obviously correct.
#[derive(Debug, Default)]
pub struct Aggregator {
    state: Mutex<Snapshot>,
}

impl Aggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        Aggregator::default()
    }

    /// Copies out everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        self.state.lock().expect("aggregator lock poisoned").clone()
    }
}

/// Builds the metric key `name` or `name{k=v,...}`.
fn keyed(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16);
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key.push('}');
    key
}

impl Recorder for Aggregator {
    fn counter(&self, name: &str, delta: u64, labels: &[(&str, &str)]) {
        let mut state = self.state.lock().expect("aggregator lock poisoned");
        // Fast path for unlabeled metrics (the overwhelmingly common case
        // on the engine's per-round hot path): look up by `&str` first so
        // the key `String` is only allocated on the first observation.
        if labels.is_empty() {
            if let Some(c) = state.counters.get_mut(name) {
                *c += delta;
                return;
            }
        }
        *state.counters.entry(keyed(name, labels)).or_insert(0) += delta;
    }

    fn gauge(&self, name: &str, value: f64, labels: &[(&str, &str)]) {
        let mut state = self.state.lock().expect("aggregator lock poisoned");
        if labels.is_empty() {
            if let Some(g) = state.gauges.get_mut(name) {
                *g = value;
                return;
            }
        }
        state.gauges.insert(keyed(name, labels), value);
    }

    fn histogram(&self, name: &str, value: u64, labels: &[(&str, &str)]) {
        let mut state = self.state.lock().expect("aggregator lock poisoned");
        if labels.is_empty() {
            if let Some(h) = state.histograms.get_mut(name) {
                h.observe(value);
                return;
            }
        }
        state
            .histograms
            .entry(keyed(name, labels))
            .or_default()
            .observe(value);
    }

    fn event(&self, name: &str, _fields: &[(&str, FieldValue)]) {
        let mut state = self.state.lock().expect("aggregator lock poisoned");
        if let Some(c) = state.events.get_mut(name) {
            *c += 1;
            return;
        }
        state.events.insert(name.to_string(), 1);
    }

    fn timing(&self, name: &str, nanos: u64, labels: &[(&str, &str)]) {
        let mut state = self.state.lock().expect("aggregator lock poisoned");
        if labels.is_empty() {
            if let Some(t) = state.timings.get_mut(name) {
                t.observe(nanos);
                return;
            }
        }
        state
            .timings
            .entry(keyed(name, labels))
            .or_default()
            .observe(nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotonic_and_total() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKET_BOUNDS.len());
        for pair in BUCKET_BOUNDS.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn aggregator_sums_counters_and_buckets_histograms() {
        let agg = Aggregator::new();
        agg.counter("msgs", 3, &[]);
        agg.counter("msgs", 4, &[]);
        agg.counter("msgs", 1, &[("shard", "1")]);
        agg.histogram("rounds", 3, &[]);
        agg.histogram("rounds", 5000, &[]);
        agg.event("corrupt", &[("round", 1u64.into())]);
        agg.event("corrupt", &[("round", 2u64.into())]);
        let snap = agg.snapshot();
        assert_eq!(snap.counters["msgs"], 7);
        assert_eq!(snap.counters["msgs{shard=1}"], 1);
        let h = &snap.histograms["rounds"];
        assert_eq!((h.count, h.sum, h.max), (2, 5003, 5000));
        assert_eq!(h.counts[bucket_index(3)], 1);
        assert_eq!(h.counts[bucket_index(5000)], 1);
        assert_eq!(snap.events["corrupt"], 2);
        assert!((snap.histograms["rounds"].mean() - 2501.5).abs() < 1e-9);
    }

    #[test]
    fn merge_of_parts_equals_the_whole() {
        // The shard-merge property in miniature: recording a stream on one
        // aggregator equals recording its halves on two and merging.
        let whole = Aggregator::new();
        let a = Aggregator::new();
        let b = Aggregator::new();
        for i in 0..100u64 {
            let part = if i % 2 == 0 { &a } else { &b };
            for rec in [&whole, part] {
                rec.counter("c", i, &[]);
                rec.histogram("h", i * 37 % 4096, &[]);
                rec.event("e", &[]);
                rec.timing("t", i * 11, &[]);
            }
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.deterministic(), whole.snapshot().deterministic());
        // Timings merge too (though they are never *compared*).
        assert_eq!(merged.timings["t"].count, 100);
    }

    #[test]
    fn deterministic_snapshot_excludes_wall_clock() {
        let agg = Aggregator::new();
        agg.counter("c", 1, &[]);
        agg.gauge("utilization", 0.5, &[]);
        agg.timing("wall", 123, &[]);
        let det = agg.snapshot().deterministic();
        assert_eq!(det.counters.len(), 1);
        // A second run with wildly different wall-clock values is still
        // deterministically equal.
        let agg2 = Aggregator::new();
        agg2.counter("c", 1, &[]);
        agg2.gauge("utilization", 0.9, &[]);
        agg2.timing("wall", 456789, &[]);
        assert_eq!(det, agg2.snapshot().deterministic());
    }

    #[test]
    fn render_and_jsonl_are_stable_and_parseable() {
        let agg = Aggregator::new();
        agg.counter("campaign.points", 8, &[]);
        agg.histogram("exec.decision.rounds", 3, &[]);
        agg.gauge("campaign.utilization", 0.75, &[]);
        agg.timing("campaign.point.wall", 1000, &[]);
        let snap = agg.snapshot();
        let text = snap.render_text();
        assert!(text.contains("campaign.points"));
        assert!(text.contains("wall-clock (not compared):"));
        for line in snap.to_jsonl().lines() {
            assert!(
                crate::parse_json_line(line).is_some(),
                "unparseable jsonl line: {line}"
            );
        }
        assert!(Snapshot::default().is_empty());
        assert!(!snap.is_empty());
    }
}
