//! Protocol-specific adversary strategies used to validate the correct
//! protocols under adversarial pressure: Byzantine slot behaviors
//! ([`ByzantineBehavior`]) and execution-observing fault models
//! ([`FaultModel`]).
//!
//! Every attack here is constructed from capabilities the adversary
//! legitimately has: its own keychain, messages it observed, knowledge of
//! the protocol's public schedule, and arbitrary scheduling of type-correct
//! payloads. None can forge signatures (`ba-crypto` prevents it by
//! construction).

use std::collections::BTreeSet;

use ba_crypto::Keychain;
use ba_sim::{
    Bit, ByzantineBehavior, ExecutionView, FaultBudget, FaultDirective, FaultModel, Inbox, Outbox,
    ProcessCtx, ProcessId, Round, Routing, Value,
};

use crate::dolev_strong::{DsBatch, DsEntry};
use crate::phase_king::PkMsg;
use crate::PhaseKing;
use ba_crypto::SignatureChain;

/// An equivocating Dolev-Strong *sender*: signs `v0` for even-indexed peers
/// and `v1` for odd-indexed peers in round 1, then stays silent.
///
/// A correct Dolev-Strong run detects the equivocation (two valid chains
/// exist) and every correct process decides the default — Agreement is
/// preserved, which the tests assert.
#[derive(Clone, Debug)]
pub struct TwoFacedSender<V> {
    keychain: Keychain,
    v0: V,
    v1: V,
}

impl<V: Value> TwoFacedSender<V> {
    /// Creates the attacker; `keychain` must be the designated sender's own.
    pub fn new(keychain: Keychain, v0: V, v1: V) -> Self {
        TwoFacedSender { keychain, v0, v1 }
    }
}

impl<V: Value> ByzantineBehavior<V, DsBatch<V>> for TwoFacedSender<V> {
    fn propose(&mut self, ctx: &ProcessCtx, _: V) -> Outbox<DsBatch<V>> {
        let chain0 = SignatureChain::originate(&self.keychain, &self.v0);
        let chain1 = SignatureChain::originate(&self.keychain, &self.v1);
        let mut out = Outbox::new();
        for peer in ctx.others() {
            let entry = if peer.index() % 2 == 0 {
                DsEntry {
                    value: self.v0.clone(),
                    chain: chain0.clone(),
                }
            } else {
                DsEntry {
                    value: self.v1.clone(),
                    chain: chain1.clone(),
                }
            };
            out.send(peer, DsBatch::new(vec![entry]));
        }
        out
    }

    fn round(&mut self, _: &ProcessCtx, _: Round, _: &Inbox<DsBatch<V>>) -> Outbox<DsBatch<V>> {
        Outbox::new()
    }
}

/// A colluding pair attacking Dolev-Strong: the faulty *sender* gives its
/// signed value only to a faulty *accomplice*, which withholds it until
/// round `inject_at` and then reveals the 2-link chain to a single target.
///
/// With the full `t + 1` rounds the target still relays in time and
/// Agreement survives — demonstrating why Dolev-Strong needs `t + 1` rounds.
/// This behavior plays the **accomplice**; pair it with a silent sender and
/// construct it with both keychains (both processes are faulty, so the
/// adversary legitimately holds both).
#[derive(Clone, Debug)]
pub struct LateInjector<V> {
    sender_keychain: Keychain,
    own_keychain: Keychain,
    value: V,
    inject_at: Round,
    target: ProcessId,
}

impl<V: Value> LateInjector<V> {
    /// Creates the accomplice. `inject_at` must be ≤ 2 for the 2-link chain
    /// to pass the length-≥-round check at the target.
    pub fn new(
        sender_keychain: Keychain,
        own_keychain: Keychain,
        value: V,
        inject_at: Round,
        target: ProcessId,
    ) -> Self {
        LateInjector {
            sender_keychain,
            own_keychain,
            value,
            inject_at,
            target,
        }
    }
}

impl<V: Value> ByzantineBehavior<V, DsBatch<V>> for LateInjector<V> {
    fn propose(&mut self, _: &ProcessCtx, _: V) -> Outbox<DsBatch<V>> {
        Outbox::new()
    }

    fn round(&mut self, _: &ProcessCtx, round: Round, _: &Inbox<DsBatch<V>>) -> Outbox<DsBatch<V>> {
        let mut out = Outbox::new();
        // Emitting in round `k` processing means delivery in round `k + 1`.
        if round.next() == self.inject_at {
            let chain = SignatureChain::originate(&self.sender_keychain, &self.value)
                .extend(&self.own_keychain, &self.value);
            out.send(
                self.target,
                DsBatch::new(vec![DsEntry {
                    value: self.value.clone(),
                    chain,
                }]),
            );
        }
        out
    }
}

/// An equivocating EIG general: sends `v0` to even-indexed peers and `v1`
/// to odd-indexed peers in round 1, then relays nothing.
///
/// Unlike the Dolev-Strong sender, no signatures constrain it — the EIG
/// tree's majority resolution (with `n > 3t`) is what keeps correct
/// processes in agreement, which the tests assert.
#[derive(Clone, Debug)]
pub struct TwoFacedGeneral<V> {
    v0: V,
    v1: V,
}

impl<V: Value> TwoFacedGeneral<V> {
    /// Creates the attacker (it must be the designated general to matter).
    pub fn new(v0: V, v1: V) -> Self {
        TwoFacedGeneral { v0, v1 }
    }
}

impl<V: Value> ByzantineBehavior<V, crate::eig::EigMsg<V>> for TwoFacedGeneral<V> {
    fn propose(&mut self, ctx: &ProcessCtx, _: V) -> Outbox<crate::eig::EigMsg<V>> {
        let mut out = Outbox::new();
        for peer in ctx.others() {
            let v = if peer.index() % 2 == 0 {
                self.v0.clone()
            } else {
                self.v1.clone()
            };
            let msg: crate::eig::EigMsg<V> = [(Vec::new(), v)].into_iter().collect();
            out.send(peer, msg);
        }
        out
    }

    fn round(
        &mut self,
        _: &ProcessCtx,
        _: Round,
        _: &Inbox<crate::eig::EigMsg<V>>,
    ) -> Outbox<crate::eig::EigMsg<V>> {
        Outbox::new()
    }
}

/// A Phase-King equivocator: reports `0` to even peers and `1` to odd peers
/// in every exchange, claims `UNSURE` support, and stays silent as king.
#[derive(Clone, Copy, Debug, Default)]
pub struct SplitReporter;

impl SplitReporter {
    /// Creates the attacker.
    pub fn new() -> Self {
        SplitReporter
    }

    fn split(ctx: &ProcessCtx) -> Outbox<PkMsg> {
        let mut out = Outbox::new();
        for peer in ctx.others() {
            let bit = if peer.index() % 2 == 0 {
                Bit::Zero
            } else {
                Bit::One
            };
            out.send(peer, PkMsg::Report(bit));
        }
        out
    }
}

impl ByzantineBehavior<Bit, PkMsg> for SplitReporter {
    fn propose(&mut self, ctx: &ProcessCtx, _: Bit) -> Outbox<PkMsg> {
        Self::split(ctx)
    }

    fn round(&mut self, ctx: &ProcessCtx, round: Round, _: &Inbox<PkMsg>) -> Outbox<PkMsg> {
        match round.0 % 3 {
            // Next round is an exchange-2: claim contradictory support.
            1 => {
                let mut out = Outbox::new();
                for peer in ctx.others() {
                    let w = if peer.index() % 2 == 0 { 0u8 } else { 1u8 };
                    out.send(peer, PkMsg::Support(w));
                }
                out
            }
            // Next round is a king round: stay silent (worst case if we are
            // king).
            2 => Outbox::new(),
            // Next round is an exchange-1 of the following phase.
            _ => Self::split(ctx),
        }
    }
}

/// The adaptive king silencer: a [`FaultModel`] attacking Phase King's one
/// structural weakness — the per-phase king broadcast.
///
/// The model knows the protocol's public king schedule
/// ([`PhaseKing::king_of_phase`]): at the start of every king round it
/// corrupts that phase's king **just in time** (spending one unit of its
/// budget) and send-omits the king's `PkMsg::King` broadcast, leaving every
/// correct process to fall back to its tentative value. A static adversary
/// must pick its victims before round 1; this adaptive one silences the
/// kings of the first `budget` phases exactly — the worst case the
/// `t + 1`-phase structure is designed to survive, which the tests assert.
#[derive(Clone, Debug, Default)]
pub struct KingSilencer {
    budget: usize,
    silenced: BTreeSet<ProcessId>,
}

impl KingSilencer {
    /// Silences the kings of the first `budget` phases (requires
    /// `budget ≤ t` at the scenario level).
    pub fn new(budget: usize) -> Self {
        KingSilencer {
            budget,
            silenced: BTreeSet::new(),
        }
    }

    /// The kings silenced so far.
    pub fn silenced(&self) -> &BTreeSet<ProcessId> {
        &self.silenced
    }

    /// The phase whose king broadcast is routed in `round`, if any.
    fn phase_of_king_round(round: Round) -> Option<u64> {
        (round.0 % 3 == 0).then_some(round.0 / 3)
    }
}

impl FaultModel<PkMsg> for KingSilencer {
    fn budget(&self) -> FaultBudget {
        FaultBudget::Adaptive(self.budget)
    }

    fn begin_round(&mut self, view: ExecutionView<'_>) -> Vec<FaultDirective> {
        let Some(phase) = Self::phase_of_king_round(view.round) else {
            return Vec::new();
        };
        let king = PhaseKing::king_of_phase(phase, view.n);
        if self.silenced.contains(&king) || self.silenced.len() >= self.budget {
            return Vec::new();
        }
        self.silenced.insert(king);
        vec![FaultDirective::Corrupt(king)]
    }

    fn route(
        &mut self,
        view: ExecutionView<'_>,
        sender: ProcessId,
        _receiver: ProcessId,
        payload: &PkMsg,
    ) -> Routing<PkMsg> {
        if Self::phase_of_king_round(view.round).is_some()
            && self.silenced.contains(&sender)
            && matches!(payload, PkMsg::King(_))
        {
            Routing::SendOmit
        } else {
            Routing::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DolevStrong;
    use ba_crypto::Keybook;
    use ba_sim::{Adversary, Scenario, SilentByzantine};

    #[test]
    fn two_faced_sender_is_caught_and_default_decided() {
        let (n, t) = (5, 2);
        let book = Keybook::new(n);
        let exec = Scenario::new(n, t)
            .protocol(DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero))
            .uniform_input(Bit::One)
            .adversary(Adversary::one_byzantine(
                ProcessId(0),
                TwoFacedSender::new(book.keychain(ProcessId(0)), Bit::Zero, Bit::One),
            ))
            .run()
            .unwrap();
        exec.validate().unwrap();
        // Equivocation detected: every correct process extracts both values
        // and decides the default 0, preserving Agreement.
        for pid in exec.correct() {
            assert_eq!(exec.decision_of(pid), Some(&Bit::Zero));
        }
    }

    #[test]
    fn two_faced_eig_general_cannot_split_correct_processes() {
        use crate::eig::EigBroadcast;
        let (n, t) = (4, 1);
        let exec = Scenario::new(n, t)
            .protocol(move |_| EigBroadcast::new(n, t, ProcessId(0), Bit::Zero))
            .uniform_input(Bit::Zero)
            .adversary(Adversary::one_byzantine(
                ProcessId(0),
                TwoFacedGeneral::new(Bit::Zero, Bit::One),
            ))
            .run()
            .unwrap();
        exec.validate().unwrap();
        let decisions: BTreeSet<_> = exec
            .correct()
            .map(|p| exec.decision_of(p).cloned())
            .collect();
        assert_eq!(
            decisions.len(),
            1,
            "agreement violated by equivocating general"
        );
        assert!(decisions.iter().all(|d| d.is_some()));
    }

    #[test]
    fn two_faced_eig_general_at_larger_scale() {
        use crate::eig::EigBroadcast;
        let (n, t) = (7, 2);
        let exec = Scenario::new(n, t)
            .protocol(move |_| EigBroadcast::new(n, t, ProcessId(0), Bit::Zero))
            .uniform_input(Bit::One)
            .adversary(Adversary::byzantine([
                (
                    ProcessId(0),
                    Box::new(TwoFacedGeneral::new(Bit::Zero, Bit::One)) as _,
                ),
                (ProcessId(6), Box::new(SilentByzantine) as _),
            ]))
            .run()
            .unwrap();
        let decisions: BTreeSet<_> = exec
            .correct()
            .map(|p| exec.decision_of(p).cloned())
            .collect();
        assert_eq!(decisions.len(), 1, "agreement violated");
    }

    #[test]
    fn king_silencer_mutes_exactly_the_first_budget_kings() {
        let (n, t) = (7, 2);
        let exec = Scenario::new(n, t)
            .protocol(move |_| PhaseKing::new(n, t))
            .inputs((0..n).map(|i| Bit::from(i % 2 == 0)))
            .adversary(Adversary::model(KingSilencer::new(t)))
            .run()
            .unwrap();
        exec.validate().unwrap();
        // The adaptive model corrupted the kings of phases 1 and 2, just in
        // time for their broadcasts; phase 3's king was left alone.
        assert_eq!(
            exec.faulty,
            [ProcessId(0), ProcessId(1)].into_iter().collect()
        );
        // The silenced broadcasts are recorded as send-omissions in the king
        // rounds (3 and 6).
        assert_eq!(
            exec.record(ProcessId(0)).fragments[2].send_omitted.len(),
            n - 1
        );
        assert_eq!(
            exec.record(ProcessId(1)).fragments[5].send_omitted.len(),
            n - 1
        );
        // With t + 1 = 3 phases there is a phase with an unsilenced king:
        // Agreement and Termination survive.
        let decisions: BTreeSet<_> = exec
            .correct()
            .map(|p| exec.decision_of(p).cloned())
            .collect();
        assert_eq!(decisions.len(), 1, "agreement violated by king silencer");
        assert!(decisions.iter().all(|d| d.is_some()));
    }

    #[test]
    fn king_silencer_budget_is_validated_against_t() {
        let (n, t) = (7, 2);
        let err = Scenario::new(n, t)
            .protocol(move |_| PhaseKing::new(n, t))
            .uniform_input(Bit::Zero)
            .adversary(Adversary::model(KingSilencer::new(t + 1)))
            .run()
            .unwrap_err();
        assert_eq!(err, ba_sim::SimError::InvalidResilience { n, t });
    }

    #[test]
    fn late_injection_still_reaches_everyone_within_t_plus_one_rounds() {
        let (n, t) = (5, 2);
        let book = Keybook::new(n);
        let exec = Scenario::new(n, t)
            .protocol(DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero))
            .uniform_input(Bit::Zero)
            .adversary(Adversary::byzantine([
                (ProcessId(0), Box::new(SilentByzantine) as _),
                (
                    ProcessId(1),
                    Box::new(LateInjector::new(
                        book.keychain(ProcessId(0)),
                        book.keychain(ProcessId(1)),
                        Bit::One,
                        Round(2),
                        ProcessId(2),
                    )) as _,
                ),
            ]))
            .run()
            .unwrap();
        exec.validate().unwrap();
        // The injected value propagates from the target to every correct
        // process by round t + 1 = 3, so all agree on One.
        let decisions: BTreeSet<_> = exec
            .correct()
            .map(|p| exec.decision_of(p).cloned())
            .collect();
        assert_eq!(decisions.len(), 1, "agreement violated");
        assert_eq!(decisions.into_iter().next().unwrap(), Some(Bit::One));
    }
}
