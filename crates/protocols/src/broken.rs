//! Deliberately *incorrect* sub-quadratic "weak consensus" protocols.
//!
//! The paper's Theorem 2 proves no weak consensus algorithm can exchange
//! fewer than `t²/32` messages in the worst case. These protocols try anyway
//! — `O(1)`, `O(n)`, or one-shot `O(n²)` messages — and are the targets that
//! `ba-core`'s falsifier (the executable form of the Theorem 2 proof)
//! defeats by constructing concrete violating executions.
//!
//! Each type documents *which* property it violates and in what kind of
//! execution; the falsifier and the integration tests find those executions
//! mechanically.

use ba_sim::{Bit, Inbox, Outbox, ProcessCtx, ProcessId, Protocol, Round};

/// Decides a constant, sends nothing. Message complexity 0.
///
/// Violates **Weak Validity**: in the fully correct execution where all
/// processes propose the complement bit, that bit must be decided.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SilentConstant {
    constant: Bit,
    decision: Option<Bit>,
}

impl SilentConstant {
    /// Creates the protocol that always decides `constant`.
    pub fn new(constant: Bit) -> Self {
        SilentConstant {
            constant,
            decision: None,
        }
    }
}

impl Protocol for SilentConstant {
    type Input = Bit;
    type Output = Bit;
    type Msg = Bit;

    fn propose(&mut self, _: &ProcessCtx, _: Bit) -> Outbox<Bit> {
        self.decision = Some(self.constant);
        Outbox::new()
    }

    fn round(&mut self, _: &ProcessCtx, _: Round, _: &Inbox<Bit>) -> Outbox<Bit> {
        Outbox::new()
    }

    fn decision(&self) -> Option<Bit> {
        self.decision
    }
}

/// Decides its own proposal, sends nothing. Message complexity 0.
///
/// Satisfies Weak Validity and Termination but violates **Agreement** as
/// soon as two correct processes propose differently — which the falsifier
/// exhibits through the merged execution, where group `C` proposes the
/// complement of groups `A ∪ B`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OwnProposal {
    decision: Option<Bit>,
}

impl OwnProposal {
    /// Creates the protocol.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Protocol for OwnProposal {
    type Input = Bit;
    type Output = Bit;
    type Msg = Bit;

    fn propose(&mut self, _: &ProcessCtx, proposal: Bit) -> Outbox<Bit> {
        self.decision = Some(proposal);
        Outbox::new()
    }

    fn round(&mut self, _: &ProcessCtx, _: Round, _: &Inbox<Bit>) -> Outbox<Bit> {
        Outbox::new()
    }

    fn decision(&self) -> Option<Bit> {
        self.decision
    }
}

/// A two-round star topology: everyone reports to a leader, the leader
/// announces a verdict. Message complexity `2(n − 1) = O(n)` — far below
/// the `t²/32` floor for `t ∈ Θ(n)`.
///
/// Violates **Agreement** under omission faults: isolate a group containing
/// neither the leader nor some correct process, and the isolated processes
/// (which the `swap_omission` construction then re-labels correct) miss the
/// verdict and fall back to the default `1` while the rest decide `0`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LeaderEcho {
    leader: ProcessId,
    proposal: Bit,
    verdict: Option<Bit>,
    decision: Option<Bit>,
}

/// Wire messages of [`LeaderEcho`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LeaderEchoMsg {
    /// A proposal reported to the leader in round 1.
    Report(Bit),
    /// The leader's verdict, announced in round 2.
    Verdict(Bit),
}

impl LeaderEcho {
    /// Creates an instance with the given leader.
    pub fn new(leader: ProcessId) -> Self {
        LeaderEcho {
            leader,
            proposal: Bit::Zero,
            verdict: None,
            decision: None,
        }
    }
}

impl Protocol for LeaderEcho {
    type Input = Bit;
    type Output = Bit;
    type Msg = LeaderEchoMsg;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<LeaderEchoMsg> {
        self.proposal = proposal;
        let mut out = Outbox::new();
        if ctx.id != self.leader {
            out.send(self.leader, LeaderEchoMsg::Report(proposal));
        }
        out
    }

    fn round(
        &mut self,
        ctx: &ProcessCtx,
        round: Round,
        inbox: &Inbox<LeaderEchoMsg>,
    ) -> Outbox<LeaderEchoMsg> {
        let mut out = Outbox::new();
        match round.0 {
            1 if ctx.id == self.leader => {
                let mut zeros = usize::from(self.proposal == Bit::Zero);
                zeros += inbox
                    .iter()
                    .filter(|(_, m)| matches!(m, LeaderEchoMsg::Report(Bit::Zero)))
                    .count();
                let verdict = if zeros == ctx.n { Bit::Zero } else { Bit::One };
                self.verdict = Some(verdict);
                out.broadcast(ctx.others(), LeaderEchoMsg::Verdict(verdict));
            }
            2 => {
                self.decision = Some(if ctx.id == self.leader {
                    self.verdict.expect("leader set the verdict in round 1")
                } else {
                    match inbox.from_sender(self.leader) {
                        Some(LeaderEchoMsg::Verdict(b)) => *b,
                        _ => Bit::One, // heard nothing: fall back to default
                    }
                });
            }
            _ => {}
        }
        out
    }

    fn decision(&self) -> Option<Bit> {
        self.decision
    }
}

/// One all-to-all round; decide 0 iff everybody (including oneself) reported
/// 0. Message complexity `n(n − 1)` — quadratic in `n`, so *not* refuted by
/// the t²/32 pigeonhole, yet still incorrect.
///
/// Violates **Agreement** with a single send-omission fault: a faulty
/// `0`-proposer that omits its report to one correct process makes that
/// process decide 1 while the rest decide 0. The paper's machinery reaches
/// the same shape of counterexample through `swap_omission`; the integration
/// tests also exhibit it directly.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OneRoundAllToAll {
    proposal: Bit,
    decision: Option<Bit>,
}

impl OneRoundAllToAll {
    /// Creates the protocol.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Protocol for OneRoundAllToAll {
    type Input = Bit;
    type Output = Bit;
    type Msg = Bit;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<Bit> {
        self.proposal = proposal;
        let mut out = Outbox::new();
        out.broadcast(ctx.others(), proposal);
        out
    }

    fn round(&mut self, ctx: &ProcessCtx, round: Round, inbox: &Inbox<Bit>) -> Outbox<Bit> {
        if round == Round::FIRST {
            let all_zero = self.proposal == Bit::Zero
                && inbox.len() == ctx.n - 1
                && inbox.iter().all(|(_, b)| *b == Bit::Zero);
            self.decision = Some(if all_zero { Bit::Zero } else { Bit::One });
        }
        Outbox::new()
    }

    fn decision(&self) -> Option<Bit> {
        self.decision
    }
}

/// Two rounds of all-to-all echo with a paranoid default: decide 0 only on
/// a perfectly consistent all-zero transcript, otherwise 1. Message
/// complexity `2·n(n − 1)`.
///
/// This protocol has the **default-bit structure** the Theorem 2 proof
/// normalizes to (any detected fault ⇒ decide 1), so it exercises the
/// falsifier's critical-round scan (Lemma 4) and merge step end to end. It
/// is quadratic, so the Lemma 2 pigeonhole (rightly) never fires — yet it
/// is still *not* a correct weak consensus protocol: a single send-omission
/// in round 2 splits the correct processes, which the random prober
/// exhibits.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ParanoidEcho {
    proposal: Bit,
    tentative: Bit,
    decision: Option<Bit>,
}

/// Wire messages of [`ParanoidEcho`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ParanoidEchoMsg {
    /// Round-1 broadcast of the proposal.
    Report(Bit),
    /// Round-2 broadcast of the tentative verdict.
    Tentative(Bit),
}

impl ParanoidEcho {
    /// Creates the protocol.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Protocol for ParanoidEcho {
    type Input = Bit;
    type Output = Bit;
    type Msg = ParanoidEchoMsg;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<ParanoidEchoMsg> {
        self.proposal = proposal;
        let mut out = Outbox::new();
        out.broadcast(ctx.others(), ParanoidEchoMsg::Report(proposal));
        out
    }

    fn round(
        &mut self,
        ctx: &ProcessCtx,
        round: Round,
        inbox: &Inbox<ParanoidEchoMsg>,
    ) -> Outbox<ParanoidEchoMsg> {
        let mut out = Outbox::new();
        match round.0 {
            1 => {
                let all_zero = self.proposal == Bit::Zero
                    && inbox.len() == ctx.n - 1
                    && inbox
                        .iter()
                        .all(|(_, m)| matches!(m, ParanoidEchoMsg::Report(Bit::Zero)));
                self.tentative = if all_zero { Bit::Zero } else { Bit::One };
                out.broadcast(ctx.others(), ParanoidEchoMsg::Tentative(self.tentative));
            }
            2 => {
                let all_zero = self.tentative == Bit::Zero
                    && inbox.len() == ctx.n - 1
                    && inbox
                        .iter()
                        .all(|(_, m)| matches!(m, ParanoidEchoMsg::Tentative(Bit::Zero)));
                self.decision = Some(if all_zero { Bit::Zero } else { Bit::One });
            }
            _ => {}
        }
        out
    }

    fn decision(&self) -> Option<Bit> {
        self.decision
    }
}

/// [`ParanoidEcho`] generalized to a configurable number of all-to-all
/// echo stages: decide 0 only on a perfectly consistent all-zero transcript
/// across all stages, otherwise 1.
///
/// The interesting knob for the paper's Lemma 4: isolating a group at round
/// `k < stages` raises an alarm that reaches everyone in time (group `A`
/// decides the default 1), while isolating at `k = stages` goes unnoticed
/// by `A` (it decides 0) — so the **critical round is `R = stages − 1`**,
/// making this family the parameter sweep for the critical-round
/// experiment. Message complexity: `stages · n(n − 1)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EchoChain {
    stages: u64,
    clean: bool,
    decision: Option<Bit>,
}

impl EchoChain {
    /// Creates the protocol with the given number of echo stages (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0`.
    pub fn new(stages: u64) -> Self {
        assert!(stages >= 1, "need at least one stage");
        EchoChain {
            stages,
            clean: true,
            decision: None,
        }
    }

    /// The configured number of stages.
    pub fn stages(&self) -> u64 {
        self.stages
    }

    fn flag(&self) -> Bit {
        if self.clean {
            Bit::Zero
        } else {
            Bit::One
        }
    }
}

impl Protocol for EchoChain {
    type Input = Bit;
    type Output = Bit;
    type Msg = Bit;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<Bit> {
        self.clean = proposal == Bit::Zero;
        let mut out = Outbox::new();
        out.broadcast(ctx.others(), self.flag());
        out
    }

    fn round(&mut self, ctx: &ProcessCtx, round: Round, inbox: &Inbox<Bit>) -> Outbox<Bit> {
        let mut out = Outbox::new();
        if round.0 > self.stages {
            return out;
        }
        let all_clear = inbox.len() == ctx.n - 1 && inbox.iter().all(|(_, b)| *b == Bit::Zero);
        self.clean = self.clean && all_clear;
        if round.0 < self.stages {
            out.broadcast(ctx.others(), self.flag());
        } else {
            self.decision = Some(self.flag());
        }
        out
    }

    fn decision(&self) -> Option<Bit> {
        self.decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{Adversary, Fate, Scenario, TableOmissionPlan};

    #[test]
    fn silent_constant_violates_weak_validity() {
        let exec = Scenario::new(4, 1)
            .protocol(|_| SilentConstant::new(Bit::One))
            .uniform_input(Bit::Zero)
            .run()
            .unwrap();
        // All correct, all propose 0 — yet everyone decides 1.
        assert!(exec.all_correct_decided(Bit::One));
        assert_eq!(exec.message_complexity(), 0);
    }

    #[test]
    fn own_proposal_violates_agreement_with_mixed_proposals() {
        let exec = Scenario::new(4, 1)
            .protocol(|_| OwnProposal::new())
            .inputs([Bit::Zero, Bit::One, Bit::Zero, Bit::One])
            .run()
            .unwrap();
        assert_eq!(exec.decision_of(ProcessId(0)), Some(&Bit::Zero));
        assert_eq!(exec.decision_of(ProcessId(1)), Some(&Bit::One));
    }

    #[test]
    fn leader_echo_is_fine_without_faults() {
        for bit in Bit::ALL {
            let exec = Scenario::new(5, 2)
                .protocol(|_| LeaderEcho::new(ProcessId(0)))
                .uniform_input(bit)
                .run()
                .unwrap();
            exec.validate().unwrap();
            assert!(exec.all_correct_decided(bit));
            assert_eq!(exec.message_complexity(), 8); // 2(n − 1)
        }
    }

    #[test]
    fn leader_echo_message_complexity_is_linear() {
        for n in [4usize, 8, 16, 32] {
            let exec = Scenario::new(n, n / 2)
                .protocol(|_| LeaderEcho::new(ProcessId(0)))
                .uniform_input(Bit::Zero)
                .run()
                .unwrap();
            assert_eq!(exec.message_complexity(), 2 * (n as u64 - 1));
        }
    }

    #[test]
    fn one_round_all_to_all_breaks_with_one_send_omission() {
        // p0 (faulty, 0-proposer) omits its report to p1: p1 decides 1,
        // every other correct process decides 0 — Agreement violated among
        // correct processes p1 and p2.
        let mut plan = TableOmissionPlan::new();
        plan.set(Round(1), ProcessId(0), ProcessId(1), Fate::SendOmit);
        let exec = Scenario::new(4, 1)
            .protocol(|_| OneRoundAllToAll::new())
            .uniform_input(Bit::Zero)
            .adversary(Adversary::omission([ProcessId(0)], plan))
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert_eq!(exec.decision_of(ProcessId(1)), Some(&Bit::One));
        assert_eq!(exec.decision_of(ProcessId(2)), Some(&Bit::Zero));
        assert!(exec.is_correct(ProcessId(1)) && exec.is_correct(ProcessId(2)));
    }

    #[test]
    fn one_round_all_to_all_is_fine_without_faults() {
        for bit in Bit::ALL {
            let exec = Scenario::new(4, 1)
                .protocol(|_| OneRoundAllToAll::new())
                .uniform_input(bit)
                .run()
                .unwrap();
            assert!(exec.all_correct_decided(bit));
        }
    }

    #[test]
    fn paranoid_echo_is_fine_without_faults() {
        for bit in Bit::ALL {
            let exec = Scenario::new(4, 1)
                .protocol(|_| ParanoidEcho::new())
                .uniform_input(bit)
                .run()
                .unwrap();
            exec.validate().unwrap();
            assert!(exec.all_correct_decided(bit));
            assert_eq!(exec.message_complexity(), 2 * 4 * 3);
        }
    }

    #[test]
    fn echo_chain_matches_paranoid_echo_semantics() {
        // EchoChain(2) and ParanoidEcho decide identically in fault-free
        // uniform executions and under a round-2 send omission.
        for bit in Bit::ALL {
            let exec = Scenario::new(5, 1)
                .protocol(|_| EchoChain::new(2))
                .uniform_input(bit)
                .run()
                .unwrap();
            exec.validate().unwrap();
            assert!(exec.all_correct_decided(bit));
            assert_eq!(exec.message_complexity(), 2 * 5 * 4);
        }
    }

    #[test]
    fn echo_chain_decides_at_stage_count() {
        for stages in [1u64, 2, 4, 6] {
            let exec = Scenario::new(4, 1)
                .protocol(move |_| EchoChain::new(stages))
                .uniform_input(Bit::Zero)
                .run()
                .unwrap();
            assert_eq!(exec.all_decided_by(), Some(Round(stages + 1)));
            assert_eq!(exec.message_complexity(), stages * 4 * 3);
        }
    }

    #[test]
    fn paranoid_echo_breaks_with_one_round_two_send_omission() {
        // All propose 0; p0 (faulty) send-omits its round-2 tentative to
        // p1: p1 decides 1, p2 decides 0 — both correct.
        let mut plan = TableOmissionPlan::new();
        plan.set(Round(2), ProcessId(0), ProcessId(1), Fate::SendOmit);
        let exec = Scenario::new(4, 1)
            .protocol(|_| ParanoidEcho::new())
            .uniform_input(Bit::Zero)
            .adversary(Adversary::omission([ProcessId(0)], plan))
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert_eq!(exec.decision_of(ProcessId(1)), Some(&Bit::One));
        assert_eq!(exec.decision_of(ProcessId(2)), Some(&Bit::Zero));
    }
}
