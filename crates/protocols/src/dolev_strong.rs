//! Dolev-Strong authenticated Byzantine broadcast (\[52\] in the paper).
//!
//! The classic `t + 1`-round protocol tolerating any `t < n` Byzantine
//! faults in the idealized authenticated setting, and — instantiated with
//! sender `p_0` — the canonical *weak consensus* algorithm with `Θ(n²)`
//! message complexity, i.e. the kind of algorithm the paper's Ω(t²) lower
//! bound proves optimal up to constants.
//!
//! ## Algorithm
//!
//! * **Round 1.** The designated sender signs its proposal and sends the
//!   1-link signature chain to everyone.
//! * **Round `k ∈ [1, t+1]`.** A process that receives a valid chain of at
//!   least `k` signatures over a value it has not yet *extracted* adds the
//!   value to its extracted set; if this is only its first or second
//!   extraction and `k ≤ t`, it appends its own signature and relays the
//!   chain to everyone in round `k + 1`.
//! * **End of round `t + 1`.** Decide the unique extracted value, or the
//!   default if zero or several values were extracted (several extractions
//!   prove sender equivocation).
//!
//! Relaying stops after two distinct values because two valid chains already
//! convince every correct process that the sender equivocated; this caps
//! message complexity at `≤ 2 n (n - 1) + (n - 1)` messages.
//!
//! ## Why this solves weak consensus
//!
//! With sender `p_0` broadcasting its own proposal: in a fully correct
//! execution where all processes propose `v`, the correct sender broadcasts
//! `v` and every process decides `v` — Weak Validity holds; Agreement and
//! Termination are the broadcast's own guarantees. (Sender Validity is much
//! stronger than needed, which is exactly the paper's point: even the *weak*
//! problem costs Ω(t²).)

use std::sync::Arc;

use ba_crypto::{Keybook, Keychain, SignatureChain};
use ba_sim::{Inbox, Outbox, ProcessCtx, ProcessId, Protocol, Round, Value};

/// One (value, signature-chain) pair carried inside a Dolev-Strong message.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DsEntry<V> {
    /// The broadcast value this chain endorses.
    pub value: V,
    /// The endorsement chain, starting with the designated sender.
    pub chain: SignatureChain,
}

/// A shared, immutable batch of [`DsEntry`] values — the Dolev-Strong
/// message payload.
///
/// Broadcast protocols send the *same* batch to every peer, so the payload
/// is reference-counted: `clone` (which the executor performs once per
/// receiver) is a refcount bump, not a fresh `Vec` + chain allocation. On
/// large sweeps this removes the dominant allocation churn of the
/// Dolev-Strong hot path.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DsBatch<V>(Arc<Vec<DsEntry<V>>>);

impl<V> DsBatch<V> {
    /// Wraps a batch of entries for sharing.
    pub fn new(entries: Vec<DsEntry<V>>) -> Self {
        DsBatch(Arc::new(entries))
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, DsEntry<V>> {
        self.0.iter()
    }

    /// Number of entries in the batch.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff the batch carries no entries (never produced by the
    /// protocol, which only sends non-empty batches).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl<V> From<Vec<DsEntry<V>>> for DsBatch<V> {
    fn from(entries: Vec<DsEntry<V>>) -> Self {
        DsBatch::new(entries)
    }
}

impl<V> FromIterator<DsEntry<V>> for DsBatch<V> {
    fn from_iter<I: IntoIterator<Item = DsEntry<V>>>(iter: I) -> Self {
        DsBatch::new(iter.into_iter().collect())
    }
}

impl<'a, V> IntoIterator for &'a DsBatch<V> {
    type Item = &'a DsEntry<V>;
    type IntoIter = std::slice::Iter<'a, DsEntry<V>>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Dolev-Strong authenticated Byzantine broadcast.
///
/// `Input` is the proposal of *this* process; only the designated sender's
/// proposal influences the outcome. Message payloads are batches of
/// [`DsEntry`] so that a round's (at most two) relays fit the model's
/// one-message-per-receiver rule.
///
/// ```
/// use ba_crypto::Keybook;
/// use ba_protocols::DolevStrong;
/// use ba_sim::{Bit, ProcessId, Scenario};
///
/// let (n, t) = (4, 1);
/// let book = Keybook::new(n);
/// let exec = Scenario::new(n, t)
///     .protocol(DolevStrong::factory(book, ProcessId(0), Bit::Zero))
///     .uniform_input(Bit::One)
///     .run()
///     .unwrap();
/// assert!(exec.all_correct_decided(Bit::One));
/// ```
#[derive(Clone, Debug)]
pub struct DolevStrong<V> {
    book: Keybook,
    keychain: Keychain,
    sender: ProcessId,
    default: V,
    // At most two extracted values are ever tracked (a second one already
    // proves equivocation), so a flat sorted Vec beats a tree set: lookups
    // are one or two comparisons and the empty state allocates nothing.
    extracted: Vec<V>,
    decision: Option<V>,
}

impl<V: Value> DolevStrong<V> {
    /// Creates the instance run by the owner of `keychain`.
    ///
    /// `sender` is the designated broadcaster; `default` is decided when the
    /// sender is caught equivocating (or stays silent).
    pub fn new(book: Keybook, keychain: Keychain, sender: ProcessId, default: V) -> Self {
        DolevStrong {
            book,
            keychain,
            sender,
            default,
            extracted: Vec::new(),
            decision: None,
        }
    }

    /// A per-process factory suitable for the executors: each process gets
    /// its own keychain (and only its own — unforgeability by construction).
    pub fn factory(
        book: Keybook,
        sender: ProcessId,
        default: V,
    ) -> impl Fn(ProcessId) -> DolevStrong<V> + Clone {
        move |pid| DolevStrong::new(book.clone(), book.keychain(pid), sender, default.clone())
    }

    /// The designated sender.
    pub fn sender(&self) -> ProcessId {
        self.sender
    }

    /// The values extracted so far (at most two are tracked), in
    /// ascending order.
    pub fn extracted(&self) -> &[V] {
        &self.extracted
    }

    fn extract(&mut self, value: V) {
        match self.extracted.binary_search(&value) {
            Ok(_) => {}
            Err(pos) => self.extracted.insert(pos, value),
        }
    }

    fn deciding_round(&self, ctx: &ProcessCtx) -> u64 {
        ctx.t as u64 + 1
    }
}

impl<V: Value> Protocol for DolevStrong<V> {
    type Input = V;
    type Output = V;
    type Msg = DsBatch<V>;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: V) -> Outbox<Self::Msg> {
        let mut out = Outbox::with_capacity(ctx.n);
        if ctx.id == self.sender {
            self.extract(proposal.clone());
            let chain = SignatureChain::originate(&self.keychain, &proposal);
            let entry = DsEntry {
                value: proposal,
                chain,
            };
            out.broadcast(ctx.others(), DsBatch::new(vec![entry]));
        }
        out
    }

    fn round(
        &mut self,
        ctx: &ProcessCtx,
        round: Round,
        inbox: &Inbox<Self::Msg>,
    ) -> Outbox<Self::Msg> {
        let deciding = self.deciding_round(ctx);
        let mut out = Outbox::new();
        if round.0 > deciding {
            return out;
        }

        let mut relays: Vec<DsEntry<V>> = Vec::new();
        // Cap at two extracted values: a second value already proves
        // equivocation, further values cannot change the outcome.
        'scan: for (_, batch) in inbox.iter() {
            for entry in batch.iter() {
                if self.extracted.len() >= 2 {
                    break 'scan;
                }
                let fresh = !self.extracted.contains(&entry.value);
                let timely = entry.chain.len() as u64 >= round.0;
                if fresh && timely && entry.chain.valid(&self.book, self.sender, &entry.value) {
                    self.extract(entry.value.clone());
                    // Relay with our endorsement so the chain reaches length
                    // ≥ k + 1 by round k + 1; pointless after round t.
                    if round.0 <= ctx.t as u64 && !entry.chain.contains_signer(ctx.id) {
                        relays.push(DsEntry {
                            value: entry.value.clone(),
                            chain: entry.chain.extend(&self.keychain, &entry.value),
                        });
                    }
                }
            }
        }
        if !relays.is_empty() {
            relays.sort();
            out = Outbox::with_capacity(ctx.n);
            out.broadcast(ctx.others(), DsBatch::new(relays));
        }

        if round.0 == deciding {
            self.decision = Some(if self.extracted.len() == 1 {
                self.extracted[0].clone()
            } else {
                self.default.clone()
            });
        }
        out
    }

    fn decision(&self) -> Option<V> {
        self.decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{Adversary, Bit, Scenario, SilentByzantine};

    #[test]
    fn correct_sender_value_is_decided_by_all() {
        let exec = Scenario::new(5, 2)
            .protocol(DolevStrong::factory(
                Keybook::new(5),
                ProcessId(0),
                Bit::Zero,
            ))
            .uniform_input(Bit::One)
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert!(exec.all_correct_decided(Bit::One));
        assert!(exec.quiescent);
    }

    #[test]
    fn decision_lands_at_round_t_plus_one() {
        let exec = Scenario::new(5, 2)
            .protocol(DolevStrong::factory(
                Keybook::new(5),
                ProcessId(0),
                Bit::Zero,
            ))
            .uniform_input(Bit::One)
            .run()
            .unwrap();
        // Decision appears in the state at the start of round t + 2,
        // i.e. after processing round t + 1 = 3.
        for pid in exec.correct() {
            let (_, round) = exec.record(pid).decision.unwrap();
            assert_eq!(round, Round(4));
        }
    }

    #[test]
    fn silent_sender_yields_default_for_all() {
        let exec = Scenario::new(4, 1)
            .protocol(DolevStrong::factory(
                Keybook::new(4),
                ProcessId(0),
                Bit::Zero,
            ))
            .uniform_input(Bit::One)
            .adversary(Adversary::one_byzantine(ProcessId(0), SilentByzantine))
            .run()
            .unwrap();
        exec.validate().unwrap();
        for pid in exec.correct() {
            assert_eq!(exec.decision_of(pid), Some(&Bit::Zero));
        }
    }

    #[test]
    fn message_complexity_is_quadratic_not_more() {
        for (n, t) in [(4, 1), (8, 2), (8, 7), (12, 4)] {
            let exec = Scenario::new(n, t)
                .protocol(DolevStrong::factory(
                    Keybook::new(n),
                    ProcessId(0),
                    Bit::Zero,
                ))
                .uniform_input(Bit::One)
                .run()
                .unwrap();
            let bound = (2 * n * (n - 1) + (n - 1)) as u64;
            assert!(exec.message_complexity() <= bound);
        }
    }

    #[test]
    fn isolated_receiver_still_agrees_with_majority_or_is_faulty() {
        // Isolate one process (faulty, omission model) from round 1: it
        // extracts nothing and decides the default — which the weak
        // consensus guarantees allow, since it is faulty.
        let exec = Scenario::new(5, 2)
            .protocol(DolevStrong::factory(
                Keybook::new(5),
                ProcessId(0),
                Bit::Zero,
            ))
            .uniform_input(Bit::One)
            .adversary(Adversary::isolation([ProcessId(4)], Round(1)))
            .run()
            .unwrap();
        exec.validate().unwrap();
        for pid in exec.correct() {
            assert_eq!(exec.decision_of(pid), Some(&Bit::One));
        }
        assert_eq!(exec.decision_of(ProcessId(4)), Some(&Bit::Zero));
    }

    #[test]
    fn weak_validity_holds_in_fully_correct_uniform_executions() {
        for bit in Bit::ALL {
            let exec = Scenario::new(4, 1)
                .protocol(DolevStrong::factory(
                    Keybook::new(4),
                    ProcessId(0),
                    Bit::Zero,
                ))
                .uniform_input(bit)
                .run()
                .unwrap();
            assert!(exec.all_correct_decided(bit), "weak validity for {bit}");
        }
    }

    #[test]
    fn multivalued_broadcast_works() {
        let exec = Scenario::new(4, 1)
            .protocol(DolevStrong::factory(Keybook::new(4), ProcessId(2), 0u32))
            .inputs([10, 20, 30, 40])
            .run()
            .unwrap();
        assert!(exec.all_correct_decided(30u32));
    }

    #[test]
    fn executions_are_deterministic() {
        let run = || {
            Scenario::new(6, 2)
                .protocol(DolevStrong::factory(
                    Keybook::new(6),
                    ProcessId(0),
                    Bit::Zero,
                ))
                .uniform_input(Bit::One)
                .run()
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mixed_fault_assignment_silent_sender_plus_isolated_receiver() {
        // A mixed adversary the legacy dual entry points could not express:
        // the designated sender is Byzantine-silent while p4 is
        // omission-faulty (isolated from round 1) in the same execution.
        // The remaining correct processes extract nothing and decide the
        // default.
        let exec = Scenario::new(5, 2)
            .protocol(DolevStrong::factory(
                Keybook::new(5),
                ProcessId(0),
                Bit::Zero,
            ))
            .uniform_input(Bit::One)
            .adversary(Adversary::mixed(
                [(ProcessId(0), Box::new(SilentByzantine) as _)],
                [ProcessId(4)],
                ba_sim::IsolationPlan::new([ProcessId(4)], Round(1)),
            ))
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert_eq!(exec.mode, ba_sim::FaultMode::Mixed);
        for pid in exec.correct() {
            assert_eq!(exec.decision_of(pid), Some(&Bit::Zero));
        }
    }
}
