//! Exponential information gathering (EIG) — unauthenticated Byzantine
//! agreement for `n > 3t` (Lamport-Shostak-Pease \[78\]; formulation follows
//! Lynch, *Distributed Algorithms* \[82\]).
//!
//! Both variants run `t + 1` rounds and resolve the EIG tree bottom-up with
//! strict-majority voting:
//!
//! * [`EigConsensus`] — every process broadcasts its proposal in round 1;
//!   satisfies **Strong Validity** (if all correct processes propose `v`,
//!   `v` is decided).
//! * [`EigBroadcast`] — only a designated general broadcasts; satisfies
//!   **Sender Validity** (if the general is correct, its value is decided).
//!   One instance per sender, composed with
//!   [`crate::ParallelInstances`], yields *unauthenticated interactive
//!   consistency* — the `n > 3t` branch of the paper's Theorem 4.
//!
//! Message payloads grow exponentially with `t` (each round relays a full
//! tree level), which is the protocol's historical name and the reason it is
//! exercised at small `n` here; message *count* is `(t + 1)·n·(n − 1)`.

use std::collections::BTreeMap;

use ba_sim::{Inbox, Outbox, ProcessCtx, ProcessId, Protocol, Round, Value};

/// A label in the EIG tree: the sequence of distinct processes that relayed
/// a value, in order. The empty path is the root.
pub type Path = Vec<ProcessId>;

/// One round's relay: a map from tree path (of the previous level) to the
/// value the sender attributes to it.
pub type EigMsg<V> = BTreeMap<Path, V>;

/// Which agreement problem the EIG tree is solving.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Scope {
    /// All processes seed the tree (strong consensus).
    Consensus,
    /// Only the designated general seeds the tree (Byzantine generals).
    Broadcast(ProcessId),
}

impl Scope {
    /// Whether a non-empty path may exist under this scope.
    fn admits(self, path: &[ProcessId]) -> bool {
        match self {
            Scope::Consensus => true,
            Scope::Broadcast(g) => path.first() == Some(&g),
        }
    }
}

#[derive(Clone, Debug)]
struct EigCore<V> {
    scope: Scope,
    default: V,
    vals: BTreeMap<Path, V>,
    decision: Option<V>,
}

impl<V: Value> EigCore<V> {
    fn new(scope: Scope, default: V) -> Self {
        EigCore {
            scope,
            default,
            vals: BTreeMap::new(),
            decision: None,
        }
    }

    fn last_round(ctx: &ProcessCtx) -> u64 {
        ctx.t as u64 + 1
    }

    fn propose(&mut self, ctx: &ProcessCtx, proposal: V) -> Outbox<EigMsg<V>> {
        let mut out = Outbox::new();
        let seeds = match self.scope {
            Scope::Consensus => true,
            Scope::Broadcast(g) => ctx.id == g,
        };
        if seeds {
            // Level-1 node for ourselves (we do not send to ourselves).
            self.vals.insert(vec![ctx.id], proposal.clone());
            let msg: EigMsg<V> = [(Vec::new(), proposal)].into_iter().collect();
            out.broadcast(ctx.others(), msg);
        }
        if ctx.t == 0 {
            // t + 1 = 1 round: with no relays, resolution happens after
            // round 1 in `round`.
        }
        out
    }

    fn round(
        &mut self,
        ctx: &ProcessCtx,
        round: Round,
        inbox: &Inbox<EigMsg<V>>,
    ) -> Outbox<EigMsg<V>> {
        let last = Self::last_round(ctx);
        let mut out = Outbox::new();
        if round.0 > last {
            return out;
        }

        // Store level-`round` nodes: a pair (α, v) from sender s yields the
        // node α·s, provided the label is well-formed.
        let level = round.0 as usize;
        for (sender, msg) in inbox.iter() {
            for (alpha, v) in msg {
                if alpha.len() + 1 != level {
                    continue; // wrong level
                }
                if alpha.contains(&sender) {
                    continue; // relayers must be distinct
                }
                if alpha.iter().any(|p| p.index() >= ctx.n) {
                    continue; // unknown process in label
                }
                let mut distinct = alpha.clone();
                distinct.sort();
                distinct.dedup();
                if distinct.len() != alpha.len() {
                    continue;
                }
                let mut path = alpha.clone();
                path.push(sender);
                if !self.scope.admits(&path) {
                    continue;
                }
                self.vals.entry(path).or_insert_with(|| v.clone());
            }
        }

        if round.0 < last {
            // Relay every stored level-`round` node we are not part of, and
            // record our own implicit relay (we trust ourselves).
            let relays: EigMsg<V> = self
                .vals
                .iter()
                .filter(|(path, _)| path.len() == level && !path.contains(&ctx.id))
                .map(|(path, v)| (path.clone(), v.clone()))
                .collect();
            let own: Vec<(Path, V)> = relays
                .iter()
                .map(|(path, v)| {
                    let mut extended = path.clone();
                    extended.push(ctx.id);
                    (extended, v.clone())
                })
                .collect();
            for (path, v) in own {
                self.vals.entry(path).or_insert(v);
            }
            if !relays.is_empty() {
                out.broadcast(ctx.others(), relays);
            }
        } else {
            // End of round t + 1: resolve the tree and decide.
            self.decision = Some(match self.scope {
                Scope::Consensus => self.resolve(&[], ctx),
                Scope::Broadcast(g) => self.resolve(&[g], ctx),
            });
        }
        out
    }

    /// Bottom-up resolution with strict-majority voting and default
    /// tie-breaking (Lynch's `newval`).
    fn resolve(&self, path: &[ProcessId], ctx: &ProcessCtx) -> V {
        let leaf_level = (ctx.t + 1).max(1);
        if path.len() >= leaf_level {
            return self
                .vals
                .get(path)
                .cloned()
                .unwrap_or_else(|| self.default.clone());
        }
        let mut counts: BTreeMap<V, usize> = BTreeMap::new();
        let mut children = 0usize;
        for q in ProcessId::all(ctx.n) {
            if path.contains(&q) {
                continue;
            }
            let mut child = path.to_vec();
            child.push(q);
            if !self.scope.admits(&child) {
                continue;
            }
            children += 1;
            *counts.entry(self.resolve(&child, ctx)).or_default() += 1;
        }
        counts
            .into_iter()
            .find(|(_, c)| *c * 2 > children)
            .map(|(v, _)| v)
            .unwrap_or_else(|| self.default.clone())
    }
}

/// Unauthenticated strong consensus via EIG (`n > 3t`).
///
/// ```
/// use ba_protocols::EigConsensus;
/// use ba_sim::{Bit, Scenario};
///
/// let exec = Scenario::new(4, 1)
///     .protocol(|_| EigConsensus::new(4, 1, Bit::Zero))
///     .uniform_input(Bit::One)
///     .run()
///     .unwrap();
/// assert!(exec.all_correct_decided(Bit::One)); // strong validity
/// ```
#[derive(Clone, Debug)]
pub struct EigConsensus<V> {
    core: EigCore<V>,
}

impl<V: Value> EigConsensus<V> {
    /// Creates an instance for an `(n, t)` system with the given default
    /// (decided at unresolved tree nodes).
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t` — EIG's resilience requirement, which the
    /// paper's Theorem 4 shows is inherent to every unauthenticated
    /// non-trivial agreement problem.
    pub fn new(n: usize, t: usize, default: V) -> Self {
        assert!(
            n > 3 * t,
            "EIG consensus requires n > 3t (got n = {n}, t = {t})"
        );
        EigConsensus {
            core: EigCore::new(Scope::Consensus, default),
        }
    }
}

impl<V: Value> Protocol for EigConsensus<V> {
    type Input = V;
    type Output = V;
    type Msg = EigMsg<V>;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: V) -> Outbox<Self::Msg> {
        self.core.propose(ctx, proposal)
    }

    fn round(
        &mut self,
        ctx: &ProcessCtx,
        round: Round,
        inbox: &Inbox<Self::Msg>,
    ) -> Outbox<Self::Msg> {
        self.core.round(ctx, round, inbox)
    }

    fn decision(&self) -> Option<V> {
        self.core.decision.clone()
    }
}

/// Unauthenticated Byzantine generals via EIG (`n > 3t`): only the
/// designated general's proposal seeds the tree.
#[derive(Clone, Debug)]
pub struct EigBroadcast<V> {
    core: EigCore<V>,
}

impl<V: Value> EigBroadcast<V> {
    /// Creates an instance with designated `general`.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t`.
    pub fn new(n: usize, t: usize, general: ProcessId, default: V) -> Self {
        assert!(
            n > 3 * t,
            "EIG broadcast requires n > 3t (got n = {n}, t = {t})"
        );
        assert!(general.index() < n, "general {general} out of range");
        EigBroadcast {
            core: EigCore::new(Scope::Broadcast(general), default),
        }
    }

    /// The designated general.
    pub fn general(&self) -> ProcessId {
        match self.core.scope {
            Scope::Broadcast(g) => g,
            Scope::Consensus => unreachable!("broadcast scope by construction"),
        }
    }
}

impl<V: Value> Protocol for EigBroadcast<V> {
    type Input = V;
    type Output = V;
    type Msg = EigMsg<V>;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: V) -> Outbox<Self::Msg> {
        self.core.propose(ctx, proposal)
    }

    fn round(
        &mut self,
        ctx: &ProcessCtx,
        round: Round,
        inbox: &Inbox<Self::Msg>,
    ) -> Outbox<Self::Msg> {
        self.core.round(ctx, round, inbox)
    }

    fn decision(&self) -> Option<V> {
        self.core.decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{Adversary, Bit, ByzantineBehavior, Scenario, SilentByzantine};
    use std::collections::BTreeSet;

    #[test]
    fn consensus_strong_validity_fault_free() {
        for bit in Bit::ALL {
            let exec = Scenario::new(4, 1)
                .protocol(|_| EigConsensus::new(4, 1, Bit::Zero))
                .uniform_input(bit)
                .run()
                .unwrap();
            exec.validate().unwrap();
            assert!(exec.all_correct_decided(bit));
        }
    }

    #[test]
    fn consensus_strong_validity_under_silent_byzantine() {
        // All correct propose One; the Byzantine process is silent.
        let exec = Scenario::new(4, 1)
            .protocol(|_| EigConsensus::new(4, 1, Bit::Zero))
            .uniform_input(Bit::One)
            .adversary(Adversary::one_byzantine(ProcessId(3), SilentByzantine))
            .run()
            .unwrap();
        exec.validate().unwrap();
        for pid in exec.correct() {
            assert_eq!(exec.decision_of(pid), Some(&Bit::One));
        }
    }

    #[test]
    fn consensus_agreement_with_mixed_proposals_and_fault() {
        let exec = Scenario::new(7, 2)
            .protocol(|_| EigConsensus::new(7, 2, Bit::Zero))
            .inputs([
                Bit::One,
                Bit::Zero,
                Bit::One,
                Bit::Zero,
                Bit::One,
                Bit::Zero,
                Bit::One,
            ])
            .adversary(Adversary::byzantine([
                (ProcessId(5), Box::new(SilentByzantine) as _),
                (ProcessId(6), Box::new(SilentByzantine) as _),
            ]))
            .run()
            .unwrap();
        exec.validate().unwrap();
        let decisions: BTreeSet<_> = exec
            .correct()
            .map(|p| exec.decision_of(p).cloned())
            .collect();
        assert_eq!(decisions.len(), 1, "agreement violated: {decisions:?}");
        assert!(decisions.iter().all(|d| d.is_some()));
    }

    #[test]
    fn broadcast_delivers_correct_generals_value() {
        let exec = Scenario::new(4, 1)
            .protocol(|_| EigBroadcast::new(4, 1, ProcessId(2), Bit::Zero))
            .inputs([Bit::Zero, Bit::Zero, Bit::One, Bit::Zero])
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert!(exec.all_correct_decided(Bit::One));
    }

    #[test]
    fn broadcast_silent_general_yields_default() {
        let exec = Scenario::new(4, 1)
            .protocol(|_| EigBroadcast::new(4, 1, ProcessId(0), Bit::Zero))
            .uniform_input(Bit::One)
            .adversary(Adversary::one_byzantine(ProcessId(0), SilentByzantine))
            .run()
            .unwrap();
        for pid in exec.correct() {
            assert_eq!(exec.decision_of(pid), Some(&Bit::Zero));
        }
    }

    #[test]
    fn message_count_matches_formula_fault_free() {
        // Fault-free consensus: every process broadcasts in each of the
        // t + 1 rounds ⇒ (t + 1) · n · (n − 1) messages.
        let (n, t) = (5, 1);
        let exec = Scenario::new(n, t)
            .protocol(move |_| EigConsensus::new(n, t, Bit::Zero))
            .uniform_input(Bit::One)
            .run()
            .unwrap();
        assert_eq!(exec.message_complexity(), ((t + 1) * n * (n - 1)) as u64);
    }

    #[test]
    #[should_panic(expected = "n > 3t")]
    fn consensus_rejects_insufficient_resilience() {
        let _ = EigConsensus::new(6, 2, Bit::Zero);
    }

    #[test]
    #[should_panic(expected = "n > 3t")]
    fn broadcast_rejects_insufficient_resilience() {
        let _ = EigBroadcast::new(3, 1, ProcessId(0), Bit::Zero);
    }

    #[test]
    fn scope_admits_filters_paths() {
        assert!(Scope::Consensus.admits(&[ProcessId(3)]));
        assert!(Scope::Broadcast(ProcessId(1)).admits(&[ProcessId(1), ProcessId(0)]));
        assert!(!Scope::Broadcast(ProcessId(1)).admits(&[ProcessId(0)]));
    }

    #[test]
    fn malformed_labels_are_ignored() {
        // A Byzantine process sending garbage labels must not corrupt the
        // tree: duplicate relayers, wrong level, out-of-range ids.
        #[derive(Clone)]
        struct GarbageSender;
        impl ByzantineBehavior<Bit, EigMsg<Bit>> for GarbageSender {
            fn propose(&mut self, ctx: &ProcessCtx, _: Bit) -> Outbox<EigMsg<Bit>> {
                let mut out = Outbox::new();
                let garbage: EigMsg<Bit> = [
                    (vec![ProcessId(0), ProcessId(0)], Bit::One), // dup
                    (vec![ProcessId(99)], Bit::One),              // out of range
                    (vec![ProcessId(0), ProcessId(1), ProcessId(2)], Bit::One), // wrong level
                ]
                .into_iter()
                .collect();
                out.broadcast(ctx.others(), garbage);
                out
            }
            fn round(
                &mut self,
                _: &ProcessCtx,
                _: Round,
                _: &Inbox<EigMsg<Bit>>,
            ) -> Outbox<EigMsg<Bit>> {
                Outbox::new()
            }
        }
        let exec = Scenario::new(4, 1)
            .protocol(|_| EigConsensus::new(4, 1, Bit::Zero))
            .uniform_input(Bit::One)
            .adversary(Adversary::one_byzantine(ProcessId(3), GarbageSender))
            .run()
            .unwrap();
        for pid in exec.correct() {
            assert_eq!(exec.decision_of(pid), Some(&Bit::One));
        }
    }
}
