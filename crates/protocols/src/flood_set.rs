//! FloodSet — the classic `t + 1`-round **crash**-tolerant consensus
//! (Lynch, *Distributed Algorithms* §6.2), included as the boundary exhibit
//! between failure models.
//!
//! Every process floods the set of values it has seen for `t + 1` rounds
//! and then decides the minimum. Under **crash** faults this solves
//! consensus: among `t + 1` rounds one is crash-free, after which all
//! correct processes hold identical sets.
//!
//! Under **general omission** — the model the paper proves its lower bound
//! in — FloodSet is *incorrect*: a send-omitting "sandbagger" can keep its
//! value hidden from every correct process until the final round and then
//! reveal it to just one of them, splitting the decision. The tests
//! construct that execution explicitly. This is exactly why the distinction
//! between crash and omission adversaries matters: the paper's Ω(t²) proof
//! draws its power from omissions that *honest-looking* processes commit.
//!
//! Validity: if all correct processes propose `v` and no other value enters
//! the system, `v` is decided — in particular Weak Validity holds, so
//! FloodSet is a legitimate (quadratic) weak-consensus baseline for the
//! falsifier, which it survives.

use std::collections::BTreeSet;

use ba_sim::{Inbox, Outbox, ProcessCtx, Protocol, Round, Value};

/// FloodSet consensus: flood seen-value sets for `t + 1` rounds, decide the
/// minimum.
///
/// ```
/// use ba_protocols::FloodSet;
/// use ba_sim::{Bit, Scenario};
///
/// let exec = Scenario::new(4, 1)
///     .protocol(|_| FloodSet::new())
///     .uniform_input(Bit::One)
///     .run()
///     .unwrap();
/// assert!(exec.all_correct_decided(Bit::One));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FloodSet<V> {
    known: BTreeSet<V>,
    decision: Option<V>,
}

impl<V: Value> FloodSet<V> {
    /// Creates the protocol.
    pub fn new() -> Self {
        FloodSet {
            known: BTreeSet::new(),
            decision: None,
        }
    }

    /// The set of values seen so far.
    pub fn known(&self) -> &BTreeSet<V> {
        &self.known
    }
}

impl<V: Value> Protocol for FloodSet<V> {
    type Input = V;
    type Output = V;
    type Msg = BTreeSet<V>;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: V) -> Outbox<Self::Msg> {
        self.known.insert(proposal);
        let mut out = Outbox::new();
        out.broadcast(ctx.others(), self.known.clone());
        out
    }

    fn round(
        &mut self,
        ctx: &ProcessCtx,
        round: Round,
        inbox: &Inbox<Self::Msg>,
    ) -> Outbox<Self::Msg> {
        let last = ctx.t as u64 + 1;
        let mut out = Outbox::new();
        if round.0 > last {
            return out;
        }
        for (_, set) in inbox.iter() {
            self.known.extend(set.iter().cloned());
        }
        if round.0 < last {
            out.broadcast(ctx.others(), self.known.clone());
        } else {
            self.decision = Some(
                self.known
                    .iter()
                    .next()
                    .expect("own proposal is always known")
                    .clone(),
            );
        }
        out
    }

    fn decision(&self) -> Option<V> {
        self.decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{Adversary, Bit, Fate, ProcessId, Scenario, TableOmissionPlan};
    use std::collections::BTreeSet as Set;

    #[test]
    fn fault_free_decides_minimum() {
        let exec = Scenario::new(4, 1)
            .protocol(|_| FloodSet::new())
            .inputs([Bit::One, Bit::Zero, Bit::One, Bit::One])
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert!(exec.all_correct_decided(Bit::Zero));
    }

    #[test]
    fn weak_validity_holds() {
        for bit in Bit::ALL {
            let exec = Scenario::new(5, 2)
                .protocol(|_| FloodSet::new())
                .uniform_input(bit)
                .run()
                .unwrap();
            assert!(exec.all_correct_decided(bit));
        }
    }

    #[test]
    fn message_complexity_matches_formula() {
        let (n, t) = (6, 2);
        let exec = Scenario::new(n, t)
            .protocol(|_| FloodSet::<Bit>::new())
            .uniform_input(Bit::One)
            .run()
            .unwrap();
        assert_eq!(exec.message_complexity(), ((t + 1) * n * (n - 1)) as u64);
    }

    #[test]
    fn agreement_survives_crashes() {
        // Crash two processes at adversarial rounds: correct processes still
        // agree (the crash-free round equalizes the sets).
        for (r1, r2) in [(1u64, 1u64), (1, 2), (2, 3), (3, 3)] {
            let exec = Scenario::new(6, 2)
                .protocol(|_| FloodSet::new())
                .inputs([Bit::One, Bit::One, Bit::One, Bit::One, Bit::Zero, Bit::Zero])
                .adversary(Adversary::crash([
                    (ProcessId(4), Round(r1)),
                    (ProcessId(5), Round(r2)),
                ]))
                .run()
                .unwrap();
            exec.validate().unwrap();
            let decisions: Set<_> = exec
                .correct()
                .map(|p| exec.decision_of(p).cloned())
                .collect();
            assert_eq!(
                decisions.len(),
                1,
                "disagreement under crash at ({r1},{r2})"
            );
            assert!(decisions.iter().all(Option::is_some));
        }
    }

    #[test]
    fn sandbagger_breaks_agreement_under_general_omission() {
        // The boundary exhibit: a send-omission adversary keeps p3's value 0
        // hidden from everyone for rounds 1..t, then reveals it to p0 alone
        // in the final round t+1. p0 decides 0, other correct processes
        // decide 1 — FloodSet is NOT omission-tolerant.
        let (n, t) = (4, 2);
        let last = t as u64 + 1;
        let mut plan = TableOmissionPlan::new();
        for round in 1..=last {
            for receiver in 0..n - 1 {
                // Hide from everyone in rounds 1..t; in round t+1 reveal to
                // p0 only.
                if round < last || receiver != 0 {
                    plan.set(
                        Round(round),
                        ProcessId(3),
                        ProcessId(receiver),
                        Fate::SendOmit,
                    );
                }
            }
        }
        let exec = Scenario::new(n, t)
            .protocol(|_| FloodSet::new())
            .inputs([Bit::One, Bit::One, Bit::One, Bit::Zero])
            .adversary(Adversary::omission([ProcessId(3)], plan))
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert_eq!(exec.decision_of(ProcessId(0)), Some(&Bit::Zero));
        assert_eq!(exec.decision_of(ProcessId(1)), Some(&Bit::One));
        assert!(exec.is_correct(ProcessId(0)) && exec.is_correct(ProcessId(1)));
    }

    #[test]
    fn multivalued_floodset_works() {
        let exec = Scenario::new(4, 1)
            .protocol(|_| FloodSet::new())
            .inputs([30u32, 10, 20, 40])
            .run()
            .unwrap();
        assert!(exec.all_correct_decided(10u32));
    }

    #[test]
    fn decision_round_is_t_plus_two() {
        let (n, t) = (5, 2);
        let exec = Scenario::new(n, t)
            .protocol(|_| FloodSet::<Bit>::new())
            .uniform_input(Bit::Zero)
            .run()
            .unwrap();
        assert_eq!(exec.all_decided_by(), Some(Round(t as u64 + 2)));
    }
}
