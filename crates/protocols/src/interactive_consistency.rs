//! Interactive consistency (\[78\], \[18\]; paper §5.2.2): processes agree
//! on a full vector of `n` proposals, one slot per process.
//!
//! IC is the *universal substrate* of the paper's general solvability
//! theorem: Algorithm 2 reduces **any** non-trivial agreement problem
//! satisfying the containment condition to IC by deciding `Γ(vec)`. This
//! module provides the two classic constructions:
//!
//! * **Authenticated** (any `t < n`): `n` parallel [`DolevStrong`]
//!   broadcasts, one per designated sender — Dolev & Strong \[52\].
//! * **Unauthenticated** (`n > 3t`): `n` parallel [`EigBroadcast`]
//!   instances — Pease, Shostak & Lamport \[78\], Fischer-Lynch-Merritt
//!   \[55\] for the matching impossibility.
//!
//! The decided vector satisfies **IC-Validity**: if a correct process `p_i`
//! proposed `v`, every decided vector holds `v` at index `i`.

use ba_crypto::Keybook;
use ba_sim::{ProcessId, Value};

use crate::dolev_strong::DolevStrong;
use crate::eig::EigBroadcast;
use crate::parallel::ParallelInstances;

/// Authenticated interactive consistency: `n` parallel Dolev-Strong
/// broadcasts. Decides `Vec<V>` of length `n`.
pub type AuthenticatedIc<V> = ParallelInstances<DolevStrong<V>>;

/// Unauthenticated interactive consistency: `n` parallel EIG broadcasts.
/// Requires `n > 3t`. Decides `Vec<V>` of length `n`.
pub type UnauthenticatedIc<V> = ParallelInstances<EigBroadcast<V>>;

/// A per-process factory for [`AuthenticatedIc`], suitable for the
/// executors.
///
/// Slot `i` of the decided vector is the outcome of the broadcast whose
/// designated sender is `p_i`; `default` fills slots of equivocating or
/// silent senders.
///
/// ```
/// use ba_crypto::Keybook;
/// use ba_protocols::interactive_consistency::authenticated_ic_factory;
/// use ba_sim::{Bit, Scenario};
///
/// let (n, t) = (4, 1);
/// let proposals = [Bit::One, Bit::Zero, Bit::Zero, Bit::One];
/// let exec = Scenario::new(n, t)
///     .protocol(authenticated_ic_factory(Keybook::new(n), Bit::Zero))
///     .inputs(proposals)
///     .run()
///     .unwrap();
/// assert!(exec.all_correct_decided(proposals.to_vec())); // IC-Validity
/// ```
pub fn authenticated_ic_factory<V: Value>(
    book: Keybook,
    default: V,
) -> impl Fn(ProcessId) -> AuthenticatedIc<V> + Clone {
    move |pid| {
        let n = book.n();
        ParallelInstances::new(
            (0..n)
                .map(|sender| {
                    DolevStrong::new(
                        book.clone(),
                        book.keychain(pid),
                        ProcessId(sender),
                        default.clone(),
                    )
                })
                .collect(),
        )
    }
}

/// A per-process factory for [`UnauthenticatedIc`].
///
/// # Panics
///
/// The underlying [`EigBroadcast`] constructor panics unless `n > 3t`,
/// matching the paper's Theorem 4 (unauthenticated solvability requires
/// `n > 3t`).
pub fn unauthenticated_ic_factory<V: Value>(
    n: usize,
    t: usize,
    default: V,
) -> impl Fn(ProcessId) -> UnauthenticatedIc<V> + Clone {
    move |_pid| {
        ParallelInstances::new(
            (0..n)
                .map(|sender| EigBroadcast::new(n, t, ProcessId(sender), default.clone()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{Adversary, Bit, Scenario, SilentByzantine};
    use std::collections::BTreeSet;

    #[test]
    fn authenticated_ic_decides_the_proposal_vector() {
        let (n, t) = (4, 1);
        let proposals = [Bit::One, Bit::Zero, Bit::One, Bit::Zero];
        let exec = Scenario::new(n, t)
            .protocol(authenticated_ic_factory(Keybook::new(n), Bit::Zero))
            .inputs(proposals)
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert!(exec.all_correct_decided(proposals.to_vec()));
    }

    #[test]
    fn authenticated_ic_tolerates_dishonest_majority() {
        // Authenticated IC works for any t < n: here t = 2 of n = 4 with two
        // silent Byzantine processes.
        let (n, t) = (4, 2);
        let exec = Scenario::new(n, t)
            .protocol(authenticated_ic_factory(Keybook::new(n), Bit::Zero))
            .uniform_input(Bit::One)
            .adversary(Adversary::byzantine([
                (ProcessId(2), Box::new(SilentByzantine) as _),
                (ProcessId(3), Box::new(SilentByzantine) as _),
            ]))
            .run()
            .unwrap();
        exec.validate().unwrap();
        // IC-Validity: correct slots hold the proposals; silent slots hold
        // the default.
        let expected = vec![Bit::One, Bit::One, Bit::Zero, Bit::Zero];
        for pid in exec.correct() {
            assert_eq!(exec.decision_of(pid), Some(&expected));
        }
    }

    #[test]
    fn unauthenticated_ic_decides_the_proposal_vector() {
        let (n, t) = (4, 1);
        let proposals = [Bit::Zero, Bit::One, Bit::One, Bit::Zero];
        let exec = Scenario::new(n, t)
            .protocol(unauthenticated_ic_factory(n, t, Bit::Zero))
            .inputs(proposals)
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert!(exec.all_correct_decided(proposals.to_vec()));
    }

    #[test]
    fn unauthenticated_ic_preserves_ic_validity_under_byzantine_fault() {
        let (n, t) = (4, 1);
        let exec = Scenario::new(n, t)
            .protocol(unauthenticated_ic_factory(n, t, Bit::Zero))
            .uniform_input(Bit::One)
            .adversary(Adversary::one_byzantine(ProcessId(1), SilentByzantine))
            .run()
            .unwrap();
        exec.validate().unwrap();
        let decisions: BTreeSet<_> = exec
            .correct()
            .map(|p| exec.decision_of(p).cloned())
            .collect();
        assert_eq!(decisions.len(), 1, "agreement violated");
        let vec = decisions.into_iter().next().unwrap().unwrap();
        // Correct slots must hold the correct processes' proposals.
        assert_eq!(vec[0], Bit::One);
        assert_eq!(vec[2], Bit::One);
        assert_eq!(vec[3], Bit::One);
    }

    #[test]
    fn ic_message_complexity_is_quadratic_per_round_block() {
        // Bundled parallel composition: one physical message per (sender,
        // receiver, round) regardless of instance count.
        let (n, t) = (4, 1);
        let exec = Scenario::new(n, t)
            .protocol(authenticated_ic_factory(Keybook::new(n), Bit::Zero))
            .uniform_input(Bit::One)
            .run()
            .unwrap();
        // At most (t + 1) rounds of all-to-all bundles.
        assert!(exec.message_complexity() <= ((t as u64 + 1) * (n * (n - 1)) as u64));
    }
}
