//! # ba-protocols — the Byzantine agreement protocol landscape
//!
//! Concrete [`ba_sim::Protocol`] implementations surrounding
//! *All Byzantine Agreement Problems are Expensive* (PODC 2024):
//!
//! **Upper bounds (correct protocols):**
//!
//! * [`DolevStrong`] — authenticated Byzantine broadcast in `t + 1` rounds
//!   for any `t < n` (Dolev & Strong 1983), built on `ba-crypto` signature
//!   chains. Instantiated with sender `p_0` it is also the canonical
//!   *quadratic-message weak consensus* — the protocol family the paper's
//!   Ω(t²) bound says cannot be beaten.
//! * [`EigConsensus`] / [`EigBroadcast`] — unauthenticated strong consensus /
//!   Byzantine generals via exponential information gathering
//!   (Lamport-Shostak-Pease / Bar-Noy et al.), `n > 3t`, `t + 1` rounds.
//! * [`PhaseKing`] — unauthenticated binary strong consensus
//!   (Berman-Garay-Perry), `n > 3t`, `3(t + 1)` rounds, `O(t·n²)` messages.
//! * [`FloodSet`] — the classic `t + 1`-round **crash**-tolerant consensus;
//!   included as the failure-model boundary exhibit (it breaks under the
//!   general-omission adversary the paper's proof wields).
//! * [`ParallelInstances`] — generic parallel composition; with
//!   [`DolevStrong`] per sender it yields authenticated **interactive
//!   consistency** ([`interactive_consistency::authenticated_ic_factory`]),
//!   with [`EigBroadcast`] the unauthenticated variant — the substrate of
//!   the paper's Algorithm 2.
//!
//! **Sub-quadratic baselines (deliberately broken weak consensus):**
//!
//! * [`broken::SilentConstant`], [`broken::OwnProposal`],
//!   [`broken::LeaderEcho`], [`broken::OneRoundAllToAll`] — cheap protocols
//!   whose existence the paper's Theorem 2 forbids; `ba-core`'s falsifier
//!   finds concrete violating executions for them, reproducing the proof.
//!
//! **Adversaries:**
//!
//! * [`attacks`] — protocol-specific Byzantine strategies (equivocating
//!   Dolev-Strong sender, colluding late injection) used to validate the
//!   correct protocols under attack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod broken;
mod dolev_strong;
pub(crate) mod eig;
mod flood_set;
pub mod interactive_consistency;
mod parallel;
mod phase_king;

pub use dolev_strong::{DolevStrong, DsBatch, DsEntry};
pub use eig::{EigBroadcast, EigConsensus, EigMsg, Path};
pub use flood_set::FloodSet;
pub use parallel::ParallelInstances;
pub use phase_king::{PhaseKing, PkMsg, UNSURE};
