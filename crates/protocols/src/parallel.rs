//! Generic parallel composition of protocol instances.
//!
//! Runs `m` independent instances of a protocol in lock-step, bundling each
//! round's per-instance messages to a given receiver into one physical
//! message (respecting the model's one-message-per-receiver rule). The
//! composite decides the vector of instance decisions once every instance
//! has decided.
//!
//! This is the workhorse behind interactive consistency: one broadcast
//! instance per designated sender (paper §5.2.2, and the reduction target of
//! Algorithm 2).

use std::collections::BTreeMap;

use ba_sim::{Inbox, Outbox, ProcessCtx, ProcessId, Protocol, Round};

/// `m` instances of `P` running side by side.
///
/// * `Input` is a single `P::Input`, handed to *every* instance — suitable
///   for sender-centric instances (broadcasts) where only the designated
///   sender's proposal matters per instance.
/// * `Output` is the vector of all instance decisions, in instance order.
/// * `Msg` maps instance index → instance message.
#[derive(Clone, Debug)]
pub struct ParallelInstances<P: Protocol> {
    instances: Vec<P>,
    decision: Option<Vec<P::Output>>,
}

impl<P: Protocol> ParallelInstances<P> {
    /// Composes the given instances.
    ///
    /// # Panics
    ///
    /// Panics if `instances` is empty.
    pub fn new(instances: Vec<P>) -> Self {
        assert!(!instances.is_empty(), "at least one instance required");
        ParallelInstances {
            instances,
            decision: None,
        }
    }

    /// Number of composed instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// `true` iff no instances are present (never true for constructed
    /// values).
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Access to an individual instance (e.g. for inspecting sub-decisions).
    pub fn instance(&self, idx: usize) -> &P {
        &self.instances[idx]
    }

    fn merge_outbox(
        combined: &mut BTreeMap<ProcessId, BTreeMap<usize, P::Msg>>,
        idx: usize,
        out: Outbox<P::Msg>,
    ) {
        for (to, msg) in out {
            combined.entry(to).or_default().insert(idx, msg);
        }
    }

    fn seal(
        combined: BTreeMap<ProcessId, BTreeMap<usize, P::Msg>>,
    ) -> Outbox<BTreeMap<usize, P::Msg>> {
        combined.into_iter().collect()
    }

    fn refresh_decision(&mut self) {
        if self.decision.is_none() && self.instances.iter().all(|i| i.decision().is_some()) {
            self.decision = Some(
                self.instances
                    .iter()
                    .map(|i| i.decision().expect("checked above"))
                    .collect(),
            );
        }
    }
}

impl<P: Protocol> Protocol for ParallelInstances<P> {
    type Input = P::Input;
    type Output = Vec<P::Output>;
    type Msg = BTreeMap<usize, P::Msg>;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: P::Input) -> Outbox<Self::Msg> {
        let mut combined = BTreeMap::new();
        for (idx, instance) in self.instances.iter_mut().enumerate() {
            let out = instance.propose(ctx, proposal.clone());
            Self::merge_outbox(&mut combined, idx, out);
        }
        self.refresh_decision();
        Self::seal(combined)
    }

    fn round(
        &mut self,
        ctx: &ProcessCtx,
        round: Round,
        inbox: &Inbox<Self::Msg>,
    ) -> Outbox<Self::Msg> {
        let mut combined = BTreeMap::new();
        for (idx, instance) in self.instances.iter_mut().enumerate() {
            let sub_inbox: BTreeMap<ProcessId, P::Msg> = inbox
                .iter()
                .filter_map(|(sender, bundle)| bundle.get(&idx).map(|msg| (sender, msg.clone())))
                .collect();
            let out = instance.round(ctx, round, &Inbox::from_map(sub_inbox));
            Self::merge_outbox(&mut combined, idx, out);
        }
        self.refresh_decision();
        Self::seal(combined)
    }

    fn decision(&self) -> Option<Self::Output> {
        self.decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{Bit, Scenario};

    /// Echoes the proposal of a designated source to everyone; decides the
    /// source's value (or a default when silent) after round 1.
    #[derive(Clone, Debug)]
    struct OneShotRelay {
        source: ProcessId,
        decision: Option<Bit>,
    }

    impl Protocol for OneShotRelay {
        type Input = Bit;
        type Output = Bit;
        type Msg = Bit;

        fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<Bit> {
            let mut out = Outbox::new();
            if ctx.id == self.source {
                self.decision = Some(proposal);
                out.broadcast(ctx.others(), proposal);
            }
            out
        }

        fn round(&mut self, _: &ProcessCtx, round: Round, inbox: &Inbox<Bit>) -> Outbox<Bit> {
            if round == Round::FIRST && self.decision.is_none() {
                self.decision = Some(inbox.from_sender(self.source).copied().unwrap_or(Bit::Zero));
            }
            Outbox::new()
        }

        fn decision(&self) -> Option<Bit> {
            self.decision
        }
    }

    fn relay_factory(n: usize) -> impl Fn(ProcessId) -> ParallelInstances<OneShotRelay> {
        move |_pid| {
            ParallelInstances::new(
                (0..n)
                    .map(|i| OneShotRelay {
                        source: ProcessId(i),
                        decision: None,
                    })
                    .collect(),
            )
        }
    }

    #[test]
    fn parallel_relays_produce_the_proposal_vector() {
        let n = 4;
        let proposals = [Bit::One, Bit::Zero, Bit::One, Bit::Zero];
        let exec = Scenario::new(n, 1)
            .protocol(relay_factory(n))
            .inputs(proposals)
            .run()
            .unwrap();
        exec.validate().unwrap();
        let expected: Vec<Bit> = proposals.to_vec();
        assert!(exec.all_correct_decided(expected));
    }

    #[test]
    fn bundling_keeps_one_physical_message_per_receiver() {
        let n = 4;
        let exec = Scenario::new(n, 1)
            .protocol(relay_factory(n))
            .uniform_input(Bit::Zero)
            .run()
            .unwrap();
        // Round 1: each process sends exactly one bundled message to each
        // peer (its own relay instance), despite n instances running.
        for pid in exec.correct() {
            assert_eq!(exec.record(pid).fragments[0].sent.len(), n - 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_composition_is_rejected() {
        let _ = ParallelInstances::<OneShotRelay>::new(vec![]);
    }

    #[test]
    fn instance_accessors() {
        let p = ParallelInstances::new(vec![
            OneShotRelay {
                source: ProcessId(0),
                decision: None,
            },
            OneShotRelay {
                source: ProcessId(1),
                decision: None,
            },
        ]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.instance(1).source, ProcessId(1));
    }
}
