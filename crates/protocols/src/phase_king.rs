//! Phase King — unauthenticated binary strong consensus for `n > 3t`
//! (Berman, Garay, Perry 1989; the paper's reference \[20\]).
//!
//! `t + 1` phases of three rounds each. In phase `p` (king `p_{(p-1) mod n}`):
//!
//! 1. **Exchange 1.** Everyone broadcasts its current value `v ∈ {0, 1}` and
//!    counts occurrences (including its own). If some bit reaches `n − t`
//!    support, the *candidate* `w` becomes that bit, otherwise `w = ⊥`.
//! 2. **Exchange 2.** Everyone broadcasts `w ∈ {0, 1, ⊥}`. If some bit `b`
//!    gets more than `t` votes, the process tentatively adopts `v' = b`, and
//!    is *locked* if `b` got at least `n − t` votes.
//! 3. **King round.** The king broadcasts its `v'` (with `⊥` mapped to 0).
//!    Locked processes keep `v'`; everyone else adopts the king's bit.
//!
//! After phase `t + 1`, decide the current value. With `t + 1` phases some
//! phase has a correct king; in that phase all correct processes align, and
//! alignment persists (`n > 3t` makes `n − t` support self-sustaining).
//!
//! Message complexity: `(t + 1)·(2n + 1)·(n − 1) = O(t·n²)` — another
//! upper-bound data point above the paper's Ω(t²) floor.

use ba_sim::{Bit, Inbox, Outbox, ProcessCtx, ProcessId, Protocol, Round};

/// The unsure candidate value (the algorithm's `⊥`), carried in
/// [`PkMsg::Support`] as the literal `2`.
pub const UNSURE: u8 = 2;

/// Phase King wire messages.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PkMsg {
    /// Exchange-1 broadcast of the current value.
    Report(Bit),
    /// Exchange-2 broadcast of the candidate (`0`, `1`, or [`UNSURE`]).
    Support(u8),
    /// The king's tie-breaker.
    King(Bit),
}

/// Berman-Garay-Perry Phase King consensus over binary values.
///
/// ```
/// use ba_protocols::PhaseKing;
/// use ba_sim::{Bit, Scenario};
///
/// let exec = Scenario::new(4, 1)
///     .protocol(|_| PhaseKing::new(4, 1))
///     .uniform_input(Bit::One)
///     .run()
///     .unwrap();
/// assert!(exec.all_correct_decided(Bit::One)); // strong validity
/// ```
#[derive(Clone, Debug)]
pub struct PhaseKing {
    value: Bit,
    candidate: u8,
    tentative: u8,
    locked: bool,
    decision: Option<Bit>,
    phases: u64,
}

impl PhaseKing {
    /// Creates an instance for an `(n, t)` system.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t` (the protocol's resilience requirement, shown
    /// inherent by the paper's Theorem 4).
    pub fn new(n: usize, t: usize) -> Self {
        Self::with_phases(n, t, t as u64 + 1)
    }

    /// Creates an instance that runs `phases` phases instead of the safe
    /// `t + 1`. With fewer than `t + 1` phases every phase may have a
    /// faulty king, so agreement is **not** guaranteed — this weakened
    /// variant exists as prey for the adversary search (`ba-search`),
    /// which should rediscover the king-silencing attack against it.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t` and `phases >= 1`.
    pub fn with_phases(n: usize, t: usize, phases: u64) -> Self {
        assert!(
            n > 3 * t,
            "Phase King requires n > 3t (got n = {n}, t = {t})"
        );
        assert!(phases >= 1, "Phase King needs at least one phase");
        PhaseKing {
            value: Bit::Zero,
            candidate: UNSURE,
            tentative: UNSURE,
            locked: false,
            decision: None,
            phases,
        }
    }

    /// The king of phase `p` (1-based): processes take turns in id order.
    pub fn king_of_phase(phase: u64, n: usize) -> ProcessId {
        ProcessId(((phase - 1) as usize) % n)
    }

    /// Total number of rounds: three per phase, `t + 1` phases.
    pub fn total_rounds(t: usize) -> u64 {
        3 * (t as u64 + 1)
    }

    fn tentative_bit(&self) -> Bit {
        if self.tentative == 1 {
            Bit::One
        } else {
            Bit::Zero // UNSURE maps to 0, like the king's broadcast
        }
    }
}

impl Protocol for PhaseKing {
    type Input = Bit;
    type Output = Bit;
    type Msg = PkMsg;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<PkMsg> {
        self.value = proposal;
        let mut out = Outbox::new();
        out.broadcast(ctx.others(), PkMsg::Report(self.value));
        out
    }

    fn round(&mut self, ctx: &ProcessCtx, round: Round, inbox: &Inbox<PkMsg>) -> Outbox<PkMsg> {
        let mut out = Outbox::new();
        if self.decision.is_some() || round.0 > 3 * self.phases {
            return out;
        }
        match (round.0 - 1) % 3 {
            // Processing exchange 1: count Reports, derive the candidate.
            0 => {
                let mut counts = [0usize; 2];
                counts[u8::from(self.value) as usize] += 1;
                for (_, msg) in inbox.iter() {
                    if let PkMsg::Report(b) = msg {
                        counts[u8::from(*b) as usize] += 1;
                    }
                }
                self.candidate = if counts[0] >= ctx.n - ctx.t {
                    0
                } else if counts[1] >= ctx.n - ctx.t {
                    1
                } else {
                    UNSURE
                };
                out.broadcast(ctx.others(), PkMsg::Support(self.candidate));
            }
            // Processing exchange 2: count Supports, derive tentative/locked;
            // the king announces.
            1 => {
                let mut counts = [0usize; 3];
                counts[self.candidate as usize] += 1;
                for (_, msg) in inbox.iter() {
                    if let PkMsg::Support(w) = msg {
                        if *w <= UNSURE {
                            counts[*w as usize] += 1;
                        }
                    }
                }
                (self.tentative, self.locked) = if counts[0] > ctx.t {
                    (0, counts[0] >= ctx.n - ctx.t)
                } else if counts[1] > ctx.t {
                    (1, counts[1] >= ctx.n - ctx.t)
                } else {
                    (UNSURE, false)
                };
                let phase = (round.0 + 1) / 3;
                if ctx.id == Self::king_of_phase(phase, ctx.n) {
                    out.broadcast(ctx.others(), PkMsg::King(self.tentative_bit()));
                }
            }
            // Processing the king round: adopt, then start the next phase
            // (or decide).
            _ => {
                let phase = round.0 / 3;
                let king = Self::king_of_phase(phase, ctx.n);
                self.value = if self.locked || ctx.id == king {
                    self.tentative_bit()
                } else {
                    match inbox.from_sender(king) {
                        Some(PkMsg::King(b)) => *b,
                        _ => Bit::Zero,
                    }
                };
                if phase == self.phases {
                    self.decision = Some(self.value);
                } else {
                    out.broadcast(ctx.others(), PkMsg::Report(self.value));
                }
            }
        }
        out
    }

    fn decision(&self) -> Option<Bit> {
        self.decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{Adversary, Scenario, SilentByzantine};
    use std::collections::BTreeSet;

    #[test]
    fn strong_validity_fault_free() {
        for bit in Bit::ALL {
            let exec = Scenario::new(4, 1)
                .protocol(|_| PhaseKing::new(4, 1))
                .uniform_input(bit)
                .run()
                .unwrap();
            exec.validate().unwrap();
            assert!(exec.all_correct_decided(bit));
        }
    }

    #[test]
    fn agreement_with_mixed_proposals() {
        let exec = Scenario::new(7, 2)
            .protocol(|_| PhaseKing::new(7, 2))
            .inputs([
                Bit::One,
                Bit::Zero,
                Bit::One,
                Bit::Zero,
                Bit::One,
                Bit::Zero,
                Bit::One,
            ])
            .run()
            .unwrap();
        exec.validate().unwrap();
        let decisions: BTreeSet<_> = exec
            .correct()
            .map(|p| exec.decision_of(p).cloned())
            .collect();
        assert_eq!(decisions.len(), 1, "agreement violated");
    }

    #[test]
    fn strong_validity_with_silent_byzantine_king() {
        // p0 is king of phase 1 and Byzantine-silent; all correct propose One.
        let exec = Scenario::new(4, 1)
            .protocol(|_| PhaseKing::new(4, 1))
            .uniform_input(Bit::One)
            .adversary(Adversary::one_byzantine(ProcessId(0), SilentByzantine))
            .run()
            .unwrap();
        exec.validate().unwrap();
        for pid in exec.correct() {
            assert_eq!(exec.decision_of(pid), Some(&Bit::One));
        }
    }

    #[test]
    fn agreement_under_equivocating_byzantine() {
        use crate::attacks::SplitReporter;
        let exec = Scenario::new(7, 2)
            .protocol(|_| PhaseKing::new(7, 2))
            .inputs([
                Bit::One,
                Bit::Zero,
                Bit::One,
                Bit::Zero,
                Bit::One,
                Bit::Zero,
                Bit::One,
            ])
            .adversary(Adversary::byzantine([
                (ProcessId(6), Box::new(SplitReporter::new()) as _),
                (ProcessId(5), Box::new(SplitReporter::new()) as _),
            ]))
            .run()
            .unwrap();
        exec.validate().unwrap();
        let decisions: BTreeSet<_> = exec
            .correct()
            .map(|p| exec.decision_of(p).cloned())
            .collect();
        assert_eq!(decisions.len(), 1, "agreement violated under equivocation");
        assert!(
            decisions.iter().all(|d| d.is_some()),
            "termination violated"
        );
    }

    #[test]
    fn rounds_and_message_complexity_match_formula() {
        let (n, t) = (7, 2);
        let exec = Scenario::new(n, t)
            .protocol(move |_| PhaseKing::new(n, t))
            .uniform_input(Bit::One)
            .run()
            .unwrap();
        assert_eq!(
            exec.all_decided_by(),
            Some(Round(PhaseKing::total_rounds(t) + 1))
        );
        // (t+1) phases × (2 all-to-all exchanges + 1 king broadcast).
        let expected = ((t + 1) * (2 * n * (n - 1) + (n - 1))) as u64;
        assert_eq!(exec.message_complexity(), expected);
    }

    #[test]
    fn king_rotation_is_cyclic() {
        assert_eq!(PhaseKing::king_of_phase(1, 4), ProcessId(0));
        assert_eq!(PhaseKing::king_of_phase(4, 4), ProcessId(3));
        assert_eq!(PhaseKing::king_of_phase(5, 4), ProcessId(0));
    }

    #[test]
    #[should_panic(expected = "n > 3t")]
    fn rejects_insufficient_resilience() {
        let _ = PhaseKing::new(3, 1);
    }

    #[test]
    fn single_phase_variant_decides_after_one_phase_fault_free() {
        // Fault-free, with_phases(.., 1) is still safe: everyone locks in
        // phase 1 and decides by round 4. The weakness only shows against
        // an adversary that corrupts the (single) king.
        let exec = Scenario::new(5, 1)
            .protocol(|_| PhaseKing::with_phases(5, 1, 1))
            .uniform_input(Bit::One)
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert!(exec.all_correct_decided(Bit::One));
        assert_eq!(exec.all_decided_by(), Some(Round(4)));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn rejects_zero_phases() {
        let _ = PhaseKing::with_phases(4, 1, 0);
    }
}
