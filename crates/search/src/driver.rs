//! Deterministic search drivers: a (1+λ) evolutionary hill-climber and
//! simulated annealing over the [`GenomeSpace`].
//!
//! Both drivers draw **all** randomness sequentially from one [`SimRng`]
//! in the calling thread: a batch of λ candidates is generated first, then
//! evaluated in parallel on [`ba_sim::par_map`] (which returns results in
//! input order), then scored and accepted strictly in batch order. The
//! trajectory and the best genome are therefore bit-identical for a given
//! seed regardless of the worker-thread count — the property the
//! determinism regression pins.
//!
//! With a [`SearchConfig::recorder`] attached, the driver emits
//! iteration/acceptance telemetry (`search.evals`, `search.batches`,
//! `search.accepts` counters; `search.batch` and `search.done` events;
//! a `search.violations` counter on early stop). All recorded values are
//! logical search state — the deterministic channel — so aggregated
//! snapshots are as thread-count-independent as the trajectory itself.

use std::sync::Arc;

use ba_obs::{NoopRecorder, Recorder};
use ba_sim::{par_map, Bit, ScenarioStats, SimError, SimRng};

use crate::genome::{GenomeSpace, StrategyGenome};
use crate::objective::Objective;

/// Which driver explores the space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SearchAlgo {
    /// (1+λ): keep the incumbent, adopt the best batch candidate on a tie
    /// or improvement.
    HillClimb,
    /// Simulated annealing: candidates are accepted in batch order, worse
    /// ones with probability `exp(Δ/temperature)`; the temperature cools
    /// once per batch.
    Anneal,
}

impl std::fmt::Display for SearchAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchAlgo::HillClimb => write!(f, "hill-climb"),
            SearchAlgo::Anneal => write!(f, "anneal"),
        }
    }
}

/// Driver parameters. One seed replays the whole search.
#[derive(Clone)]
pub struct SearchConfig {
    /// Master seed: genomes, mutations, and acceptance draws all derive
    /// from it.
    pub seed: u64,
    /// Hard ceiling on scenario evaluations.
    pub max_evals: usize,
    /// Candidates generated (and evaluated in parallel) per batch.
    pub lambda: usize,
    /// Worker threads for batch evaluation (0 = auto). Has no effect on
    /// the result, only on wall-clock time.
    pub threads: usize,
    /// The driver to run.
    pub algo: SearchAlgo,
    /// Annealing start temperature (ignored by the hill-climber).
    pub temperature: f64,
    /// Per-batch geometric cooling factor in `(0, 1]`.
    pub cooling: f64,
    /// Telemetry sink for iteration/acceptance events (`None` = off).
    /// Observation-only: every recorded quantity is derived from the
    /// deterministic search state, so snapshots are bit-identical across
    /// thread counts.
    pub recorder: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for SearchConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchConfig")
            .field("seed", &self.seed)
            .field("max_evals", &self.max_evals)
            .field("lambda", &self.lambda)
            .field("threads", &self.threads)
            .field("algo", &self.algo)
            .field("temperature", &self.temperature)
            .field("cooling", &self.cooling)
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl SearchConfig {
    /// A sensible default configuration for the given seed: 400
    /// evaluations of batches of 8, hill-climbing, auto threads.
    pub fn new(seed: u64) -> Self {
        SearchConfig {
            seed,
            max_evals: 400,
            lambda: 8,
            threads: 0,
            algo: SearchAlgo::HillClimb,
            temperature: 8.0,
            cooling: 0.95,
            recorder: None,
        }
    }

    /// Sets the evaluation budget.
    pub fn with_max_evals(mut self, max_evals: usize) -> Self {
        self.max_evals = max_evals.max(1);
        self
    }

    /// Sets the batch size.
    pub fn with_lambda(mut self, lambda: usize) -> Self {
        self.lambda = lambda.max(1);
        self
    }

    /// Sets the worker-thread count (0 = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the driver.
    pub fn with_algo(mut self, algo: SearchAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Attaches a telemetry recorder (see [`SearchConfig::recorder`]).
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }
}

/// One accepted batch in the search trajectory.
#[derive(Clone, PartialEq, Debug)]
pub struct SearchStep {
    /// Evaluations consumed up to and including this batch.
    pub evals: usize,
    /// The incumbent's score after this batch.
    pub current_score: f64,
    /// The best score seen so far.
    pub best_score: f64,
    /// Whether this batch changed the incumbent.
    pub moved: bool,
}

/// The result of a search run.
#[derive(Clone, PartialEq, Debug)]
pub struct SearchOutcome {
    /// The best genome found.
    pub best: StrategyGenome,
    /// Its score.
    pub best_score: f64,
    /// Its evaluated stats.
    pub best_stats: ScenarioStats<Bit>,
    /// Total evaluations consumed.
    pub evals: usize,
    /// `true` iff the best genome exhibits the objective's violation.
    pub violation: bool,
    /// Per-batch progress, bit-identical across thread counts.
    pub trajectory: Vec<SearchStep>,
}

/// Runs the configured driver: maximize `objective` over `space`, scoring
/// genomes with `eval`, stopping at the evaluation budget or on the first
/// violating outcome.
///
/// # Errors
///
/// Propagates the first evaluation error in deterministic (batch) order.
pub fn search<E>(
    space: &GenomeSpace,
    objective: &dyn Objective,
    cfg: &SearchConfig,
    eval: E,
) -> Result<SearchOutcome, SimError>
where
    E: Fn(&StrategyGenome) -> Result<ScenarioStats<Bit>, SimError> + Sync,
{
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let mut temperature = cfg.temperature.max(f64::MIN_POSITIVE);
    let recorder: &dyn Recorder = match &cfg.recorder {
        Some(r) => r.as_ref(),
        None => &NoopRecorder,
    };

    let mut current = space.random_genome(&mut rng);
    let mut current_stats = eval(&current)?;
    let mut current_score = objective.score(&current_stats);
    let mut evals = 1;
    recorder.counter("search.evals", 1, &[]);

    let mut best = current.clone();
    let mut best_stats = current_stats.clone();
    let mut best_score = current_score;
    let mut trajectory = Vec::new();

    while evals < cfg.max_evals && !objective.violated(&best_stats) {
        // Generate the whole batch up front: all randomness is drawn here,
        // sequentially, before any parallel work.
        let batch_len = cfg.lambda.min(cfg.max_evals - evals);
        let batch: Vec<StrategyGenome> = (0..batch_len)
            .map(|_| {
                if rng.gen_bool(0.8) {
                    space.mutate(&current, &mut rng)
                } else {
                    let fresh = space.random_genome(&mut rng);
                    space.crossover(&current, &fresh, &mut rng)
                }
            })
            .collect();
        let results = par_map(batch, cfg.threads, |_, genome| {
            let stats = eval(&genome);
            (genome, stats)
        });
        evals += batch_len;

        // Score and accept strictly in batch order.
        let mut moved = false;
        let mut accepted = 0u64;
        for (genome, result) in results {
            let stats = result?;
            let score = objective.score(&stats);
            if score > best_score {
                best = genome.clone();
                best_stats = stats.clone();
                best_score = score;
            }
            let accept = match cfg.algo {
                SearchAlgo::HillClimb => score >= current_score,
                SearchAlgo::Anneal => {
                    score >= current_score
                        || rng.next_f64() < ((score - current_score) / temperature).exp()
                }
            };
            if accept {
                current = genome;
                current_stats = stats;
                current_score = score;
                moved = true;
                accepted += 1;
            }
            if objective.violated(&current_stats) {
                break;
            }
        }
        if cfg.algo == SearchAlgo::Anneal {
            temperature = (temperature * cfg.cooling).max(f64::MIN_POSITIVE);
        }
        trajectory.push(SearchStep {
            evals,
            current_score,
            best_score,
            moved,
        });
        recorder.counter("search.evals", batch_len as u64, &[]);
        recorder.counter("search.batches", 1, &[]);
        recorder.counter("search.accepts", accepted, &[]);
        recorder.event(
            "search.batch",
            &[
                ("evals", evals.into()),
                ("current_score", current_score.into()),
                ("best_score", best_score.into()),
                ("moved", moved.into()),
                ("accepted", accepted.into()),
            ],
        );
        // The hill-climber only tracks its own best; annealing may wander
        // below it, so the violation check runs on the global best.
        if objective.violated(&current_stats) && !objective.violated(&best_stats) {
            best = current.clone();
            best_stats = current_stats.clone();
            best_score = current_score;
        }
    }

    let violation = objective.violated(&best_stats);
    if violation {
        recorder.counter("search.violations", 1, &[]);
    }
    recorder.event(
        "search.done",
        &[
            ("evals", evals.into()),
            ("best_score", best_score.into()),
            ("violation", violation.into()),
            ("batches", trajectory.len().into()),
        ],
    );
    Ok(SearchOutcome {
        best,
        best_score,
        best_stats,
        evals,
        violation,
        trajectory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::MessageComplexity;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A synthetic evaluator: "message complexity" counts genes that mute
    /// process 0 — a smooth landscape the climber must ascend.
    fn synthetic(genome: &StrategyGenome) -> Result<ScenarioStats<Bit>, SimError> {
        use crate::genome::{Action, TargetSel};
        let score = genome
            .genes
            .iter()
            .filter(|g| matches!(g.target, TargetSel::Fixed(0)) && matches!(g.action, Action::Mute))
            .count() as u64;
        Ok(ScenarioStats {
            message_complexity: score,
            total_messages: score,
            rounds: 1,
            quiescent: true,
            decided_by: None,
            decisions: Default::default(),
            violations: Vec::new(),
        })
    }

    #[test]
    fn hill_climber_ascends_the_synthetic_landscape() {
        let space = GenomeSpace::new(4, 3, 6);
        let cfg = SearchConfig::new(42).with_max_evals(3000).with_lambda(8);
        let outcome = search(&space, &MessageComplexity, &cfg, synthetic).unwrap();
        assert!(
            outcome.best_score >= 1.0,
            "should find at least one mute-p0 gene, got {}",
            outcome.best_score
        );
        assert!(outcome.evals <= 3000);
        assert!(!outcome.trajectory.is_empty());
    }

    #[test]
    fn both_drivers_are_deterministic_across_thread_counts() {
        let space = GenomeSpace::new(5, 2, 8);
        for algo in [SearchAlgo::HillClimb, SearchAlgo::Anneal] {
            let run = |threads: usize| {
                let cfg = SearchConfig::new(7)
                    .with_max_evals(120)
                    .with_lambda(8)
                    .with_threads(threads)
                    .with_algo(algo);
                search(&space, &MessageComplexity, &cfg, synthetic).unwrap()
            };
            let serial = run(1);
            let parallel = run(8);
            assert_eq!(serial, parallel, "{algo} must not depend on threads");
        }
    }

    #[test]
    fn telemetry_is_observation_only_and_thread_deterministic() {
        use ba_obs::Aggregator;

        let space = GenomeSpace::new(5, 2, 8);
        let base = || SearchConfig::new(7).with_max_evals(120).with_lambda(8);
        let run = |threads: usize| {
            let agg = Arc::new(Aggregator::new());
            let cfg = base().with_threads(threads).with_recorder(agg.clone());
            let outcome = search(&space, &MessageComplexity, &cfg, synthetic).unwrap();
            (outcome, agg.snapshot().deterministic())
        };
        let (serial, snap1) = run(1);
        let (parallel, snap8) = run(8);
        // Deterministic telemetry is bit-identical across thread counts.
        assert_eq!(snap1, snap8);
        assert_eq!(serial, parallel);
        // Recording changes nothing about the search itself.
        let plain = search(&space, &MessageComplexity, &base(), synthetic).unwrap();
        assert_eq!(plain, serial);
        // Counters mirror the outcome's logical quantities.
        assert_eq!(snap1.counters["search.evals"], serial.evals as u64);
        assert_eq!(
            snap1.counters["search.batches"],
            serial.trajectory.len() as u64
        );
        assert_eq!(snap1.events["search.batch"], serial.trajectory.len() as u64);
        assert_eq!(snap1.events["search.done"], 1);
        assert!(snap1.counters["search.accepts"] >= 1);
    }

    #[test]
    fn search_stops_on_the_first_violation() {
        #[derive(Clone, Copy)]
        struct AlwaysViolated;
        impl Objective for AlwaysViolated {
            fn name(&self) -> &'static str {
                "always"
            }
            fn score(&self, _: &ScenarioStats<Bit>) -> f64 {
                <dyn Objective>::VIOLATION_SCORE
            }
            fn violated(&self, _: &ScenarioStats<Bit>) -> bool {
                true
            }
        }
        let space = GenomeSpace::new(4, 1, 4);
        let evals = AtomicUsize::new(0);
        let cfg = SearchConfig::new(1).with_max_evals(500);
        let outcome = search(&space, &AlwaysViolated, &cfg, |g| {
            evals.fetch_add(1, Ordering::Relaxed);
            synthetic(g)
        })
        .unwrap();
        assert!(outcome.violation);
        assert_eq!(outcome.evals, 1, "the very first evaluation violates");
        assert_eq!(evals.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn evaluation_errors_propagate_deterministically() {
        let space = GenomeSpace::new(4, 1, 4);
        let cfg = SearchConfig::new(3).with_max_evals(50);
        let err = search(&space, &MessageComplexity, &cfg, |_| {
            Err(SimError::InvalidResilience { n: 4, t: 9 })
        })
        .unwrap_err();
        assert_eq!(err, SimError::InvalidResilience { n: 4, t: 9 });
    }
}
