//! The [`StrategyGenome`]: a compact, serializable encoding of an
//! execution-observing adversary strategy, plus the seeded variation
//! operators ([`GenomeSpace::mutate`], [`GenomeSpace::crossover`]) the
//! search drivers explore it with.
//!
//! A genome is a short list of [`Gene`]s under a corruption budget. Each
//! gene is a *directive template*: a [`Trigger`] predicate over the
//! executor's [`ExecutionView`](ba_sim::ExecutionView) deciding **when** to
//! corrupt, a [`TargetSel`] deciding **whom** (a fixed id or a
//! traffic-ranked pick, the `AdaptiveWorstCase` primitive), and an
//! [`Action`] deciding **what** the corrupted process's network does
//! afterwards (mute, deafen, a per-receiver omission mask, or forge). An
//! optional reorder seed adds `SchedulerOmission`-style queue shuffling.
//!
//! The encoding is deliberately small and closed under the variation
//! operators: every mutation and crossover of budget-respecting genomes is
//! again budget-respecting, so the interpreter never has to reject a
//! candidate at run time.

use std::fmt;

use ba_sim::SimRng;

/// When a gene fires: a predicate over the per-round execution view.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Trigger {
    /// Fire at the start of round `r` (or any later round, if the budget
    /// was exhausted earlier).
    AtRound(u64),
    /// Fire once the resolved target has sent at least this many messages
    /// (the traffic-threshold predicate; `0` fires immediately).
    SentAtLeast(u64),
}

/// Whom a gene corrupts, resolved against the view when the trigger fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TargetSel {
    /// Process `id mod n`.
    Fixed(usize),
    /// The process of this rank (0 = chattiest) when all processes are
    /// ordered by observed sent traffic, descending, ties toward lower
    /// ids — the `AdaptiveWorstCase` ranking.
    TopSender(usize),
}

/// What the corrupted target's network does from the firing round on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Action {
    /// Send-omit every message the target emits.
    Mute,
    /// Receive-omit every message addressed to the target.
    Deafen,
    /// Send-omit the target's messages to exactly the receivers whose
    /// index bit is set in `mask` (receivers with index ≥ 64 are
    /// unaffected; partial masks are what split correct processes).
    MuteReceivers {
        /// Bit `i` set ⇒ messages to process `i` are send-omitted.
        mask: u64,
    },
    /// Replace the target's messages with the interpreter's forged payload
    /// (falls back to [`Action::Mute`] when no payload was supplied).
    Forge,
}

/// One directive template: trigger → target → action.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Gene {
    /// When to corrupt.
    pub trigger: Trigger,
    /// Whom to corrupt.
    pub target: TargetSel,
    /// What the corrupted process's network does afterwards.
    pub action: Action,
}

impl fmt::Display for Gene {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.trigger {
            Trigger::AtRound(r) => write!(f, "at round {r}: ")?,
            Trigger::SentAtLeast(s) => write!(f, "once target sent >= {s}: ")?,
        }
        match self.target {
            TargetSel::Fixed(id) => write!(f, "corrupt process {id}")?,
            TargetSel::TopSender(rank) => write!(f, "corrupt sender of rank {rank}")?,
        }
        match self.action {
            Action::Mute => write!(f, ", mute it"),
            Action::Deafen => write!(f, ", deafen it"),
            Action::MuteReceivers { mask } => {
                let bits: Vec<String> = (0..64)
                    .filter(|i| mask >> i & 1 == 1)
                    .map(|i| i.to_string())
                    .collect();
                write!(f, ", mute it toward {{{}}}", bits.join(","))
            }
            Action::Forge => write!(f, ", forge its messages"),
        }
    }
}

/// A complete adversary strategy: genes under a corruption budget, plus an
/// optional delivery-reorder seed.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StrategyGenome {
    /// The adaptive corruption budget declared to the executor; must be
    /// ≤ `t` of the scenario the genome is evaluated against.
    pub budget: usize,
    /// The directive templates, applied in order (at most `budget` genes).
    pub genes: Vec<Gene>,
    /// When set, the interpreter reorders every round's routing queue with
    /// a `SimRng` seeded from this value.
    pub reorder_seed: Option<u64>,
}

impl StrategyGenome {
    /// A genome with no genes and no reordering: the null adversary.
    pub fn empty(budget: usize) -> Self {
        StrategyGenome {
            budget,
            genes: Vec::new(),
            reorder_seed: None,
        }
    }
}

impl fmt::Display for StrategyGenome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "budget {}, {} gene(s)", self.budget, self.genes.len())?;
        for gene in &self.genes {
            writeln!(f, "  - {gene}")?;
        }
        if let Some(seed) = self.reorder_seed {
            writeln!(f, "  - reorder deliveries (seed {seed})")?;
        }
        Ok(())
    }
}

/// The bounded strategy space the drivers search: scenario shape plus the
/// seeded random-genome / mutation / crossover operators.
///
/// Every operator draws all randomness from the caller's [`SimRng`], so a
/// search trajectory is fully replayable from one seed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GenomeSpace {
    /// Number of processes of the target scenario.
    pub n: usize,
    /// Resilience bound — the ceiling on genome budgets.
    pub t: usize,
    /// Largest round a [`Trigger::AtRound`] may name.
    pub max_round: u64,
}

impl GenomeSpace {
    /// A space for an `(n, t)` scenario with triggers up to `max_round`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `max_round == 0`.
    pub fn new(n: usize, t: usize, max_round: u64) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(max_round > 0, "need at least one round");
        GenomeSpace { n, t, max_round }
    }

    /// A mask over the real receiver indices (`n` capped at 64 bits).
    fn mask_bits(&self) -> u64 {
        if self.n >= 64 {
            u64::MAX
        } else {
            (1u64 << self.n) - 1
        }
    }

    fn random_trigger(&self, rng: &mut SimRng) -> Trigger {
        if rng.gen_bool(0.5) {
            Trigger::AtRound(rng.gen_range(1, self.max_round + 1))
        } else {
            // Small thresholds (0 fires immediately) up to roughly one
            // all-to-all round of traffic.
            Trigger::SentAtLeast(rng.gen_range(0, 2 * self.n as u64))
        }
    }

    fn random_target(&self, rng: &mut SimRng) -> TargetSel {
        if rng.gen_bool(0.5) {
            TargetSel::Fixed(rng.gen_index(0, self.n))
        } else {
            TargetSel::TopSender(rng.gen_index(0, self.n))
        }
    }

    fn random_action(&self, rng: &mut SimRng) -> Action {
        match rng.gen_index(0, 4) {
            0 => Action::Mute,
            1 => Action::Deafen,
            2 => Action::MuteReceivers {
                mask: rng.next_u64() & self.mask_bits(),
            },
            _ => Action::Forge,
        }
    }

    /// A uniformly random gene.
    pub fn random_gene(&self, rng: &mut SimRng) -> Gene {
        Gene {
            trigger: self.random_trigger(rng),
            target: self.random_target(rng),
            action: self.random_action(rng),
        }
    }

    /// A random budget-respecting genome: budget `t`, 1..=budget genes, an
    /// occasional reorder seed. With `t == 0` the genome is the null
    /// adversary.
    pub fn random_genome(&self, rng: &mut SimRng) -> StrategyGenome {
        if self.t == 0 {
            return StrategyGenome::empty(0);
        }
        let count = rng.gen_index(1, self.t + 1);
        let genes = (0..count).map(|_| self.random_gene(rng)).collect();
        let reorder_seed = rng.gen_bool(0.25).then(|| rng.next_u64());
        StrategyGenome {
            budget: self.t,
            genes,
            reorder_seed,
        }
    }

    /// A seeded point mutation: tweak one gene field, add or remove a gene,
    /// or toggle the reorder seed. The result respects the budget.
    pub fn mutate(&self, genome: &StrategyGenome, rng: &mut SimRng) -> StrategyGenome {
        let mut next = genome.clone();
        if next.budget == 0 {
            return next;
        }
        match rng.gen_index(0, 6) {
            // Replace one gene field.
            0..=2 if !next.genes.is_empty() => {
                let i = rng.gen_index(0, next.genes.len());
                match rng.gen_index(0, 3) {
                    0 => next.genes[i].trigger = self.random_trigger(rng),
                    1 => next.genes[i].target = self.random_target(rng),
                    _ => next.genes[i].action = self.random_action(rng),
                }
            }
            // Flip one receiver-mask bit (or re-roll the action when the
            // gene is not a mask).
            3 if !next.genes.is_empty() => {
                let i = rng.gen_index(0, next.genes.len());
                if let Action::MuteReceivers { mask } = next.genes[i].action {
                    let bit = 1u64 << rng.gen_index(0, self.n.min(64));
                    next.genes[i].action = Action::MuteReceivers { mask: mask ^ bit };
                } else {
                    next.genes[i].action = Action::MuteReceivers {
                        mask: rng.next_u64() & self.mask_bits(),
                    };
                }
            }
            // Grow or shrink the gene list.
            4 => {
                if next.genes.len() < next.budget {
                    let gene = self.random_gene(rng);
                    next.genes.push(gene);
                } else if next.genes.len() > 1 {
                    let i = rng.gen_index(0, next.genes.len());
                    next.genes.remove(i);
                }
            }
            // Toggle or re-seed the reorderer.
            _ => {
                next.reorder_seed = match next.reorder_seed {
                    Some(_) if rng.gen_bool(0.5) => None,
                    _ => Some(rng.next_u64()),
                };
            }
        }
        if next.genes.is_empty() {
            next.genes.push(self.random_gene(rng));
        }
        next
    }

    /// One-point crossover over the gene lists (truncated to the budget);
    /// the reorder seed comes from either parent.
    pub fn crossover(
        &self,
        a: &StrategyGenome,
        b: &StrategyGenome,
        rng: &mut SimRng,
    ) -> StrategyGenome {
        let budget = a.budget.min(b.budget);
        if budget == 0 {
            return StrategyGenome::empty(0);
        }
        let cut_a = rng.gen_index(0, a.genes.len() + 1);
        let cut_b = rng.gen_index(0, b.genes.len() + 1);
        let mut genes: Vec<Gene> = a.genes[..cut_a]
            .iter()
            .chain(&b.genes[cut_b..])
            .copied()
            .take(budget)
            .collect();
        if genes.is_empty() {
            genes.push(self.random_gene(rng));
        }
        let reorder_seed = if rng.gen_bool(0.5) {
            a.reorder_seed
        } else {
            b.reorder_seed
        };
        StrategyGenome {
            budget,
            genes,
            reorder_seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> GenomeSpace {
        GenomeSpace::new(7, 2, 12)
    }

    #[test]
    fn random_genomes_respect_the_budget() {
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..200 {
            let g = space().random_genome(&mut rng);
            assert_eq!(g.budget, 2);
            assert!(!g.genes.is_empty() && g.genes.len() <= g.budget);
        }
    }

    #[test]
    fn mutation_and_crossover_stay_budget_respecting() {
        let mut rng = SimRng::seed_from_u64(12);
        let sp = space();
        let mut a = sp.random_genome(&mut rng);
        let b = sp.random_genome(&mut rng);
        for _ in 0..500 {
            a = if rng.gen_bool(0.7) {
                sp.mutate(&a, &mut rng)
            } else {
                sp.crossover(&a, &b, &mut rng)
            };
            assert!(!a.genes.is_empty() && a.genes.len() <= a.budget);
            for gene in &a.genes {
                if let Trigger::AtRound(r) = gene.trigger {
                    assert!((1..=sp.max_round).contains(&r));
                }
                match gene.target {
                    TargetSel::Fixed(id) | TargetSel::TopSender(id) => assert!(id < sp.n),
                }
                if let Action::MuteReceivers { mask } = gene.action {
                    assert_eq!(mask & !((1u64 << sp.n) - 1), 0, "mask within n");
                }
            }
        }
    }

    #[test]
    fn operators_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut rng = SimRng::seed_from_u64(seed);
            let sp = space();
            let mut g = sp.random_genome(&mut rng);
            for _ in 0..50 {
                g = sp.mutate(&g, &mut rng);
            }
            g
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn zero_budget_space_yields_the_null_adversary() {
        let sp = GenomeSpace::new(4, 0, 8);
        let mut rng = SimRng::seed_from_u64(1);
        let g = sp.random_genome(&mut rng);
        assert!(g.genes.is_empty());
        assert_eq!(sp.mutate(&g, &mut rng), g);
    }

    #[test]
    fn genes_render_human_readably() {
        let gene = Gene {
            trigger: Trigger::AtRound(1),
            target: TargetSel::Fixed(0),
            action: Action::MuteReceivers { mask: 0b0110 },
        };
        let text = gene.to_string();
        assert!(text.contains("round 1"), "{text}");
        assert!(text.contains("process 0"), "{text}");
        assert!(text.contains("{1,2}"), "{text}");
    }
}
