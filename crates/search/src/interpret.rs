//! The genome interpreter: [`GenomeModel`] executes a [`StrategyGenome`]
//! as a live, budget-sound [`FaultModel`].
//!
//! Soundness is structural, not checked per call: the model only ever
//! *adds* corruptions (no releases), each gene binds to the process it
//! corrupted when its trigger first fired, and every omission or forge
//! blames a bound — hence currently corrupted — process. New corruptions
//! stop as soon as `budget` distinct processes are bound, so an arbitrary
//! evolved genome can never trip the executor's `OmissionByCorrect` /
//! `ForgeByCorrect` guards or overdraw the adaptive budget.

use std::collections::BTreeSet;

use ba_sim::{
    Adversary, Bit, Envelope, ExecutionView, FaultBudget, FaultDirective, FaultMode, FaultModel,
    Payload, ProcessId, Protocol, Routing, Scenario, ScenarioStats, SimError, SimRng,
};

use crate::genome::{Action, StrategyGenome, TargetSel, Trigger};

/// A [`FaultModel`] executing a [`StrategyGenome`] against any message type.
///
/// Construct with [`GenomeModel::new`]; supply a forged payload with
/// [`GenomeModel::with_forge`] to activate [`Action::Forge`] genes (without
/// one they degrade to [`Action::Mute`], keeping the model omission-only).
#[derive(Clone, Debug)]
pub struct GenomeModel<M> {
    genome: StrategyGenome,
    /// Per-gene binding: the process the gene corrupted, once triggered.
    bound: Vec<Option<ProcessId>>,
    /// Every process this model has corrupted (never released).
    corrupted: BTreeSet<ProcessId>,
    rng: SimRng,
    forge: Option<M>,
}

impl<M> GenomeModel<M> {
    /// An interpreter for `genome` (omission-only until a forged payload is
    /// supplied).
    pub fn new(genome: StrategyGenome) -> Self {
        let bound = vec![None; genome.genes.len()];
        let rng = SimRng::seed_from_u64(genome.reorder_seed.unwrap_or(0));
        GenomeModel {
            genome,
            bound,
            corrupted: BTreeSet::new(),
            rng,
            forge: None,
        }
    }

    /// Supplies the payload [`Action::Forge`] genes plant, switching the
    /// model to [`FaultMode::Byzantine`] if any gene forges.
    pub fn with_forge(mut self, payload: M) -> Self {
        self.forge = Some(payload);
        self
    }

    /// The interpreted genome.
    pub fn genome(&self) -> &StrategyGenome {
        &self.genome
    }

    /// The processes corrupted so far (useful after a replayed run).
    pub fn corrupted(&self) -> &BTreeSet<ProcessId> {
        &self.corrupted
    }

    fn forging(&self) -> bool {
        self.forge.is_some()
            && self
                .genome
                .genes
                .iter()
                .any(|g| matches!(g.action, Action::Forge))
    }

    /// Resolves a target selector against the current view.
    fn resolve(target: TargetSel, view: &ExecutionView<'_>) -> ProcessId {
        match target {
            TargetSel::Fixed(id) => ProcessId(id % view.n),
            TargetSel::TopSender(rank) => {
                // The AdaptiveWorstCase ranking: sent traffic descending,
                // stable ties toward lower ids.
                let mut ranked: Vec<ProcessId> = ProcessId::all(view.n).collect();
                ranked.sort_by_key(|p| std::cmp::Reverse(view.sent[p.index()]));
                ranked[rank % view.n]
            }
        }
    }

    fn triggered(trigger: Trigger, target: ProcessId, view: &ExecutionView<'_>) -> bool {
        match trigger {
            Trigger::AtRound(r) => view.round.0 >= r,
            Trigger::SentAtLeast(s) => view.sent[target.index()] >= s,
        }
    }
}

impl<M: Payload> FaultModel<M> for GenomeModel<M> {
    fn budget(&self) -> FaultBudget {
        FaultBudget::Adaptive(self.genome.budget)
    }

    fn mode(&self) -> FaultMode {
        if self.forging() {
            FaultMode::Byzantine
        } else {
            FaultMode::Omission
        }
    }

    fn begin_round(&mut self, view: ExecutionView<'_>) -> Vec<FaultDirective> {
        let mut directives = Vec::new();
        for i in 0..self.genome.genes.len() {
            if self.bound[i].is_some() {
                continue;
            }
            let gene = self.genome.genes[i];
            let target = Self::resolve(gene.target, &view);
            if !Self::triggered(gene.trigger, target, &view) {
                continue;
            }
            if self.corrupted.contains(&target) {
                // Re-corruption is free: bind without a directive.
                self.bound[i] = Some(target);
            } else if self.corrupted.len() < self.genome.budget {
                self.corrupted.insert(target);
                self.bound[i] = Some(target);
                directives.push(FaultDirective::Corrupt(target));
            }
            // Budget exhausted: the gene stays dormant and may bind later
            // if its target resolves to an already corrupted process.
        }
        directives
    }

    fn reorders(&self) -> bool {
        self.genome.reorder_seed.is_some()
    }

    fn schedule(&mut self, _view: ExecutionView<'_>, queue: &mut [Envelope]) {
        self.rng.shuffle(queue);
    }

    fn route(
        &mut self,
        _view: ExecutionView<'_>,
        sender: ProcessId,
        receiver: ProcessId,
        _payload: &M,
    ) -> Routing<M> {
        for (i, gene) in self.genome.genes.iter().enumerate() {
            let Some(bound) = self.bound[i] else { continue };
            match gene.action {
                Action::Mute if sender == bound => return Routing::SendOmit,
                Action::Deafen if receiver == bound => return Routing::ReceiveOmit,
                Action::MuteReceivers { mask }
                    if sender == bound
                        && receiver.index() < 64
                        && mask >> receiver.index() & 1 == 1 =>
                {
                    return Routing::SendOmit;
                }
                Action::Forge if sender == bound => {
                    return match &self.forge {
                        Some(payload) => Routing::Forge(payload.clone()),
                        None => Routing::SendOmit,
                    };
                }
                _ => {}
            }
        }
        Routing::Deliver
    }
}

/// Evaluates `genome` against one scenario in stats-only mode: the standard
/// fitness evaluation the drivers, tests, and workers all share.
///
/// # Errors
///
/// Propagates simulator errors ([`SimError`]); a genome produced by
/// [`GenomeSpace`](crate::GenomeSpace) with a budget ≤ `t` cannot itself
/// cause one.
pub fn evaluate_genome<P, F>(
    genome: &StrategyGenome,
    n: usize,
    t: usize,
    max_rounds: u64,
    inputs: &[P::Input],
    factory: &F,
) -> Result<ScenarioStats<P::Output>, SimError>
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    Scenario::new(n, t)
        .max_rounds(max_rounds)
        .protocol(factory)
        .inputs(inputs.iter().copied())
        .adversary(Adversary::model(GenomeModel::new(genome.clone())))
        .run_stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::Gene;

    fn view<'a>(
        round: u64,
        n: usize,
        corrupted: &'a BTreeSet<ProcessId>,
        sent: &'a [u64],
        delivered: &'a [u64],
    ) -> ExecutionView<'a> {
        ExecutionView {
            round: ba_sim::Round(round),
            n,
            t: n / 3,
            corrupted,
            charged: corrupted,
            sent,
            delivered,
        }
    }

    fn gene(trigger: Trigger, target: TargetSel, action: Action) -> Gene {
        Gene {
            trigger,
            target,
            action,
        }
    }

    #[test]
    fn genes_bind_when_triggered_and_respect_the_budget() {
        let genome = StrategyGenome {
            budget: 1,
            genes: vec![
                gene(Trigger::AtRound(2), TargetSel::Fixed(1), Action::Mute),
                gene(Trigger::AtRound(3), TargetSel::Fixed(2), Action::Mute),
            ],
            reorder_seed: None,
        };
        let mut model: GenomeModel<u8> = GenomeModel::new(genome);
        let (c, s, d) = (BTreeSet::new(), [0u64; 4], [0u64; 4]);
        assert!(model.begin_round(view(1, 4, &c, &s, &d)).is_empty());
        assert_eq!(
            model.begin_round(view(2, 4, &c, &s, &d)),
            vec![FaultDirective::Corrupt(ProcessId(1))]
        );
        // Budget 1 is spent: the second gene never fires.
        assert!(model.begin_round(view(3, 4, &c, &s, &d)).is_empty());
        assert_eq!(
            model.route(view(3, 4, &c, &s, &d), ProcessId(1), ProcessId(0), &0u8),
            Routing::SendOmit
        );
        assert_eq!(
            model.route(view(3, 4, &c, &s, &d), ProcessId(2), ProcessId(0), &0u8),
            Routing::Deliver,
            "unbound genes must not blame anyone"
        );
    }

    #[test]
    fn top_sender_targets_resolve_by_traffic_with_ties_to_low_ids() {
        let genome = StrategyGenome {
            budget: 1,
            genes: vec![gene(
                Trigger::AtRound(2),
                TargetSel::TopSender(0),
                Action::Mute,
            )],
            reorder_seed: None,
        };
        let mut model: GenomeModel<u8> = GenomeModel::new(genome);
        let c = BTreeSet::new();
        let sent = [3u64, 7, 3, 1];
        let d = [0u64; 4];
        assert_eq!(
            model.begin_round(view(2, 4, &c, &sent, &d)),
            vec![FaultDirective::Corrupt(ProcessId(1))]
        );
    }

    #[test]
    fn sent_at_least_triggers_on_the_resolved_target() {
        let genome = StrategyGenome {
            budget: 1,
            genes: vec![gene(
                Trigger::SentAtLeast(5),
                TargetSel::Fixed(2),
                Action::Deafen,
            )],
            reorder_seed: None,
        };
        let mut model: GenomeModel<u8> = GenomeModel::new(genome);
        let c = BTreeSet::new();
        let low = [9u64, 9, 4, 9];
        let d = [0u64; 4];
        assert!(model.begin_round(view(1, 4, &c, &low, &d)).is_empty());
        let high = [0u64, 0, 5, 0];
        assert_eq!(
            model.begin_round(view(2, 4, &c, &high, &d)),
            vec![FaultDirective::Corrupt(ProcessId(2))]
        );
        assert_eq!(
            model.route(view(2, 4, &c, &high, &d), ProcessId(0), ProcessId(2), &0u8),
            Routing::ReceiveOmit
        );
    }

    #[test]
    fn receiver_masks_split_deliveries() {
        let genome = StrategyGenome {
            budget: 1,
            genes: vec![gene(
                Trigger::AtRound(1),
                TargetSel::Fixed(0),
                Action::MuteReceivers { mask: 0b0010 },
            )],
            reorder_seed: None,
        };
        let mut model: GenomeModel<u8> = GenomeModel::new(genome);
        let (c, s, d) = (BTreeSet::new(), [0u64; 4], [0u64; 4]);
        let _ = model.begin_round(view(1, 4, &c, &s, &d));
        assert_eq!(
            model.route(view(1, 4, &c, &s, &d), ProcessId(0), ProcessId(1), &0u8),
            Routing::SendOmit
        );
        assert_eq!(
            model.route(view(1, 4, &c, &s, &d), ProcessId(0), ProcessId(2), &0u8),
            Routing::Deliver
        );
    }

    #[test]
    fn forge_genes_need_a_payload_and_flip_the_mode() {
        let genome = StrategyGenome {
            budget: 1,
            genes: vec![gene(
                Trigger::AtRound(1),
                TargetSel::Fixed(0),
                Action::Forge,
            )],
            reorder_seed: None,
        };
        let plain: GenomeModel<u8> = GenomeModel::new(genome.clone());
        assert_eq!(FaultModel::<u8>::mode(&plain), FaultMode::Omission);
        let mut forging = GenomeModel::new(genome).with_forge(9u8);
        assert_eq!(FaultModel::<u8>::mode(&forging), FaultMode::Byzantine);
        let (c, s, d) = (BTreeSet::new(), [0u64; 4], [0u64; 4]);
        let _ = forging.begin_round(view(1, 4, &c, &s, &d));
        assert_eq!(
            forging.route(view(1, 4, &c, &s, &d), ProcessId(0), ProcessId(1), &7u8),
            Routing::Forge(9)
        );
    }

    /// Echo-once protocol: broadcast in round 1, decide own proposal.
    #[derive(Clone)]
    struct EchoOnce {
        proposal: Bit,
        decision: Option<Bit>,
    }

    fn echo(_: ProcessId) -> EchoOnce {
        EchoOnce {
            proposal: Bit::Zero,
            decision: None,
        }
    }

    impl Protocol for EchoOnce {
        type Input = Bit;
        type Output = Bit;
        type Msg = Bit;

        fn propose(&mut self, ctx: &ba_sim::ProcessCtx, proposal: Bit) -> ba_sim::Outbox<Bit> {
            self.proposal = proposal;
            let mut out = ba_sim::Outbox::new();
            out.broadcast(ctx.others(), proposal);
            out
        }

        fn round(
            &mut self,
            _: &ba_sim::ProcessCtx,
            round: ba_sim::Round,
            _: &ba_sim::Inbox<Bit>,
        ) -> ba_sim::Outbox<Bit> {
            if round == ba_sim::Round::FIRST {
                self.decision = Some(self.proposal);
            }
            ba_sim::Outbox::new()
        }

        fn decision(&self) -> Option<Bit> {
            self.decision
        }
    }

    #[test]
    fn evaluation_is_deterministic_and_budget_sound() {
        // An arbitrary sweep of random genomes must never produce a
        // SimError: structural soundness of the interpreter.
        let space = crate::GenomeSpace::new(5, 1, 8);
        let mut rng = SimRng::seed_from_u64(77);
        for _ in 0..60 {
            let genome = space.random_genome(&mut rng);
            let a = evaluate_genome(&genome, 5, 1, 8, &[Bit::Zero; 5], &echo)
                .expect("interpreted genomes are budget-sound");
            let b = evaluate_genome(&genome, 5, 1, 8, &[Bit::Zero; 5], &echo).unwrap();
            assert_eq!(a, b, "same genome, same stats");
        }
    }
}
