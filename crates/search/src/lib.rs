//! Adversary-strategy search over the `FaultModel` space.
//!
//! The lower-bound machinery in `ba-core` proves that *every* adversary
//! strategy within the fault budget is survivable (or finds the one
//! execution family that is not). This crate attacks from the other side:
//! it *searches* the strategy space for concrete adversaries that break a
//! protocol, using the same deterministic simulator as the ground truth.
//!
//! The pipeline:
//!
//! 1. [`StrategyGenome`] — a small, serializable program over corruption
//!    triggers, target selectors, and per-message actions, interpreted as
//!    a budget-sound `ba_sim::FaultModel` by [`GenomeModel`].
//! 2. [`Objective`] — a scalar fitness over a stats-only scenario run:
//!    [`DisagreementRate`], [`ValidityViolation`], [`DecisionRounds`],
//!    [`MessageComplexity`].
//! 3. [`search`] — a (1+λ) hill-climber or simulated annealing, fully
//!    replayable from one seed, with batches evaluated in parallel.
//! 4. [`shrink`] — delta-debugging down to a 1-minimal violating genome,
//!    reported as a human-readable [`AttackReport`].
//!
//! Genomes travel through the `ba-dist` wire format ([`genome_label`] /
//! [`genome_from_label`]) so campaign workers can evaluate populations
//! across shards.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod genome;
pub mod interpret;
pub mod objective;
pub mod shrink;
pub mod wire;

pub use driver::{search, SearchAlgo, SearchConfig, SearchOutcome, SearchStep};
pub use genome::{Action, Gene, GenomeSpace, StrategyGenome, TargetSel, Trigger};
pub use interpret::{evaluate_genome, GenomeModel};
pub use objective::{
    DecisionRounds, DisagreementRate, MessageComplexity, Objective, ValidityViolation,
};
pub use shrink::{shrink, AttackReport};
pub use wire::{genome_from_label, genome_label, GENOME_LABEL_PREFIX};
