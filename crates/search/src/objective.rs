//! Search objectives: scalar fitness over a stats-only scenario report.
//!
//! An [`Objective`] turns a [`ScenarioStats`] into a score the drivers
//! maximize, plus a hard `violated` predicate that ends the search the
//! moment a genuine property violation is exhibited. Scores are
//! deterministic functions of the stats, so a search trajectory is exactly
//! replayable.

use ba_sim::{Bit, ScenarioStats};

/// A maximization target over one evaluated scenario.
pub trait Objective {
    /// A stable label for reports and CLI selection.
    fn name(&self) -> &'static str;

    /// The fitness of this outcome (higher is better). Violating outcomes
    /// must score at least [`Objective::VIOLATION_SCORE`].
    fn score(&self, stats: &ScenarioStats<Bit>) -> f64;

    /// `true` iff this outcome exhibits the violation the objective hunts;
    /// the drivers stop as soon as an evaluation satisfies it.
    fn violated(&self, stats: &ScenarioStats<Bit>) -> bool;
}

/// The score floor every violating outcome reaches.
impl dyn Objective {
    /// Scores at or above this mark a violating outcome.
    pub const VIOLATION_SCORE: f64 = 1_000.0;
}

fn undecided(stats: &ScenarioStats<Bit>) -> usize {
    stats.decisions.values().filter(|d| d.is_none()).count()
}

/// Maximize disagreement among correct processes; violated on a recorded
/// agreement violation. Undecided correct processes score as gradient —
/// a process still torn between values is closer to a split than a
/// unanimous early decision.
#[derive(Clone, Copy, Default, Debug)]
pub struct DisagreementRate;

impl Objective for DisagreementRate {
    fn name(&self) -> &'static str {
        "disagreement"
    }

    fn score(&self, stats: &ScenarioStats<Bit>) -> f64 {
        if self.violated(stats) {
            return <dyn Objective>::VIOLATION_SCORE + stats.rounds as f64;
        }
        undecided(stats) as f64
    }

    fn violated(&self, stats: &ScenarioStats<Bit>) -> bool {
        stats
            .violations
            .iter()
            .any(|v| v.contains("agreement violated"))
    }
}

/// Make a correct process decide something other than `expected`; violated
/// as soon as one does. The natural objective for uniform-input (validity)
/// hunts.
#[derive(Clone, Copy, Debug)]
pub struct ValidityViolation {
    /// The bit every correct process is supposed to decide.
    pub expected: Bit,
}

impl Objective for ValidityViolation {
    fn name(&self) -> &'static str {
        "validity"
    }

    fn score(&self, stats: &ScenarioStats<Bit>) -> f64 {
        let wrong = stats
            .decisions
            .values()
            .filter(|d| matches!(d, Some(bit) if *bit != self.expected))
            .count();
        if wrong > 0 {
            return <dyn Objective>::VIOLATION_SCORE + wrong as f64;
        }
        undecided(stats) as f64
    }

    fn violated(&self, stats: &ScenarioStats<Bit>) -> bool {
        self.score(stats) >= <dyn Objective>::VIOLATION_SCORE
    }
}

/// Maximize the round by which correct processes decide; violated when a
/// correct process never decides within the horizon (a recorded
/// termination violation).
#[derive(Clone, Copy, Default, Debug)]
pub struct DecisionRounds;

impl Objective for DecisionRounds {
    fn name(&self) -> &'static str {
        "decision-rounds"
    }

    fn score(&self, stats: &ScenarioStats<Bit>) -> f64 {
        if self.violated(stats) {
            return <dyn Objective>::VIOLATION_SCORE + stats.rounds as f64;
        }
        stats.decided_by.map_or(stats.rounds, |r| r.0) as f64
    }

    fn violated(&self, stats: &ScenarioStats<Bit>) -> bool {
        stats
            .violations
            .iter()
            .any(|v| v.contains("termination violated"))
    }
}

/// Maximize the message complexity correct processes are driven to (the
/// paper's cost measure). Never "violated": this objective runs the budget
/// to exhaustion and reports the most expensive strategy found.
#[derive(Clone, Copy, Default, Debug)]
pub struct MessageComplexity;

impl Objective for MessageComplexity {
    fn name(&self) -> &'static str {
        "message-complexity"
    }

    fn score(&self, stats: &ScenarioStats<Bit>) -> f64 {
        stats.message_complexity as f64
    }

    fn violated(&self, _stats: &ScenarioStats<Bit>) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{ProcessId, Round};
    use std::collections::BTreeMap;

    fn stats(decisions: &[(usize, Option<Bit>)], violations: &[&str]) -> ScenarioStats<Bit> {
        ScenarioStats {
            message_complexity: 12,
            total_messages: 20,
            rounds: 3,
            quiescent: true,
            decided_by: Some(Round(2)),
            decisions: decisions
                .iter()
                .map(|(p, d)| (ProcessId(*p), *d))
                .collect::<BTreeMap<_, _>>(),
            violations: violations.iter().map(|v| v.to_string()).collect(),
        }
    }

    #[test]
    fn disagreement_fires_on_agreement_violations_only() {
        let clean = stats(&[(0, Some(Bit::One)), (1, Some(Bit::One))], &[]);
        let split = stats(
            &[(0, Some(Bit::One)), (1, Some(Bit::Zero))],
            &["agreement violated: correct decisions {Zero, One}"],
        );
        assert!(!DisagreementRate.violated(&clean));
        assert!(DisagreementRate.violated(&split));
        assert!(DisagreementRate.score(&split) > DisagreementRate.score(&clean));
        assert!(DisagreementRate.score(&split) >= <dyn Objective>::VIOLATION_SCORE);
    }

    #[test]
    fn validity_tracks_the_expected_bit() {
        let obj = ValidityViolation {
            expected: Bit::Zero,
        };
        let good = stats(&[(0, Some(Bit::Zero))], &[]);
        let bad = stats(&[(0, Some(Bit::Zero)), (1, Some(Bit::One))], &[]);
        assert!(!obj.violated(&good));
        assert!(obj.violated(&bad));
        // Undecided processes are gradient, not violation.
        let torn = stats(&[(0, None), (1, Some(Bit::Zero))], &[]);
        assert!(!obj.violated(&torn));
        assert!(obj.score(&torn) > obj.score(&good));
    }

    #[test]
    fn decision_rounds_rewards_slow_and_flags_nontermination() {
        let mut quick = stats(&[(0, Some(Bit::One))], &[]);
        quick.decided_by = Some(Round(2));
        let mut slow = quick.clone();
        slow.decided_by = Some(Round(3));
        assert!(DecisionRounds.score(&slow) > DecisionRounds.score(&quick));
        let stuck = stats(
            &[(0, None)],
            &["termination violated: p0 undecided within horizon"],
        );
        assert!(DecisionRounds.violated(&stuck));
        assert!(DecisionRounds.score(&stuck) >= <dyn Objective>::VIOLATION_SCORE);
    }

    #[test]
    fn message_complexity_never_violates() {
        let s = stats(&[(0, Some(Bit::One))], &["agreement violated: ..."]);
        assert!(!MessageComplexity.violated(&s));
        assert_eq!(MessageComplexity.score(&s), 12.0);
    }
}
