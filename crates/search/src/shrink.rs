//! Delta-debugging shrinker and human-readable attack reports.
//!
//! Once a search finds a violating [`StrategyGenome`], the genome usually
//! carries passengers: genes that never fire, a reorder seed that changes
//! nothing, budget headroom. [`shrink`] greedily removes them — one
//! deterministic pass at a time until a fixpoint — while re-checking that
//! the reduced genome still violates the objective. The result is the
//! minimal directive set, packaged as an [`AttackReport`] that replays to
//! the same violation.

use ba_sim::{Bit, ScenarioStats, SimError};

use crate::genome::{Action, StrategyGenome};
use crate::objective::Objective;

/// Shrinks `genome` to a locally minimal violating strategy.
///
/// Each simplification (drop a gene, drop the reorder seed, trim the
/// budget, clear a receiver-mask bit) is kept only if the candidate still
/// satisfies `objective.violated` under `eval`. Passes repeat until no
/// simplification is accepted, so the result is 1-minimal: removing any
/// single remaining directive loses the violation.
///
/// # Errors
///
/// Propagates the first evaluation error.
pub fn shrink<E>(
    genome: &StrategyGenome,
    objective: &dyn Objective,
    eval: E,
) -> Result<StrategyGenome, SimError>
where
    E: Fn(&StrategyGenome) -> Result<ScenarioStats<Bit>, SimError>,
{
    let mut best = genome.clone();
    let still_violates = |candidate: &StrategyGenome| -> Result<bool, SimError> {
        Ok(objective.violated(&eval(candidate)?))
    };
    loop {
        let mut simplified = false;

        // Drop whole genes, lowest index first; restart the scan on
        // success so indices stay meaningful.
        let mut idx = 0;
        while idx < best.genes.len() {
            let mut candidate = best.clone();
            candidate.genes.remove(idx);
            if !candidate.genes.is_empty() && still_violates(&candidate)? {
                best = candidate;
                simplified = true;
            } else {
                idx += 1;
            }
        }

        // A reorder seed that is not load-bearing goes next.
        if best.reorder_seed.is_some() {
            let mut candidate = best.clone();
            candidate.reorder_seed = None;
            if still_violates(&candidate)? {
                best = candidate;
                simplified = true;
            }
        }

        // Trim budget headroom down to the genes that remain.
        if best.budget > best.genes.len() {
            let mut candidate = best.clone();
            candidate.budget = candidate.genes.len();
            if still_violates(&candidate)? {
                best = candidate;
                simplified = true;
            }
        }

        // Clear individual receiver-mask bits, re-reading the (possibly
        // already reduced) mask before each attempt.
        for idx in 0..best.genes.len() {
            for bit in 0..64 {
                let mask = match best.genes[idx].action {
                    Action::MuteReceivers { mask } => mask,
                    _ => break,
                };
                let cleared = mask & !(1u64 << bit);
                if cleared == mask || cleared == 0 {
                    continue;
                }
                let mut candidate = best.clone();
                candidate.genes[idx].action = Action::MuteReceivers { mask: cleared };
                if still_violates(&candidate)? {
                    best = candidate;
                    simplified = true;
                }
            }
        }

        if !simplified {
            return Ok(best);
        }
    }
}

/// A replayable description of a found attack: the scenario, the shrunk
/// genome, and the violation it exhibits.
#[derive(Clone, PartialEq, Debug)]
pub struct AttackReport {
    /// The protocol under attack (a registry label or free text).
    pub protocol: String,
    /// The objective that was violated.
    pub objective: String,
    /// Number of processes.
    pub n: usize,
    /// Resilience parameter.
    pub t: usize,
    /// Proposals handed to the processes, in process order.
    pub inputs: Vec<Bit>,
    /// The search seed that found the attack.
    pub seed: u64,
    /// Evaluations the search consumed before stopping.
    pub evals: usize,
    /// The shrunk, minimal violating strategy.
    pub genome: StrategyGenome,
    /// The violation strings the replay records.
    pub violations: Vec<String>,
    /// The objective score of the final genome.
    pub score: f64,
}

impl std::fmt::Display for AttackReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "attack on {} (n={}, t={}) violating {}",
            self.protocol, self.n, self.t, self.objective
        )?;
        let inputs: Vec<String> = self
            .inputs
            .iter()
            .map(|b| u8::from(*b).to_string())
            .collect();
        writeln!(f, "  inputs: [{}]", inputs.join(", "))?;
        writeln!(
            f,
            "  found by seed {} after {} evals",
            self.seed, self.evals
        )?;
        writeln!(f, "  strategy: {}", self.genome.to_string().trim_end())?;
        for violation in &self.violations {
            writeln!(f, "  violation: {violation}")?;
        }
        write!(f, "  score: {}", self.score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{Gene, TargetSel, Trigger};
    use crate::objective::MessageComplexity;
    use ba_sim::ScenarioStats;

    /// "Violates" iff some gene mutes process 0 — everything else is
    /// removable noise the shrinker must strip.
    struct MutesZero;
    impl Objective for MutesZero {
        fn name(&self) -> &'static str {
            "mutes-zero"
        }
        fn score(&self, stats: &ScenarioStats<Bit>) -> f64 {
            stats.message_complexity as f64
        }
        fn violated(&self, stats: &ScenarioStats<Bit>) -> bool {
            stats.message_complexity > 0
        }
    }

    fn eval_mutes_zero(genome: &StrategyGenome) -> Result<ScenarioStats<Bit>, SimError> {
        let hits = genome
            .genes
            .iter()
            .filter(|g| matches!(g.target, TargetSel::Fixed(0)) && matches!(g.action, Action::Mute))
            .count() as u64;
        Ok(ScenarioStats {
            message_complexity: hits,
            total_messages: hits,
            rounds: 1,
            quiescent: true,
            decided_by: None,
            decisions: Default::default(),
            violations: Vec::new(),
        })
    }

    fn gene(target: TargetSel, action: Action) -> Gene {
        Gene {
            trigger: Trigger::AtRound(1),
            target,
            action,
        }
    }

    #[test]
    fn shrinker_strips_passenger_genes_budget_and_seed() {
        let bloated = StrategyGenome {
            budget: 5,
            genes: vec![
                gene(TargetSel::Fixed(3), Action::Deafen),
                gene(TargetSel::Fixed(0), Action::Mute),
                gene(TargetSel::TopSender(2), Action::Forge),
                gene(TargetSel::Fixed(0), Action::Mute),
            ],
            reorder_seed: Some(99),
        };
        let minimal = shrink(&bloated, &MutesZero, eval_mutes_zero).unwrap();
        assert_eq!(minimal.genes.len(), 1, "one mute-p0 gene suffices");
        assert_eq!(minimal.genes[0], gene(TargetSel::Fixed(0), Action::Mute));
        assert_eq!(minimal.budget, 1);
        assert_eq!(minimal.reorder_seed, None);
        // 1-minimality: the result still violates.
        assert!(MutesZero.violated(&eval_mutes_zero(&minimal).unwrap()));
    }

    #[test]
    fn shrinker_clears_unneeded_mask_bits() {
        struct MaskHitsOne;
        impl Objective for MaskHitsOne {
            fn name(&self) -> &'static str {
                "mask-hits-one"
            }
            fn score(&self, stats: &ScenarioStats<Bit>) -> f64 {
                stats.message_complexity as f64
            }
            fn violated(&self, stats: &ScenarioStats<Bit>) -> bool {
                stats.message_complexity > 0
            }
        }
        let eval = |genome: &StrategyGenome| -> Result<ScenarioStats<Bit>, SimError> {
            let hits = genome
                .genes
                .iter()
                .filter(
                    |g| matches!(g.action, Action::MuteReceivers { mask } if mask & (1 << 1) != 0),
                )
                .count() as u64;
            Ok(ScenarioStats {
                message_complexity: hits,
                total_messages: hits,
                rounds: 1,
                quiescent: true,
                decided_by: None,
                decisions: Default::default(),
                violations: Vec::new(),
            })
        };
        let wide = StrategyGenome {
            budget: 1,
            genes: vec![gene(
                TargetSel::Fixed(0),
                Action::MuteReceivers { mask: 0b1110 },
            )],
            reorder_seed: None,
        };
        let minimal = shrink(&wide, &MaskHitsOne, eval).unwrap();
        assert_eq!(
            minimal.genes[0].action,
            Action::MuteReceivers { mask: 0b0010 },
            "only the load-bearing bit survives"
        );
    }

    #[test]
    fn shrinking_a_non_violating_genome_is_identity_on_genes() {
        let genome = StrategyGenome {
            budget: 2,
            genes: vec![gene(TargetSel::Fixed(1), Action::Deafen)],
            reorder_seed: None,
        };
        // MessageComplexity never violates, so nothing can be removed.
        let out = shrink(&genome, &MessageComplexity, eval_mutes_zero).unwrap();
        assert_eq!(out.genes, genome.genes);
    }

    #[test]
    fn report_display_is_readable() {
        let report = AttackReport {
            protocol: "one-round-all-to-all".to_string(),
            objective: "disagreement".to_string(),
            n: 5,
            t: 1,
            inputs: vec![Bit::Zero; 5],
            seed: 11,
            evals: 57,
            genome: StrategyGenome {
                budget: 1,
                genes: vec![gene(
                    TargetSel::Fixed(0),
                    Action::MuteReceivers { mask: 0b0010 },
                )],
                reorder_seed: None,
            },
            violations: vec!["agreement violated: correct decisions {Zero, One}".to_string()],
            score: 1003.0,
        };
        let text = report.to_string();
        assert!(text.contains("one-round-all-to-all"));
        assert!(text.contains("n=5, t=1"));
        assert!(text.contains("agreement violated"));
        assert!(text.contains("seed 11"));
    }
}
