//! Wire codec for [`StrategyGenome`] in the `ba-dist` line format, plus
//! helpers for smuggling genomes through campaign-point adversary labels.
//!
//! Layout: one `genome` header record (budget, optional reorder seed, gene
//! count) followed by exactly `count` `gene` records. Every value is plain
//! ASCII with no spaces, so records survive the dist framing untouched;
//! [`genome_label`] additionally percent-escapes the whole encoding so it
//! fits in a single label token.

use ba_dist::wire::{escape, unescape, Record};
use ba_dist::{Decode, Encode, WireError, WireReader};

use crate::genome::{Action, Gene, StrategyGenome, TargetSel, Trigger};

fn field_error(tag: &str, key: &str, detail: String) -> WireError {
    WireError::Field {
        tag: tag.to_string(),
        key: key.to_string(),
        detail,
    }
}

fn split_variant<'a>(
    rec: &Record<'_>,
    key: &str,
    raw: &'a str,
) -> Result<(&'a str, &'a str), WireError> {
    raw.split_once(':')
        .ok_or_else(|| field_error(rec.tag(), key, format!("missing `:` in {raw:?}")))
}

fn parse_num<T: std::str::FromStr>(rec: &Record<'_>, key: &str, raw: &str) -> Result<T, WireError> {
    raw.parse()
        .map_err(|_| field_error(rec.tag(), key, format!("unparsable value {raw:?}")))
}

impl Encode for StrategyGenome {
    fn encode(&self, out: &mut String) {
        let reorder = match self.reorder_seed {
            Some(seed) => seed.to_string(),
            None => "none".to_string(),
        };
        out.push_str(&format!(
            "genome budget={} reorder={reorder} count={}\n",
            self.budget,
            self.genes.len()
        ));
        for gene in &self.genes {
            let trigger = match gene.trigger {
                Trigger::AtRound(r) => format!("round:{r}"),
                Trigger::SentAtLeast(s) => format!("sent:{s}"),
            };
            let target = match gene.target {
                TargetSel::Fixed(idx) => format!("fixed:{idx}"),
                TargetSel::TopSender(rank) => format!("top:{rank}"),
            };
            let action = match gene.action {
                Action::Mute => "mute".to_string(),
                Action::Deafen => "deafen".to_string(),
                Action::MuteReceivers { mask } => format!("mask:{mask:x}"),
                Action::Forge => "forge".to_string(),
            };
            out.push_str(&format!(
                "gene trigger={trigger} target={target} action={action}\n"
            ));
        }
    }
}

impl Decode for StrategyGenome {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let header = reader.record("genome")?;
        let budget = header.parse_field("budget")?;
        let reorder_seed = match header.raw("reorder")? {
            "none" => None,
            raw => Some(parse_num(&header, "reorder", raw)?),
        };
        let count: usize = header.parse_field("count")?;
        let mut genes = Vec::with_capacity(count);
        for _ in 0..count {
            let rec = reader.record("gene")?;
            let trigger = {
                let raw = rec.raw("trigger")?;
                let (kind, value) = split_variant(&rec, "trigger", raw)?;
                match kind {
                    "round" => Trigger::AtRound(parse_num(&rec, "trigger", value)?),
                    "sent" => Trigger::SentAtLeast(parse_num(&rec, "trigger", value)?),
                    other => {
                        return Err(field_error(
                            rec.tag(),
                            "trigger",
                            format!("unknown trigger {other:?}"),
                        ))
                    }
                }
            };
            let target = {
                let raw = rec.raw("target")?;
                let (kind, value) = split_variant(&rec, "target", raw)?;
                match kind {
                    "fixed" => TargetSel::Fixed(parse_num(&rec, "target", value)?),
                    "top" => TargetSel::TopSender(parse_num(&rec, "target", value)?),
                    other => {
                        return Err(field_error(
                            rec.tag(),
                            "target",
                            format!("unknown target {other:?}"),
                        ))
                    }
                }
            };
            let action = match rec.raw("action")? {
                "mute" => Action::Mute,
                "deafen" => Action::Deafen,
                "forge" => Action::Forge,
                raw => {
                    let (kind, value) = split_variant(&rec, "action", raw)?;
                    if kind != "mask" {
                        return Err(field_error(
                            rec.tag(),
                            "action",
                            format!("unknown action {raw:?}"),
                        ));
                    }
                    let mask = u64::from_str_radix(value, 16).map_err(|_| {
                        field_error(rec.tag(), "action", format!("unparsable mask {value:?}"))
                    })?;
                    Action::MuteReceivers { mask }
                }
            };
            genes.push(Gene {
                trigger,
                target,
                action,
            });
        }
        Ok(StrategyGenome {
            budget,
            genes,
            reorder_seed,
        })
    }
}

/// The label prefix marking a campaign-point adversary as an encoded
/// genome.
pub const GENOME_LABEL_PREFIX: &str = "genome:";

/// Packs a genome into a single adversary-label token:
/// `genome:<escaped wire encoding>`.
pub fn genome_label(genome: &StrategyGenome) -> String {
    format!("{GENOME_LABEL_PREFIX}{}", escape(&genome.to_wire()))
}

/// Recovers a genome from an adversary label produced by [`genome_label`].
/// Returns `Ok(None)` for labels without the `genome:` prefix (named
/// adversaries), and an error for prefixed labels that fail to decode.
///
/// # Errors
///
/// Returns [`WireError`] if the payload after the prefix is not a valid
/// encoded genome.
pub fn genome_from_label(label: &str) -> Result<Option<StrategyGenome>, WireError> {
    let Some(payload) = label.strip_prefix(GENOME_LABEL_PREFIX) else {
        return Ok(None);
    };
    let wire = unescape(payload)?;
    StrategyGenome::from_wire(&wire).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::SimRng;

    /// Decodes `value`'s encoding back to `value` and checks the
    /// re-encoding is byte-identical, mirroring the dist wire suites.
    fn round_trip(value: &StrategyGenome) {
        let wire = value.to_wire();
        let decoded = StrategyGenome::from_wire(&wire)
            .unwrap_or_else(|e| panic!("decode failed: {e:?}\n{wire}"));
        assert_eq!(&decoded, value, "round-trip changed the genome\n{wire}");
        assert_eq!(decoded.to_wire(), wire, "re-encoding not byte-identical");
    }

    #[test]
    fn hand_picked_genomes_round_trip() {
        round_trip(&StrategyGenome::empty(0));
        round_trip(&StrategyGenome::empty(7));
        round_trip(&StrategyGenome {
            budget: 2,
            genes: vec![
                Gene {
                    trigger: Trigger::AtRound(1),
                    target: TargetSel::Fixed(0),
                    action: Action::MuteReceivers { mask: u64::MAX },
                },
                Gene {
                    trigger: Trigger::SentAtLeast(0),
                    target: TargetSel::TopSender(3),
                    action: Action::Forge,
                },
            ],
            reorder_seed: Some(u64::MAX),
        });
    }

    #[test]
    fn random_genomes_round_trip() {
        let mut rng = SimRng::seed_from_u64(0x9e3779b97f4a7c15);
        for case in 0..200 {
            let n = 1 + (case % 9);
            let t = case % (n.max(2) - 1).max(1);
            let space = crate::genome::GenomeSpace::new(n, t, 1 + case as u64 % 12);
            round_trip(&space.random_genome(&mut rng));
        }
    }

    #[test]
    fn labels_round_trip_and_reject_garbage() {
        let mut rng = SimRng::seed_from_u64(42);
        let space = crate::genome::GenomeSpace::new(5, 2, 6);
        for _ in 0..50 {
            let genome = space.random_genome(&mut rng);
            let label = genome_label(&genome);
            assert!(label.starts_with(GENOME_LABEL_PREFIX));
            assert!(!label.contains(' '), "label must stay one token: {label}");
            assert_eq!(genome_from_label(&label).unwrap(), Some(genome));
        }
        assert_eq!(genome_from_label("random-omission").unwrap(), None);
        assert!(genome_from_label("genome:not-a-genome").is_err());
    }

    #[test]
    fn truncated_and_corrupt_encodings_fail_cleanly() {
        let genome = StrategyGenome {
            budget: 1,
            genes: vec![Gene {
                trigger: Trigger::AtRound(2),
                target: TargetSel::Fixed(1),
                action: Action::Mute,
            }],
            reorder_seed: None,
        };
        let wire = genome.to_wire();
        // Drop the gene record the header promises.
        let header_only = wire.lines().next().unwrap().to_string();
        assert!(StrategyGenome::from_wire(&header_only).is_err());
        // Unknown action.
        let corrupt = wire.replace("action=mute", "action=explode");
        assert!(StrategyGenome::from_wire(&corrupt).is_err());
        // Trailing data is rejected by from_wire.
        let trailing = format!("{wire}gene trigger=round:1 target=fixed:0 action=mute\n");
        assert!(StrategyGenome::from_wire(&trailing).is_err());
        // Bad mask digits.
        let badmask = wire.replace("action=mute", "action=mask:zz");
        assert!(StrategyGenome::from_wire(&badmask).is_err());
    }
}
